"""Exception hierarchy for the PREFENDER reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures without masking unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class AssemblyError(ReproError):
    """Raised when assembly source cannot be parsed or resolved.

    Attributes:
        line_no: 1-based source line number when known, else ``None``.
    """

    def __init__(self, message: str, line_no: int | None = None) -> None:
        self.line_no = line_no
        if line_no is not None:
            message = f"line {line_no}: {message}"
        super().__init__(message)


class AnalysisError(ReproError):
    """Raised when strict static analysis rejects a program.

    Attributes:
        findings: the :class:`repro.analysis.Finding` objects that caused
            the rejection (already filtered through suppressions).
    """

    def __init__(self, message: str, findings: tuple = ()) -> None:
        self.findings = tuple(findings)
        super().__init__(message)


class ExecutionError(ReproError):
    """Raised when a program performs an illegal operation at run time."""


class ConfigError(ReproError):
    """Raised when a simulation configuration is inconsistent."""


class SimulationError(ReproError):
    """Raised when the simulator reaches an unrecoverable state.

    The most common cause is a program that fails to halt within the
    configured instruction or cycle budget.
    """


class SnapshotError(ReproError):
    """Raised when a snapshot cannot be restored onto a live system.

    Restoring is strict by design: a version mismatch, an unknown or
    missing field, or a shape mismatch (wrong core count, wrong buffer
    pool size) raises instead of silently corrupting simulator state —
    the parity harness depends on restore being all-or-nothing.
    """
