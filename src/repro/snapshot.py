"""Shared pieces of the simulator's snapshot/restore protocol.

Every state-bearing component (``Core``, ``Cache``, ``MSHRFile``,
``MemoryHierarchy``, the PREFENDER trackers, the prefetchers) implements

* ``snapshot() -> dict`` — a picture of *all* mutable state, deep enough
  that the component never aliases it afterwards (plural state is copied
  into flat tuples, never referenced), and
* ``restore(data: dict) -> None`` — the exact inverse, mutating the live
  component in place (hot-loop caches like ``Core._values`` hold direct
  references into component internals, so restore must never swap the
  referenced containers out).

``System.snapshot()/System.restore()`` compose the per-component dicts and
stamp them with :data:`SNAPSHOT_VERSION`.  Restore is strict: unknown or
missing fields and version mismatches raise
:class:`~repro.errors.SnapshotError` instead of silently corrupting state
(``tests/test_snapshot_parity.py`` proves restored systems cycle- and
counter-exact against never-snapshotted controls).

Snapshots are plain dicts of scalars and tuples — no JSON round-trip, no
copy.deepcopy — so taking and applying one costs a small fraction of a
single scenario trial.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import SnapshotError

__all__ = ["SNAPSHOT_VERSION", "require_keys"]

# Bump whenever any component's snapshot layout changes shape.
SNAPSHOT_VERSION = 1


def require_keys(data: dict, expected: Iterable[str], what: str) -> None:
    """Validate that ``data`` has exactly the ``expected`` keys.

    Args:
        data: a component snapshot dict.
        expected: the component's full key set.
        what: component name for the error message.

    Raises:
        SnapshotError: on a non-dict payload, unknown keys (likely a
            snapshot from a newer layout) or missing keys (a truncated or
            foreign snapshot).
    """
    if not isinstance(data, dict):
        raise SnapshotError(
            f"{what}: snapshot must be a dict, got {type(data).__name__}"
        )
    expected_set = frozenset(expected)
    actual = frozenset(data)
    if actual == expected_set:
        return
    unknown = sorted(actual - expected_set)
    missing = sorted(expected_set - actual)
    parts = []
    if unknown:
        parts.append(f"unknown field(s) {unknown}")
    if missing:
        parts.append(f"missing field(s) {missing}")
    raise SnapshotError(f"{what}: {', '.join(parts)}")
