"""PREFENDER reproduction: a secure prefetcher against cache side channels.

Reproduces Li, Huang, Feng & Wang, *"PREFENDER: A Prefetching Defender
against Cache Side Channel Attacks as A Pretender"* (DATE 2022 / arXiv
2307.06756) as a pure-Python system: a small ISA and timing CPU (with a
Spectre-capable speculative mode), a multi-level cache hierarchy, baseline
prefetchers, the PREFENDER defense (Scale Tracker + Access Tracker + Record
Protector), the paper's attacks, SPEC-like synthetic workloads and the full
experiment harness for every table and figure.

Quickstart::

    from repro import PrefenderConfig, PrefetcherSpec, SystemConfig
    from repro.attacks import FlushReloadAttack

    attack = FlushReloadAttack(secret=65)
    base = attack.run(SystemConfig())                       # undefended
    defended = attack.run(SystemConfig(prefetcher=PrefetcherSpec(
        kind="prefender", prefender=PrefenderConfig.full())))
    print(base.inferred_secrets, defended.inferred_secrets)
"""

from repro.core.config import PrefenderConfig
from repro.core.prefender import Prefender
from repro.cpu.core import CoreConfig
from repro.cpu.system import RunResult, System
from repro.errors import (
    AssemblyError,
    ConfigError,
    ExecutionError,
    ReproError,
    SimulationError,
)
from repro.isa.assembler import assemble
from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program
from repro.mem.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.sim.config import PrefetcherSpec, SystemConfig, build_prefetcher
from repro.sim.simulator import build_system, run_program, run_programs
from repro.utils.addr import AddressMap

__version__ = "1.0.0"

__all__ = [
    "AddressMap",
    "AssemblyError",
    "ConfigError",
    "CoreConfig",
    "ExecutionError",
    "HierarchyConfig",
    "MemoryHierarchy",
    "Prefender",
    "PrefenderConfig",
    "PrefetcherSpec",
    "Program",
    "ProgramBuilder",
    "ReproError",
    "RunResult",
    "SimulationError",
    "System",
    "SystemConfig",
    "assemble",
    "build_prefetcher",
    "build_system",
    "run_program",
    "run_programs",
    "__version__",
]
