"""Secret-taint dataflow and the static leak map.

PREFENDER's premise is that a handful of loads are secret-dependent table
lookups and everything else is noise.  This pass proves *which* accesses
those are, statically, from the same decode tuples the timing core
executes:

* **taint propagation** (forward, union meet) — taint seeds at loads
  whose :func:`~repro.analysis.dataflow.constant_addresses`-resolved
  address is a declared secret cell (``.secret`` directive /
  :meth:`repro.isa.program.Program.taint_source`), then flows through the
  ALU/mov/shift handler kinds exactly as constant propagation mirrors the
  core's masking.  Stores of tainted values to resolved addresses taint
  those memory cells too (an outer fixpoint), so a spilled secret stays
  tracked.
* **classification** — every reachable ``load``/``store``/``prefetch``/
  ``clflush`` is *secret-addressed* (its address register is tainted:
  the access pattern leaks), *secret-valued* (the data moved is
  secret-derived but the address is fixed), or *clean*; plus
  secret-dependent branches (``K_BRANCH`` on a tainted register) — a
  control-flow channel the dynamic scenario suite cannot see directly.
* **leak map** (:func:`leak_map`) — bind the declared secret cells to one
  concrete secret value and re-run constant propagation with *feasible
  edges only* (branches whose operands are known constants propagate down
  one side), then read off which probe-array indices the resolved
  accesses touch.  ``tests/test_taint_oracle.py`` locks this map against
  :meth:`~repro.workloads.crypto.CryptoVictim.expected_indices` and the
  dynamic mutual-information scorer, both ways.

Deliberate scope limits (guarded by the differential oracle):

* A load whose address never resolves is treated as *clean* unless its
  address register is tainted: in this codebase the unresolved loads are
  the attacker's own register-resident probe sweeps.  The transient
  Spectre read (``array1[oob]``) is therefore out of scope — it leaks
  through a misprediction window the architectural CFG does not model.
* Taint-source matching is exact (word addresses), like the data
  segments that write the secrets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.analysis.cfg import EXIT, BasicBlock, ControlFlowGraph, build_cfg
from repro.analysis.dataflow import (
    _meet,
    _transfer,
    constant_addresses,
    uses_and_def,
)
from repro.isa.decode import (
    K_BRANCH,
    K_CLFLUSH,
    K_LI,
    K_LOAD,
    K_PREFETCH,
    K_RDCYCLE,
    K_STORE,
)
from repro.isa.registers import WORD_MASK, ZERO_REGISTER

Decoded = tuple[tuple[Any, ...], ...]

#: The canonical scenario layout's secret cell
#: (``repro.attacks.layout.AttackLayout.secret_addr``).  Hard-coded rather
#: than imported so the analysis layer stays independent of the attacks
#: package; ``tests/test_taint.py`` pins it against the real layout.
KNOWN_SECRET_ADDRS: frozenset[int] = frozenset({0x0300_2100})

#: Classification labels (stable — CLI JSON output uses them).
SECRET_ADDRESSED = "secret-addressed"
SECRET_VALUED = "secret-valued"
CLEAN = "clean"

_SIGN_BIT = 1 << 63
_TWO_POW_64 = 1 << 64

_ACCESS_KIND_NAMES = {
    K_LOAD: "load",
    K_STORE: "store",
    K_PREFETCH: "prefetch",
    K_CLFLUSH: "clflush",
}


@dataclass(frozen=True)
class AccessTaint:
    """Taint verdict for one memory access.

    ``addressed`` — the effective address depends on a secret (the access
    *pattern* leaks; this is what a cache side channel observes).
    ``valued`` — the data moved is secret-derived (a load of the secret
    itself, or a store spilling a tainted register).
    """

    index: int
    kind: str
    addressed: bool
    valued: bool

    @property
    def classification(self) -> str:
        if self.addressed:
            return SECRET_ADDRESSED
        if self.valued:
            return SECRET_VALUED
        return CLEAN


@dataclass(frozen=True)
class TaintAnalysis:
    """Everything the taint pass knows about one decoded program."""

    #: Loads that read a declared secret cell (the taint seeds).
    sources: tuple[int, ...]
    #: Every reachable memory access, in program order.
    accesses: tuple[AccessTaint, ...]
    #: ``K_BRANCH`` instructions conditioned on a tainted register.
    branches: tuple[int, ...]
    #: Loads that read a well-known secret cell *without* a declaration.
    undeclared: tuple[int, ...]
    #: Memory cells holding secret-derived values via resolved stores.
    tainted_memory: tuple[int, ...]

    def secret_addressed(self) -> tuple[int, ...]:
        return tuple(a.index for a in self.accesses if a.addressed)

    def secret_valued(self) -> tuple[int, ...]:
        return tuple(
            a.index for a in self.accesses if a.valued and not a.addressed
        )

    def classification(self, index: int) -> str:
        for access in self.accesses:
            if access.index == index:
                return access.classification
        return CLEAN

    @property
    def leaks(self) -> bool:
        """Whether any access pattern or branch depends on a secret."""
        return bool(self.secret_addressed() or self.branches)


# -- taint propagation ----------------------------------------------------------


def _value_tainted(
    index: int,
    tup: tuple[Any, ...],
    tainted: set[int],
    resolved: Mapping[int, int],
    hot_cells: frozenset[int],
) -> bool:
    """Whether the value a load at ``index`` produces is secret-derived."""
    address = resolved.get(index)
    if address is not None and address in hot_cells:
        return True
    base = tup[2]
    return base != ZERO_REGISTER and base in tainted


def _taint_step(
    tainted: set[int],
    index: int,
    tup: tuple[Any, ...],
    resolved: Mapping[int, int],
    hot_cells: frozenset[int],
) -> None:
    """Apply one instruction to the tainted-register set, in place."""
    kind = tup[0]
    if kind == K_LOAD:
        written = tup[1]
        if written == ZERO_REGISTER:
            return
        if _value_tainted(index, tup, tainted, resolved, hot_cells):
            tainted.add(written)
        else:
            tainted.discard(written)
        return
    reads, written = uses_and_def(tup)
    if written is None or written == ZERO_REGISTER:
        return
    if kind in (K_LI, K_RDCYCLE):
        tainted.discard(written)
        return
    if any(r != ZERO_REGISTER and r in tainted for r in reads):
        tainted.add(written)
    else:
        tainted.discard(written)


def _taint_fixpoint(
    decoded: Decoded,
    cfg: ControlFlowGraph,
    resolved: Mapping[int, int],
    hot_cells: frozenset[int],
) -> dict[int, frozenset[int]]:
    """Per-block tainted-register in-sets (forward, union meet)."""
    reachable = set(cfg.reachable)
    in_taints: dict[int, frozenset[int] | None] = {
        block.index: None for block in cfg.blocks
    }
    in_taints[0] = frozenset()
    worklist = [0]
    while worklist:
        index = worklist.pop(0)
        tainted = set(in_taints[index] or frozenset())
        block = cfg.blocks[index]
        for i in block.instruction_indices():
            _taint_step(tainted, i, decoded[i], resolved, hot_cells)
        out = frozenset(tainted)
        for successor in block.successors:
            if successor == EXIT or successor not in reachable:
                continue
            existing = in_taints[successor]
            merged = out if existing is None else existing | out
            if merged != existing:
                in_taints[successor] = merged
                if successor not in worklist:
                    worklist.append(successor)
    return {
        index: taints
        for index, taints in in_taints.items()
        if taints is not None
    }


def taint_analysis(
    decoded: Decoded,
    cfg: ControlFlowGraph,
    taint_sources: frozenset[int],
) -> TaintAnalysis:
    """Classify every reachable access and branch of ``decoded``.

    ``taint_sources`` are the declared secret byte addresses; the pass
    also reports loads hitting :data:`KNOWN_SECRET_ADDRS` cells that were
    *not* declared (the ``AN-SECRET-UNDECLARED`` rule's substrate).
    """
    if not cfg.blocks:
        return TaintAnalysis(
            sources=(),
            accesses=(),
            branches=(),
            undeclared=(),
            tainted_memory=(),
        )
    resolved = constant_addresses(decoded, cfg)

    # Outer fixpoint: stores of tainted values to resolved addresses taint
    # those cells, which can seed further loads.  The cell set only grows,
    # so this terminates.
    tainted_memory: set[int] = set()
    while True:
        hot_cells = frozenset(taint_sources) | frozenset(tainted_memory)
        in_taints = _taint_fixpoint(decoded, cfg, resolved, hot_cells)
        new_cells: set[int] = set()
        for block_index in cfg.reachable:
            block = cfg.blocks[block_index]
            tainted = set(in_taints.get(block_index, frozenset()))
            for i in block.instruction_indices():
                tup = decoded[i]
                if tup[0] == K_STORE:
                    source = tup[1]
                    address = resolved.get(i)
                    if (
                        address is not None
                        and source != ZERO_REGISTER
                        and source in tainted
                    ):
                        new_cells.add(address)
                _taint_step(tainted, i, tup, resolved, hot_cells)
        if new_cells <= tainted_memory:
            break
        tainted_memory |= new_cells

    # Final walk: classify accesses and branches with the converged state.
    hot_cells = frozenset(taint_sources) | frozenset(tainted_memory)
    sources: list[int] = []
    accesses: list[AccessTaint] = []
    branches: list[int] = []
    undeclared: list[int] = []
    for block_index in cfg.reachable:
        block = cfg.blocks[block_index]
        tainted = set(in_taints.get(block_index, frozenset()))
        for i in block.instruction_indices():
            tup = decoded[i]
            kind = tup[0]
            if kind == K_LOAD:
                address = resolved.get(i)
                if address is not None and address in taint_sources:
                    sources.append(i)
                if (
                    address is not None
                    and address in KNOWN_SECRET_ADDRS
                    and address not in taint_sources
                ):
                    undeclared.append(i)
                base = tup[2]
                accesses.append(
                    AccessTaint(
                        index=i,
                        kind="load",
                        addressed=base != ZERO_REGISTER and base in tainted,
                        valued=_value_tainted(
                            i, tup, tainted, resolved, hot_cells
                        ),
                    )
                )
            elif kind == K_STORE:
                source, base = tup[1], tup[2]
                accesses.append(
                    AccessTaint(
                        index=i,
                        kind="store",
                        addressed=base != ZERO_REGISTER and base in tainted,
                        valued=source != ZERO_REGISTER and source in tainted,
                    )
                )
            elif kind in (K_PREFETCH, K_CLFLUSH):
                base = tup[1]
                accesses.append(
                    AccessTaint(
                        index=i,
                        kind=_ACCESS_KIND_NAMES[kind],
                        addressed=base != ZERO_REGISTER and base in tainted,
                        valued=False,
                    )
                )
            elif kind == K_BRANCH:
                if any(
                    r != ZERO_REGISTER and r in tainted
                    for r in (tup[2], tup[3])
                ):
                    branches.append(i)
            _taint_step(tainted, i, tup, resolved, hot_cells)
    accesses.sort(key=lambda a: a.index)
    return TaintAnalysis(
        sources=tuple(sorted(sources)),
        accesses=tuple(accesses),
        branches=tuple(sorted(branches)),
        undeclared=tuple(sorted(undeclared)),
        tainted_memory=tuple(sorted(tainted_memory)),
    )


def taint_of_program(program: Any) -> TaintAnalysis:
    """Convenience wrapper: taint analysis of a finalized Program."""
    decoded = tuple(program.decoded)
    return taint_analysis(
        decoded, build_cfg(decoded), frozenset(program.taint_sources)
    )


# -- leak map -------------------------------------------------------------------


def _branch_taken(cond: int, a: int, b: int) -> bool:
    """Evaluate a branch condition exactly as the core's handler does."""
    if cond == 0:
        return a == b
    if cond == 1:
        return a != b
    if a & _SIGN_BIT:
        a -= _TWO_POW_64
    if b & _SIGN_BIT:
        b -= _TWO_POW_64
    return a < b if cond == 2 else a >= b


def _transfer_bound(
    state: dict[int, int],
    index_tup: tuple[Any, ...],
    bindings: Mapping[int, int],
) -> None:
    """Constant-propagation transfer with loads of bound cells resolved."""
    if index_tup[0] == K_LOAD and index_tup[1] != ZERO_REGISTER:
        base = index_tup[2]
        base_value = 0 if base == ZERO_REGISTER else state.get(base)
        if base_value is not None:
            address = (base_value + index_tup[3]) & WORD_MASK
            if address in bindings:
                state[index_tup[1]] = bindings[address] & WORD_MASK
                return
    _transfer(state, index_tup)


def _feasible_successors(
    decoded: Decoded,
    cfg: ControlFlowGraph,
    block: BasicBlock,
    state: Mapping[int, int],
) -> tuple[int, ...]:
    """Block successors, pruned to one side when the branch is decidable."""
    last = decoded[block.end - 1]
    if last[0] != K_BRANCH:
        return block.successors
    rs0, rs1, target = last[2], last[3], last[4]
    a = 0 if rs0 == ZERO_REGISTER else state.get(rs0)
    b = 0 if rs1 == ZERO_REGISTER else state.get(rs1)
    if (
        a is None
        or b is None
        or not isinstance(target, int)
        or not 0 <= target < len(decoded)
    ):
        return block.successors
    if _branch_taken(last[1], a, b):
        chosen = cfg.block_of[target]
    elif block.end < len(decoded):
        chosen = cfg.block_of[block.end]
    else:
        chosen = EXIT
    return tuple(s for s in block.successors if s == chosen)


def _bound_constants(
    decoded: Decoded,
    cfg: ControlFlowGraph,
    bindings: Mapping[int, int],
) -> dict[int, dict[int, int]]:
    """Feasible-edge constant propagation under concrete secret bindings.

    Like :func:`~repro.analysis.dataflow.constant_addresses`'s fixpoint,
    but (a) loads from ``bindings`` cells produce their bound value and
    (b) a branch whose operands are known constants propagates down one
    side only — so a victim's secret-conditional lookup (RSA's multiply)
    is excluded exactly when the concrete secret skips it.
    """
    in_states: dict[int, dict[int, int] | None] = {
        block.index: None for block in cfg.blocks
    }
    in_states[0] = {ZERO_REGISTER: 0}
    worklist = [0]
    while worklist:
        index = worklist.pop(0)
        state = dict(in_states[index] or {})
        block = cfg.blocks[index]
        for i in block.instruction_indices():
            _transfer_bound(state, decoded[i], bindings)
        for successor in _feasible_successors(decoded, cfg, block, state):
            if successor == EXIT:
                continue
            existing = in_states[successor]
            merged = dict(state) if existing is None else _meet(existing, state)
            if merged != existing:
                in_states[successor] = merged
                if successor not in worklist:
                    worklist.append(successor)
    return {
        index: state
        for index, state in in_states.items()
        if state is not None
    }


def leak_map(
    program: Any,
    secret: int,
    *,
    probe_base: int,
    scale: int,
    num_indices: int,
) -> tuple[int, ...]:
    """Probe-array indices ``program`` touches when its secrets equal ``secret``.

    Every declared taint-source cell is bound to ``secret``, feasible-edge
    constant propagation runs to fixpoint, and each resolved reachable
    ``load``/``store``/``prefetch`` landing inside the probe array
    ``[probe_base, probe_base + num_indices*scale)`` contributes the index
    ``(address - probe_base) // scale``.  Attacker sweeps never resolve
    (their index is loop-carried), so the map is exactly the victim's
    secret-dependent footprint — compared against
    :meth:`~repro.workloads.crypto.CryptoVictim.expected_indices` by the
    differential oracle.
    """
    decoded = tuple(program.decoded)
    cfg = build_cfg(decoded)
    if not cfg.blocks:
        return ()
    bindings = {
        address: secret & WORD_MASK
        for address in sorted(program.taint_sources)
    }
    in_states = _bound_constants(decoded, cfg, bindings)
    span = num_indices * scale
    indices: set[int] = set()
    for block_index in cfg.reachable:
        if block_index not in in_states:
            continue  # statically infeasible under this secret
        block = cfg.blocks[block_index]
        state = dict(in_states[block_index])
        for i in block.instruction_indices():
            tup = decoded[i]
            kind = tup[0]
            base_imm: tuple[int, int] | None = None
            if kind in (K_LOAD, K_STORE):
                base_imm = (tup[2], tup[3])
            elif kind == K_PREFETCH:
                base_imm = (tup[1], tup[2])
            if base_imm is not None:
                base, imm = base_imm
                value = 0 if base == ZERO_REGISTER else state.get(base)
                if value is not None:
                    address = (value + imm) & WORD_MASK
                    if probe_base <= address < probe_base + span:
                        indices.add((address - probe_base) // scale)
            _transfer_bound(state, tup, bindings)
    return tuple(sorted(indices))


def secret_leak_union(
    program: Any,
    secret_space: int,
    *,
    probe_base: int,
    scale: int,
    num_indices: int,
) -> tuple[int, ...]:
    """Union of :func:`leak_map` over every secret in ``[0, secret_space)``.

    The set of probe-array indices *any* secret can reach — the substrate
    of the defense havoc domain (:mod:`repro.analysis.defense`): a guided
    prefetcher that covers a victim's secret-reachable lines must cover
    this union, because its decoy selection may depend on whichever secret
    the victim holds.
    """
    indices: set[int] = set()
    for secret in range(max(1, secret_space)):
        indices.update(
            leak_map(
                program,
                secret,
                probe_base=probe_base,
                scale=scale,
                num_indices=num_indices,
            )
        )
    return tuple(sorted(indices))
