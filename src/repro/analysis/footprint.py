"""Static memory-footprint summary: which data each block can touch.

For every memory access whose address constant propagation resolved
(:func:`repro.analysis.dataflow.constant_addresses`), the footprint maps
it onto the program's :class:`~repro.isa.program.DataSegment` ranges.
Accesses whose base register is loop-carried or loaded from memory stay
*unresolved* — they are counted per block, never guessed.

This is the substrate PhantomFetch-style load obfuscation and the
scheduling-aware defense reason over ("which loads can this program
emit"): a defense evaluation can read a victim's statically-known table
ranges straight from the analysis instead of tracing a run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.analysis.cfg import ControlFlowGraph
from repro.analysis.dataflow import constant_addresses
from repro.isa.decode import K_CLFLUSH, K_LOAD, K_PREFETCH, K_STORE
from repro.isa.program import DataSegment


@dataclass(frozen=True)
class SegmentRange:
    """Byte span of one data segment: ``[base, limit)``."""

    base: int
    limit: int
    stride: int

    @classmethod
    def of(cls, segment: DataSegment) -> "SegmentRange":
        return cls(
            base=segment.base,
            limit=segment.base + len(segment.values) * segment.stride,
            stride=segment.stride,
        )

    def contains(self, address: int) -> bool:
        return self.base <= address < self.limit


@dataclass(frozen=True)
class BlockFootprint:
    """Statically resolved memory behaviour of one basic block.

    Attributes:
        block: the block's index in the CFG.
        segments: indices into ``program.data_segments`` of every segment
            a resolved access lands in (sorted, deduplicated).
        addresses: the resolved ``(instruction index, address)`` pairs.
        outside: resolved addresses that hit no declared data segment.
        unresolved: count of memory accesses whose address could not be
            computed statically (loop-carried or memory-dependent base).
    """

    block: int
    segments: tuple[int, ...]
    addresses: tuple[tuple[int, int], ...]
    outside: tuple[int, ...]
    unresolved: int


def block_footprints(
    decoded: tuple[tuple[Any, ...], ...],
    cfg: ControlFlowGraph,
    segments: tuple[DataSegment, ...],
) -> tuple[BlockFootprint, ...]:
    """One :class:`BlockFootprint` per *reachable* block, in block order."""
    resolved = constant_addresses(decoded, cfg)
    ranges = [SegmentRange.of(segment) for segment in segments]
    footprints: list[BlockFootprint] = []
    for index in cfg.reachable:
        block = cfg.blocks[index]
        touched: set[int] = set()
        addresses: list[tuple[int, int]] = []
        outside: list[int] = []
        unresolved = 0
        for i in block.instruction_indices():
            kind = decoded[i][0]
            if kind not in (K_LOAD, K_STORE, K_CLFLUSH, K_PREFETCH):
                continue
            address = resolved.get(i)
            if address is None:
                unresolved += 1
                continue
            addresses.append((i, address))
            hit = False
            for seg_index, seg_range in enumerate(ranges):
                if seg_range.contains(address):
                    touched.add(seg_index)
                    hit = True
            if not hit:
                outside.append(address)
        footprints.append(
            BlockFootprint(
                block=index,
                segments=tuple(sorted(touched)),
                addresses=tuple(addresses),
                outside=tuple(outside),
                unresolved=unresolved,
            )
        )
    return tuple(footprints)
