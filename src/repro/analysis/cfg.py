"""Control-flow graph construction over decoded dispatch tuples.

The CFG is built from :attr:`repro.isa.program.Program.decoded` — the same
tuples the timing core executes — so the analysis sees exactly the control
flow the simulator will, including the ``sub``→``add`` rewrite and
pre-resolved branch targets.

Block boundaries follow the textbook leader rule: instruction 0, every
branch/jmp target, and every instruction after a branch, jmp or halt
starts a block.  Out-of-range targets do *not* contribute an edge (the
analyzer reports them separately); the virtual "exit" is reached by
``halt`` and by falling through the last instruction (the latter is a
finding — the core raises at run time when the PC leaves the program).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.isa.decode import K_BRANCH, K_HALT, K_JMP

#: Successor index meaning "execution leaves the program" (used for the
#: fall-off-the-end edge; ``halt`` blocks simply have no successors).
EXIT = -1


@dataclass(frozen=True)
class BasicBlock:
    """Half-open instruction range ``[start, end)`` with CFG edges.

    Attributes:
        index: position of the block in program order.
        start: index of the block's first instruction.
        end: one past the block's last instruction.
        successors: indices of successor *blocks* (``EXIT`` for the
            fall-off-the-end pseudo-edge).
    """

    index: int
    start: int
    end: int
    successors: tuple[int, ...]

    def instruction_indices(self) -> range:
        return range(self.start, self.end)


@dataclass(frozen=True)
class ControlFlowGraph:
    """Basic blocks plus derived reachability for one decoded program."""

    blocks: tuple[BasicBlock, ...]
    #: ``block_of[i]`` is the block index containing instruction ``i``.
    block_of: tuple[int, ...]
    #: Blocks reachable from the entry block (block 0), as a sorted tuple.
    reachable: tuple[int, ...]

    def predecessors(self) -> dict[int, tuple[int, ...]]:
        """Predecessor block indices for every block."""
        preds: dict[int, list[int]] = {block.index: [] for block in self.blocks}
        for block in self.blocks:
            for successor in block.successors:
                if successor != EXIT:
                    preds[successor].append(block.index)
        return {index: tuple(pred) for index, pred in preds.items()}


def _terminator_successors(
    decoded: tuple[tuple[Any, ...], ...], last: int
) -> tuple[int, ...]:
    """Instruction-index successors of the instruction at ``last``."""
    tup = decoded[last]
    kind = tup[0]
    n = len(decoded)
    if kind == K_HALT:
        return ()
    if kind == K_JMP:
        target = tup[1]
        return (target,) if isinstance(target, int) and 0 <= target < n else ()
    if kind == K_BRANCH:
        target = tup[4]
        successors: list[int] = []
        if isinstance(target, int) and 0 <= target < n:
            successors.append(target)
        successors.append(last + 1 if last + 1 < n else EXIT)
        return tuple(successors)
    return (last + 1 if last + 1 < n else EXIT,)


def build_cfg(decoded: tuple[tuple[Any, ...], ...]) -> ControlFlowGraph:
    """Partition ``decoded`` into basic blocks and wire the edges.

    An empty program yields an empty graph.  Invalid (out-of-range)
    branch targets contribute no edge; the analyzer's branch-target rule
    reports them.
    """
    n = len(decoded)
    if n == 0:
        return ControlFlowGraph(blocks=(), block_of=(), reachable=())

    leaders = {0}
    for index, tup in enumerate(decoded):
        kind = tup[0]
        if kind in (K_BRANCH, K_JMP, K_HALT):
            if index + 1 < n:
                leaders.add(index + 1)
            target = tup[4] if kind == K_BRANCH else (
                tup[1] if kind == K_JMP else None
            )
            if isinstance(target, int) and 0 <= target < n:
                leaders.add(target)

    starts = sorted(leaders)
    ends = starts[1:] + [n]
    block_of = [0] * n
    for block_index, (start, end) in enumerate(zip(starts, ends)):
        for i in range(start, end):
            block_of[i] = block_index

    blocks: list[BasicBlock] = []
    for block_index, (start, end) in enumerate(zip(starts, ends)):
        instr_successors = _terminator_successors(decoded, end - 1)
        successors = tuple(
            EXIT if s == EXIT else block_of[s] for s in instr_successors
        )
        blocks.append(
            BasicBlock(
                index=block_index, start=start, end=end, successors=successors
            )
        )

    seen = {0}
    frontier = [0]
    while frontier:
        block_index = frontier.pop()
        for successor in blocks[block_index].successors:
            if successor != EXIT and successor not in seen:
                seen.add(successor)
                frontier.append(successor)

    return ControlFlowGraph(
        blocks=tuple(blocks),
        block_of=tuple(block_of),
        reachable=tuple(sorted(seen)),
    )
