"""Static attack-feasibility certifier: the scenario grid without running it.

PR 8's leak maps and PR 9's timing walk certify one program in isolation;
this module composes them into PREFENDER's actual claim — an attacker and
a victim sharing a hierarchy, with the defense's guided prefetches
destroying the attacker's observation.  Three layers:

* **Product walk** — the attacker and victim CFGs execute as an
  interleaved product over one shared
  :class:`~repro.analysis.cachemodel.MultiCoreHierarchyState` and one
  shared memory image, mirroring :meth:`repro.cpu.system.System.run_steps`
  exactly: at every step the non-halted core with the smallest local time
  executes one instruction (strict ``<`` keeps the lower-index core on
  ties), with :func:`repro.analysis.timing._walk`'s per-instruction
  semantics (rdcycle, the serialising flag, countdown-loop fusion, the
  OoO hide window).  Under exact times the scheduler's schedule set is a
  *singleton*, so the sound interleaving join over producible schedule
  points degenerates to the one schedule the simulator runs; the moment
  any latency interval widens the walker gives up and the verdict is
  ``UNKNOWN`` — never a guess.  Single-program attacks reuse
  :func:`~repro.analysis.timing._walk` unchanged.
* **Observation** — the walk computes the attacker's *own measurements*:
  the rdcycle deltas its probe loop stores into the results array.  Those
  latencies classify into a candidate set with the attack's published
  ``hit_threshold`` / ``candidate_is_slow`` rule, byte-for-byte the logic
  of :class:`repro.attacks.base.AttackOutcome`.  Running the walk once per
  trial secret yields the attacker-observable vector per secret.
* **Verdict** — :func:`certify` compares observables across secrets and
  applies the defense's abstract transformer
  (:mod:`repro.analysis.defense`): ``LEAKS`` when some secret pair stays
  distinguishable at an index the defense provably leaves untouched,
  ``DEFENDED`` when no pair is distinguishable once every distinguishing
  index is havocked to top (or none existed to begin with), ``UNKNOWN``
  when precision runs out (an unresolved walk, or a defense whose firing
  is only *possible*).

``tests/test_certify_oracle.py`` locks the certificate against the
dynamic scenario suite in both directions: LEAKS cells measure attacker
success >= 0.9 undefended, DEFENDED cells measure 0.00, and the static
grid reproduces PR 5's ``1.00 -> 0.00`` PREFENDER result without running
a single simulation.

Scope notes.  Software prefetches are modelled as completing fills (see
:class:`~repro.analysis.cachemodel.MultiCoreHierarchyState`); speculative
victims and whole-run timing channels (Evict+Time) are out of scope and
certify as ``UNKNOWN``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from repro.analysis.cachemodel import MultiCoreHierarchyState
from repro.analysis.dataflow import _transfer
from repro.analysis.defense import (
    COVERAGE_CERTAIN,
    COVERAGE_NONE,
    COVERAGE_POSSIBLE,
    DefenseModel,
    defense_model,
    havoc_reach,
    scale_trigger_satisfiable,
)
from repro.analysis.taint import _branch_taken
from repro.analysis.timing import (
    DEFAULT_WALK_STEPS,
    _charged,
    _initial_memory,
    _walk,
)
from repro.cpu.core import CoreConfig
from repro.isa.decode import (
    K_ADD_RI,
    K_BRANCH,
    K_CLFLUSH,
    K_FENCE,
    K_HALT,
    K_JMP,
    K_LOAD,
    K_MUL_RI,
    K_MUL_RR,
    K_PREFETCH,
    K_RDCYCLE,
    K_STORE,
)
from repro.isa.registers import WORD_MASK, ZERO_REGISTER
from repro.mem.hierarchy import HierarchyConfig

#: Verdict labels (stable — CLI JSON output uses them).
LEAKS = "LEAKS"
DEFENDED = "DEFENDED"
UNKNOWN = "UNKNOWN"

#: Attacks whose probe/classification structure the walker models.  The
#: scenario runner also knows ``evict-time``, but a whole-run timing
#: channel has no per-index observable to certify — it stays UNKNOWN.
SUPPORTED_ATTACKS = frozenset(
    {
        "flush-reload",
        "evict-reload",
        "prime-probe",
        "adversarial-prefetch-a1",
        "adversarial-prefetch-a2",
    }
)

#: Default defense rows certified by ``analyze --certify`` (the dynamic
#: grid's own default pair).
DEFAULT_DEFENSE_ROWS = ("Base", "FULL")


class _Unresolved(Exception):
    """The walk (or its classification) lost precision; verdict UNKNOWN."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


@dataclass(frozen=True)
class CellCertificate:
    """Static verdict for one ``victim × attack × defense`` grid cell."""

    victim: str
    attack: str
    defense: str
    verdict: str
    #: Defense coverage grade actually applied (trigger-gated: a scale
    #: tracker whose trigger is unsatisfiable degrades to ``none``).
    coverage: str
    #: Undefended walk recovers the victim's expected footprint for every
    #: trial secret (``None`` when the walk did not resolve).
    feasible: bool | None
    #: Trial secrets whose walks were compared.
    secrets: tuple[int, ...]
    #: Probe indices whose candidate classification differs across secrets.
    distinguishing: tuple[int, ...]
    #: Probe indices the defense's havoc provably covers.
    havoc: tuple[int, ...]
    #: ``(secret_a, secret_b, index)`` distinguisher witness, or ``None``.
    witness: tuple[int, int, int] | None
    detail: str


@dataclass(frozen=True)
class CertificationReport:
    """Full verdict matrix, cells sorted by ``(victim, attack, defense)``."""

    cells: tuple[CellCertificate, ...]

    def count(self, verdict: str) -> int:
        return sum(1 for cell in self.cells if cell.verdict == verdict)

    @property
    def unknown_fraction(self) -> float:
        if not self.cells:
            return 0.0
        return self.count(UNKNOWN) / len(self.cells)


# -- product walk ----------------------------------------------------------------


class _CoreWalk:
    """Exact per-core walker state (registers, pc, local time)."""

    __slots__ = ("core_id", "decoded", "n", "regs", "pc", "time", "serialized")

    def __init__(self, core_id: int, decoded: tuple[tuple[Any, ...], ...]) -> None:
        self.core_id = core_id
        self.decoded = decoded
        self.n = len(decoded)
        self.regs: dict[int, int] = {ZERO_REGISTER: 0}
        self.pc = 0
        self.time = 0
        self.serialized = False

    def reg(self, index: int) -> int:
        if index == ZERO_REGISTER:
            return 0
        value = self.regs.get(index)
        if value is None:
            raise _Unresolved(
                f"core {self.core_id}: register r{index} unknown at pc {self.pc}"
            )
        return value

    def _exact(self, lo: int, hi: int) -> int:
        if lo != hi:
            raise _Unresolved(
                f"core {self.core_id}: access latency widened to "
                f"{lo}..{hi} at pc {self.pc}"
            )
        return lo

    def step(
        self,
        shared: MultiCoreHierarchyState,
        memory: dict[int, int],
        config: CoreConfig,
        fuse: bool,
    ) -> bool:
        """Execute one instruction; returns True when the core halts.

        Mirrors :func:`repro.analysis.timing._walk` instruction for
        instruction, with memory/cache effects routed through the shared
        multi-core state.  Any precision loss raises :class:`_Unresolved`.
        """
        if not 0 <= self.pc < self.n:
            raise _Unresolved(
                f"core {self.core_id}: pc {self.pc} escaped the program"
            )
        tup = self.decoded[self.pc]
        kind = tup[0]
        base = config.base_cost
        branch_cost = config.branch_cost
        if kind == K_LOAD:
            _, rd, rs0, imm, _pc = tup
            addr = (self.reg(rs0) + imm) & WORD_MASK
            interval = shared.load(self.core_id, addr)
            lo, hi = _charged(interval, config, self.serialized)
            self.serialized = False
            self.time += self._exact(lo, hi)
            if rd != ZERO_REGISTER:
                self.regs[rd] = memory.get(addr, 0) & WORD_MASK
            self.pc += 1
        elif kind == K_STORE:
            _, rs0, rs1, imm, _pc = tup
            addr = (self.reg(rs1) + imm) & WORD_MASK
            value = self.reg(rs0)
            interval = shared.store(self.core_id, addr)
            self.time += self._exact(interval.lo, interval.hi)
            memory[addr] = value & WORD_MASK
            self.pc += 1
        elif kind == K_CLFLUSH:
            _, rs0, imm = tup
            addr = (self.reg(rs0) + imm) & WORD_MASK
            interval = shared.flush(self.core_id, addr)
            self.time += self._exact(interval.lo, interval.hi)
            self.pc += 1
        elif kind == K_PREFETCH:
            _, rs0, imm, write = tup
            addr = (self.reg(rs0) + imm) & WORD_MASK
            interval = shared.prefetch(self.core_id, addr, bool(write))
            lo, hi = _charged(interval, config, self.serialized)
            self.serialized = False
            self.time += self._exact(lo, hi)
            self.pc += 1
        elif kind == K_BRANCH:
            _, cond, rs0, rs1, target = tup
            a = self.reg(rs0)
            b = self.reg(rs1)
            if not isinstance(target, int) or not 0 <= target < self.n:
                raise _Unresolved(
                    f"core {self.core_id}: branch target {target!r} invalid"
                )
            taken = _branch_taken(cond, a, b)
            self.time += branch_cost
            index = self.pc
            self.pc = target if taken else self.pc + 1
            if (
                fuse
                and taken
                and target == index - 1
                and cond == 1
                and rs1 == ZERO_REGISTER
                and rs0 != ZERO_REGISTER
            ):
                prev = self.decoded[index - 1]
                value = self.regs.get(rs0)
                if (
                    value is not None
                    and prev[0] == K_ADD_RI
                    and prev[1] == rs0
                    and prev[2] == rs0
                    and prev[3] == WORD_MASK
                ):
                    # Countdown fusion is schedule-safe: the fused window
                    # executes only register arithmetic (no memory or
                    # cache effects), so the other core's interleaved
                    # events observe identical shared state.
                    m = value - 1
                    if m > 0:
                        self.regs[rs0] = 1
                        self.time += m * (base + branch_cost)
        elif kind == K_JMP:
            target = tup[1]
            if not isinstance(target, int) or not 0 <= target < self.n:
                raise _Unresolved(
                    f"core {self.core_id}: jump target {target!r} invalid"
                )
            self.time += branch_cost
            self.pc = target
        elif kind == K_RDCYCLE:
            rd = tup[1]
            if rd != ZERO_REGISTER:
                self.regs[rd] = self.time & WORD_MASK
            self.serialized = True
            self.time += base
            self.pc += 1
        elif kind == K_FENCE:
            self.serialized = True
            self.time += base
            self.pc += 1
        elif kind == K_HALT:
            self.time += base
            return True
        else:
            _transfer(self.regs, tup)
            self.time += base if kind not in (K_MUL_RR, K_MUL_RI) else config.mul_cost
            self.pc += 1
        return False


def _merged_memory(programs: Sequence[Any]) -> dict[int, int]:
    """Shared word store at t=0: every program's data segments, in order.

    Mirrors :func:`repro.sim.simulator.build_system` loading each
    program's data into the one shared main memory.
    """
    memory: dict[int, int] = {}
    for program in programs:
        for address, value in _initial_memory(program, {}).items():
            if value is not None:
                memory[address] = value
    return memory


def _product_walk(
    programs: Sequence[Any],
    config: CoreConfig,
    hconfig: HierarchyConfig,
    max_steps: int,
) -> dict[int, int]:
    """Interleaved product walk; returns the final shared memory image.

    Scheduling is byte-identical to :meth:`repro.cpu.system.System.run_steps`:
    the non-halted core with the smallest local time steps next, strict
    ``<`` keeping the lower-index core on ties.  Raises :class:`_Unresolved`
    on any precision loss or step exhaustion.
    """
    shared = MultiCoreHierarchyState(hconfig, num_cores=len(programs))
    memory = _merged_memory(programs)
    fuse = config.fuse_countdown_loops and not config.speculative_execution
    cores = [
        _CoreWalk(core_id, tuple(program.decoded))
        for core_id, program in enumerate(programs)
    ]
    active = [core for core in cores if core.n > 0]
    budget = max_steps * len(cores)
    for _ in range(budget):
        if not active:
            return memory
        best = active[0]
        for core in active[1:]:
            if core.time < best.time:
                best = core
        if best.step(shared, memory, config, fuse):
            active.remove(best)
    if active:
        raise _Unresolved(
            f"product walk exhausted {budget} steps with "
            f"{len(active)} core(s) still running"
        )
    return memory


# -- observation -----------------------------------------------------------------


def _candidates(
    latencies: Sequence[int], threshold: int, candidate_is_slow: bool
) -> frozenset[int]:
    """Candidate indices from measured latencies — the AttackOutcome rule."""
    if candidate_is_slow:
        return frozenset(
            index
            for index, latency in enumerate(latencies)
            if latency >= threshold
        )
    return frozenset(
        index
        for index, latency in enumerate(latencies)
        if 0 < latency < threshold
    )


def _walk_attack(
    attack: Any,
    config: CoreConfig,
    hconfig: HierarchyConfig,
    max_steps: int,
) -> frozenset[int]:
    """Walk one built attack instance; returns its candidate index set."""
    programs = attack.build_programs()
    if len(programs) == 1:
        memory = _initial_memory(programs[0], {})
        outcome = _walk(
            tuple(programs[0].decoded),
            memory,
            config,
            hconfig,
            frozenset(),
            max_steps,
        )
        if outcome.final is None or outcome.hi is None:
            raise _Unresolved("single-core walk did not resolve")
        final_memory = memory
    else:
        final_memory = _product_walk(programs, config, hconfig, max_steps)
    layout, options = attack.layout, attack.options
    latencies: list[int] = []
    for index in range(options.num_indices):
        value = final_memory.get(layout.result_addr(index), 0)
        if value is None:
            raise _Unresolved(f"result slot {index} never resolved")
        latencies.append(value)
    return _candidates(
        latencies, attack.hit_threshold, attack.candidate_is_slow
    )


@dataclass(frozen=True)
class _Observations:
    """Per-(victim, attack) walk results, shared across defense rows."""

    secrets: tuple[int, ...]
    #: secret -> candidate index set (``None`` when any walk gave up).
    candidates: Mapping[int, frozenset[int]] | None
    #: Undefended attack recovers the expected footprint for every secret.
    feasible: bool | None
    #: Probe indices the ST-family havoc provably covers.
    havoc: tuple[int, ...]
    #: Scale Tracker trigger abstractly satisfiable on this scenario.
    scale_ok: bool
    failure: str | None


def _observe(
    attack_name: str,
    victim_name: str,
    secrets: Sequence[int] | None,
    config: CoreConfig,
    hconfig: HierarchyConfig,
    max_steps: int,
) -> _Observations:
    from repro.runner.job import ATTACK_KINDS
    from repro.workloads.crypto import get_victim

    descriptor = get_victim(victim_name)
    if secrets is None:
        from repro.attacks.scenarios import DEFAULT_SECRETS

        secrets = descriptor.trial_secrets(DEFAULT_SECRETS)
    secret_tuple = tuple(dict.fromkeys(secrets))

    def build(secret: int) -> Any:
        return ATTACK_KINDS[attack_name](
            victim=victim_name,
            secret=secret,
            num_indices=descriptor.num_indices,
        )

    probe = build(secret_tuple[0])
    carrier = next(
        (p for p in probe.build_programs() if p.taint_sources), None
    )
    options = probe.options
    if carrier is not None:
        havoc = havoc_reach(
            carrier,
            descriptor.secret_space,
            probe_base=probe.layout.probe_base,
            scale=options.scale,
            num_indices=options.num_indices,
        )
    else:
        havoc = ()
    scale_ok = bool(havoc) and scale_trigger_satisfiable(options.scale)

    failure: str | None = None
    if attack_name not in SUPPORTED_ATTACKS:
        failure = f"attack {attack_name!r} is outside the walker's scope"
    elif config.speculative_execution or options.victim_mode != "direct":
        failure = "speculative semantics are outside the walker's scope"
    if failure is not None:
        return _Observations(
            secrets=secret_tuple,
            candidates=None,
            feasible=None,
            havoc=havoc,
            scale_ok=scale_ok,
            failure=failure,
        )

    candidates: dict[int, frozenset[int]] = {}
    feasible = True
    try:
        for secret in secret_tuple:
            attack = build(secret)
            observed = _walk_attack(attack, config, hconfig, max_steps)
            candidates[secret] = observed
            expected = frozenset(
                descriptor.expected_indices(secret, attack.options)
            )
            feasible = feasible and observed == expected
    except _Unresolved as unresolved:
        return _Observations(
            secrets=secret_tuple,
            candidates=None,
            feasible=None,
            havoc=havoc,
            scale_ok=scale_ok,
            failure=unresolved.reason,
        )
    return _Observations(
        secrets=secret_tuple,
        candidates=candidates,
        feasible=feasible,
        havoc=havoc,
        scale_ok=scale_ok,
        failure=None,
    )


# -- verdict ---------------------------------------------------------------------


def _distinguishing(
    secrets: Sequence[int], candidates: Mapping[int, frozenset[int]]
) -> tuple[int, ...]:
    """Indices whose candidate classification differs across any pair."""
    first = candidates[secrets[0]]
    differing: set[int] = set()
    for secret in secrets[1:]:
        differing.update(first ^ candidates[secret])
    return tuple(sorted(differing))


def _witness_at(
    secrets: Sequence[int],
    candidates: Mapping[int, frozenset[int]],
    indices: Iterable[int],
) -> tuple[int, int, int] | None:
    """First ``(secret_a, secret_b, index)`` distinguishing at ``indices``."""
    for index in sorted(indices):
        for position, secret_a in enumerate(secrets):
            for secret_b in secrets[position + 1 :]:
                if (index in candidates[secret_a]) != (
                    index in candidates[secret_b]
                ):
                    return (secret_a, secret_b, index)
    return None


def _effective_coverage(model: DefenseModel, scale_ok: bool) -> str:
    """Trigger-gate the model: an idle Scale Tracker protects nothing."""
    if model.mechanism == "scale-tracker" and not scale_ok:
        return COVERAGE_NONE
    return model.coverage


def certify(
    attack: str,
    victim: str,
    defense: str,
    *,
    secrets: Sequence[int] | None = None,
    core: CoreConfig | None = None,
    hierarchy: HierarchyConfig | None = None,
    max_steps: int = DEFAULT_WALK_STEPS,
) -> CellCertificate:
    """Static verdict for one scenario cell: LEAKS / DEFENDED / UNKNOWN.

    ``LEAKS``: some secret pair stays distinguishable in the attacker's
    observable at an index the defense provably leaves untouched.
    ``DEFENDED``: no pair is distinguishable — either the undefended
    observables already coincide, or every distinguishing index is
    havocked to top by a certainly-firing defense.  ``UNKNOWN``: the walk
    lost precision, or the defense's firing is only possible.
    """
    model = defense_model(defense)
    observations = _observe(
        attack,
        victim,
        secrets,
        core or CoreConfig(),
        hierarchy or HierarchyConfig(),
        max_steps,
    )
    return _certify_cell(attack, victim, model, observations)


def _certify_cell(
    attack: str,
    victim: str,
    model: DefenseModel,
    observations: _Observations,
) -> CellCertificate:
    coverage = _effective_coverage(model, observations.scale_ok)
    if observations.candidates is None:
        return CellCertificate(
            victim=victim,
            attack=attack,
            defense=model.label,
            verdict=UNKNOWN,
            coverage=coverage,
            feasible=None,
            secrets=observations.secrets,
            distinguishing=(),
            havoc=observations.havoc,
            witness=None,
            detail=observations.failure or "walk did not resolve",
        )
    secrets = observations.secrets
    candidates = observations.candidates
    differing = _distinguishing(secrets, candidates)
    if not differing:
        return CellCertificate(
            victim=victim,
            attack=attack,
            defense=model.label,
            verdict=DEFENDED,
            coverage=coverage,
            feasible=observations.feasible,
            secrets=secrets,
            distinguishing=(),
            havoc=observations.havoc,
            witness=None,
            detail=(
                f"all {len(secrets)} trial secrets yield one attacker "
                "observable; nothing to distinguish"
            ),
        )
    if coverage == COVERAGE_NONE:
        witness = _witness_at(secrets, candidates, differing)
        return CellCertificate(
            victim=victim,
            attack=attack,
            defense=model.label,
            verdict=LEAKS,
            coverage=coverage,
            feasible=observations.feasible,
            secrets=secrets,
            distinguishing=differing,
            havoc=observations.havoc,
            witness=witness,
            detail=(
                f"{len(differing)} probe index(es) stay distinguishable; "
                f"defense provably idle ({model.description})"
            ),
        )
    if coverage == COVERAGE_CERTAIN:
        uncovered = tuple(
            index
            for index in differing
            if index not in set(observations.havoc)
        )
        if not uncovered:
            return CellCertificate(
                victim=victim,
                attack=attack,
                defense=model.label,
                verdict=DEFENDED,
                coverage=coverage,
                feasible=observations.feasible,
                secrets=secrets,
                distinguishing=differing,
                havoc=observations.havoc,
                witness=None,
                detail=(
                    f"every distinguishing index ({len(differing)}) is "
                    "havocked to top by the certainly-firing defense"
                ),
            )
        witness = _witness_at(secrets, candidates, uncovered)
        return CellCertificate(
            victim=victim,
            attack=attack,
            defense=model.label,
            verdict=LEAKS,
            coverage=coverage,
            feasible=observations.feasible,
            secrets=secrets,
            distinguishing=differing,
            havoc=observations.havoc,
            witness=witness,
            detail=(
                f"{len(uncovered)} distinguishing index(es) escape the "
                "defense's certain havoc reach"
            ),
        )
    return CellCertificate(
        victim=victim,
        attack=attack,
        defense=model.label,
        verdict=UNKNOWN,
        coverage=COVERAGE_POSSIBLE,
        feasible=observations.feasible,
        secrets=secrets,
        distinguishing=differing,
        havoc=observations.havoc,
        witness=None,
        detail=(
            "distinguishable undefended, but the defense's firing is only "
            f"possible ({model.description})"
        ),
    )


def certify_grid(
    victims: Sequence[str] | None = None,
    attacks: Sequence[str] | None = None,
    defenses: Sequence[str] | None = None,
    *,
    num_secrets: int | None = None,
    core: CoreConfig | None = None,
    hierarchy: HierarchyConfig | None = None,
    max_steps: int = DEFAULT_WALK_STEPS,
) -> CertificationReport:
    """Certify a full grid; walks are shared across defense rows.

    Defaults mirror the dynamic scenario suite's grid
    (:mod:`repro.attacks.scenarios`), with the matrix sorted on every key
    so the report — and the CLI JSON built from it — is byte-stable
    regardless of input ordering.
    """
    from repro.attacks.scenarios import (
        DEFAULT_ATTACKS,
        DEFAULT_SECRETS,
        DEFAULT_VICTIMS,
    )
    from repro.workloads.crypto import get_victim

    victim_names = tuple(sorted(set(victims or DEFAULT_VICTIMS)))
    attack_names = tuple(sorted(set(attacks or DEFAULT_ATTACKS)))
    defense_names = tuple(sorted(set(defenses or DEFAULT_DEFENSE_ROWS)))
    models = [defense_model(name) for name in defense_names]
    config = core or CoreConfig()
    hconfig = hierarchy or HierarchyConfig()
    count = num_secrets if num_secrets is not None else DEFAULT_SECRETS

    cells: list[CellCertificate] = []
    for victim in victim_names:
        descriptor = get_victim(victim)
        secrets = descriptor.trial_secrets(count)
        for attack in attack_names:
            observations = _observe(
                attack, victim, secrets, config, hconfig, max_steps
            )
            for model in models:
                cells.append(
                    _certify_cell(attack, victim, model, observations)
                )
    cells.sort(key=lambda cell: (cell.victim, cell.attack, cell.defense))
    return CertificationReport(cells=tuple(cells))
