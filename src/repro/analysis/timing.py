"""Cycle-bound interval analysis and the differential timing map.

Three layers on top of :mod:`repro.analysis.cachemodel`:

* :func:`analyze_timing` / :func:`cycle_bounds` — abstract interpretation
  of the cache hierarchy over the PR 6 CFG (join at merge points, one
  :class:`~repro.analysis.cachemodel.HierarchyState` per block), then a
  per-block cycle-cost interval combining the core's Table III calc-rule
  costs (``base``/``mul``/``branch`` from
  :class:`~repro.cpu.core.CoreConfig`) with the abstract hit/miss
  classification of every memory access.  Whole-program bounds come from
  shortest/longest path over the block costs: ``lo`` is the cheapest
  entry→halt path, ``hi`` is the dearest — or ``None`` when a reachable
  loop makes the worst case unbounded.
* :func:`timing_variations` — fuses the bounds with PR 8 taint into the
  ``AN-TIMING-VAR`` rule's substrate: a secret-conditioned branch whose
  successor paths differ in minimum remaining cost, or a secret-addressed
  access whose abstract latency interval is not a single point (its
  hit/miss state varies across secrets).
* :func:`timing_map` / :func:`cache_distinguishers` — the dynamic
  counterpart: bind the declared secret cells to one concrete secret and
  *walk* the program with exact register/memory/cache state (the analog
  of :func:`~repro.analysis.taint.leak_map`'s feasible-edges constant
  propagation, extended with the abstract hierarchy and the core's exact
  cost model, including ``rdcycle`` values and countdown-loop fusion).
  On a fully resolved walk the abstract cache degenerates to exact LRU
  and the returned interval is a single point — which
  ``tests/test_timing_oracle.py`` pins against the simulator's measured
  cycles for every victim × secret.  :func:`cache_distinguishers` runs
  the walk once per secret and compares the attacker-observable must/may
  block sets at the last secret-addressed access (``AN-CACHE-DISTINGUISH``).

Scope: the non-speculative single-core semantics the undefended ``Base``
configuration runs (no prefetcher, default :class:`~repro.cpu.core.CoreConfig`).
A speculative core's transient windows are invisible to the architectural
CFG, so :func:`analyze_timing` returns the trivial ``[0, None]`` bound for
one rather than pretend.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.analysis.cachemodel import HierarchyState, LatencyInterval
from repro.analysis.cfg import EXIT, ControlFlowGraph, build_cfg
from repro.analysis.dataflow import _transfer
from repro.analysis.taint import TaintAnalysis, _branch_taken, taint_of_program
from repro.cpu.core import CoreConfig
from repro.isa.decode import (
    K_ADD_RI,
    K_BRANCH,
    K_CLFLUSH,
    K_FENCE,
    K_HALT,
    K_JMP,
    K_LOAD,
    K_MUL_RI,
    K_MUL_RR,
    K_PREFETCH,
    K_RDCYCLE,
    K_STORE,
)
from repro.isa.registers import WORD_MASK, ZERO_REGISTER
from repro.mem.hierarchy import HierarchyConfig

Decoded = tuple[tuple[Any, ...], ...]

#: Walk step budget: generous for every bundled program (the largest,
#: spectre training, retires ~10k instructions) while bounding the
#: spin-wait loops of cross-core attackers, which can never exit under
#: single-core walk semantics.
DEFAULT_WALK_STEPS = 200_000


@dataclass(frozen=True)
class CycleInterval:
    """Closed cycle-count interval; ``hi is None`` means unbounded/unknown."""

    lo: int
    hi: int | None

    @property
    def exact(self) -> bool:
        return self.hi == self.lo


@dataclass(frozen=True)
class TimingAnalysis:
    """Converged cycle/cache interval analysis of one decoded program."""

    #: Whole-program entry→halt cycle bounds.
    bounds: CycleInterval
    #: Per-block ``(lo, hi)`` cycle cost, in block order.
    block_costs: tuple[tuple[int, int], ...]
    #: Abstract latency interval of every reachable memory access.
    access_latencies: Mapping[int, LatencyInterval]
    #: Minimum remaining cost from each block's start to program exit
    #: (blocks from which no exit is reachable are absent).
    min_to_exit: Mapping[int, int]


_EMPTY_TIMING = TimingAnalysis(
    bounds=CycleInterval(0, 0),
    block_costs=(),
    access_latencies={},
    min_to_exit={},
)

_TRIVIAL_TIMING = TimingAnalysis(
    bounds=CycleInterval(0, None),
    block_costs=(),
    access_latencies={},
    min_to_exit={},
)


def _charged(
    interval: LatencyInterval, config: CoreConfig, serialized: bool
) -> tuple[int, int]:
    """Load/prefetch stall interval under the OoO hide window."""
    hide = config.load_hide_cycles
    if serialized or hide <= 0:
        return interval.lo, interval.hi
    base = config.base_cost
    return (
        max(base, interval.lo - hide),
        max(base, interval.hi - hide),
    )


def _cache_effect(
    state: HierarchyState, kind: int, addr: int | None
) -> LatencyInterval | None:
    """Apply one access to the abstract hierarchy; ``None`` for non-accesses."""
    if kind == K_LOAD:
        return state.load(addr)
    if kind == K_STORE:
        return state.store(addr)
    if kind == K_PREFETCH:
        return state.prefetch(addr)
    if kind == K_CLFLUSH:
        return state.flush(addr)
    return None


def _instruction_cost(
    tup: tuple[Any, ...],
    state: HierarchyState,
    addr: int | None,
    config: CoreConfig,
) -> tuple[int, int, LatencyInterval | None]:
    """``(lo, hi, access interval)`` of one instruction; mutates ``state``."""
    kind = tup[0]
    interval = _cache_effect(state, kind, addr)
    if interval is not None:
        if kind in (K_LOAD, K_PREFETCH):
            # The hide window may not apply (a serialising rdcycle/fence can
            # precede any access on some path), so the upper bound stays raw.
            lo, _ = _charged(interval, config, serialized=False)
            return lo, interval.hi, interval
        return interval.lo, interval.hi, interval
    if kind in (K_MUL_RR, K_MUL_RI):
        return config.mul_cost, config.mul_cost, None
    if kind in (K_BRANCH, K_JMP):
        return config.branch_cost, config.branch_cost, None
    return config.base_cost, config.base_cost, None


def _timing_fixpoint(
    decoded: Decoded,
    cfg: ControlFlowGraph,
    resolved: Mapping[int, int],
    hierarchy: HierarchyConfig,
) -> dict[int, HierarchyState]:
    """Per-block abstract hierarchy in-states (forward, join meet).

    In-states only ascend (each update joins into the previous state), and
    the domain over the finite universe of resolved block addresses has
    finite height, so the worklist terminates without widening.
    """
    reachable = set(cfg.reachable)
    in_states: dict[int, HierarchyState] = {0: HierarchyState(hierarchy)}
    worklist = [0]
    while worklist:
        index = worklist.pop(0)
        state = in_states[index].copy()
        block = cfg.blocks[index]
        for i in block.instruction_indices():
            _cache_effect(state, decoded[i][0], resolved.get(i))
        for successor in block.successors:
            if successor == EXIT or successor not in reachable:
                continue
            existing = in_states.get(successor)
            if existing is None:
                in_states[successor] = state.copy()
            else:
                joined = existing.join(state)
                if joined == existing:
                    continue
                in_states[successor] = joined
            if successor not in worklist:
                worklist.append(successor)
    return in_states


def _exit_blocks(cfg: ControlFlowGraph) -> set[int]:
    """Blocks where execution leaves the program (halt or fall-off)."""
    return {
        block.index
        for block in cfg.blocks
        if not block.successors or EXIT in block.successors
    }


def _min_to_exit(
    cfg: ControlFlowGraph, cost_lo: Mapping[int, int]
) -> dict[int, int]:
    """Cheapest cost from each block's start through program exit."""
    preds = cfg.predecessors()
    dist: dict[int, int] = {}
    heap: list[tuple[int, int]] = []
    for index in _exit_blocks(cfg):
        if index in cost_lo:
            heapq.heappush(heap, (cost_lo[index], index))
    while heap:
        cost, index = heapq.heappop(heap)
        if index in dist:
            continue
        dist[index] = cost
        for pred in preds[index]:
            if pred in cost_lo and pred not in dist:
                heapq.heappush(heap, (cost + cost_lo[pred], pred))
    return dist


def _max_from_entry(
    cfg: ControlFlowGraph,
    cost_hi: Mapping[int, int],
    can_exit: Mapping[int, int],
) -> int | None:
    """Dearest entry→exit path cost, or ``None`` if a loop makes it unbounded.

    Only blocks that can still reach an exit count: a cycle among them
    means the worst case is unbounded; otherwise the subgraph is a DAG and
    the longest path is well-defined.
    """
    if 0 not in can_exit:
        return None
    alive = frozenset(can_exit) & frozenset(cost_hi)
    live = sorted(alive)
    succs = {
        index: tuple(
            s
            for s in cfg.blocks[index].successors
            if s != EXIT and s in alive
        )
        for index in live
    }
    indegree = {index: 0 for index in live}
    for targets in succs.values():
        for s in targets:
            indegree[s] += 1
    order: list[int] = [i for i, d in indegree.items() if d == 0]
    topo: list[int] = []
    while order:
        index = order.pop()
        topo.append(index)
        for s in succs[index]:
            indegree[s] -= 1
            if indegree[s] == 0:
                order.append(s)
    if len(topo) != len(live):
        return None  # a cycle survives among exit-reaching blocks
    longest: dict[int, int] = {}
    for index in reversed(topo):
        tail = max(
            (longest[s] for s in succs[index]), default=0
        )
        longest[index] = cost_hi[index] + tail
    return longest.get(0)


def analyze_timing(
    decoded: Decoded,
    cfg: ControlFlowGraph,
    core: CoreConfig | None = None,
    hierarchy: HierarchyConfig | None = None,
) -> TimingAnalysis:
    """Abstract cache + cycle-interval analysis over a built CFG."""
    from repro.analysis.dataflow import constant_addresses

    config = core or CoreConfig()
    if config.speculative_execution:
        # Transient windows re-order and replay work invisibly to the
        # architectural CFG; no non-trivial static bound is sound.
        return _TRIVIAL_TIMING
    if not cfg.blocks:
        return _EMPTY_TIMING
    hconfig = hierarchy or HierarchyConfig()
    resolved = constant_addresses(decoded, cfg)
    in_states = _timing_fixpoint(decoded, cfg, resolved, hconfig)

    cost_lo: dict[int, int] = {}
    cost_hi: dict[int, int] = {}
    access_latencies: dict[int, LatencyInterval] = {}
    for block in cfg.blocks:
        entry = in_states.get(block.index)
        if entry is None:
            continue  # unreachable
        state = entry.copy()
        lo = hi = 0
        for i in block.instruction_indices():
            ilo, ihi, interval = _instruction_cost(
                decoded[i], state, resolved.get(i), config
            )
            lo += ilo
            hi += ihi
            if interval is not None:
                access_latencies[i] = interval
        cost_lo[block.index] = lo
        cost_hi[block.index] = hi

    min_exit = _min_to_exit(cfg, cost_lo)
    bound_lo = min_exit.get(0, 0)
    bound_hi = _max_from_entry(cfg, cost_hi, min_exit)
    return TimingAnalysis(
        bounds=CycleInterval(bound_lo, bound_hi),
        block_costs=tuple(
            (cost_lo.get(b.index, 0), cost_hi.get(b.index, 0))
            for b in cfg.blocks
        ),
        access_latencies=access_latencies,
        min_to_exit=min_exit,
    )


def cycle_bounds(
    program: Any,
    core: CoreConfig | None = None,
    hierarchy: HierarchyConfig | None = None,
) -> TimingAnalysis:
    """Convenience wrapper: timing analysis of a finalized Program."""
    decoded = tuple(program.decoded)
    return analyze_timing(decoded, build_cfg(decoded), core, hierarchy)


# -- AN-TIMING-VAR substrate ----------------------------------------------------


def timing_variations(
    cfg: ControlFlowGraph,
    taint: TaintAnalysis,
    timing: TimingAnalysis,
) -> tuple[tuple[int, str], ...]:
    """``(instruction index, message)`` pairs for the AN-TIMING-VAR rule.

    Fires on every secret-conditioned branch (with the minimum remaining
    cycle-cost delta between its successor paths — the statically provable
    floor of the control-flow channel) and on every secret-addressed
    access whose abstract latency interval is not a single point (its
    hit/miss classification varies across secrets).
    """
    variations: list[tuple[int, str]] = []
    for index in taint.branches:
        block = cfg.blocks[cfg.block_of[index]]
        costs: list[int | None] = []
        if block.end - 1 == index:
            for successor in block.successors:
                if successor == EXIT:
                    costs.append(0)
                else:
                    costs.append(timing.min_to_exit.get(successor))
        if len(costs) >= 2 and all(c is not None for c in costs):
            known = [c for c in costs if c is not None]
            delta = max(known) - min(known)
            detail = f"successor paths differ by >= {delta} cycle(s)"
        else:
            detail = "a successor path has no bounded remaining cost"
        variations.append(
            (
                index,
                "branch on a secret steers timing-distinguishable paths "
                f"({detail})",
            )
        )
    for access in taint.accesses:
        if not access.addressed:
            continue
        interval = timing.access_latencies.get(access.index)
        if interval is not None and not interval.exact:
            variations.append(
                (
                    access.index,
                    f"secret-addressed {access.kind} may hit or miss: "
                    f"abstract latency {interval.lo}..{interval.hi} cycle(s)",
                )
            )
    variations.sort()
    return tuple(variations)


# -- exact walk (timing_map / cache distinguishers) -----------------------------


@dataclass
class _WalkOutcome:
    """Result of one concrete-secret program walk."""

    lo: int
    hi: int | None
    #: ``(instruction index, observable)`` at each watched access, in
    #: execution order.
    snapshots: list[tuple[int, tuple[Any, ...]]]
    #: Hierarchy state at halt (``None`` when the walk gave up).
    final: HierarchyState | None

    @property
    def interval(self) -> CycleInterval:
        return CycleInterval(self.lo, self.hi)


def _observable(state: HierarchyState) -> tuple[Any, ...]:
    """Attacker-observable residency: must/may block sets of both levels."""
    return (
        state.l1.must_blocks(),
        state.l1.may_blocks(),
        state.l2.must_blocks(),
        state.l2.may_blocks(),
    )


def _initial_memory(
    program: Any, bindings: Mapping[int, int]
) -> dict[int, int | None]:
    """Word store at t=0: data segments overlaid with the secret bindings.

    Mirrors :meth:`repro.mem.memory.MainMemory.load_program_data` plus the
    snapshot-replay path's per-trial secret poke.
    """
    memory: dict[int, int | None] = {}
    for segment in program.data_segments:
        for offset, value in enumerate(segment.values):
            memory[segment.base + offset * segment.stride] = value & WORD_MASK
    for address, value in bindings.items():
        memory[address] = value & WORD_MASK
    return memory


def _walk(
    decoded: Decoded,
    memory: dict[int, int | None],
    config: CoreConfig,
    hconfig: HierarchyConfig,
    watch: frozenset[int],
    max_steps: int,
) -> _WalkOutcome:
    """Execute ``decoded`` with exact register/memory/time state.

    Mirrors :class:`repro.cpu.core.Core`'s non-speculative semantics
    instruction for instruction — including ``rdcycle`` reading the
    current cycle, the serialising flag, and countdown-loop fusion — but
    carries the *abstract* hierarchy, so an access that cannot be resolved
    widens the time interval instead of crashing the walk.  Gives up
    (``hi=None``) on a branch over unknown values, a PC escape, or step
    exhaustion.
    """
    state: dict[int, int] = {ZERO_REGISTER: 0}
    hierarchy = HierarchyState(hconfig)
    snapshots: list[tuple[int, tuple[Any, ...]]] = []
    time_lo = 0
    time_hi = 0
    serialized = False
    memory_clobbered = False
    base = config.base_cost
    branch_cost = config.branch_cost
    mul_cost = config.mul_cost
    fuse = config.fuse_countdown_loops and not config.speculative_execution
    n = len(decoded)
    pc = 0

    def reg(index: int) -> int | None:
        return 0 if index == ZERO_REGISTER else state.get(index)

    for _ in range(max_steps):
        if not 0 <= pc < n:
            return _WalkOutcome(time_lo, None, snapshots, None)
        tup = decoded[pc]
        kind = tup[0]
        if kind == K_LOAD:
            _, rd, rs0, imm, _pc = tup
            bval = reg(rs0)
            addr = None if bval is None else (bval + imm) & WORD_MASK
            interval = hierarchy.load(addr)
            lo, hi = _charged(interval, config, serialized)
            serialized = False
            time_lo += lo
            time_hi += hi
            if rd != ZERO_REGISTER:
                value = (
                    None
                    if addr is None or memory_clobbered
                    else memory.get(addr, 0)
                )
                if value is None:
                    state.pop(rd, None)
                else:
                    state[rd] = value & WORD_MASK
            if pc in watch:
                snapshots.append((pc, _observable(hierarchy)))
            pc += 1
        elif kind == K_STORE:
            _, rs0, rs1, imm, _pc = tup
            bval = reg(rs1)
            addr = None if bval is None else (bval + imm) & WORD_MASK
            interval = hierarchy.store(addr)
            time_lo += interval.lo
            time_hi += interval.hi
            if addr is None:
                memory_clobbered = True
            else:
                memory[addr] = reg(rs0)
            if pc in watch:
                snapshots.append((pc, _observable(hierarchy)))
            pc += 1
        elif kind == K_CLFLUSH:
            _, rs0, imm = tup
            bval = reg(rs0)
            addr = None if bval is None else (bval + imm) & WORD_MASK
            interval = hierarchy.flush(addr)
            time_lo += interval.lo
            time_hi += interval.hi
            if pc in watch:
                snapshots.append((pc, _observable(hierarchy)))
            pc += 1
        elif kind == K_PREFETCH:
            _, rs0, imm, _write = tup
            bval = reg(rs0)
            addr = None if bval is None else (bval + imm) & WORD_MASK
            interval = hierarchy.prefetch(addr)
            lo, hi = _charged(interval, config, serialized)
            serialized = False
            time_lo += lo
            time_hi += hi
            if pc in watch:
                snapshots.append((pc, _observable(hierarchy)))
            pc += 1
        elif kind == K_BRANCH:
            _, cond, rs0, rs1, target = tup
            a = reg(rs0)
            b = reg(rs1)
            if (
                a is None
                or b is None
                or not isinstance(target, int)
                or not 0 <= target < n
            ):
                return _WalkOutcome(time_lo, None, snapshots, None)
            taken = _branch_taken(cond, a, b)
            time_lo += branch_cost
            time_hi += branch_cost
            index = pc
            pc = target if taken else pc + 1
            if fuse and taken and target == index - 1 and cond == 1 and rs1 == ZERO_REGISTER and rs0 != ZERO_REGISTER:
                prev = decoded[index - 1]
                value = state.get(rs0)
                if (
                    value is not None
                    and prev[0] == K_ADD_RI
                    and prev[1] == rs0
                    and prev[2] == rs0
                    and prev[3] == WORD_MASK
                ):
                    m = value - 1
                    if m > 0:
                        state[rs0] = 1
                        jump = m * (base + branch_cost)
                        time_lo += jump
                        time_hi += jump
        elif kind == K_JMP:
            target = tup[1]
            if not isinstance(target, int) or not 0 <= target < n:
                return _WalkOutcome(time_lo, None, snapshots, None)
            time_lo += branch_cost
            time_hi += branch_cost
            pc = target
        elif kind == K_RDCYCLE:
            rd = tup[1]
            if rd != ZERO_REGISTER:
                if time_lo == time_hi:
                    state[rd] = time_lo & WORD_MASK
                else:
                    state.pop(rd, None)
            serialized = True
            time_lo += base
            time_hi += base
            pc += 1
        elif kind == K_FENCE:
            serialized = True
            time_lo += base
            time_hi += base
            pc += 1
        elif kind == K_HALT:
            time_lo += base
            time_hi += base
            return _WalkOutcome(time_lo, time_hi, snapshots, hierarchy)
        else:
            _transfer(state, tup)
            cost = mul_cost if kind in (K_MUL_RR, K_MUL_RI) else base
            time_lo += cost
            time_hi += cost
            pc += 1
    return _WalkOutcome(time_lo, None, snapshots, None)


def _secret_bindings(program: Any, secret: int) -> dict[int, int]:
    return {
        address: secret & WORD_MASK
        for address in sorted(program.taint_sources)
    }


def timing_map(
    program: Any,
    secret: int,
    hierarchy: HierarchyConfig | None = None,
    core: CoreConfig | None = None,
    *,
    max_steps: int = DEFAULT_WALK_STEPS,
) -> CycleInterval:
    """Cycle interval of ``program`` when its declared secrets equal ``secret``.

    The analog of :func:`~repro.analysis.taint.leak_map`: every declared
    taint-source cell is bound to ``secret`` (overriding the data-segment
    value, exactly as snapshot replay pokes trial secrets into a warm
    image) and the program is walked concretely.  When every branch and
    address resolves, the abstract hierarchy tracks the simulator's LRU
    exactly and the result is a point interval equal to the undefended
    run's ``RunResult.cycles``; an unresolved step returns ``hi=None``
    with a sound lower bound instead.
    """
    config = core or CoreConfig()
    if config.speculative_execution:
        return CycleInterval(0, None)
    decoded = tuple(program.decoded)
    if not decoded:
        return CycleInterval(0, 0)
    memory = _initial_memory(program, _secret_bindings(program, secret))
    outcome = _walk(
        decoded,
        memory,
        config,
        hierarchy or HierarchyConfig(),
        frozenset(),
        max_steps,
    )
    return outcome.interval


@dataclass(frozen=True)
class DistinguisherReport:
    """AN-CACHE-DISTINGUISH verdict over one program's secret space."""

    #: Secrets whose walks were compared.
    secrets: tuple[int, ...]
    #: Two secrets yield different attacker-observable residency sets.
    distinguishable: bool
    #: A distinguishing secret pair (first found), or ``None``.
    witness: tuple[int, int] | None
    #: Instruction anchor: the last secret-addressed access executed for
    #: the witness pair's first secret (``None`` for a halt-state verdict).
    index: int | None
    #: One-line human-readable explanation.
    detail: str


def _walk_observable(
    program: Any,
    secret: int,
    watch: frozenset[int],
    config: CoreConfig,
    hconfig: HierarchyConfig,
    max_steps: int,
) -> tuple[int | None, tuple[Any, ...]] | None:
    decoded = tuple(program.decoded)
    memory = _initial_memory(program, _secret_bindings(program, secret))
    outcome = _walk(decoded, memory, config, hconfig, watch, max_steps)
    if outcome.snapshots:
        return outcome.snapshots[-1]
    if outcome.final is not None:
        return (None, _observable(outcome.final))
    return None


def cache_distinguishers(
    program: Any,
    secrets: Sequence[int] = (0, 1, 2, 3),
    hierarchy: HierarchyConfig | None = None,
    core: CoreConfig | None = None,
    *,
    max_steps: int = DEFAULT_WALK_STEPS,
) -> DistinguisherReport:
    """Compare attacker-observable cache residency across concrete secrets.

    The observable is the attacker's side of the channel: the must/may
    block sets of both levels, sampled right after the victim's last
    secret-addressed access executes (a taint-clean program falls back to
    the halt state, where a genuinely constant-time program converges for
    every secret).  Two secrets with different observables mean a shared
    cache level distinguishes them — the AN-CACHE-DISTINGUISH verdict.
    """
    secret_tuple = tuple(dict.fromkeys(secrets))
    config = core or CoreConfig()
    if config.speculative_execution or len(secret_tuple) < 2:
        return DistinguisherReport(
            secrets=secret_tuple,
            distinguishable=False,
            witness=None,
            index=None,
            detail="not evaluated (needs >= 2 secrets, non-speculative core)",
        )
    taint = taint_of_program(program)
    watch = frozenset(taint.secret_addressed())
    hconfig = hierarchy or HierarchyConfig()
    observed: list[tuple[int, tuple[int | None, tuple[Any, ...]]]] = []
    for secret in secret_tuple:
        observable = _walk_observable(
            program, secret, watch, config, hconfig, max_steps
        )
        if observable is None:
            return DistinguisherReport(
                secrets=secret_tuple,
                distinguishable=False,
                witness=None,
                index=None,
                detail=f"walk for secret {secret} did not resolve",
            )
        observed.append((secret, observable))
    first_secret, (first_index, first_state) = observed[0]
    for secret, (index, observable) in observed[1:]:
        if observable != first_state or index != first_index:
            return DistinguisherReport(
                secrets=secret_tuple,
                distinguishable=True,
                witness=(first_secret, secret),
                index=first_index if first_index is not None else index,
                detail=(
                    f"secrets {first_secret} and {secret} leave different "
                    "must/may residency in a shared cache level"
                ),
            )
    return DistinguisherReport(
        secrets=secret_tuple,
        distinguishable=False,
        witness=None,
        index=None,
        detail=(
            f"all {len(secret_tuple)} secrets converge to one "
            "attacker-observable residency state"
        ),
    )


def trial_intervals(
    program: Any,
    secrets: Sequence[int],
    hierarchy: HierarchyConfig | None = None,
    core: CoreConfig | None = None,
    *,
    max_steps: int = DEFAULT_WALK_STEPS,
) -> dict[int, CycleInterval]:
    """:func:`timing_map` over a secret set (the CLI's per-secret table)."""
    return {
        secret: timing_map(
            program, secret, hierarchy, core, max_steps=max_steps
        )
        for secret in dict.fromkeys(secrets)
    }
