"""Abstract cache-state domain: per-set must/may residency with LRU ages.

CacheAudit-style abstract interpretation of the simulator's set-associative
LRU caches (:mod:`repro.mem.cache`), parameterised by the *real*
:class:`~repro.mem.hierarchy.HierarchyConfig` geometry so the static
verdicts are about the machine the scenarios actually run.

One :class:`CacheState` abstracts one cache level as, per set:

* **must** — ``block -> upper bound on its LRU age``.  A block present in
  ``must`` is *definitely cached* (its age bound is ``< assoc``, so it
  cannot have been evicted on any path): a demand access is a certain hit.
* **may** — ``block -> lower bound on its LRU age``.  A block absent from
  ``may`` (with :attr:`CacheState.may_universal` off) is *definitely not
  cached* on any path: a certain miss.  ``may_universal`` is the havoc
  top element — after an access whose address the analysis cannot
  resolve, any block may be resident.

The aging rules are the classic LRU must/may updates (Ferdinand-style),
with one refinement: the may analysis uses the must component's upper
bounds to decide when another block's lower bound *provably* increments
(``upper(c) < lower(b)`` means ``c`` is strictly more recent than the
accessed block ``b`` on every path).  On a fully concrete access sequence
from a cold cache the two components stay in lockstep (``lower == upper``
for every block) and the domain degenerates to an exact LRU simulation —
which is what lets :func:`repro.analysis.timing.timing_map` predict a
*point* cycle interval and the differential oracle compare it against the
simulator, cycle for cycle.

Two invariants hold for every reachable state and are preserved by every
transfer and by ``join`` (``tests/test_cachemodel.py`` exercises them):

* ``must ⊆ may`` (a certainly-present block is possibly present), and
* ``may[b] <= must[b]`` for shared blocks (bounds bracket the true age).

:class:`HierarchyState` stacks two levels as the simulator does — per-core
L1D over a shared inclusive L2 — composes hit/miss classifications into
the three latency classes of :mod:`repro.mem.cache` (L1 hit, L2 hit,
memory), and enforces inclusion: a block can only stay in L1-must while it
is in L2-must, because an L2 eviction back-invalidates L1 copies.

:class:`HierarchyState` covers single-core demand traffic (loads,
write-allocating stores, software prefetches, clflush).
:class:`MultiCoreHierarchyState` extends the same domain to the
multi-core machine the attack scenarios run: one private L1D
:class:`CacheState` per core over the shared inclusive L2, with the
write-invalidate and prefetchw-exclusivity coherence steps of
:class:`repro.mem.hierarchy.MemoryHierarchy` mirrored as abstract
transfers.  Hardware prefetcher fills are still not modelled concretely —
the scenario certifier (:mod:`repro.analysis.scenario`) walks the
undefended machine and applies each defense as an abstract havoc
transformer (:mod:`repro.analysis.defense`) instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mem.hierarchy import HierarchyConfig

#: Classification labels (stable — CLI JSON output uses them).
HIT = "hit"
MISS = "miss"
UNKNOWN = "unknown"

#: Default cacheline geometry (``repro.utils.addr.AddressMap.block_size``).
DEFAULT_BLOCK_SIZE = 64


@dataclass(frozen=True)
class CacheGeometry:
    """Sets/ways/block-bits of one cache level (all powers of two)."""

    num_sets: int
    assoc: int
    block_bits: int

    def __post_init__(self) -> None:
        if self.num_sets <= 0 or self.num_sets & (self.num_sets - 1):
            raise ValueError(f"num_sets must be a power of two: {self.num_sets}")
        if self.assoc < 1:
            raise ValueError(f"assoc must be >= 1: {self.assoc}")
        if self.block_bits < 0:
            raise ValueError(f"block_bits must be >= 0: {self.block_bits}")

    def block_of(self, addr: int) -> int:
        """Block number (block address shifted right) of a byte address."""
        return addr >> self.block_bits

    def set_of(self, block: int) -> int:
        """Set index of a block number."""
        return block & (self.num_sets - 1)


def _level_geometry(size: int, assoc: int, block_size: int) -> CacheGeometry:
    return CacheGeometry(
        num_sets=size // (assoc * block_size),
        assoc=assoc,
        block_bits=block_size.bit_length() - 1,
    )


class CacheState:
    """Abstract residency state of one cache level (mutable, copyable)."""

    __slots__ = ("geometry", "_must", "_may", "may_universal")

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        # set index -> {block -> upper age bound}; entries always < assoc.
        self._must: dict[int, dict[int, int]] = {}
        # set index -> {block -> lower age bound}; entries always < assoc.
        self._may: dict[int, dict[int, int]] = {}
        # Top element of the may component: any block may be resident.
        self.may_universal = False

    # -- queries -------------------------------------------------------------

    def classify(self, block: int) -> str:
        """``HIT`` / ``MISS`` / ``UNKNOWN`` for a demand access to ``block``."""
        s = self.geometry.set_of(block)
        must = self._must.get(s)
        if must is not None and block in must:
            return HIT
        if self.may_universal:
            return UNKNOWN
        may = self._may.get(s)
        if may is None or block not in may:
            return MISS
        return UNKNOWN

    def any_hit_possible(self) -> bool:
        """Whether *some* address could hit (an unresolved access's best case)."""
        return self.may_universal or any(self._may.values())

    def must_blocks(self) -> frozenset[int]:
        """Blocks certainly resident (attacker-observable lower bound)."""
        return frozenset(
            block for per_set in self._must.values() for block in per_set
        )

    def may_blocks(self) -> frozenset[int] | None:
        """Blocks possibly resident, or ``None`` for the universal top."""
        if self.may_universal:
            return None
        return frozenset(
            block for per_set in self._may.values() for block in per_set
        )

    # -- transfer functions ----------------------------------------------------

    def access(self, block: int) -> None:
        """Demand access (load or write-allocating store) to ``block``.

        Must aging: blocks provably more recent than ``b`` (upper bound
        below ``b``'s upper bound) may fall behind ``b``, so their upper
        bounds increment; an entry reaching ``assoc`` is no longer provably
        resident and is dropped.  May aging: a block's lower bound
        increments only when the increment is *guaranteed* — when ``b`` is
        a certain miss (a fresh insertion ages every resident line) or when
        the block is provably more recent than ``b``.
        """
        geometry = self.geometry
        assoc = geometry.assoc
        s = geometry.set_of(block)
        must = self._must.get(s)
        if must is None:
            must = self._must[s] = {}
        upper_b = must.get(block, assoc)
        pre_upper = dict(must)  # pre-access bounds: the aging test needs them
        for c, age in list(must.items()):
            if c != block and age < upper_b:
                if age + 1 >= assoc:
                    del must[c]
                else:
                    must[c] = age + 1
        must[block] = 0
        if self.may_universal:
            return
        may = self._may.get(s)
        if may is None:
            may = self._may[s] = {}
        lower_b = may.get(block)
        for c, age in list(may.items()):
            if c == block:
                continue
            upper_c = pre_upper.get(c)
            certainly_ahead = lower_b is not None and (
                upper_c is not None and upper_c < lower_b
            )
            if lower_b is None or certainly_ahead:
                if age + 1 >= assoc:
                    del may[c]
                    must.pop(c, None)  # lower > upper is vacuous: gone
                else:
                    may[c] = age + 1
        may[block] = 0

    def flush(self, block: int) -> None:
        """Invalidate ``block`` (clflush / back-invalidation): certain miss.

        Remaining lines keep their upper bounds: removing a line never
        makes another line *older*.  Lower bounds, however, must retreat
        by one when the flushed line was possibly resident: its freed way
        absorbs one future insertion without evicting anyone, so every
        surviving line may effectively be one insertion *younger* than
        its bound claimed (``tests/test_defense_domain.py`` pins this
        against a reference LRU that fills invalid ways first).
        """
        s = self.geometry.set_of(block)
        must = self._must.get(s)
        if must is not None:
            must.pop(block, None)
            if not must:
                del self._must[s]
        may = self._may.get(s)
        if may is not None:
            freed_way = self.may_universal or block in may
            may.pop(block, None)
            if freed_way:
                for c in may:
                    if may[c] > 0:
                        may[c] -= 1
            if not may:
                del self._may[s]

    def havoc_access(self) -> None:
        """An access whose address is unknown: it may touch any set.

        Every must bound ages by one (the access could land in front of any
        line) and the may component goes universal (the touched block —
        whichever it is — becomes resident).
        """
        assoc = self.geometry.assoc
        for s, must in list(self._must.items()):
            for c, age in list(must.items()):
                if age + 1 >= assoc:
                    del must[c]
                else:
                    must[c] = age + 1
            if not must:
                del self._must[s]
        self._may = {}
        self.may_universal = True

    def havoc_flush(self) -> None:
        """A clflush whose address is unknown: any one line may vanish.

        No line is provably resident afterwards (must empties); the may
        component keeps its entries — a flush never *adds* residency —
        but every lower bound retreats by one, since the flush may have
        removed a more-recent line in that entry's set (see
        :meth:`flush`).
        """
        self._must = {}
        for may in self._may.values():
            for c in may:
                if may[c] > 0:
                    may[c] -= 1

    # -- lattice operations ----------------------------------------------------

    def copy(self) -> "CacheState":
        dup = CacheState(self.geometry)
        dup._must = {s: dict(d) for s, d in self._must.items()}
        dup._may = {s: dict(d) for s, d in self._may.items()}
        dup.may_universal = self.may_universal
        return dup

    def join(self, other: "CacheState") -> "CacheState":
        """Least upper bound: control-flow merge of two predecessor states."""
        if self.geometry != other.geometry:
            raise ValueError("cannot join states of different geometries")
        joined = CacheState(self.geometry)
        for s, must in self._must.items():
            other_must = other._must.get(s)
            if other_must is None:
                continue
            merged = {
                block: max(age, other_must[block])
                for block, age in must.items()
                if block in other_must
            }
            if merged:
                joined._must[s] = merged
        if self.may_universal or other.may_universal:
            joined.may_universal = True
            return joined
        for s in self._may.keys() | other._may.keys():
            a = self._may.get(s, {})
            b = other._may.get(s, {})
            merged = dict(b)
            for block, age in a.items():
                existing = merged.get(block)
                merged[block] = age if existing is None else min(age, existing)
            if merged:
                joined._may[s] = merged
        return joined

    def leq(self, other: "CacheState") -> bool:
        """Partial order: ``self`` is at least as precise as ``other``."""
        if self.geometry != other.geometry:
            return False
        for s, other_must in other._must.items():
            must = self._must.get(s, {})
            for block, age in other_must.items():
                mine = must.get(block)
                if mine is None or mine > age:
                    return False
        if other.may_universal:
            return True
        if self.may_universal:
            return False
        for s, may in self._may.items():
            other_may = other._may.get(s, {})
            for block, age in may.items():
                theirs = other_may.get(block)
                if theirs is None or theirs > age:
                    return False
        return True

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CacheState):
            return NotImplemented
        return (
            self.geometry == other.geometry
            and self.may_universal == other.may_universal
            and self._must == other._must
            and (self.may_universal or self._may == other._may)
        )

    def __hash__(self) -> int:  # pragma: no cover - mutable, not hashed
        raise TypeError("CacheState is mutable and unhashable")

    def __repr__(self) -> str:
        may = "universal" if self.may_universal else dict(self._may)
        return f"CacheState(must={self._must!r}, may={may!r})"


@dataclass(frozen=True)
class LatencyInterval:
    """Closed interval of cycles an access may cost."""

    lo: int
    hi: int

    @property
    def exact(self) -> bool:
        return self.lo == self.hi


class HierarchyState:
    """Two-level abstract hierarchy: private L1D over shared inclusive L2.

    Mirrors :class:`repro.mem.hierarchy.MemoryHierarchy`'s demand timing
    for a single core: L1 hit pays ``l1_hit_latency``; an L1 miss adds the
    L2 outcome (``l2_hit_latency`` or ``memory_latency``); stores are
    write-allocating and (with ``nonblocking_stores``) cost one cycle;
    ``clflush`` always costs ``flush_latency``; a software prefetch costs
    like a load but may be dropped at L1-miss time (MSHR pressure), which
    only widens its interval.
    """

    __slots__ = ("config", "l1", "l2", "block_bits")

    def __init__(
        self,
        config: HierarchyConfig | None = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> None:
        self.config = config or HierarchyConfig()
        self.l1 = CacheState(
            _level_geometry(
                self.config.l1d_size, self.config.l1d_assoc, block_size
            )
        )
        self.l2 = CacheState(
            _level_geometry(
                self.config.l2_size, self.config.l2_assoc, block_size
            )
        )
        self.block_bits = block_size.bit_length() - 1

    # -- latency classes -------------------------------------------------------

    @property
    def l1_latency(self) -> int:
        return self.config.l1_hit_latency

    @property
    def l2_latency(self) -> int:
        return self.config.l1_hit_latency + self.config.l2_hit_latency

    @property
    def memory_latency(self) -> int:
        return (
            self.config.l1_hit_latency
            + self.config.l2_hit_latency
            + self.config.memory_latency
        )

    def block_of(self, addr: int) -> int:
        return addr >> self.block_bits

    # -- internal helpers ------------------------------------------------------

    def _enforce_inclusion(self) -> None:
        """L2 evictions back-invalidate L1: keep the abstraction inclusive.

        A block stays certainly-in-L1 only while certainly-in-L2 (otherwise
        a possible L2 eviction may have knocked it out); a block certainly
        evicted from L2 is certainly gone from L1 too.
        """
        for block in sorted(self.l1.must_blocks()):
            if self.l2.classify(block) != HIT:
                s = self.l1.geometry.set_of(block)
                must = self.l1._must.get(s)
                if must is not None:
                    must.pop(block, None)
                    if not must:
                        del self.l1._must[s]
        if not self.l1.may_universal:
            for block in sorted(self.l1.may_blocks() or frozenset()):
                if self.l2.classify(block) == MISS:
                    self.l1.flush(block)

    def _fill_interval(self, block: int) -> LatencyInterval:
        """Latency of a demand access classified against both levels.

        Mutates both levels exactly as the simulator's demand path does:
        the L1 is always accessed; the L2 is accessed only when the L1
        misses (joined when the L1 outcome is unknown).
        """
        l1_class = self.l1.classify(block)
        if l1_class == HIT:
            self.l1.access(block)
            return LatencyInterval(self.l1_latency, self.l1_latency)
        l2_class = self.l2.classify(block)
        if l1_class == MISS:
            self.l2.access(block)
            self.l1.access(block)
            self._enforce_inclusion()
            if l2_class == HIT:
                return LatencyInterval(self.l2_latency, self.l2_latency)
            if l2_class == MISS:
                return LatencyInterval(self.memory_latency, self.memory_latency)
            return LatencyInterval(self.l2_latency, self.memory_latency)
        # Unknown at L1: the L2 may or may not see the access.
        touched = self.l2.copy()
        touched.access(block)
        self.l2 = self.l2.join(touched)
        self.l1.access(block)
        self._enforce_inclusion()
        hi = self.l2_latency if l2_class == HIT else self.memory_latency
        return LatencyInterval(self.l1_latency, hi)

    def _havoc_interval(self) -> LatencyInterval:
        """Latency bounds for an access whose address never resolved."""
        if self.l1.any_hit_possible():
            lo = self.l1_latency
        elif self.l2.any_hit_possible():
            lo = self.l2_latency
        else:
            lo = self.memory_latency
        self.l1.havoc_access()
        self.l2.havoc_access()
        self._enforce_inclusion()
        return LatencyInterval(lo, self.memory_latency)

    # -- demand interface ------------------------------------------------------

    def load(self, addr: int | None) -> LatencyInterval:
        """Demand load of ``addr`` (``None`` = statically unresolved)."""
        if addr is None:
            return self._havoc_interval()
        return self._fill_interval(self.block_of(addr))

    def store(self, addr: int | None) -> LatencyInterval:
        """Demand store: write-allocates like a load; cheap when nonblocking."""
        if addr is None:
            fill = self._havoc_interval()
        else:
            fill = self._fill_interval(self.block_of(addr))
        if self.config.nonblocking_stores:
            return LatencyInterval(1, 1)
        return fill

    def prefetch(self, addr: int | None) -> LatencyInterval:
        """Software prefetch: load-shaped latency, droppable on an L1 miss."""
        if addr is None:
            interval = self._havoc_interval()
            return LatencyInterval(self.l1_latency, interval.hi)
        block = self.block_of(addr)
        if self.l1.classify(block) == HIT:
            self.l1.access(block)
            return LatencyInterval(self.l1_latency, self.l1_latency)
        untouched_l1 = self.l1.copy()
        untouched_l2 = self.l2.copy()
        filled = self._fill_interval(block)
        self.l1 = self.l1.join(untouched_l1)
        self.l2 = self.l2.join(untouched_l2)
        return LatencyInterval(self.l1_latency, filled.hi)

    def flush(self, addr: int | None) -> LatencyInterval:
        """clflush: evict the line everywhere; constant latency."""
        if addr is None:
            self.l1.havoc_flush()
            self.l2.havoc_flush()
        else:
            block = self.block_of(addr)
            self.l1.flush(block)
            self.l2.flush(block)
        latency = self.config.flush_latency
        return LatencyInterval(latency, latency)

    # -- lattice operations ----------------------------------------------------

    def copy(self) -> "HierarchyState":
        dup = HierarchyState.__new__(HierarchyState)
        dup.config = self.config
        dup.l1 = self.l1.copy()
        dup.l2 = self.l2.copy()
        dup.block_bits = self.block_bits
        return dup

    def join(self, other: "HierarchyState") -> "HierarchyState":
        joined = HierarchyState.__new__(HierarchyState)
        joined.config = self.config
        joined.l1 = self.l1.join(other.l1)
        joined.l2 = self.l2.join(other.l2)
        joined.block_bits = self.block_bits
        return joined

    def leq(self, other: "HierarchyState") -> bool:
        return self.l1.leq(other.l1) and self.l2.leq(other.l2)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HierarchyState):
            return NotImplemented
        return (
            self.config == other.config
            and self.l1 == other.l1
            and self.l2 == other.l2
        )

    def __hash__(self) -> int:  # pragma: no cover - mutable, not hashed
        raise TypeError("HierarchyState is mutable and unhashable")


class MultiCoreHierarchyState:
    """N private L1D states over one shared inclusive L2, with coherence.

    The abstract counterpart of :class:`repro.mem.hierarchy.MemoryHierarchy`
    for ``num_cores`` cores, mirroring its coherence steps as transfers on
    the must/may domain:

    * a demand access by one core to a line another core holds
      *exclusively* (after ``prefetchw``) steals it: the owner's L1 copy
      is invalidated and the exclusivity record dropped;
    * a store invalidates the line in every other core's L1
      (write-invalidate) and costs one cycle under ``nonblocking_stores``;
    * ``prefetchw`` invalidates other copies (paying
      ``prefetchw_snoop_latency`` when one existed) and records the
      issuing core as exclusive owner;
    * ``clflush`` evicts the line from every cache, everywhere.

    Software prefetches are modelled as *completing* fills: the concrete
    hierarchy drops a prefetch only when the line is absent from L1 *and*
    no prefetch MSHR is free, and a blocking core pays the full fill
    latency before issuing its next access, so the MSHR is always free
    again by then.  The scenario walker's differential oracle
    (``tests/test_certify_oracle.py``) pins this assumption against the
    simulator.

    Unlike :class:`HierarchyState`, all addresses must be resolved: the
    product walker gives up (verdict ``UNKNOWN``) before ever issuing an
    unresolved access, so no havoc-on-unknown-address path exists here.
    """

    __slots__ = ("config", "num_cores", "l1s", "l2", "exclusive", "block_bits")

    def __init__(
        self,
        config: HierarchyConfig | None = None,
        num_cores: int = 2,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> None:
        if num_cores < 1:
            raise ValueError(f"num_cores must be >= 1: {num_cores}")
        self.config = config or HierarchyConfig()
        self.num_cores = num_cores
        l1_geometry = _level_geometry(
            self.config.l1d_size, self.config.l1d_assoc, block_size
        )
        self.l1s = tuple(CacheState(l1_geometry) for _ in range(num_cores))
        self.l2 = CacheState(
            _level_geometry(
                self.config.l2_size, self.config.l2_assoc, block_size
            )
        )
        #: block -> owning core; records are *certain* (the deterministic
        #: product walk never merges states with differing ownership, and
        #: ``join`` pre-resolves uncertain records conservatively).
        self.exclusive: dict[int, int] = {}
        self.block_bits = block_size.bit_length() - 1

    # -- latency classes -------------------------------------------------------

    @property
    def l1_latency(self) -> int:
        return self.config.l1_hit_latency

    @property
    def l2_latency(self) -> int:
        return self.config.l1_hit_latency + self.config.l2_hit_latency

    @property
    def memory_latency(self) -> int:
        return (
            self.config.l1_hit_latency
            + self.config.l2_hit_latency
            + self.config.memory_latency
        )

    def block_of(self, addr: int) -> int:
        return addr >> self.block_bits

    # -- internal helpers ------------------------------------------------------

    def _enforce_inclusion(self, core: int) -> None:
        """Per-core inclusion against the shared L2 (see HierarchyState)."""
        l1 = self.l1s[core]
        for block in sorted(l1.must_blocks()):
            if self.l2.classify(block) != HIT:
                s = l1.geometry.set_of(block)
                must = l1._must.get(s)
                if must is not None:
                    must.pop(block, None)
                    if not must:
                        del l1._must[s]
        if not l1.may_universal:
            for block in sorted(l1.may_blocks() or frozenset()):
                if self.l2.classify(block) == MISS:
                    l1.flush(block)

    def _yield_exclusivity(self, core: int, block: int) -> None:
        """Steal an exclusively held line when another core touches it."""
        owner = self.exclusive.get(block)
        if owner is None or owner == core:
            return
        self.l1s[owner].flush(block)
        del self.exclusive[block]

    def _fill_interval(self, core: int, block: int) -> LatencyInterval:
        """Demand-fill latency for ``core``; mirrors HierarchyState's."""
        l1 = self.l1s[core]
        l1_class = l1.classify(block)
        if l1_class == HIT:
            l1.access(block)
            return LatencyInterval(self.l1_latency, self.l1_latency)
        l2_class = self.l2.classify(block)
        if l1_class == MISS:
            self.l2.access(block)
            l1.access(block)
            self._enforce_inclusion(core)
            if l2_class == HIT:
                return LatencyInterval(self.l2_latency, self.l2_latency)
            if l2_class == MISS:
                return LatencyInterval(self.memory_latency, self.memory_latency)
            return LatencyInterval(self.l2_latency, self.memory_latency)
        touched = self.l2.copy()
        touched.access(block)
        self.l2 = self.l2.join(touched)
        l1.access(block)
        self._enforce_inclusion(core)
        hi = self.l2_latency if l2_class == HIT else self.memory_latency
        return LatencyInterval(self.l1_latency, hi)

    # -- demand interface ------------------------------------------------------

    def load(self, core: int, addr: int) -> LatencyInterval:
        """Demand load by ``core``: steal exclusivity, then fill."""
        block = self.block_of(addr)
        self._yield_exclusivity(core, block)
        return self._fill_interval(core, block)

    def store(self, core: int, addr: int) -> LatencyInterval:
        """Demand store: write-allocate + write-invalidate other L1 copies."""
        block = self.block_of(addr)
        self._yield_exclusivity(core, block)
        fill = self._fill_interval(core, block)
        for other, l1 in enumerate(self.l1s):
            if other != core:
                l1.flush(block)
        if self.config.nonblocking_stores:
            return LatencyInterval(1, 1)
        return fill

    def prefetch(
        self, core: int, addr: int, write: bool = False
    ) -> LatencyInterval:
        """Software prefetch / prefetchw, modelled as a completing fill.

        ``prefetchw`` pays the snoop penalty when another core's copy was
        invalidated; when a copy's residency is only *possible* the
        penalty widens the upper bound instead (the walker then gives up,
        keeping the verdict sound).
        """
        block = self.block_of(addr)
        snoop_lo = snoop_hi = 0
        if write:
            penalty = self.config.prefetchw_snoop_latency
            for other, l1 in enumerate(self.l1s):
                if other == core:
                    continue
                residency = l1.classify(block)
                if residency != MISS:
                    l1.flush(block)
                    if residency == HIT:
                        snoop_lo = snoop_hi = penalty
                    else:
                        snoop_hi = penalty
            self.exclusive[block] = core
        else:
            self._yield_exclusivity(core, block)
        fill = self._fill_interval(core, block)
        return LatencyInterval(fill.lo + snoop_lo, fill.hi + snoop_hi)

    def flush(self, core: int, addr: int) -> LatencyInterval:
        """clflush: evict the line from every cache level, everywhere."""
        block = self.block_of(addr)
        self.exclusive.pop(block, None)
        for l1 in self.l1s:
            l1.flush(block)
        self.l2.flush(block)
        latency = self.config.flush_latency
        return LatencyInterval(latency, latency)

    # -- queries ---------------------------------------------------------------

    def observable(self, core: int) -> tuple[object, ...]:
        """``core``'s attacker-observable residency (its L1 + shared L2)."""
        return (
            self.l1s[core].must_blocks(),
            self.l1s[core].may_blocks(),
            self.l2.must_blocks(),
            self.l2.may_blocks(),
        )

    # -- lattice operations ----------------------------------------------------

    def copy(self) -> "MultiCoreHierarchyState":
        dup = MultiCoreHierarchyState.__new__(MultiCoreHierarchyState)
        dup.config = self.config
        dup.num_cores = self.num_cores
        dup.l1s = tuple(l1.copy() for l1 in self.l1s)
        dup.l2 = self.l2.copy()
        dup.exclusive = dict(self.exclusive)
        dup.block_bits = self.block_bits
        return dup

    def join(self, other: "MultiCoreHierarchyState") -> "MultiCoreHierarchyState":
        """Least upper bound over both cache states and ownership records.

        Ownership kept only where both sides agree; a record present on
        one side only (or with differing owners) means a later steal is
        merely *possible*, so the join pre-resolves it conservatively: the
        record is dropped and the recorded owner's line demoted out of
        must (its may entry survives — the steal may never happen).
        """
        if self.num_cores != other.num_cores:
            raise ValueError("cannot join states with different core counts")
        joined = MultiCoreHierarchyState.__new__(MultiCoreHierarchyState)
        joined.config = self.config
        joined.num_cores = self.num_cores
        joined.l1s = tuple(
            a.join(b) for a, b in zip(self.l1s, other.l1s)
        )
        joined.l2 = self.l2.join(other.l2)
        joined.block_bits = self.block_bits
        joined.exclusive = {}
        for block, owner in self.exclusive.items():
            if other.exclusive.get(block) == owner:
                joined.exclusive[block] = owner
        uncertain = (
            set(self.exclusive.items()) | set(other.exclusive.items())
        ) - set(joined.exclusive.items())
        for block, owner in sorted(uncertain):
            l1 = joined.l1s[owner]
            s = l1.geometry.set_of(block)
            must = l1._must.get(s)
            if must is not None:
                must.pop(block, None)
                if not must:
                    del l1._must[s]
        return joined

    def leq(self, other: "MultiCoreHierarchyState") -> bool:
        return (
            self.num_cores == other.num_cores
            and self.exclusive == other.exclusive
            and all(a.leq(b) for a, b in zip(self.l1s, other.l1s))
            and self.l2.leq(other.l2)
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MultiCoreHierarchyState):
            return NotImplemented
        return (
            self.config == other.config
            and self.num_cores == other.num_cores
            and self.l1s == other.l1s
            and self.l2 == other.l2
            and self.exclusive == other.exclusive
        )

    def __hash__(self) -> int:  # pragma: no cover - mutable, not hashed
        raise TypeError("MultiCoreHierarchyState is mutable and unhashable")
