"""Rule orchestration: run every CFG/dataflow rule, collect findings.

Rule catalog (IDs are stable — suppressions and docs reference them):

===================  =====================================================
AN-BRANCH            branch/jmp target outside the program (or never
                     resolved)
AN-FALLOFF           control can run past the last instruction (the core
                     raises ``ExecutionError`` when the PC leaves the
                     program)
AN-HALT              a reachable block from which no ``halt`` is
                     reachable — guaranteed non-termination once control
                     enters it
AN-DEAD              unreachable basic block (dead code)
AN-UBD               register read before any write on some path from
                     entry
AN-SECRET-ADDR       [info] memory access whose address depends on a
                     declared secret — the leak surface the defense must
                     cover
AN-SECRET-BRANCH     branch conditioned on a declared secret (a
                     control-flow side channel)
AN-SECRET-UNDECLARED load from the scenario secret cell without a
                     ``.secret`` declaration
AN-TIMING-VAR        [info] secret-conditioned branch or secret-addressed
                     access whose abstract hit/miss state (and so its
                     cycle cost) varies across secrets
AN-CACHE-DISTINGUISH [info] two secrets yield different attacker-observable
                     must/may residency in a shared cache level (computed
                     by :func:`repro.analysis.timing.cache_distinguishers`,
                     not by :func:`analyze_program` — it needs one concrete
                     walk per secret)
AN-ATTACK-FEASIBLE   [info] the scenario certifier proves the attacker's
                     candidate set distinguishes secrets on an undefended
                     (or provably idle) defense row, anchored to a
                     distinguisher witness (computed by
                     :func:`repro.analysis.scenario.certify`, not by
                     :func:`analyze_program` — it walks the attacker ×
                     victim product)
AN-DEFENSE-CERTIFIED [info] the scenario certifier proves no secret pair
                     stays distinguishable in the attacker's observable
                     under the defense row (same certifier, DEFENDED
                     verdict)
===================  =====================================================

Severities: ``error`` and ``warning`` findings block a strict build
(``Program.finalize(strict=True)``); ``info`` findings never do — they
annotate the program (the cached analysis and the CLI report them).

Suppression: ``program.allow("AN-DEAD")`` (program-wide) or
``program.allow("AN-UBD", index=7)`` (one instruction).  Assembly sources
use ``; analysis: allow AN-UBD`` — on an instruction line it pins that
instruction, on its own line it is program-wide.  ``.to_text()`` emits
both forms, so suppressions survive a disassemble/assemble round trip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.analysis.cfg import EXIT, ControlFlowGraph, build_cfg
from repro.analysis.dataflow import liveness, use_before_def
from repro.analysis.footprint import BlockFootprint, block_footprints
from repro.analysis.taint import TaintAnalysis, taint_analysis
from repro.analysis.timing import (
    TimingAnalysis,
    analyze_timing,
    timing_variations,
)
from repro.isa.decode import K_BRANCH, K_HALT, K_JMP
from repro.isa.program import Program
from repro.isa.registers import register_name

#: rule id -> (severity, one-line description, fix-it hint)
ANALYSIS_RULES: dict[str, tuple[str, str, str]] = {
    "AN-BRANCH": (
        "error",
        "branch or jmp target outside the program",
        "point the branch at a label inside the program",
    ),
    "AN-FALLOFF": (
        "error",
        "control can run past the last instruction",
        "end every path with `halt` (the core raises when the PC leaves "
        "the program)",
    ),
    "AN-HALT": (
        "error",
        "no `halt` reachable from here: guaranteed non-termination",
        "add a `halt`-reaching exit edge (or a loop-exit branch)",
    ),
    "AN-DEAD": (
        "warning",
        "unreachable basic block (dead code)",
        "delete the block or add a branch that reaches it",
    ),
    "AN-UBD": (
        "warning",
        "register read before any write on some path",
        "initialise the register (`li`) before the first read",
    ),
    "AN-SECRET-ADDR": (
        "info",
        "memory access whose address depends on a declared secret",
        "this is the leak surface: the defense must cover this access "
        "(or restructure the lookup to be constant-time)",
    ),
    "AN-SECRET-BRANCH": (
        "warning",
        "branch conditioned on a declared secret (control-flow channel)",
        "replace the branch with arithmetic selection, or `.allow` it as "
        "a known channel (square-and-multiply does)",
    ),
    "AN-SECRET-UNDECLARED": (
        "error",
        "load from the scenario secret cell without a `.secret` declaration",
        "declare the cell with `.secret ADDR` (builder: `taint_source()`) "
        "so taint tracking covers the access",
    ),
    "AN-TIMING-VAR": (
        "info",
        "secret-dependent timing: branch or access cost varies with a secret",
        "balance the branch paths / pin the access to one cacheline, or "
        "rely on the defense to mask the latency difference",
    ),
    "AN-CACHE-DISTINGUISH": (
        "info",
        "two secrets leave different attacker-observable cache residency",
        "make the lookup footprint secret-independent (preload the whole "
        "table, or use a constant-time selection network)",
    ),
    "AN-ATTACK-FEASIBLE": (
        "info",
        "attacker's candidate set provably distinguishes secrets (LEAKS)",
        "deploy a defense row whose havoc certainly covers the "
        "distinguishing probe indices (a Scale-Tracker-bearing PREFENDER)",
    ),
    "AN-DEFENSE-CERTIFIED": (
        "info",
        "no secret pair stays distinguishable under the defense (DEFENDED)",
        "nothing to fix: the certificate is the machine-checked witness "
        "that this defense row covers this attack",
    ),
}


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to an instruction index.

    ``index`` is ``None`` for program-level findings (e.g. an empty
    program).  Source line numbers are resolved at render time from
    ``program.source_lines``, so a finding compares equal across a
    ``to_text()``/``assemble()`` round trip.
    """

    index: int | None
    rule: str
    message: str

    @property
    def severity(self) -> str:
        return ANALYSIS_RULES[self.rule][0]


@dataclass(frozen=True)
class ProgramAnalysis:
    """Everything the analyzer knows about one finalized program."""

    cfg: ControlFlowGraph
    #: Findings that survived suppression, sorted by (index, rule).
    findings: tuple[Finding, ...]
    #: Findings silenced by ``program.allow`` / ``; analysis: allow``.
    suppressed: tuple[Finding, ...]
    #: Per-block ``(live_in, live_out)`` register sets, in block order.
    liveness: tuple[tuple[frozenset[int], frozenset[int]], ...]
    #: Static memory footprint of every reachable block.
    footprints: tuple[BlockFootprint, ...]
    #: Secret-taint classification of every access and branch.
    taint: TaintAnalysis
    #: Abstract cache/cycle interval analysis (default system geometry).
    timing: TimingAnalysis

    @property
    def ok(self) -> bool:
        return not self.findings

    def errors(self) -> tuple[Finding, ...]:
        return tuple(f for f in self.findings if f.severity == "error")

    def blocking(self) -> tuple[Finding, ...]:
        """Findings that fail a strict build (everything but ``info``)."""
        return tuple(f for f in self.findings if f.severity != "info")


def _branch_findings(decoded: tuple[tuple[Any, ...], ...]) -> list[Finding]:
    """AN-BRANCH: every control transfer must land inside the program."""
    n = len(decoded)
    findings: list[Finding] = []
    for index, tup in enumerate(decoded):
        kind = tup[0]
        if kind == K_JMP:
            target = tup[1]
        elif kind == K_BRANCH:
            target = tup[4]
        else:
            continue
        if not isinstance(target, int) or not 0 <= target < n:
            findings.append(
                Finding(
                    index=index,
                    rule="AN-BRANCH",
                    message=f"target {target!r} outside program of {n} "
                    "instruction(s)",
                )
            )
    return findings


def _falloff_findings(
    decoded: tuple[tuple[Any, ...], ...], cfg: ControlFlowGraph
) -> list[Finding]:
    """AN-FALLOFF: a reachable block whose fall-through leaves the program."""
    findings: list[Finding] = []
    for index in cfg.reachable:
        block = cfg.blocks[index]
        if EXIT in block.successors:
            findings.append(
                Finding(
                    index=block.end - 1,
                    rule="AN-FALLOFF",
                    message="execution falls off the end of the program here",
                )
            )
    return findings


def _halt_findings(
    decoded: tuple[tuple[Any, ...], ...], cfg: ControlFlowGraph
) -> list[Finding]:
    """AN-HALT: reachable blocks from which no ``halt`` can be reached.

    Backward reachability from every halt-containing block; any reachable
    block outside that set is a point of no return.  Only the first such
    block (in program order) is reported — every block of the same trap
    region would otherwise repeat the finding.
    """
    halting = {
        cfg.block_of[i]
        for i, tup in enumerate(decoded)
        if tup[0] == K_HALT
    }
    preds = cfg.predecessors()
    can_halt = set(halting)
    frontier = list(halting)
    while frontier:
        block_index = frontier.pop()
        for pred in preds[block_index]:
            if pred not in can_halt:
                can_halt.add(pred)
                frontier.append(pred)
    for index in cfg.reachable:
        if index not in can_halt:
            block = cfg.blocks[index]
            return [
                Finding(
                    index=block.start,
                    rule="AN-HALT",
                    message="no `halt` is reachable from this block",
                )
            ]
    return []


def _dead_findings(cfg: ControlFlowGraph) -> list[Finding]:
    reachable = set(cfg.reachable)
    return [
        Finding(
            index=block.start,
            rule="AN-DEAD",
            message=f"block of {block.end - block.start} instruction(s) is "
            "unreachable",
        )
        for block in cfg.blocks
        if block.index not in reachable
    ]


def _ubd_findings(
    decoded: tuple[tuple[Any, ...], ...], cfg: ControlFlowGraph
) -> list[Finding]:
    return [
        Finding(
            index=index,
            rule="AN-UBD",
            message=f"{register_name(register)} may be read before it is "
            "written",
        )
        for index, register in use_before_def(decoded, cfg)
    ]


def _secret_findings(taint: TaintAnalysis) -> list[Finding]:
    """AN-SECRET-ADDR / AN-SECRET-BRANCH / AN-SECRET-UNDECLARED."""
    findings = [
        Finding(
            index=access.index,
            rule="AN-SECRET-ADDR",
            message=f"{access.kind} address derives from a declared secret",
        )
        for access in taint.accesses
        if access.addressed
    ]
    findings.extend(
        Finding(
            index=index,
            rule="AN-SECRET-BRANCH",
            message="branch outcome depends on a declared secret",
        )
        for index in taint.branches
    )
    findings.extend(
        Finding(
            index=index,
            rule="AN-SECRET-UNDECLARED",
            message="reads the scenario secret cell but the program "
            "declares no `.secret` source there",
        )
        for index in taint.undeclared
    )
    return findings


def analyze_program(program: Program) -> ProgramAnalysis:
    """Run every rule over ``program`` (which must be decoded).

    Pure: reads ``program.decoded``, ``program.data_segments`` and
    ``program.suppressions``; mutates nothing.
    """
    decoded = tuple(program.decoded)
    cfg = build_cfg(decoded)
    taint = taint_analysis(decoded, cfg, frozenset(program.taint_sources))
    timing = analyze_timing(decoded, cfg)
    if not decoded:
        raw = [
            Finding(index=None, rule="AN-HALT", message="program is empty")
        ]
    else:
        raw = (
            _branch_findings(decoded)
            + _falloff_findings(decoded, cfg)
            + _halt_findings(decoded, cfg)
            + _dead_findings(cfg)
            + _ubd_findings(decoded, cfg)
            + _secret_findings(taint)
            + [
                Finding(index=index, rule="AN-TIMING-VAR", message=message)
                for index, message in timing_variations(cfg, taint, timing)
            ]
        )
    raw.sort(key=lambda f: (f.index if f.index is not None else -1, f.rule))
    suppressions = program.suppressions
    kept: list[Finding] = []
    silenced: list[Finding] = []
    for finding in raw:
        if (finding.rule, None) in suppressions or (
            finding.rule,
            finding.index,
        ) in suppressions:
            silenced.append(finding)
        else:
            kept.append(finding)
    return ProgramAnalysis(
        cfg=cfg,
        findings=tuple(kept),
        suppressed=tuple(silenced),
        liveness=liveness(decoded, cfg),
        footprints=block_footprints(
            decoded, cfg, tuple(program.data_segments)
        ),
        taint=taint,
        timing=timing,
    )


def render_findings(program: Program, analysis: ProgramAnalysis) -> list[str]:
    """Human-readable finding lines with source line numbers when known."""
    lines: list[str] = []
    for finding in analysis.findings:
        if finding.index is None:
            where = "program"
        elif finding.index < len(program.source_lines):
            where = f"line {program.source_lines[finding.index]}"
        else:
            where = f"instr {finding.index}"
        severity, _, fixit = ANALYSIS_RULES[finding.rule]
        lines.append(
            f"{program.name}: {where}: {severity} {finding.rule} "
            f"{finding.message} (fix: {fixit})"
        )
    return lines
