"""Register dataflow over a decoded program's CFG.

Three classic analyses, all operating on the dispatch tuples directly so
their view of register reads/writes matches the timing core's handlers:

* **must-defined** (forward, intersection) — drives the use-before-def
  rule: a register read is flagged when *some* path from entry reaches it
  without a prior write.  ``r0`` is hard-wired zero and always defined.
* **liveness** (backward, union) — per-block live-in/live-out register
  sets, exported for the ROADMAP's closure-compiled step functions (a
  dead register's Table III track never needs materialising).
* **constant propagation** (forward, agree-or-drop meet) — resolves
  ``li``/``add``/``mul`` chains to concrete values, mirroring the core's
  64-bit masking exactly; the footprint analysis reads the per-access
  resolved addresses it produces.
"""

from __future__ import annotations

from typing import Any

from repro.analysis.cfg import EXIT, ControlFlowGraph
from repro.isa.decode import (
    K_ADD_RI,
    K_ADD_RR,
    K_AND_RI,
    K_AND_RR,
    K_BRANCH,
    K_CLFLUSH,
    K_LI,
    K_LOAD,
    K_MOV,
    K_MUL_RI,
    K_MUL_RR,
    K_OR_RI,
    K_OR_RR,
    K_PREFETCH,
    K_RDCYCLE,
    K_SLL_RI,
    K_SLL_RR,
    K_SRL_RI,
    K_SRL_RR,
    K_STORE,
    K_SUB_RR,
    K_XOR_RI,
    K_XOR_RR,
)
from repro.isa.registers import NUM_REGISTERS, WORD_MASK, ZERO_REGISTER

_ALU_RR_KINDS = frozenset(
    {
        K_ADD_RR,
        K_SUB_RR,
        K_MUL_RR,
        K_SLL_RR,
        K_SRL_RR,
        K_AND_RR,
        K_OR_RR,
        K_XOR_RR,
    }
)
_ALU_RI_KINDS = frozenset(
    {K_ADD_RI, K_MUL_RI, K_SLL_RI, K_SRL_RI, K_AND_RI, K_OR_RI, K_XOR_RI}
)


def uses_and_def(tup: tuple[Any, ...]) -> tuple[tuple[int, ...], int | None]:
    """``(read registers, written register or None)`` for one tuple."""
    kind = tup[0]
    if kind == K_LOAD:
        return (tup[2],), tup[1]
    if kind == K_STORE:
        return (tup[1], tup[2]), None
    if kind == K_LI:
        return (), tup[1]
    if kind == K_MOV:
        return (tup[2],), tup[1]
    if kind in _ALU_RR_KINDS:
        return (tup[2], tup[3]), tup[1]
    if kind in _ALU_RI_KINDS:
        return (tup[2],), tup[1]
    if kind == K_BRANCH:
        return (tup[2], tup[3]), None
    if kind == K_RDCYCLE:
        return (), tup[1]
    if kind in (K_CLFLUSH, K_PREFETCH):
        return (tup[1],), None
    return (), None  # jmp / nop / fence / halt


def use_before_def(
    decoded: tuple[tuple[Any, ...], ...], cfg: ControlFlowGraph
) -> tuple[tuple[int, int], ...]:
    """``(instruction index, register)`` pairs read while maybe-undefined.

    Must-defined dataflow: a register counts as defined at a read only
    when *every* path from entry writes it first.  Unreachable blocks are
    skipped — they are reported by the dead-code rule instead, and have
    no meaningful incoming state.
    """
    if not cfg.blocks:
        return ()
    reachable = set(cfg.reachable)
    preds = cfg.predecessors()
    universe = frozenset(range(NUM_REGISTERS))
    entry_in = frozenset({ZERO_REGISTER})

    gen: dict[int, frozenset[int]] = {}
    for block in cfg.blocks:
        defined: set[int] = set()
        for i in block.instruction_indices():
            _, written = uses_and_def(decoded[i])
            if written is not None:
                defined.add(written)
        gen[block.index] = frozenset(defined)

    out_sets = {block.index: universe for block in cfg.blocks}
    out_sets[0] = entry_in | gen[0]
    changed = True
    while changed:
        changed = False
        for index in cfg.reachable:
            if index == 0:
                in_set = entry_in
            else:
                incoming = [
                    out_sets[p] for p in preds[index] if p in reachable
                ]
                in_set = (
                    frozenset.intersection(*incoming) if incoming else universe
                )
            new_out = in_set | gen[index]
            if new_out != out_sets[index]:
                out_sets[index] = new_out
                changed = True

    findings: list[tuple[int, int]] = []
    for index in cfg.reachable:
        block = cfg.blocks[index]
        if index == 0:
            defined = set(entry_in)
        else:
            incoming = [out_sets[p] for p in preds[index] if p in reachable]
            defined = (
                set(frozenset.intersection(*incoming)) if incoming
                else set(universe)
            )
        for i in block.instruction_indices():
            reads, written = uses_and_def(decoded[i])
            for register in reads:
                if register not in defined:
                    findings.append((i, register))
            if written is not None:
                defined.add(written)
    return tuple(findings)


def liveness(
    decoded: tuple[tuple[Any, ...], ...], cfg: ControlFlowGraph
) -> tuple[tuple[frozenset[int], frozenset[int]], ...]:
    """Per-block ``(live_in, live_out)`` register sets, in block order.

    ``r0`` is never live: reading it yields the constant zero, so no
    definition is ever awaited.
    """
    if not cfg.blocks:
        return ()
    use: dict[int, frozenset[int]] = {}
    defs: dict[int, frozenset[int]] = {}
    for block in cfg.blocks:
        block_use: set[int] = set()
        block_def: set[int] = set()
        for i in block.instruction_indices():
            reads, written = uses_and_def(decoded[i])
            for register in reads:
                if register != ZERO_REGISTER and register not in block_def:
                    block_use.add(register)
            if written is not None and written != ZERO_REGISTER:
                block_def.add(written)
        use[block.index] = frozenset(block_use)
        defs[block.index] = frozenset(block_def)

    live_in: dict[int, frozenset[int]] = {
        block.index: frozenset() for block in cfg.blocks
    }
    live_out: dict[int, frozenset[int]] = {
        block.index: frozenset() for block in cfg.blocks
    }
    changed = True
    while changed:
        changed = False
        for block in reversed(cfg.blocks):
            index = block.index
            out: frozenset[int] = frozenset()
            for successor in block.successors:
                if successor != EXIT:
                    out |= live_in[successor]
            new_in = use[index] | (out - defs[index])
            if out != live_out[index] or new_in != live_in[index]:
                live_out[index] = out
                live_in[index] = new_in
                changed = True
    return tuple(
        (live_in[block.index], live_out[block.index]) for block in cfg.blocks
    )


# -- constant propagation -------------------------------------------------------

#: Per-register constant state: mapping register -> known value.  A register
#: absent from the mapping is non-constant.  ``r0`` is always 0.

_SHIFT_MASK = 0x3F


def _transfer(state: dict[int, int], tup: tuple[Any, ...]) -> None:
    """Apply one instruction to a constant state, mirroring the core's math."""
    kind = tup[0]
    reads, written = uses_and_def(tup)
    if written is None:
        return
    if written == ZERO_REGISTER:
        return  # writes to r0 are discarded; it stays 0

    def known(register: int) -> int | None:
        return 0 if register == ZERO_REGISTER else state.get(register)

    value: int | None = None
    if kind == K_LI:
        value = tup[2]
    elif kind == K_MOV:
        value = known(tup[2])
    elif kind in _ALU_RI_KINDS:
        a = known(tup[2])
        if a is not None:
            imm = tup[3]
            if kind == K_ADD_RI:
                value = (a + imm) & WORD_MASK
            elif kind == K_MUL_RI:
                value = (a * imm) & WORD_MASK
            elif kind == K_SLL_RI:
                value = (a << imm) & WORD_MASK
            elif kind == K_SRL_RI:
                value = (a & WORD_MASK) >> imm
            elif kind == K_AND_RI:
                value = a & imm
            elif kind == K_OR_RI:
                value = (a | imm) & WORD_MASK
            else:  # K_XOR_RI
                value = (a ^ imm) & WORD_MASK
    elif kind in _ALU_RR_KINDS:
        a, b = known(tup[2]), known(tup[3])
        if a is not None and b is not None:
            if kind == K_ADD_RR:
                value = (a + b) & WORD_MASK
            elif kind == K_SUB_RR:
                value = (a - b) & WORD_MASK
            elif kind == K_MUL_RR:
                value = (a * b) & WORD_MASK
            elif kind == K_SLL_RR:
                value = (a << (b & _SHIFT_MASK)) & WORD_MASK
            elif kind == K_SRL_RR:
                value = (a & WORD_MASK) >> (b & _SHIFT_MASK)
            elif kind == K_AND_RR:
                value = a & b
            elif kind == K_OR_RR:
                value = (a | b) & WORD_MASK
            else:  # K_XOR_RR
                value = (a ^ b) & WORD_MASK
    # loads and rdcycle produce runtime values: written stays non-constant.

    if value is None:
        state.pop(written, None)
    else:
        state[written] = value


def _meet(a: dict[int, int], b: dict[int, int]) -> dict[int, int]:
    """Registers constant in both states with the same value."""
    return {
        register: value
        for register, value in a.items()
        if b.get(register) == value
    }


def constant_addresses(
    decoded: tuple[tuple[Any, ...], ...], cfg: ControlFlowGraph
) -> dict[int, int]:
    """``instruction index -> resolved byte address`` for memory accesses.

    Runs constant propagation to fixpoint, then evaluates the effective
    address ``base + imm`` of every load/store/clflush/prefetch whose base
    register is a known constant at that instruction.
    """
    if not cfg.blocks:
        return {}
    reachable = set(cfg.reachable)
    preds = cfg.predecessors()
    in_states: dict[int, dict[int, int] | None] = {
        block.index: None for block in cfg.blocks
    }
    in_states[0] = {ZERO_REGISTER: 0}
    worklist = [0]
    while worklist:
        index = worklist.pop(0)
        state = dict(in_states[index] or {})
        block = cfg.blocks[index]
        for i in block.instruction_indices():
            _transfer(state, decoded[i])
        for successor in block.successors:
            if successor == EXIT or successor not in reachable:
                continue
            existing = in_states[successor]
            merged = dict(state) if existing is None else _meet(existing, state)
            if merged != existing:
                in_states[successor] = merged
                if successor not in worklist:
                    worklist.append(successor)

    resolved: dict[int, int] = {}
    for index in cfg.reachable:
        block = cfg.blocks[index]
        state = dict(in_states[index] or {})
        for i in block.instruction_indices():
            tup = decoded[i]
            kind = tup[0]
            base_imm: tuple[int, int] | None = None
            if kind == K_LOAD:
                base_imm = (tup[2], tup[3])
            elif kind == K_STORE:
                base_imm = (tup[2], tup[3])
            elif kind in (K_CLFLUSH, K_PREFETCH):
                base_imm = (tup[1], tup[2])
            if base_imm is not None:
                base, imm = base_imm
                value = 0 if base == ZERO_REGISTER else state.get(base)
                if value is not None:
                    resolved[i] = (value + imm) & WORD_MASK
            _transfer(state, tup)
    return resolved
