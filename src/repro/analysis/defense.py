"""Abstract defense transformers: havoc domains over the must/may state.

Each defense row of the scenario grid becomes an abstract transformer on
the attacker-observable cache state, with a *coverage* grade saying how
certainly it fires:

* ``COVERAGE_CERTAIN`` — the trigger condition is abstractly satisfiable
  on *every* secret-dependent access (PREFENDER's Scale Tracker fires
  whenever a load's address register is non-architectural and its scale
  lies strictly between the block and page sizes — true of every crypto
  victim's scaled table lookup), so the havoc provably lands.
* ``COVERAGE_POSSIBLE`` — the mechanism may or may not fire (the Access
  Tracker needs a warm stride history; a disruptive/PCG-style prefetcher
  injects noise probabilistically), so neither ``LEAKS`` nor ``DEFENDED``
  can be certified: the verdict is ``UNKNOWN``.
* ``COVERAGE_NONE`` — the mechanism provably never triggers on the
  scenario programs (``Base`` has no prefetcher; BITP fires only on L2
  back-invalidations, which the small scenario footprints never cause),
  so the undefended verdict stands.

The havoc itself follows the paper's guided-prefetch semantics: any
probe-array index the union-over-secrets leak map
(:func:`repro.analysis.taint.secret_leak_union`) marks secret-reachable —
expanded by the Scale Tracker's same-page ``addr ± scale`` decoy
neighbours — has its attacker-visible must-bounds widened to top
(:func:`apply_havoc`): after an unknown number of decoy fills, nothing in
an affected set is provably resident, and every havocked line is possibly
resident at any age.  ``tests/test_defense_domain.py`` property-checks the
transformer (monotone, increasing, and a sound over-approximation of
arbitrary decoy-access sequences on a reference LRU).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.analysis.cachemodel import DEFAULT_BLOCK_SIZE, CacheState
from repro.analysis.taint import secret_leak_union
from repro.errors import ConfigError

#: Default page size (``repro.utils.addr.AddressMap.page_size``).
DEFAULT_PAGE_SIZE = 4096

#: Coverage grades (stable — CLI JSON output uses them).
COVERAGE_CERTAIN = "certain"
COVERAGE_POSSIBLE = "possible"
COVERAGE_NONE = "none"


@dataclass(frozen=True)
class DefenseModel:
    """Abstract model of one defense row of the scenario grid."""

    label: str
    #: Which trigger governs the havoc: ``"scale-tracker"`` (certain when
    #: the scale trigger is satisfiable), ``"access-tracker"`` /
    #: ``"set-noise"`` (possible), ``"back-invalidation"`` / ``"none"``
    #: (never fires on the scenario programs).
    mechanism: str
    coverage: str
    description: str


_MODELS: dict[str, DefenseModel] = {
    model.label: model
    for model in (
        DefenseModel(
            label="Base",
            mechanism="none",
            coverage=COVERAGE_NONE,
            description="no prefetcher attached; undefended verdict stands",
        ),
        DefenseModel(
            label="ST",
            mechanism="scale-tracker",
            coverage=COVERAGE_CERTAIN,
            description=(
                "Scale Tracker decoys certainly cover the secret-reachable "
                "lines when the scale trigger is satisfiable"
            ),
        ),
        DefenseModel(
            label="AT",
            mechanism="access-tracker",
            coverage=COVERAGE_POSSIBLE,
            description=(
                "Access Tracker needs a warm stride history; firing is not "
                "abstractly certain"
            ),
        ),
        DefenseModel(
            label="ST+AT",
            mechanism="scale-tracker",
            coverage=COVERAGE_CERTAIN,
            description=(
                "Scale Tracker component certainly covers the "
                "secret-reachable lines when the scale trigger is satisfiable"
            ),
        ),
        DefenseModel(
            label="AT+RP",
            mechanism="access-tracker",
            coverage=COVERAGE_POSSIBLE,
            description=(
                "no Scale Tracker: the Access Tracker + Record Protector "
                "pair may or may not fire"
            ),
        ),
        DefenseModel(
            label="FULL",
            mechanism="scale-tracker",
            coverage=COVERAGE_CERTAIN,
            description=(
                "full PREFENDER includes the Scale Tracker, which certainly "
                "covers the secret-reachable lines"
            ),
        ),
        DefenseModel(
            label="disruptive",
            mechanism="set-noise",
            coverage=COVERAGE_POSSIBLE,
            description=(
                "PCG-style noise is probabilistic per access; coverage is "
                "never certain"
            ),
        ),
        DefenseModel(
            label="bitp",
            mechanism="back-invalidation",
            coverage=COVERAGE_NONE,
            description=(
                "BITP fires only on L2 back-invalidations, which the "
                "scenario footprints never cause"
            ),
        ),
    )
}


def defense_labels() -> tuple[str, ...]:
    """All modelled defense labels, in declaration order."""
    return tuple(_MODELS)


def defense_model(label: str) -> DefenseModel:
    """Model for one defense label; raises ConfigError on an unknown one."""
    try:
        return _MODELS[label]
    except KeyError:
        known = ", ".join(_MODELS)
        raise ConfigError(
            f"unknown defense label {label!r} (known: {known})"
        ) from None


def scale_trigger_satisfiable(
    scale: int,
    *,
    block_size: int = DEFAULT_BLOCK_SIZE,
    page_size: int = DEFAULT_PAGE_SIZE,
) -> bool:
    """Scale Tracker trigger: the access stride is a plausible record size.

    Mirrors :meth:`repro.core.scale_tracker.ScaleTracker.observe`'s gate:
    a scale at or below the block size never leaves the accessed line and
    one at or above the page size never passes the same-page clamp, so the
    tracker provably cannot fire outside ``(block_size, page_size)``.
    """
    return block_size < scale < page_size


def havoc_reach(
    program: Any,
    secret_space: int,
    *,
    probe_base: int,
    scale: int,
    num_indices: int,
    page_size: int = DEFAULT_PAGE_SIZE,
) -> tuple[int, ...]:
    """Probe indices a guided prefetcher may fill: leak union + decoys.

    The union-over-secrets leak map is every index the victim itself can
    touch; each is expanded by the Scale Tracker's ``addr ± scale`` decoy
    candidates, clamped to the same page exactly as
    :class:`repro.core.scale_tracker.ScaleTracker` clamps them.
    """
    reached = set(
        secret_leak_union(
            program,
            secret_space,
            probe_base=probe_base,
            scale=scale,
            num_indices=num_indices,
        )
    )
    per_page = max(1, page_size // scale) if 0 < scale < page_size else 1
    for index in tuple(reached):
        for neighbor in (index - 1, index + 1):
            if 0 <= neighbor < num_indices and neighbor // per_page == index // per_page:
                reached.add(neighbor)
    return tuple(sorted(reached))


def apply_havoc(state: CacheState, blocks: Iterable[int]) -> CacheState:
    """Widen ``state`` by an unknown sequence of accesses to ``blocks``.

    Pure (returns a fresh state).  In every set containing a havocked
    block the must component empties — repeated decoy fills can age or
    evict any line there — and each havocked block becomes possibly
    resident at any age (may lower bound 0).  Other sets, and the
    surviving may bounds, are untouched: decoy accesses only ever make
    true ages larger, so existing lower bounds stay sound.
    """
    havocked = state.copy()
    block_set = sorted(set(blocks))
    touched_sets = {state.geometry.set_of(block) for block in block_set}
    for s in sorted(touched_sets):
        havocked._must.pop(s, None)
    if not havocked.may_universal:
        for block in block_set:
            s = state.geometry.set_of(block)
            per_set = havocked._may.setdefault(s, {})
            per_set[block] = 0
    return havocked
