"""Static analysis over decoded ISA programs.

Two consumers drive this package:

* ``Program.finalize(strict=True)`` — every built-in workload, crypto
  victim and attacker snippet is analysed at build time, so a branch to
  nowhere or a guaranteed-infinite loop fails the *build*, not a 20M-step
  simulation later;
* ``python -m repro analyze`` — the CLI front-end that reports findings
  with source line numbers for ``.asm`` files and registered workloads.

The analysis is pure: it reads the decode tuples produced by
:mod:`repro.isa.decode` and never touches simulator state, so it adds
zero timing drift (``tests/test_golden_parity.py`` is unaffected).

:class:`ProgramAnalysis` also exports the raw substrate — basic blocks,
per-register liveness, the static memory footprint — for later consumers
(the ROADMAP's closure-compiled per-program step functions need exactly
these).
"""

from repro.analysis.analyzer import (
    ANALYSIS_RULES,
    Finding,
    ProgramAnalysis,
    analyze_program,
    render_findings,
)
from repro.analysis.cachemodel import (
    CacheGeometry,
    CacheState,
    HierarchyState,
    LatencyInterval,
    MultiCoreHierarchyState,
)
from repro.analysis.cfg import EXIT, BasicBlock, ControlFlowGraph, build_cfg
from repro.analysis.defense import (
    COVERAGE_CERTAIN,
    COVERAGE_NONE,
    COVERAGE_POSSIBLE,
    DefenseModel,
    apply_havoc,
    defense_labels,
    defense_model,
    havoc_reach,
    scale_trigger_satisfiable,
)
from repro.analysis.footprint import BlockFootprint, SegmentRange
from repro.analysis.scenario import (
    DEFENDED,
    LEAKS,
    UNKNOWN,
    CellCertificate,
    CertificationReport,
    certify,
    certify_grid,
)
from repro.analysis.taint import (
    KNOWN_SECRET_ADDRS,
    AccessTaint,
    TaintAnalysis,
    leak_map,
    secret_leak_union,
    taint_analysis,
    taint_of_program,
)
from repro.analysis.timing import (
    CycleInterval,
    DistinguisherReport,
    TimingAnalysis,
    analyze_timing,
    cache_distinguishers,
    cycle_bounds,
    timing_map,
    trial_intervals,
)

__all__ = [
    "ANALYSIS_RULES",
    "AccessTaint",
    "BasicBlock",
    "BlockFootprint",
    "COVERAGE_CERTAIN",
    "COVERAGE_NONE",
    "COVERAGE_POSSIBLE",
    "CacheGeometry",
    "CacheState",
    "CellCertificate",
    "CertificationReport",
    "ControlFlowGraph",
    "CycleInterval",
    "DEFENDED",
    "DefenseModel",
    "DistinguisherReport",
    "EXIT",
    "Finding",
    "HierarchyState",
    "KNOWN_SECRET_ADDRS",
    "LEAKS",
    "LatencyInterval",
    "MultiCoreHierarchyState",
    "ProgramAnalysis",
    "SegmentRange",
    "TaintAnalysis",
    "TimingAnalysis",
    "UNKNOWN",
    "analyze_program",
    "analyze_timing",
    "apply_havoc",
    "build_cfg",
    "cache_distinguishers",
    "certify",
    "certify_grid",
    "cycle_bounds",
    "defense_labels",
    "defense_model",
    "havoc_reach",
    "leak_map",
    "render_findings",
    "scale_trigger_satisfiable",
    "secret_leak_union",
    "taint_analysis",
    "taint_of_program",
    "timing_map",
    "trial_intervals",
]
