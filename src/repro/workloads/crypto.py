"""Crypto victim models: secret-dependent table lookups on the ISA builder.

The paper's Tables IV-VI demonstrate PREFENDER on synthetic probe kernels,
but the defense's real target is the secret-indexed table lookup at the
heart of software crypto (related defenses — the Scheduling-Aware Defense,
PCG — are evaluated exactly there).  Each victim here is a phase-2 program
fragment that drops into any registered attack in place of the paper's
single "direct" access: the attacker prepares the probe array, the victim
performs its secret-dependent lookups, and the attacker measures.

Every victim documents three things:

* **secret** — which value the attacker tries to recover, and its width
  (``secret_space`` values; nibble-sized by default so mutual-information
  scores have a known ceiling of ``log2(secret_space)`` bits);
* **footprint** — :meth:`CryptoVictim.expected_indices` maps a secret to
  the exact probe-array indices the victim touches, which is what the
  leakage scorer compares candidate sets against;
* **scale/noise parameterisation** — the lookup stride is
  ``AttackOptions.scale`` (the paper's 0x200 by default) and benign-noise
  interleaving comes from ``AttackOptions.noise_c3``/``noise_loads``, so
  one victim definition covers the whole challenge grid.

All victims load their secret from ``AttackLayout.secret_addr`` (written
by every attack's data segment), so the index register is ``NA`` under
Table III and the final multiply by ``scale`` gives the lookup the scale
the Scale Tracker keys on — the same dataflow shape as real table lookups
compiled from ``table[secret_dependent_index]``.

Victim table (see also docs/architecture.md "Victims & scenarios"):

=============  ====================================================================
name           secret and access footprint
=============  ====================================================================
direct         the paper's victim: one access at index ``secret``
aes-ttable     first AES round, 4 scaled-down T-tables of 16 lines: key
               nibble ``k`` and known plaintext nibbles ``pt`` touch
               ``16*t + (pt[t] ^ k)`` for each table ``t``
rsa-sqmul      square-and-multiply window (4 exponent bits): the square
               always touches index 40; the multiply for exponent bit
               ``i`` touches ``8*i`` iff the bit is set
ecdsa-window   windowed scalar multiplication: two 2-bit windows of the
               secret each look up the shared 4-line precomputed-point
               table at ``16 + v``
const-lookup   constant-time control: the secret is loaded but never
               indexes memory — one access at a fixed index, every
               secret.  The taint analysis classifies it clean, and the
               differential oracle pins its mutual information at zero
=============  ====================================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.attacks.layout import AttackLayout, AttackOptions
from repro.errors import ConfigError
from repro.isa.builder import ProgramBuilder

EmitFn = Callable[[ProgramBuilder, AttackLayout, AttackOptions], None]
FootprintFn = Callable[[int, AttackOptions], tuple[int, ...]]

CRYPTO_VICTIMS: dict[str, "CryptoVictim"] = {}


@dataclass(frozen=True)
class CryptoVictim:
    """One victim model: emitter + secret semantics + access footprint.

    Attributes:
        name: registry key (``AttackOptions.victim``).
        description: one-line summary for tables and ``--help``.
        secret_space: number of meaningful secret values; trial secrets are
            drawn from ``range(secret_space)``.
        num_indices: probe-array size the victim's index map assumes (the
            scenario grid passes it into :class:`AttackOptions`).
        emit: phase-2 program fragment (victim's lookups).
        footprint: secret -> touched probe indices (sorted, deduplicated).
    """

    name: str
    description: str
    secret_space: int
    num_indices: int
    emit: EmitFn = field(compare=False)
    footprint: FootprintFn = field(compare=False)

    def expected_indices(self, secret: int, options: AttackOptions) -> tuple[int, ...]:
        """The probe indices this victim touches for ``secret``."""
        return tuple(sorted(set(self.footprint(secret, options))))

    def trial_secrets(self, count: int) -> tuple[int, ...]:
        """``count`` deterministic, evenly spaced secrets from the space."""
        if count <= 0:
            raise ConfigError(f"need at least one trial secret, got {count}")
        count = min(count, self.secret_space)
        return tuple(self.secret_space * i // count for i in range(count))


def register_victim(victim: CryptoVictim) -> CryptoVictim:
    if victim.name in CRYPTO_VICTIMS:
        raise ConfigError(f"duplicate crypto victim {victim.name!r}")
    CRYPTO_VICTIMS[victim.name] = victim
    return victim


def get_victim(name: str) -> CryptoVictim:
    if name not in CRYPTO_VICTIMS:
        raise ConfigError(
            f"unknown victim {name!r}; available: {sorted(CRYPTO_VICTIMS)}"
        )
    return CRYPTO_VICTIMS[name]


def victim_names() -> list[str]:
    return sorted(CRYPTO_VICTIMS)


# -- shared emission helpers ---------------------------------------------------


def _emit_secret_load(builder: ProgramBuilder, layout: AttackLayout) -> None:
    """r10 <- secret (from memory, so it is ``NA`` under Table III).

    Declares the secret cell as a taint source (``.secret``), so the
    static taint analysis (:mod:`repro.analysis.taint`) seeds here and
    the ``AN-SECRET-*`` rules see every derived access.
    """
    builder.taint_source(layout.secret_addr)
    builder.li("r1", layout.probe_base)
    builder.li("r11", layout.secret_addr)
    builder.load("r10", 0, "r11")


def _emit_indexed_lookup(
    builder: ProgramBuilder, options: AttackOptions, index_reg: str
) -> None:
    """Load ``probe_base + index_reg * scale`` (r1 holds probe_base).

    ``index_reg`` is NA with scale 1 at this point, so the multiply gives
    the address register scale ``options.scale`` — the Scale Tracker's
    trigger shape for a table lookup.
    """
    builder.mul("r4", index_reg, options.scale)
    builder.add("r5", "r1", "r4")
    builder.load("r6", 0, "r5")


# -- direct (the paper's victim) -----------------------------------------------


def _emit_direct(
    builder: ProgramBuilder, layout: AttackLayout, options: AttackOptions
) -> None:
    # Late import: snippets has no module-level dependency on this module
    # (it resolves victims lazily), so this direction is cycle-free too.
    from repro.attacks.snippets import emit_victim_direct

    emit_victim_direct(builder, layout, options)


register_victim(
    CryptoVictim(
        name="direct",
        description="paper's phase-2 victim: one access at index `secret`",
        secret_space=96,
        num_indices=96,
        emit=_emit_direct,
        footprint=lambda secret, options: (secret,),
    )
)


# -- AES first-round T-table lookups -------------------------------------------

AES_TABLES = 4
AES_TABLE_LINES = 16  # power of two: in-program masking needs no modulo
#: Known plaintext nibbles (one per T-table), as in a chosen-plaintext
#: first-round attack; the key nibble is the secret.
AES_PLAINTEXT = (3, 7, 12, 9)


def _emit_aes(
    builder: ProgramBuilder, layout: AttackLayout, options: AttackOptions
) -> None:
    _emit_secret_load(builder, layout)
    for table, plaintext in enumerate(AES_PLAINTEXT):
        builder.xor("r12", "r10", plaintext)  # pt ^ k  (NA, scale 1)
        builder.and_("r12", "r12", AES_TABLE_LINES - 1)
        builder.add("r12", "r12", table * AES_TABLE_LINES)
        _emit_indexed_lookup(builder, options, "r12")


def _aes_footprint(secret: int, options: AttackOptions) -> tuple[int, ...]:
    key = secret & (AES_TABLE_LINES - 1)
    return tuple(
        table * AES_TABLE_LINES + ((plaintext ^ key) & (AES_TABLE_LINES - 1))
        for table, plaintext in enumerate(AES_PLAINTEXT)
    )


register_victim(
    CryptoVictim(
        name="aes-ttable",
        description="AES first round: key nibble indexes 4 T-tables",
        secret_space=AES_TABLE_LINES,
        num_indices=AES_TABLES * AES_TABLE_LINES,
        emit=_emit_aes,
        footprint=_aes_footprint,
    )
)


# -- RSA square-and-multiply ---------------------------------------------------

RSA_EXP_BITS = 4
RSA_SQUARE_INDEX = 40
RSA_MUL_STRIDE = 8  # multiply lookups at 0, 8, 16, 24


def _emit_rsa(
    builder: ProgramBuilder, layout: AttackLayout, options: AttackOptions
) -> None:
    _emit_secret_load(builder, layout)
    for bit in range(RSA_EXP_BITS):
        builder.srl("r12", "r10", bit)
        builder.and_("r12", "r12", 1)  # exponent bit (NA, scale 1)
        # Square: unconditional working-state access (same line every bit);
        # the index is derived from the NA secret register so the access
        # keeps the table-lookup dataflow shape.
        builder.xor("r13", "r12", "r12")  # value 0, still NA
        builder.add("r13", "r13", RSA_SQUARE_INDEX)
        _emit_indexed_lookup(builder, options, "r13")
        # Multiply: only when exponent bit `bit` is set — the classic
        # square-and-multiply leak.  The secret-conditioned branch is the
        # point of this victim, so the AN-SECRET-BRANCH channel is
        # acknowledged explicitly (scoped to this one instruction).
        skip = builder.fresh_label(f"rsab{bit}")
        builder.allow("AN-SECRET-BRANCH", index=builder.instruction_count)
        builder.beq("r12", "zero", skip)
        builder.add("r13", "r12", bit * RSA_MUL_STRIDE - 1)  # NA, value 8*bit
        _emit_indexed_lookup(builder, options, "r13")
        builder.label(skip)


def _rsa_footprint(secret: int, options: AttackOptions) -> tuple[int, ...]:
    indices = [RSA_SQUARE_INDEX]
    for bit in range(RSA_EXP_BITS):
        if (secret >> bit) & 1:
            indices.append(bit * RSA_MUL_STRIDE)
    return tuple(indices)


register_victim(
    CryptoVictim(
        name="rsa-sqmul",
        description="square-and-multiply: set exponent bits add a lookup",
        secret_space=1 << RSA_EXP_BITS,
        num_indices=48,
        emit=_emit_rsa,
        footprint=_rsa_footprint,
    )
)


# -- ECDSA-style windowed scalar multiplication --------------------------------

ECDSA_WINDOW_BITS = 2
ECDSA_WINDOWS = 2
ECDSA_TABLE_BASE = 16  # the shared 4-line precomputed-point table


def _emit_ecdsa(
    builder: ProgramBuilder, layout: AttackLayout, options: AttackOptions
) -> None:
    _emit_secret_load(builder, layout)
    mask = (1 << ECDSA_WINDOW_BITS) - 1
    for window in range(ECDSA_WINDOWS):
        builder.srl("r12", "r10", window * ECDSA_WINDOW_BITS)
        builder.and_("r12", "r12", mask)  # window value (NA, scale 1)
        builder.add("r12", "r12", ECDSA_TABLE_BASE)
        _emit_indexed_lookup(builder, options, "r12")


def _ecdsa_footprint(secret: int, options: AttackOptions) -> tuple[int, ...]:
    mask = (1 << ECDSA_WINDOW_BITS) - 1
    return tuple(
        ECDSA_TABLE_BASE + ((secret >> window * ECDSA_WINDOW_BITS) & mask)
        for window in range(ECDSA_WINDOWS)
    )


register_victim(
    CryptoVictim(
        name="ecdsa-window",
        description="windowed scalar mult: 2-bit windows share one table",
        secret_space=1 << (ECDSA_WINDOW_BITS * ECDSA_WINDOWS),
        num_indices=32,
        emit=_emit_ecdsa,
        footprint=_ecdsa_footprint,
    )
)


# -- constant-time control victim ----------------------------------------------

#: The fixed line the control victim touches regardless of the secret.
CONST_LOOKUP_INDEX = 5


def _emit_const_lookup(
    builder: ProgramBuilder, layout: AttackLayout, options: AttackOptions
) -> None:
    """Loads the secret, then accesses a secret-independent fixed line.

    The negative control for the static/dynamic differential: the taint
    analysis must classify every access clean (the secret register is
    never an address input), and the dynamic scenario grid must score
    zero mutual-information bits — the attacker sees the same candidate
    set for every secret.
    """
    _emit_secret_load(builder, layout)
    builder.li("r12", CONST_LOOKUP_INDEX)
    _emit_indexed_lookup(builder, options, "r12")


register_victim(
    CryptoVictim(
        name="const-lookup",
        description="constant-time control: fixed access, zero leakage",
        secret_space=8,
        num_indices=16,
        emit=_emit_const_lookup,
        footprint=lambda secret, options: (CONST_LOOKUP_INDEX,),
    )
)
