"""Synthetic SPEC-like workloads.

SPEC CPU 2006/2017 binaries are proprietary; the paper's performance tables
report *relative speedups by prefetcher configuration*, which are functions
of each benchmark's dominant memory-access pattern.  Each model here is an
ISA program reproducing that pattern class (streaming, strided-sparse,
pointer-chasing, random lookups, compute-only, ...), so the reproduction
target is the table's *shape* — who gains, who loses slightly, who is flat —
not gem5's absolute percentages (see DESIGN.md substitutions).
"""

from repro.workloads.base import Workload, get_workload, workload_names
from repro.workloads import spec2006, spec2017
from repro.workloads.base import REGISTRY

SPEC2006_NAMES = [w.name for w in REGISTRY.values() if w.suite == "spec2006"]
SPEC2017_NAMES = [w.name for w in REGISTRY.values() if w.suite == "spec2017"]

__all__ = [
    "Workload",
    "get_workload",
    "workload_names",
    "SPEC2006_NAMES",
    "SPEC2017_NAMES",
]
