"""SPEC CPU 2017 benchmark models (the 9 benchmarks of Table VI)."""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program
from repro.workloads.base import Workload, register
from repro.workloads.kernels import (
    emit_blocked_copy,
    emit_compute,
    emit_indirect_scaled,
    emit_random_access,
    emit_stencil,
    emit_stream,
    emit_stride2d,
)
from repro.workloads.spec2006 import (
    COPY_DST,
    COPY_SRC,
    DATA,
    IDX,
    RAND,
    STENCIL,
    STREAM,
    _add_index_array,
    _n,
)


def _cactu(scale: float) -> Program:
    builder = ProgramBuilder("507.cactuBSSN_r")
    emit_stencil(builder, STENCIL, _n(2200, scale), stride=8)
    emit_stride2d(builder, STREAM, rows=_n(30, scale), cols=32, row_stride=0x400)
    builder.halt()
    return builder.build(strict=True)


def _blender(scale: float) -> Program:
    builder = ProgramBuilder("526.blender_r")
    emit_compute(builder, _n(2400, scale))
    emit_stream(builder, STREAM, _n(700, scale))
    emit_random_access(builder, RAND, 512, _n(300, scale), stride=64)
    builder.halt()
    return builder.build(strict=True)


def _deepsjeng(scale: float) -> Program:
    builder = ProgramBuilder("531.deepsjeng_r")
    emit_random_access(builder, RAND, 65536, _n(1800, scale), stride=0x200)
    emit_compute(builder, _n(800, scale))
    builder.halt()
    return builder.build(strict=True)


def _imagick(scale: float) -> Program:
    builder = ProgramBuilder("538.imagick_r")
    emit_stream(builder, STREAM, _n(1500, scale), stride=8)
    emit_stride2d(builder, COPY_SRC, rows=_n(16, scale), cols=40, row_stride=0x400)
    emit_blocked_copy(builder, COPY_SRC, COPY_DST, _n(500, scale))
    emit_compute(builder, _n(5000, scale))
    builder.halt()
    return builder.build(strict=True)


def _leela(scale: float) -> Program:
    builder = ProgramBuilder("541.leela_r")
    emit_compute(builder, _n(2600, scale))
    emit_random_access(builder, RAND, 512, _n(500, scale), stride=64)
    builder.halt()
    return builder.build(strict=True)


def _xz(scale: float) -> Program:
    builder = ProgramBuilder("557.xz_r")
    emit_blocked_copy(builder, COPY_SRC, COPY_DST, _n(800, scale), stride=16)
    emit_random_access(builder, RAND, 8192, _n(400, scale), stride=64)
    emit_stream(builder, STREAM, _n(500, scale))
    emit_compute(builder, _n(7000, scale))
    builder.halt()
    return builder.build(strict=True)


def _parest(scale: float) -> Program:
    """Sparse finite-element solver: the Scale Tracker's showcase.

    Row indices come from memory with mildly irregular gaps: a classic
    stride prefetcher never reaches confidence (varying deltas), but the
    Scale Tracker sees scale 0x200 on every access and prefetches the
    neighbouring rows — the paper's 39-50% column.
    """
    builder = ProgramBuilder("510.parest_r")
    count = _n(3200, scale)
    _add_index_array(builder, count, gaps=[1, 2, 1, 3, 1, 2, 1, 4])
    emit_indirect_scaled(builder, IDX, DATA, count, 0x200)
    builder.halt()
    return builder.build(strict=True)


def _exchange2(scale: float) -> Program:
    builder = ProgramBuilder("548.exchange2_r")
    emit_compute(builder, _n(4500, scale))
    builder.halt()
    return builder.build(strict=True)


def _roms(scale: float) -> Program:
    builder = ProgramBuilder("554.roms_r")
    emit_stream(builder, STREAM, _n(4200, scale), stride=8)
    emit_stencil(builder, STENCIL, _n(1800, scale), stride=8)
    builder.halt()
    return builder.build(strict=True)


_MODELS = [
    ("507.cactuBSSN_r", "relativistic stencil sweeps", _cactu),
    ("526.blender_r", "render compute + texture streams", _blender),
    ("531.deepsjeng_r", "random transposition-table lookups", _deepsjeng),
    ("538.imagick_r", "image convolution streaming", _imagick),
    ("541.leela_r", "MCTS compute + small lookups", _leela),
    ("557.xz_r", "LZMA window copies + match lookups", _xz),
    ("510.parest_r", "sparse FEM rows via index arrays", _parest),
    ("548.exchange2_r", "recursive puzzle solving, register-resident", _exchange2),
    ("554.roms_r", "ocean-model field sweeps", _roms),
]

for _name, _pattern, _builder in _MODELS:
    register(
        Workload(name=_name, suite="spec2017", pattern=_pattern, builder=_builder)
    )
