"""Memory-access kernels the workload models are composed from.

Every kernel emits a self-contained loop (fresh labels, re-initialised
registers r1-r9), so models can chain kernels sequentially.  The kernels
differ in exactly the property the prefetchers key on:

=================  ========================================================
kernel             prefetcher interaction
=================  ========================================================
stream             sequential lines: Tagged/Stride/AT all stream ahead
blocked_copy       load+store streams (write-allocate traffic included)
stride2d           constant large stride per iteration: Stride shines
pointer_chase      data-dependent addresses: nothing helps
random_access      LCG-generated addresses: prefetchers fetch junk
                   (with a >64B element stride this is what drags
                   sjeng/deepsjeng slightly below baseline)
indirect_scaled    index loaded from memory then scaled: the register is
                   ``NA`` with a large scale under Table III, so the Scale
                   Tracker prefetches the next element — the parest-style
                   big win
stencil            3-point neighbourhood sweep: next-line friendly
hash_lookup        hash mixes via xor (Table III "otherwise"): no ST, and
                   table hits are effectively random
compute            ALU only: memory system untouched
=================  ========================================================
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder


def emit_stream(
    builder: ProgramBuilder, base: int, count: int, stride: int = 8
) -> None:
    """Sequential read sweep: ``count`` loads at ``base + i*stride``."""
    loop = builder.fresh_label("stream")
    builder.li("r1", base)
    builder.li("r2", 0)
    builder.li("r3", count)
    builder.label(loop)
    builder.mul("r4", "r2", stride)
    builder.add("r5", "r1", "r4")
    builder.load("r6", 0, "r5")
    builder.add("r2", "r2", 1)
    builder.blt("r2", "r3", loop)


def emit_blocked_copy(
    builder: ProgramBuilder, src: int, dst: int, count: int, stride: int = 8
) -> None:
    """Streaming copy: read ``src + i*stride``, write ``dst + i*stride``."""
    loop = builder.fresh_label("copy")
    builder.li("r1", src)
    builder.li("r7", dst)
    builder.li("r2", 0)
    builder.li("r3", count)
    builder.label(loop)
    builder.mul("r4", "r2", stride)
    builder.add("r5", "r1", "r4")
    builder.load("r6", 0, "r5")
    builder.add("r8", "r7", "r4")
    builder.store("r6", 0, "r8")
    builder.add("r2", "r2", 1)
    builder.blt("r2", "r3", loop)


def emit_stride2d(
    builder: ProgramBuilder,
    base: int,
    rows: int,
    cols: int,
    row_stride: int,
    elem_stride: int = 8,
) -> None:
    """Row-major 2D sweep: inner loop sequential, outer loop strided."""
    outer = builder.fresh_label("row")
    inner = builder.fresh_label("col")
    builder.li("r1", base)
    builder.li("r2", 0)
    builder.li("r3", rows)
    builder.label(outer)
    builder.mul("r4", "r2", row_stride)
    builder.add("r5", "r1", "r4")
    builder.li("r7", 0)
    builder.li("r8", cols)
    builder.label(inner)
    builder.mul("r9", "r7", elem_stride)
    builder.add("r9", "r5", "r9")
    builder.load("r6", 0, "r9")
    builder.add("r7", "r7", 1)
    builder.blt("r7", "r8", inner)
    builder.add("r2", "r2", 1)
    builder.blt("r2", "r3", outer)


def emit_pointer_chase(builder: ProgramBuilder, base: int, steps: int) -> None:
    """Dependent chain: ``node = mem[node]`` — prefetcher-proof.

    The chain data segment must be prepared with
    :func:`pointer_chain_segment`.
    """
    loop = builder.fresh_label("chase")
    builder.li("r5", base)
    builder.li("r2", 0)
    builder.li("r3", steps)
    builder.label(loop)
    builder.load("r5", 0, "r5")
    builder.add("r2", "r2", 1)
    builder.blt("r2", "r3", loop)


def pointer_chain_addresses(
    base: int,
    nodes: int,
    stride: int = 512,
    seed: int = 0x5EED,
    jitter_blocks: int = 7,
) -> list[tuple[int, int]]:
    """Build a full-cycle shuffled, jittered pointer chain.

    Returns ``(node_addr, next_addr)`` pairs.  A genuine Fisher-Yates
    shuffle (seeded, deterministic) removes any constant address stride,
    and per-node placement jitter (0..jitter_blocks cachelines) breaks the
    alignment lattice — without it, every node would sit on a multiple of
    ``stride`` and a stride-guessing prefetcher's "junk" would land on
    valid nodes, accidentally pre-loading the chain.
    """
    import random

    rng = random.Random(seed)
    addresses = [
        base + i * stride + rng.randrange(jitter_blocks + 1) * 64
        for i in range(nodes)
    ]
    order = list(range(nodes))
    rng.shuffle(order)
    pairs = []
    for position in range(nodes):
        src = order[position]
        dst = order[(position + 1) % nodes]
        pairs.append((addresses[src], addresses[dst]))
    return pairs


def emit_random_access(
    builder: ProgramBuilder,
    base: int,
    lines_pow2: int,
    iters: int,
    stride: int = 0x200,
) -> None:
    """LCG-generated random loads over ``lines_pow2`` slots.

    The LCG state passes through an ``and`` (Table III "otherwise" rule), so
    the address register carries scale ``stride`` with ``fva = NA`` — with a
    >cacheline stride the Scale Tracker fires on *useless* candidates, which
    is exactly how random-lookup benchmarks (sjeng) end up slightly below
    baseline under PREFENDER.
    """
    loop = builder.fresh_label("rand")
    builder.li("r1", base)
    builder.li("r7", 12345)
    builder.li("r2", 0)
    builder.li("r3", iters)
    builder.label(loop)
    builder.mul("r7", "r7", 1103515245)
    builder.add("r7", "r7", 12345)
    builder.srl("r8", "r7", 16)
    builder.and_("r8", "r8", lines_pow2 - 1)
    builder.mul("r4", "r8", stride)
    builder.add("r5", "r1", "r4")
    builder.load("r6", 0, "r5")
    builder.add("r2", "r2", 1)
    builder.blt("r2", "r3", loop)


def emit_indirect_scaled(
    builder: ProgramBuilder,
    idx_base: int,
    data_base: int,
    count: int,
    scale: int,
) -> None:
    """Index-array-driven strided sweep (sparse-solver row access).

    ``idx = mem[idx_base + i*8]; load data_base + idx*scale``.  The index
    register is ``NA`` (loaded from memory) and the multiply gives it scale
    ``scale``: when ``cacheline < scale < page`` the Scale Tracker prefetches
    ``addr ± scale`` — the next row — every iteration.  This is the
    510.parest_r pattern behind the paper's largest speedup.
    """
    loop = builder.fresh_label("indir")
    builder.li("r1", data_base)
    builder.li("r7", idx_base)
    builder.li("r2", 0)
    builder.li("r3", count)
    builder.label(loop)
    builder.mul("r4", "r2", 8)
    builder.add("r4", "r7", "r4")
    builder.load("r8", 0, "r4")  # idx from memory: NA
    builder.mul("r4", "r8", scale)
    builder.add("r5", "r1", "r4")
    builder.load("r6", 0, "r5")  # Scale Tracker fires here
    builder.add("r2", "r2", 1)
    builder.blt("r2", "r3", loop)


def emit_stencil(
    builder: ProgramBuilder, base: int, count: int, stride: int = 8
) -> None:
    """3-point stencil sweep: a[i-1] + a[i] + a[i+1]."""
    loop = builder.fresh_label("sten")
    builder.li("r1", base + stride)
    builder.li("r2", 0)
    builder.li("r3", count)
    builder.label(loop)
    builder.mul("r4", "r2", stride)
    builder.add("r5", "r1", "r4")
    builder.load("r6", -stride, "r5")
    builder.load("r7", 0, "r5")
    builder.load("r8", stride, "r5")
    builder.add("r6", "r6", "r7")
    builder.add("r6", "r6", "r8")
    builder.add("r2", "r2", 1)
    builder.blt("r2", "r3", loop)


def emit_hash_lookup(
    builder: ProgramBuilder,
    key_base: int,
    table_base: int,
    keys: int,
    table_lines_pow2: int,
) -> None:
    """Hash-table probing: key stream + xor-mixed random table hits."""
    loop = builder.fresh_label("hash")
    builder.li("r1", table_base)
    builder.li("r7", key_base)
    builder.li("r2", 0)
    builder.li("r3", keys)
    builder.label(loop)
    builder.mul("r4", "r2", 8)
    builder.add("r4", "r7", "r4")
    builder.load("r8", 0, "r4")  # key (sequential stream)
    builder.mul("r8", "r8", 2654435761)
    builder.srl("r9", "r8", 12)
    builder.xor("r8", "r8", "r9")
    builder.and_("r8", "r8", table_lines_pow2 - 1)
    builder.mul("r4", "r8", 64)
    builder.add("r5", "r1", "r4")
    builder.load("r6", 0, "r5")  # table probe (random line)
    builder.add("r2", "r2", 1)
    builder.blt("r2", "r3", loop)


def emit_compute(builder: ProgramBuilder, iters: int) -> None:
    """ALU-only loop: integer mixing with no memory traffic."""
    loop = builder.fresh_label("alu")
    builder.li("r5", 0x9E3779B9)
    builder.li("r6", 0x85EBCA6B)
    builder.li("r2", 0)
    builder.li("r3", iters)
    builder.label(loop)
    builder.mul("r5", "r5", 31)
    builder.add("r5", "r5", "r6")
    builder.srl("r7", "r5", 13)
    builder.xor("r5", "r5", "r7")
    builder.add("r6", "r6", 1)
    builder.add("r2", "r2", 1)
    builder.blt("r2", "r3", loop)
