"""SPEC CPU 2006 benchmark models (the 12 benchmarks of Tables IV/V).

Region map (all workloads are single-core; regions never overlap)::

    0x1000_0000  stream arrays        0x1500_0000  indirect data
    0x1100_0000  copy source          0x1600_0000  stencil array
    0x1180_0000  copy destination     0x1700_0000  hash keys
    0x1200_0000  pointer chain        0x1800_0000  hash table
    0x1300_0000  random-access table  0x1400_0000  indirect index array
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program
from repro.workloads.base import Workload, register
from repro.workloads.kernels import (
    emit_blocked_copy,
    emit_compute,
    emit_hash_lookup,
    emit_indirect_scaled,
    emit_pointer_chase,
    emit_random_access,
    emit_stencil,
    emit_stream,
    emit_stride2d,
    pointer_chain_addresses,
)

STREAM = 0x1000_0000
COPY_SRC = 0x1100_0000
COPY_DST = 0x1180_0000
CHASE = 0x1200_0000
RAND = 0x1300_0000
IDX = 0x1400_0000
DATA = 0x1500_0000
STENCIL = 0x1600_0000
KEYS = 0x1700_0000
TABLE = 0x1800_0000


def _n(base_count: int, scale: float) -> int:
    return max(8, int(base_count * scale))


def _add_chase_chain(
    builder: ProgramBuilder, nodes: int, stride: int = 512
) -> int:
    """Sparse, jittered chain: junk prefetches land between nodes."""
    pairs = pointer_chain_addresses(CHASE, nodes, stride=stride)
    for node_addr, next_addr in pairs:
        builder.data(node_addr, [next_addr])
    return pairs[0][0]


def _add_index_array(builder: ProgramBuilder, count: int, gaps: list[int]) -> None:
    """Index array with the given repeating gap pattern (parest-style)."""
    indices = []
    current = 0
    for i in range(count):
        indices.append(current)
        current += gaps[i % len(gaps)]
    builder.data(IDX, indices)


def _perlbench(scale: float) -> Program:
    builder = ProgramBuilder("400.perlbench")
    builder.data(KEYS, list(range(_n(900, scale))))
    emit_hash_lookup(builder, KEYS, TABLE, _n(900, scale), 1024)
    emit_stream(builder, STREAM, _n(500, scale))
    emit_compute(builder, _n(6000, scale))
    builder.halt()
    return builder.build(strict=True)


def _bzip2(scale: float) -> Program:
    builder = ProgramBuilder("401.bzip2")
    emit_blocked_copy(builder, COPY_SRC, COPY_DST, _n(900, scale), stride=16)
    emit_stream(builder, STREAM, _n(600, scale), stride=8)
    emit_compute(builder, _n(7000, scale))
    builder.halt()
    return builder.build(strict=True)


def _mcf(scale: float) -> Program:
    builder = ProgramBuilder("429.mcf")
    head = _add_chase_chain(builder, 6000)
    _add_index_array(builder, _n(2000, scale), [1])
    emit_pointer_chase(builder, head, _n(900, scale))
    emit_indirect_scaled(builder, IDX, DATA, _n(2000, scale), 0x200)
    # Arc-array sweep with a constant 320B stride: steady for the Stride
    # prefetcher (mcf is its best case in the paper), skips blocks so the
    # next-line Tagged prefetcher gains less.
    emit_stride2d(builder, STREAM, rows=_n(900, scale), cols=1, row_stride=0x140)
    builder.halt()
    return builder.build(strict=True)


def _gobmk(scale: float) -> Program:
    builder = ProgramBuilder("445.gobmk")
    emit_compute(builder, _n(4500, scale))
    emit_random_access(builder, RAND, 8192, _n(600, scale), stride=64)
    emit_stream(builder, STREAM, _n(400, scale))
    builder.halt()
    return builder.build(strict=True)


def _hmmer(scale: float) -> Program:
    builder = ProgramBuilder("456.hmmer")
    emit_stride2d(
        builder, STREAM, rows=_n(40, scale), cols=40, row_stride=0x400
    )
    emit_stream(builder, COPY_SRC, _n(500, scale))
    emit_compute(builder, _n(3500, scale))
    builder.halt()
    return builder.build(strict=True)


def _sjeng(scale: float) -> Program:
    builder = ProgramBuilder("458.sjeng")
    emit_random_access(builder, RAND, 65536, _n(2000, scale), stride=0x200)
    emit_compute(builder, _n(900, scale))
    builder.halt()
    return builder.build(strict=True)


def _libquantum(scale: float) -> Program:
    builder = ProgramBuilder("462.libquantum")
    # Two passes over a >L1 array: steady streaming misses both times.
    emit_stream(builder, STREAM, _n(4000, scale), stride=8)
    emit_stream(builder, STREAM, _n(4000, scale), stride=8)
    emit_compute(builder, _n(2500, scale))
    builder.halt()
    return builder.build(strict=True)


def _h264ref(scale: float) -> Program:
    builder = ProgramBuilder("464.h264ref")
    emit_stride2d(
        builder, STREAM, rows=_n(20, scale), cols=32, row_stride=0x800
    )
    emit_blocked_copy(builder, COPY_SRC, COPY_DST, _n(500, scale))
    emit_compute(builder, _n(5500, scale))
    builder.halt()
    return builder.build(strict=True)


def _omnetpp(scale: float) -> Program:
    builder = ProgramBuilder("471.omnetpp")
    head = _add_chase_chain(builder, 3000)
    builder.data(KEYS, list(range(_n(500, scale))))
    emit_pointer_chase(builder, head, _n(2000, scale))
    emit_hash_lookup(builder, KEYS, TABLE, _n(500, scale), 512)
    emit_compute(builder, _n(2500, scale))
    builder.halt()
    return builder.build(strict=True)


def _astar(scale: float) -> Program:
    builder = ProgramBuilder("473.astar")
    head = _add_chase_chain(builder, 1500)
    emit_pointer_chase(builder, head, _n(1200, scale))
    emit_random_access(builder, RAND, 8192, _n(500, scale), stride=64)
    emit_stream(builder, STREAM, _n(400, scale))
    emit_compute(builder, _n(3000, scale))
    builder.halt()
    return builder.build(strict=True)


def _xalancbmk(scale: float) -> Program:
    builder = ProgramBuilder("483.xalancbmk")
    builder.data(KEYS, list(range(_n(1200, scale))))
    emit_hash_lookup(builder, KEYS, TABLE, _n(1200, scale), 2048)
    emit_stream(builder, STREAM, _n(1500, scale))
    emit_blocked_copy(builder, COPY_SRC, COPY_DST, _n(500, scale))
    emit_compute(builder, _n(3000, scale))
    builder.halt()
    return builder.build(strict=True)


def _specrand(scale: float) -> Program:
    builder = ProgramBuilder("999.specrand")
    emit_compute(builder, _n(5000, scale))
    builder.halt()
    return builder.build(strict=True)


_MODELS = [
    ("400.perlbench", "hash-table probing + string scan", _perlbench),
    ("401.bzip2", "block-sorting: streaming copy + sweep", _bzip2),
    ("429.mcf", "pointer chasing + sparse strided arcs", _mcf),
    ("445.gobmk", "branchy compute + small-table lookups", _gobmk),
    ("456.hmmer", "regular 2D profile sweep", _hmmer),
    ("458.sjeng", "random transposition-table lookups", _sjeng),
    ("462.libquantum", "long sequential gate sweeps", _libquantum),
    ("464.h264ref", "2D block motion search + copies", _h264ref),
    ("471.omnetpp", "event-queue pointer chasing", _omnetpp),
    ("473.astar", "graph traversal + open-list lookups", _astar),
    ("483.xalancbmk", "DOM hash probing + text streaming", _xalancbmk),
    ("999.specrand", "PRNG compute, negligible memory", _specrand),
]

for _name, _pattern, _builder in _MODELS:
    register(
        Workload(name=_name, suite="spec2006", pattern=_pattern, builder=_builder)
    )
