"""Workload registry."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ConfigError
from repro.isa.program import Program

REGISTRY: dict[str, "Workload"] = {}


@dataclass(frozen=True)
class Workload:
    """A named synthetic benchmark model.

    Attributes:
        name: the SPEC benchmark name it models (e.g. ``429.mcf``).
        suite: ``spec2006`` or ``spec2017``.
        pattern: one-line description of the dominant access pattern.
        builder: zero-argument callable returning the finalized program.
        scale: relative size knob; 1.0 is the default benchmark length.
    """

    name: str
    suite: str
    pattern: str
    builder: Callable[[float], Program] = field(compare=False)
    scale: float = 1.0

    def program(self, scale: float | None = None) -> Program:
        """Build the workload program (``scale`` stretches loop counts)."""
        return self.builder(scale if scale is not None else self.scale)


def register(workload: Workload) -> Workload:
    if workload.name in REGISTRY:
        raise ConfigError(f"duplicate workload {workload.name!r}")
    REGISTRY[workload.name] = workload
    return workload


def get_workload(name: str) -> Workload:
    if name not in REGISTRY:
        raise ConfigError(
            f"unknown workload {name!r}; available: {sorted(REGISTRY)}"
        )
    return REGISTRY[name]


def workload_names(suite: str | None = None) -> list[str]:
    return [
        name
        for name, workload in REGISTRY.items()
        if suite is None or workload.suite == suite
    ]
