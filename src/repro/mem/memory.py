"""Sparse functional main memory with a flat access latency.

Addresses are opaque 64-bit keys; each address holds one 64-bit word.
Programs use consistent addresses (the generators emit stride-8 or
stride-64 layouts), so byte-level aliasing between neighbouring addresses
is intentionally not modelled.
"""

from __future__ import annotations

from typing import Any

from repro.isa.program import Program
from repro.snapshot import require_keys

DEFAULT_MEMORY_LATENCY = 120


class MainMemory:
    """Functional word store plus the DRAM access latency constant."""

    __slots__ = ("latency", "_words", "reads", "writes")

    def __init__(self, latency: int = DEFAULT_MEMORY_LATENCY) -> None:
        self.latency = latency
        self._words: dict[int, int] = {}
        self.reads = 0
        self.writes = 0

    def read(self, addr: int) -> int:
        """Return the word at ``addr`` (0 when never written)."""
        self.reads += 1
        return self._words.get(addr, 0)

    def write(self, addr: int, value: int) -> None:
        """Store ``value`` at ``addr`` (masked to 64 bits)."""
        self.writes += 1
        self._words[addr] = value & ((1 << 64) - 1)

    def peek(self, addr: int) -> int:
        """Read without counting (tests and analysis)."""
        return self._words.get(addr, 0)

    def poke(self, addr: int, value: int) -> None:
        """Write without counting (symmetric to :meth:`peek`).

        Snapshot replay uses this to patch trial-dependent data words into
        a restored image: like ``load_program_data`` at build time, the
        patch must not perturb the ``reads``/``writes`` counters the parity
        checks compare.
        """
        self._words[addr] = value & ((1 << 64) - 1)

    def snapshot(self) -> dict[str, Any]:
        """Word store plus access counters (``latency`` is configuration)."""
        return {
            "words": dict(self._words),
            "reads": self.reads,
            "writes": self.writes,
        }

    def restore(self, data: dict[str, Any]) -> None:
        """Inverse of :meth:`snapshot`; the stored dict is copied, never
        aliased, so one snapshot can seed many restores."""
        require_keys(data, ("words", "reads", "writes"), "MainMemory")
        self._words = dict(data["words"])
        self.reads = data["reads"]
        self.writes = data["writes"]

    def load_program_data(self, program: Program) -> None:
        """Apply all of a program's initial data segments."""
        for segment in program.data_segments:
            for offset, value in enumerate(segment.values):
                self._words[segment.base + offset * segment.stride] = value & (
                    (1 << 64) - 1
                )

    def footprint(self) -> int:
        """Number of distinct words ever written."""
        return len(self._words)
