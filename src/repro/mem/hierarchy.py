"""The multi-core memory hierarchy.

Per-core L1D caches over a shared inclusive L2 (the LLC in the paper's
cross-core experiments) over main memory.  The hierarchy owns:

* demand load/store routing with per-level latency composition,
* clflush-everywhere semantics (x86 ``clflush``),
* cross-L1 write invalidation (write-invalidate coherence-lite),
* inclusive back-invalidation on L2 evictions (the hook BITP listens to),
* prefetcher notification and prefetch issue, with per-component counts and
  timestamped timelines (Figs. 9 and 11 read these),
* a software-prefetch path (:meth:`MemoryHierarchy.software_prefetch`) for
  the ``prefetch``/``prefetchw`` instructions: non-faulting, never notifies
  the prefetchers (hardware trackers observe demand traffic only), and its
  latency is timeable — it reflects L1/L2/MEM residency exactly like a load.

``prefetchw`` additionally models the ownership upgrade the Adversarial
Prefetch attack (Guo et al., USENIX Security 2022) abuses: it invalidates
every other core's L1 copy of the line and records the issuing core as the
line's exclusive owner.  Any later access by a *different* core — demand
load, store, hardware-prefetch fill or software prefetch — steals that
ownership back and knocks the owner's L1 copy out (the M-state migration
the attack times).

The L1I is assumed ideal (instruction fetch costs are folded into the core's
per-instruction base cost); the defense and all attacks live entirely on the
data side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import SnapshotError
from repro.mem.cache import Cache, MemoryPort
from repro.mem.memory import MainMemory
from repro.snapshot import require_keys
from repro.prefetch.base import (
    NullPrefetcher,
    Observation,
    Prefetcher,
    PrefetchRequest,
)
from repro.utils.addr import AddressMap


@dataclass(frozen=True, slots=True)
class HierarchyConfig:
    """Geometry and latencies; defaults mirror the paper's gem5 baseline."""

    l1d_size: int = 64 * 1024
    l1d_assoc: int = 2
    l2_size: int = 2 * 1024 * 1024
    l2_assoc: int = 16
    l1_hit_latency: int = 4
    l2_hit_latency: int = 12
    memory_latency: int = 120
    flush_latency: int = 30
    mshr_entries: int = 4
    mshr_max_merges: int = 20
    nonblocking_stores: bool = True
    record_timelines: bool = True
    # Extra cycles a prefetchw pays when another core's L1 held the line
    # (the cross-core invalidation round-trip of the ownership upgrade).
    prefetchw_snoop_latency: int = 20


@dataclass(slots=True)
class AccessOutcome:
    """Result of one demand access.

    A slotted (non-frozen) dataclass: one is built per load/software
    prefetch, so construction cost is hot-path relevant.
    """

    value: int
    latency: int
    level: str  # "L1D", "L2", "MEM", "INFLIGHT", "MSHR"


@dataclass(slots=True)
class _PrefetchLog:
    counts: dict[str, int] = field(default_factory=dict)
    timeline: list[tuple[int, str, int]] = field(default_factory=list)


class MemoryHierarchy:
    """Cores' window onto memory: caches + coherence-lite + prefetchers."""

    __slots__ = (
        "config",
        "amap",
        "num_cores",
        "memory",
        "_port",
        "l2",
        "l1ds",
        "_prefetchers",
        "_active",
        "_logs",
        "_exclusive",
        "ownership_steals",
        "_block_mask",
    )

    def __init__(
        self,
        num_cores: int,
        config: HierarchyConfig | None = None,
        amap: AddressMap | None = None,
        memory: MainMemory | None = None,
    ) -> None:
        self.config = config or HierarchyConfig()
        self.amap = amap or AddressMap()
        self.num_cores = num_cores
        # `config.memory_latency` is the default for an internally built
        # memory only; a caller-supplied MainMemory keeps its own latency.
        self.memory = memory or MainMemory(latency=self.config.memory_latency)
        self._port = MemoryPort(self.memory)
        self.l2 = Cache(
            "L2",
            size=self.config.l2_size,
            assoc=self.config.l2_assoc,
            amap=self.amap,
            hit_latency=self.config.l2_hit_latency,
            parent=self._port,
            mshr_entries=self.config.mshr_entries * max(num_cores, 1),
            mshr_max_merges=self.config.mshr_max_merges,
        )
        self.l2.on_evict = self._back_invalidate
        self.l1ds = [
            Cache(
                f"L1D{core_id}",
                size=self.config.l1d_size,
                assoc=self.config.l1d_assoc,
                amap=self.amap,
                hit_latency=self.config.l1_hit_latency,
                parent=self.l2,
                mshr_entries=self.config.mshr_entries,
                mshr_max_merges=self.config.mshr_max_merges,
            )
            for core_id in range(num_cores)
        ]
        self._prefetchers: dict[int, Prefetcher] = {}
        # Per-core notify target, None when no prefetcher would react: the
        # demand path skips Observation construction entirely for those
        # cores (a NullPrefetcher counts as "not attached").
        self._active: list[Prefetcher | None] = [None] * num_cores
        self._logs = [_PrefetchLog() for _ in range(num_cores)]
        # block address -> core id holding the line exclusively (prefetchw).
        self._exclusive: dict[int, int] = {}
        self.ownership_steals = 0
        # Hot-path mask: ``addr & _block_mask == amap.block_addr(addr)``.
        self._block_mask = ~(self.amap.block_size - 1)

    # -- prefetcher plumbing -------------------------------------------------

    def attach_prefetcher(self, core_id: int, prefetcher: Prefetcher) -> None:
        """Install ``prefetcher`` on core ``core_id``'s L1D."""
        self._prefetchers[core_id] = prefetcher
        # Wiring-time attachment, not sim state: restore() checks the
        # attachment shape instead of re-creating it.
        self._active[core_id] = (  # lint: allow SNAP501
            None if isinstance(prefetcher, NullPrefetcher) else prefetcher
        )

    def prefetcher_for(self, core_id: int) -> Prefetcher | None:
        return self._prefetchers.get(core_id)

    def prefetch_counts(self, core_id: int) -> dict[str, int]:
        """Issued prefetch counts by component for one core."""
        return dict(self._logs[core_id].counts)

    def prefetch_timeline(self, core_id: int) -> list[tuple[int, str, int]]:
        """(cycle, component, block address) tuples for issued prefetches."""
        return list(self._logs[core_id].timeline)

    def total_prefetch_counts(self) -> dict[str, int]:
        """Issued prefetch counts by component summed over all cores."""
        totals: dict[str, int] = {}
        for log in self._logs:
            for component, count in log.counts.items():
                totals[component] = totals.get(component, 0) + count
        return totals

    def _issue_requests(
        self, core_id: int, now: int, requests: list[PrefetchRequest]
    ) -> int:
        issued = 0
        l1d = self.l1ds[core_id]
        log = self._logs[core_id]
        for request in requests:
            ready = l1d.prefetch(request.addr, now, request.component)
            if ready is None:
                continue
            # A hardware-prefetch fill is a read by this core: it steals any
            # other core's exclusive (prefetchw-held) copy of the line.
            self._yield_exclusivity(core_id, self.amap.block_addr(request.addr))
            issued += 1
            component = request.component
            log.counts[component] = log.counts.get(component, 0) + 1
            if self.config.record_timelines:
                log.timeline.append(
                    (now, component, self.amap.block_addr(request.addr))
                )
        return issued

    # -- demand interface ----------------------------------------------------

    def load(
        self,
        core_id: int,
        addr: int,
        now: int,
        pc: int = 0,
        scale: int = 1,
        speculative: bool = False,
    ) -> AccessOutcome:
        """Demand load: returns value + latency + fill source.

        Observation objects are only built when the core has a prefetcher
        that would react to them; baseline (no-prefetcher) runs skip that
        construction entirely.
        """
        l1d = self.l1ds[core_id]
        if self._exclusive:
            self._yield_exclusivity(core_id, addr & self._block_mask)
        latency, level = l1d.access(addr, now, write=False)
        value = self.memory.read(addr)
        prefetcher = self._active[core_id]
        if prefetcher is not None:
            observation = Observation(
                op="load",
                core_id=core_id,
                pc=pc,
                addr=addr,
                block_addr=addr & self._block_mask,
                hit=(level == l1d.level_name),
                now=now,
                scale=scale,
                speculative=speculative,
            )
            requests = prefetcher.observe(observation, l1d.contains)
            if requests:
                self._issue_requests(core_id, now, requests)
        return AccessOutcome(value=value, latency=latency, level=level)

    def store(
        self,
        core_id: int,
        addr: int,
        value: int,
        now: int,
        pc: int = 0,
        speculative: bool = False,
    ) -> int:
        """Demand store: write-allocate; returns the latency the core pays.

        Functional state goes straight to main memory (write-through
        functionally, write-back for timing).  Other cores' L1 copies are
        invalidated (write-invalidate coherence).
        """
        l1d = self.l1ds[core_id]
        block_addr = addr & self._block_mask
        if self._exclusive:
            self._yield_exclusivity(core_id, block_addr)
        latency, level = l1d.access(addr, now, write=True)
        self.memory.write(addr, value)
        if self.num_cores > 1:
            for other_id, other in enumerate(self.l1ds):
                if other_id != core_id and other.invalidate_block(block_addr):
                    other.stats.cross_invalidations += 1
        prefetcher = self._active[core_id]
        if prefetcher is not None:
            observation = Observation(
                op="store",
                core_id=core_id,
                pc=pc,
                addr=addr,
                block_addr=block_addr,
                hit=(level == l1d.level_name),
                now=now,
                scale=1,
                speculative=speculative,
            )
            requests = prefetcher.observe(observation, l1d.contains)
            if requests:
                self._issue_requests(core_id, now, requests)
        if self.config.nonblocking_stores:
            return 1
        return latency

    def flush(self, core_id: int, addr: int, now: int) -> int:
        """clflush: evict the line from every cache level, everywhere.

        ``CacheStats.flushes`` counts lines flushed from each cache
        (``Cache.flush_block`` increments it when a copy existed there); the
        per-instruction count is ``CoreStats.flushes``, kept by the core.
        """
        block_addr = self.amap.block_addr(addr)
        self._exclusive.pop(block_addr, None)
        for l1d in self.l1ds:
            l1d.flush_block(block_addr)
        self.l2.flush_block(block_addr)
        return self.config.flush_latency

    # -- software prefetch (prefetch / prefetchw) ------------------------------

    def software_prefetch(
        self, core_id: int, addr: int, now: int, write: bool = False
    ) -> AccessOutcome:
        """Execute a ``prefetch`` (``write=False``) or ``prefetchw``.

        Non-faulting and invisible to the hardware prefetchers — the defense
        and the basic prefetchers observe demand traffic only, which is what
        makes a prefetch-based probe attractive to an attacker.  The returned
        latency composes exactly like a load's (L1 hit / L2 hit / memory), so
        a timed prefetch distinguishes where the line resided.

        ``prefetchw`` additionally upgrades ownership: every other core's L1
        copy is invalidated (paying ``prefetchw_snoop_latency`` when one
        existed) and the issuing core is recorded as the line's exclusive
        owner until another core touches the line.

        Like any prefetch, it is droppable: a miss that finds no free
        prefetch MSHR is squashed (x86 semantics) — the instruction retires
        after the tag lookup with no fill and no ownership change.
        """
        l1d = self.l1ds[core_id]
        block_addr = addr & self._block_mask
        if not l1d.contains(block_addr) and not l1d.mshr.prefetch_available(now):
            l1d.mshr.prefetch_drops += 1
            l1d.stats.prefetch_dropped += 1
            return AccessOutcome(value=0, latency=l1d.hit_latency, level="DROPPED")
        snooped = False
        if write:
            for other_id, other in enumerate(self.l1ds):
                if other_id != core_id and other.invalidate_block(block_addr):
                    other.stats.cross_invalidations += 1
                    snooped = True
            self._exclusive[block_addr] = core_id
        else:
            self._yield_exclusivity(core_id, block_addr)
        latency, level = l1d.access(addr, now, write=False, demand=False)
        if snooped:
            latency += self.config.prefetchw_snoop_latency
        return AccessOutcome(value=0, latency=latency, level=level)

    # -- snapshot/restore ------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """All mutable hierarchy state: caches, memory, logs, ownership.

        Prefetchers are per-core state *attached to* the hierarchy, so they
        snapshot here too (``None`` for cores with no prefetcher attached).
        """
        return {
            "memory": self.memory.snapshot(),
            "l2": self.l2.snapshot(),
            "l1ds": tuple(l1d.snapshot() for l1d in self.l1ds),
            "logs": tuple(
                (tuple(log.counts.items()), tuple(log.timeline))
                for log in self._logs
            ),
            "exclusive": tuple(self._exclusive.items()),
            "ownership_steals": self.ownership_steals,
            "prefetchers": tuple(
                prefetcher.snapshot() if prefetcher is not None else None
                for prefetcher in (
                    self._prefetchers.get(core_id)
                    for core_id in range(self.num_cores)
                )
            ),
        }

    def restore(self, data: dict[str, Any]) -> None:
        """Inverse of :meth:`snapshot`; attachment shape must match."""
        require_keys(
            data,
            ("memory", "l2", "l1ds", "logs", "exclusive",
             "ownership_steals", "prefetchers"),
            "MemoryHierarchy",
        )
        if len(data["l1ds"]) != self.num_cores:
            raise SnapshotError(
                f"MemoryHierarchy: snapshot has {len(data['l1ds'])} L1Ds, "
                f"hierarchy has {self.num_cores}"
            )
        self.memory.restore(data["memory"])
        self.l2.restore(data["l2"])
        for l1d, snap in zip(self.l1ds, data["l1ds"]):
            l1d.restore(snap)
        for log, (counts, timeline) in zip(self._logs, data["logs"]):
            log.counts = dict(counts)
            log.timeline = list(timeline)
        self._exclusive = dict(data["exclusive"])
        self.ownership_steals = data["ownership_steals"]
        for core_id, snap in enumerate(data["prefetchers"]):
            prefetcher = self._prefetchers.get(core_id)
            if (prefetcher is None) != (snap is None):
                raise SnapshotError(
                    f"MemoryHierarchy: core {core_id} prefetcher attachment "
                    f"does not match the snapshot"
                )
            if prefetcher is not None:
                prefetcher.restore(snap)

    # -- structural queries ---------------------------------------------------

    def l1_contains(self, core_id: int, addr: int) -> bool:
        return self.l1ds[core_id].contains(addr)

    def read_word(self, addr: int) -> int:
        """Functional read without timing effects (tests/analysis)."""
        return self.memory.peek(addr)

    # -- ownership (prefetchw) -------------------------------------------------

    def _yield_exclusivity(self, core_id: int, block_addr: int) -> None:
        """Steal an exclusively held line when another core touches it.

        The owner's L1 copy is invalidated (the line "migrates" to the
        toucher, making the loss observable in the owner's later timings) and
        the exclusivity record is dropped.  An access by the owner itself
        keeps ownership.
        """
        owner = self._exclusive.get(block_addr)
        if owner is None or owner == core_id:
            return
        if self.l1ds[owner].invalidate_block(block_addr):
            self.l1ds[owner].stats.cross_invalidations += 1
        del self._exclusive[block_addr]
        self.ownership_steals += 1

    # -- inclusive back-invalidation ------------------------------------------

    def _back_invalidate(self, block_addr: int, now: int) -> None:
        self._exclusive.pop(block_addr, None)
        for core_id, l1d in enumerate(self.l1ds):
            if l1d.invalidate_block(block_addr):
                l1d.stats.back_invalidations += 1
                prefetcher = self._prefetchers.get(core_id)
                if prefetcher is not None:
                    requests = prefetcher.on_back_invalidation(block_addr, now)
                    if requests:
                        self._issue_requests(core_id, now, requests)
