"""The multi-core memory hierarchy.

Per-core L1D caches over a shared inclusive L2 (the LLC in the paper's
cross-core experiments) over main memory.  The hierarchy owns:

* demand load/store routing with per-level latency composition,
* clflush-everywhere semantics (x86 ``clflush``),
* cross-L1 write invalidation (write-invalidate coherence-lite),
* inclusive back-invalidation on L2 evictions (the hook BITP listens to),
* prefetcher notification and prefetch issue, with per-component counts and
  timestamped timelines (Figs. 9 and 11 read these).

The L1I is assumed ideal (instruction fetch costs are folded into the core's
per-instruction base cost); the defense and all attacks live entirely on the
data side.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mem.cache import Cache, MemoryPort
from repro.mem.memory import MainMemory
from repro.prefetch.base import Observation, Prefetcher, PrefetchRequest
from repro.utils.addr import AddressMap


@dataclass(frozen=True)
class HierarchyConfig:
    """Geometry and latencies; defaults mirror the paper's gem5 baseline."""

    l1d_size: int = 64 * 1024
    l1d_assoc: int = 2
    l2_size: int = 2 * 1024 * 1024
    l2_assoc: int = 16
    l1_hit_latency: int = 4
    l2_hit_latency: int = 12
    memory_latency: int = 120
    flush_latency: int = 30
    mshr_entries: int = 4
    mshr_max_merges: int = 20
    nonblocking_stores: bool = True
    record_timelines: bool = True


@dataclass(frozen=True)
class AccessOutcome:
    """Result of one demand access."""

    value: int
    latency: int
    level: str  # "L1D", "L2", "MEM", "INFLIGHT", "MSHR"


@dataclass
class _PrefetchLog:
    counts: dict[str, int] = field(default_factory=dict)
    timeline: list[tuple[int, str, int]] = field(default_factory=list)


class MemoryHierarchy:
    """Cores' window onto memory: caches + coherence-lite + prefetchers."""

    def __init__(
        self,
        num_cores: int,
        config: HierarchyConfig | None = None,
        amap: AddressMap | None = None,
        memory: MainMemory | None = None,
    ) -> None:
        self.config = config or HierarchyConfig()
        self.amap = amap or AddressMap()
        self.num_cores = num_cores
        self.memory = memory or MainMemory(latency=self.config.memory_latency)
        self.memory.latency = self.config.memory_latency
        self._port = MemoryPort(self.memory)
        self.l2 = Cache(
            "L2",
            size=self.config.l2_size,
            assoc=self.config.l2_assoc,
            amap=self.amap,
            hit_latency=self.config.l2_hit_latency,
            parent=self._port,
            mshr_entries=self.config.mshr_entries * max(num_cores, 1),
            mshr_max_merges=self.config.mshr_max_merges,
        )
        self.l2.on_evict = self._back_invalidate
        self.l1ds = [
            Cache(
                f"L1D{core_id}",
                size=self.config.l1d_size,
                assoc=self.config.l1d_assoc,
                amap=self.amap,
                hit_latency=self.config.l1_hit_latency,
                parent=self.l2,
                mshr_entries=self.config.mshr_entries,
                mshr_max_merges=self.config.mshr_max_merges,
            )
            for core_id in range(num_cores)
        ]
        self._prefetchers: dict[int, Prefetcher] = {}
        self._logs = [_PrefetchLog() for _ in range(num_cores)]

    # -- prefetcher plumbing -------------------------------------------------

    def attach_prefetcher(self, core_id: int, prefetcher: Prefetcher) -> None:
        """Install ``prefetcher`` on core ``core_id``'s L1D."""
        self._prefetchers[core_id] = prefetcher

    def prefetcher_for(self, core_id: int) -> Prefetcher | None:
        return self._prefetchers.get(core_id)

    def prefetch_counts(self, core_id: int) -> dict[str, int]:
        """Issued prefetch counts by component for one core."""
        return dict(self._logs[core_id].counts)

    def prefetch_timeline(self, core_id: int) -> list[tuple[int, str, int]]:
        """(cycle, component, block address) tuples for issued prefetches."""
        return list(self._logs[core_id].timeline)

    def total_prefetch_counts(self) -> dict[str, int]:
        """Issued prefetch counts by component summed over all cores."""
        totals: dict[str, int] = {}
        for log in self._logs:
            for component, count in log.counts.items():
                totals[component] = totals.get(component, 0) + count
        return totals

    def _issue_requests(
        self, core_id: int, now: int, requests: list[PrefetchRequest]
    ) -> int:
        issued = 0
        l1d = self.l1ds[core_id]
        log = self._logs[core_id]
        for request in requests:
            ready = l1d.prefetch(request.addr, now, request.component)
            if ready is None:
                continue
            issued += 1
            component = request.component
            log.counts[component] = log.counts.get(component, 0) + 1
            if self.config.record_timelines:
                log.timeline.append(
                    (now, component, self.amap.block_addr(request.addr))
                )
        return issued

    def _notify(self, core_id: int, observation: Observation) -> None:
        prefetcher = self._prefetchers.get(core_id)
        if prefetcher is None:
            return
        l1d = self.l1ds[core_id]
        requests = prefetcher.observe(observation, l1d.contains)
        if requests:
            self._issue_requests(core_id, observation.now, requests)

    # -- demand interface ----------------------------------------------------

    def load(
        self,
        core_id: int,
        addr: int,
        now: int,
        pc: int = 0,
        scale: int = 1,
        speculative: bool = False,
    ) -> AccessOutcome:
        """Demand load: returns value + latency + fill source."""
        l1d = self.l1ds[core_id]
        latency, level = l1d.access(addr, now, write=False)
        value = self.memory.read(addr)
        observation = Observation(
            op="load",
            core_id=core_id,
            pc=pc,
            addr=addr,
            block_addr=self.amap.block_addr(addr),
            hit=(level == l1d.level_name),
            now=now,
            scale=scale,
            speculative=speculative,
        )
        self._notify(core_id, observation)
        return AccessOutcome(value=value, latency=latency, level=level)

    def store(
        self,
        core_id: int,
        addr: int,
        value: int,
        now: int,
        pc: int = 0,
        speculative: bool = False,
    ) -> int:
        """Demand store: write-allocate; returns the latency the core pays.

        Functional state goes straight to main memory (write-through
        functionally, write-back for timing).  Other cores' L1 copies are
        invalidated (write-invalidate coherence).
        """
        l1d = self.l1ds[core_id]
        latency, level = l1d.access(addr, now, write=True)
        self.memory.write(addr, value)
        block_addr = self.amap.block_addr(addr)
        for other_id, other in enumerate(self.l1ds):
            if other_id != core_id and other.invalidate_block(block_addr):
                other.stats.cross_invalidations += 1
        observation = Observation(
            op="store",
            core_id=core_id,
            pc=pc,
            addr=addr,
            block_addr=block_addr,
            hit=(level == l1d.level_name),
            now=now,
            scale=1,
            speculative=speculative,
        )
        self._notify(core_id, observation)
        if self.config.nonblocking_stores:
            return 1
        return latency

    def flush(self, core_id: int, addr: int, now: int) -> int:
        """clflush: evict the line from every cache level, everywhere."""
        block_addr = self.amap.block_addr(addr)
        for l1d in self.l1ds:
            l1d.flush_block(block_addr)
        self.l2.flush_block(block_addr)
        self.l1ds[core_id].stats.flushes += 1
        return self.config.flush_latency

    # -- structural queries ---------------------------------------------------

    def l1_contains(self, core_id: int, addr: int) -> bool:
        return self.l1ds[core_id].contains(addr)

    def read_word(self, addr: int) -> int:
        """Functional read without timing effects (tests/analysis)."""
        return self.memory.peek(addr)

    # -- inclusive back-invalidation ------------------------------------------

    def _back_invalidate(self, block_addr: int, now: int) -> None:
        for core_id, l1d in enumerate(self.l1ds):
            if l1d.invalidate_block(block_addr):
                l1d.stats.back_invalidations += 1
                prefetcher = self._prefetchers.get(core_id)
                if prefetcher is not None:
                    requests = prefetcher.on_back_invalidation(block_addr, now)
                    if requests:
                        self._issue_requests(core_id, now, requests)
