"""Memory system: main memory, caches, MSHRs and the hierarchy.

Functional state (the actual word values) always lives in
:class:`MainMemory`; caches model *timing and presence only*.  This keeps
write-back timing modelling orthogonal to functional correctness — a common
simulator structure (gem5's atomic mode does the same).
"""

from repro.mem.memory import MainMemory
from repro.mem.cacheline import CacheLine
from repro.mem.mshr import MSHRFile
from repro.mem.cache import Cache, CacheStats
from repro.mem.hierarchy import AccessOutcome, MemoryHierarchy

__all__ = [
    "MainMemory",
    "CacheLine",
    "MSHRFile",
    "Cache",
    "CacheStats",
    "AccessOutcome",
    "MemoryHierarchy",
]
