"""Miss-status handling registers.

The paper's gem5 baseline has 4 MSHRs, each merging up to 20 requests to the
same line.  Here an MSHR entry is an outstanding fill identified by its block
address and completion time.  Demand misses that find no free entry *wait*
for the earliest completion; prefetches that find no free entry are
*dropped* (gem5 squashes prefetches on full MSHRs the same way).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class _Entry:
    block_addr: int
    ready_time: int
    merges: int = 0
    is_prefetch: bool = False


class MSHRFile:
    """Outstanding-miss bookkeeping for one cache.

    Demand misses and prefetches draw from separate pools (``num_entries``
    vs ``prefetch_entries``), modelling the dedicated prefetch issue queue
    real prefetchers ship with; a saturated demand stream therefore cannot
    permanently starve the defense's prefetches (and vice versa).
    """

    def __init__(
        self,
        num_entries: int = 4,
        max_merges: int = 20,
        prefetch_entries: int = 2,
    ) -> None:
        self.num_entries = num_entries
        self.max_merges = max_merges
        self.prefetch_entries = prefetch_entries
        self._entries: list[_Entry] = []
        self.demand_waits = 0
        self.total_wait_cycles = 0
        self.merges = 0
        self.prefetch_drops = 0
        self.prefetch_squashes = 0

    def _purge(self, now: int) -> None:
        self._entries = [e for e in self._entries if e.ready_time > now]

    def occupancy(self, now: int) -> int:
        """Number of fills still outstanding at ``now``."""
        self._purge(now)
        return len(self._entries)

    def available(self, now: int) -> bool:
        """True when a new demand fill could start immediately at ``now``."""
        self._purge(now)
        demand = sum(1 for e in self._entries if not e.is_prefetch)
        return demand < self.num_entries

    def prefetch_available(self, now: int) -> bool:
        """True when a prefetch slot is free at ``now``."""
        self._purge(now)
        inflight = sum(1 for e in self._entries if e.is_prefetch)
        return inflight < self.prefetch_entries

    def merge(self, block_addr: int, now: int) -> int | None:
        """Try to merge an access to an in-flight line.

        Returns the outstanding fill's ready time, or ``None`` when no entry
        covers ``block_addr`` or its merge budget is exhausted.
        """
        self._purge(now)
        for entry in self._entries:
            if entry.block_addr == block_addr:
                if entry.merges >= self.max_merges:
                    return None
                entry.merges += 1
                self.merges += 1
                return entry.ready_time
        return None

    def allocate_demand(self, block_addr: int, now: int, fill_time: int) -> tuple[int, int]:
        """Allocate an entry for a demand miss.

        Demand misses have priority: when all entries are busy, an
        outstanding *prefetch* entry is squashed to make room (gem5's
        policy); only when every entry is a demand fill does the miss wait
        for the earliest completion.

        Returns:
            ``(start_time, ready_time)`` — the fill begins at ``start_time``
            (>= now) and data arrives at ``ready_time``.
        """
        self._purge(now)
        start_time = now
        demand_entries = [e for e in self._entries if not e.is_prefetch]
        if len(demand_entries) >= self.num_entries:
            earliest = min(entry.ready_time for entry in demand_entries)
            start_time = max(now, earliest)
            self.demand_waits += 1
            self.total_wait_cycles += start_time - now
            self._purge(start_time)
        ready_time = start_time + fill_time
        self._entries.append(_Entry(block_addr=block_addr, ready_time=ready_time))
        return start_time, ready_time

    def allocate_prefetch_fill(self, block_addr: int, now: int, fill_time: int) -> int:
        """Book-keep a prefetch-triggered fill at a lower level.

        Capacity was already enforced at the issuing (L1) level, so this
        never drops or waits; the entry is prefetch-class so it cannot block
        later demand misses at this level.
        """
        self._purge(now)
        ready_time = now + fill_time
        self._entries.append(
            _Entry(block_addr=block_addr, ready_time=ready_time, is_prefetch=True)
        )
        return ready_time

    def allocate_prefetch(self, block_addr: int, now: int, fill_time: int) -> int | None:
        """Allocate an entry for a prefetch, or drop it when full.

        Returns the fill's ready time, or ``None`` when the prefetch was
        dropped because no MSHR was free.
        """
        self._purge(now)
        inflight = sum(1 for e in self._entries if e.is_prefetch)
        if inflight >= self.prefetch_entries:
            self.prefetch_drops += 1
            return None
        ready_time = now + fill_time
        self._entries.append(
            _Entry(block_addr=block_addr, ready_time=ready_time, is_prefetch=True)
        )
        return ready_time
