"""Miss-status handling registers.

The paper's gem5 baseline has 4 MSHRs, each merging up to 20 requests to the
same line.  Here an MSHR entry is an outstanding fill identified by its block
address and completion time.  Demand misses that find no free entry first
*squash* an outstanding prefetch fill (demand priority, gem5's policy) and
only *wait* for the earliest completion when every entry is a demand fill;
prefetches that find no free entry are *dropped*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.snapshot import require_keys


@dataclass(slots=True)
class _Entry:
    block_addr: int
    ready_time: int
    merges: int = 0
    is_prefetch: bool = False
    # Demand fill running in a squashed prefetch's slot: counts against the
    # prefetch pool until it completes (the slot is physically occupied).
    borrows_prefetch_slot: bool = False
    # A demand access consumed this fill (inflight hit or merge): the entry
    # now has a demand waiter, so demand-priority squashing must not
    # victimize it — cancelling would revoke data a load was promised.
    demand_consumed: bool = False


class MSHRFile:
    """Outstanding-miss bookkeeping for one cache.

    Demand misses and prefetches draw from separate pools (``num_entries``
    vs ``prefetch_entries``), modelling the dedicated prefetch issue queue
    real prefetchers ship with; a saturated demand stream therefore cannot
    permanently starve the defense's prefetches (and vice versa).
    """

    __slots__ = (
        "num_entries",
        "max_merges",
        "prefetch_entries",
        "_entries",
        "demand_waits",
        "total_wait_cycles",
        "merges",
        "prefetch_drops",
        "prefetch_squashes",
        "last_squashed_block",
    )

    def __init__(
        self,
        num_entries: int = 4,
        max_merges: int = 20,
        prefetch_entries: int = 2,
    ) -> None:
        self.num_entries = num_entries
        self.max_merges = max_merges
        self.prefetch_entries = prefetch_entries
        self._entries: list[_Entry] = []
        self.demand_waits = 0
        self.total_wait_cycles = 0
        self.merges = 0
        self.prefetch_drops = 0
        self.prefetch_squashes = 0
        # Block address of the prefetch entry squashed by the most recent
        # allocate_demand call (None when it squashed nothing); the owning
        # cache reads this to abandon the in-flight fill itself.
        self.last_squashed_block: int | None = None

    def snapshot(self) -> dict[str, Any]:
        """Outstanding entries (flat tuples, in order) plus counters."""
        return {
            "entries": tuple(
                (e.block_addr, e.ready_time, e.merges, e.is_prefetch,
                 e.borrows_prefetch_slot, e.demand_consumed)
                for e in self._entries
            ),
            "demand_waits": self.demand_waits,
            "total_wait_cycles": self.total_wait_cycles,
            "merges": self.merges,
            "prefetch_drops": self.prefetch_drops,
            "prefetch_squashes": self.prefetch_squashes,
            "last_squashed_block": self.last_squashed_block,
        }

    def restore(self, data: dict[str, Any]) -> None:
        """Inverse of :meth:`snapshot`."""
        require_keys(
            data,
            ("entries", "demand_waits", "total_wait_cycles", "merges",
             "prefetch_drops", "prefetch_squashes", "last_squashed_block"),
            "MSHRFile",
        )
        self._entries = [
            _Entry(
                block_addr=block_addr,
                ready_time=ready_time,
                merges=merges,
                is_prefetch=is_prefetch,
                borrows_prefetch_slot=borrows,
                demand_consumed=consumed,
            )
            for (block_addr, ready_time, merges, is_prefetch, borrows,
                 consumed) in data["entries"]
        ]
        self.demand_waits = data["demand_waits"]
        self.total_wait_cycles = data["total_wait_cycles"]
        self.merges = data["merges"]
        self.prefetch_drops = data["prefetch_drops"]
        self.prefetch_squashes = data["prefetch_squashes"]
        self.last_squashed_block = data["last_squashed_block"]

    def _purge(self, now: int) -> None:
        self._entries = [e for e in self._entries if e.ready_time > now]

    def occupancy(self, now: int) -> int:
        """Number of fills still outstanding at ``now``."""
        self._purge(now)
        return len(self._entries)

    def available(self, now: int) -> bool:
        """True when a new demand fill could start immediately at ``now``.

        Mirrors :meth:`allocate_demand` exactly: a free demand slot
        (borrowed-slot fills live in the prefetch pool and don't count), or
        a squashable prefetch entry whose slot a demand could take over.
        """
        self._purge(now)
        demand = sum(
            1
            for e in self._entries
            if not e.is_prefetch and not e.borrows_prefetch_slot
        )
        if demand < self.num_entries:
            return True
        return any(
            e.is_prefetch and not e.demand_consumed for e in self._entries
        )

    def prefetch_available(self, now: int) -> bool:
        """True when a prefetch slot is free at ``now``.

        Demand fills that squashed a prefetch occupy its slot until they
        complete, so they count against the pool here.
        """
        self._purge(now)
        inflight = sum(
            1 for e in self._entries if e.is_prefetch or e.borrows_prefetch_slot
        )
        return inflight < self.prefetch_entries

    def merge(self, block_addr: int, now: int, demand: bool = True) -> int | None:
        """Try to merge an access to an in-flight line.

        Returns the outstanding fill's ready time, or ``None`` when no entry
        covers ``block_addr`` or its merge budget is exhausted.  A demand
        merge pins the entry against demand-priority squashing (it now has
        a waiter).
        """
        self._purge(now)
        for entry in self._entries:
            if entry.block_addr == block_addr:
                if entry.merges >= self.max_merges:
                    return None
                entry.merges += 1
                self.merges += 1
                if demand:
                    entry.demand_consumed = True
                return entry.ready_time
        return None

    def mark_demand_consumed(self, block_addr: int, now: int) -> None:
        """Pin ``block_addr``'s outstanding fill: a demand access hit it.

        Called by the cache on a demand inflight-hit (the line exists with
        a future ready time, so the access never reaches :meth:`merge`);
        the entry becomes unsquashable because a load's charged latency
        depends on the fill actually landing.
        """
        self._purge(now)
        for entry in self._entries:
            if entry.block_addr == block_addr:
                entry.demand_consumed = True
                return

    def allocate_demand(self, block_addr: int, now: int, fill_time: int) -> tuple[int, int]:
        """Allocate an entry for a demand miss.

        Demand misses have priority: when all demand entries are busy, an
        outstanding *prefetch* entry is squashed to make room (gem5's
        policy) — the earliest-ready prefetch fill is abandoned and the
        demand miss starts immediately in its slot.  Only when no prefetch
        entry is outstanding does the miss wait for the earliest demand
        completion.

        Returns:
            ``(start_time, ready_time)`` — the fill begins at ``start_time``
            (>= now) and data arrives at ``ready_time``.
        """
        self._purge(now)
        start_time = now
        borrows = False
        self.last_squashed_block = None
        # Borrowed-slot fills occupy the prefetch pool, not the demand pool.
        demand_entries = [
            e
            for e in self._entries
            if not e.is_prefetch and not e.borrows_prefetch_slot
        ]
        if len(demand_entries) >= self.num_entries:
            prefetch_entries = [
                e
                for e in self._entries
                if e.is_prefetch and not e.demand_consumed
            ]
            if prefetch_entries:
                victim = min(prefetch_entries, key=lambda e: e.ready_time)
                self._entries.remove(victim)
                self.prefetch_squashes += 1
                self.last_squashed_block = victim.block_addr
                borrows = True
            else:
                earliest = min(entry.ready_time for entry in demand_entries)
                start_time = max(now, earliest)
                self.demand_waits += 1
                self.total_wait_cycles += start_time - now
                self._purge(start_time)
        ready_time = start_time + fill_time
        self._entries.append(
            _Entry(
                block_addr=block_addr,
                ready_time=ready_time,
                borrows_prefetch_slot=borrows,
            )
        )
        return start_time, ready_time

    def allocate_prefetch_fill(self, block_addr: int, now: int, fill_time: int) -> int:
        """Book-keep a prefetch-triggered fill at a lower level.

        Capacity was already enforced at the issuing (L1) level, so this
        never drops or waits; the entry is prefetch-class so it cannot block
        later demand misses at this level.
        """
        self._purge(now)
        ready_time = now + fill_time
        self._entries.append(
            _Entry(block_addr=block_addr, ready_time=ready_time, is_prefetch=True)
        )
        return ready_time

    def allocate_prefetch(self, block_addr: int, now: int, fill_time: int) -> int | None:
        """Allocate an entry for a prefetch, or drop it when full.

        Returns the fill's ready time, or ``None`` when the prefetch was
        dropped because no MSHR was free.
        """
        self._purge(now)
        inflight = sum(
            1 for e in self._entries if e.is_prefetch or e.borrows_prefetch_slot
        )
        if inflight >= self.prefetch_entries:
            self.prefetch_drops += 1
            return None
        ready_time = now + fill_time
        self._entries.append(
            _Entry(block_addr=block_addr, ready_time=ready_time, is_prefetch=True)
        )
        return ready_time
