"""Set-associative write-back cache with true LRU, MSHRs and in-flight fills.

Latency composition: a hit costs ``hit_latency``; a miss costs
``hit_latency`` (tag lookup) plus whatever the parent level reports, and the
line is inserted with a future ``ready_time`` so later accesses that race the
fill merge into it.  With the default configuration this yields the three
latency classes the attacks in the paper distinguish:

* L1 hit:   4 cycles
* L2 hit:   16 cycles (4 + 12)
* memory:   136 cycles (4 + 12 + 120)

Lookup is O(1): each set keeps a ``{block_addr: way}`` tag index alongside
the way array, so the demand path never scans ways linearly (the seed code
walked all ``assoc`` ways per access — 16 for the L2).  The index holds
exactly the valid lines; every fill/invalidate keeps it in sync.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ConfigError
from repro.mem.cacheline import CacheLine
from repro.mem.mshr import MSHRFile
from repro.mem.memory import MainMemory
from repro.snapshot import require_keys
from repro.utils.addr import AddressMap


@dataclass(slots=True)
class CacheStats:
    """Per-cache counters; Fig. 10 consumes ``miss_latency_total``."""

    demand_accesses: int = 0
    hits: int = 0
    misses: int = 0
    inflight_hits: int = 0
    mshr_merge_hits: int = 0
    miss_latency_total: int = 0
    prefetch_issued: int = 0
    prefetch_dropped: int = 0
    prefetch_squashed: int = 0
    useful_prefetches: int = 0
    evictions: int = 0
    writebacks: int = 0
    back_invalidations: int = 0
    cross_invalidations: int = 0
    flushes: int = 0

    @property
    def miss_rate(self) -> float:
        if self.demand_accesses == 0:
            return 0.0
        return self.misses / self.demand_accesses

    def as_dict(self) -> dict[str, int | float]:
        data = {name: getattr(self, name) for name in self.__dataclass_fields__}
        data["miss_rate"] = self.miss_rate
        return data


# Field order for the flat stats tuple in Cache.snapshot().
_CACHE_STATS_FIELDS = tuple(CacheStats.__dataclass_fields__)


class MemoryPort:
    """Terminal 'parent' wrapping main memory's flat latency."""

    __slots__ = ("_memory",)

    level_name = "MEM"

    def __init__(self, memory: MainMemory) -> None:
        self._memory = memory

    def access(
        self, addr: int, now: int, write: bool = False, demand: bool = True
    ) -> tuple[int, str]:
        return self._memory.latency, "MEM"

    def mark_dirty(self, block_addr: int) -> None:
        """Writebacks reaching memory need no bookkeeping."""


# Placeholder stamp row for sets whose way arrays are not materialised yet;
# never written (LRU stamps are only touched after a set's first fill swaps
# in a real row).
_EMPTY_STAMPS: list[int] = []


class Cache:
    """One level of set-associative cache."""

    __slots__ = (
        "name",
        "level_name",
        "size",
        "assoc",
        "amap",
        "hit_latency",
        "parent",
        "num_sets",
        "_sets",
        "_stamps",
        "_tags",
        "_clock",
        "_block_mask",
        "_block_bits",
        "_set_mask",
        "mshr",
        "stats",
        "on_evict",
    )

    def __init__(
        self,
        name: str,
        size: int,
        assoc: int,
        amap: AddressMap,
        hit_latency: int,
        parent: "Cache | MemoryPort",
        mshr_entries: int = 4,
        mshr_max_merges: int = 20,
    ) -> None:
        block = amap.block_size
        if size % (assoc * block) != 0:
            raise ConfigError(
                f"{name}: size {size} not divisible by assoc*block "
                f"({assoc}*{block})"
            )
        self.name = name
        # "L1D0" -> "L1D" (strip the core id), but keep "L2" intact.
        stripped = name.rstrip("0123456789")
        self.level_name = stripped if len(stripped) >= 2 else name
        self.size = size
        self.assoc = assoc
        self.amap = amap
        self.hit_latency = hit_latency
        self.parent = parent
        self.num_sets = size // (assoc * block)
        if self.num_sets & (self.num_sets - 1):
            raise ConfigError(f"{name}: num_sets {self.num_sets} not a power of two")
        # Way arrays materialise lazily on a set's first miss: a 2MB L2 has
        # 32K lines, and eagerly allocating them dominated short runs.
        self._sets: list[list[CacheLine] | None] = [None] * self.num_sets
        self._stamps: list[list[int]] = [_EMPTY_STAMPS] * self.num_sets
        # Per-set {block_addr: way} index over the valid lines.
        self._tags: list[dict[int, int]] = [{} for _ in range(self.num_sets)]
        self._clock = 0
        # Hoisted address arithmetic (amap.block_addr/set_index per access
        # cost a call plus a power-of-two re-check each).
        self._block_mask = ~(block - 1)
        self._block_bits = block.bit_length() - 1
        self._set_mask = self.num_sets - 1
        self.mshr = MSHRFile(num_entries=mshr_entries, max_merges=mshr_max_merges)
        self.stats = CacheStats()
        # Set by the hierarchy on the shared L2 to back-invalidate L1 copies.
        self.on_evict: Callable[[int, int], None] | None = None

    # -- lookup helpers ------------------------------------------------------

    def _touch(self, set_index: int, way: int) -> None:
        self._clock += 1
        self._stamps[set_index][way] = self._clock

    def contains(self, block_addr: int) -> bool:
        """True when the line is present (including in-flight fills)."""
        block_addr &= self._block_mask
        set_index = (block_addr >> self._block_bits) & self._set_mask
        return block_addr in self._tags[set_index]

    def contains_ready(self, block_addr: int, now: int) -> bool:
        """True when the line is present and its data has arrived."""
        line = self.line_for(block_addr)
        return line is not None and line.ready(now)

    def line_for(self, block_addr: int) -> CacheLine | None:
        """The line holding ``block_addr`` or None (tests/analysis)."""
        block_addr &= self._block_mask
        set_index = (block_addr >> self._block_bits) & self._set_mask
        way = self._tags[set_index].get(block_addr)
        if way is None:
            return None
        ways = self._sets[set_index]
        assert ways is not None  # the tag index only covers materialised sets
        return ways[way]

    # -- replacement ---------------------------------------------------------

    def _victim_way(self, set_index: int) -> int:
        ways = self._sets[set_index]
        if ways is None:
            self._sets[set_index] = [CacheLine() for _ in range(self.assoc)]
            self._stamps[set_index] = [0] * self.assoc
            return 0
        if len(self._tags[set_index]) < self.assoc:
            for way, line in enumerate(ways):
                if not line.valid:
                    return way
        stamps = self._stamps[set_index]
        return stamps.index(min(stamps))

    def _evict(self, set_index: int, way: int, now: int) -> None:
        ways = self._sets[set_index]
        assert ways is not None  # _victim_way materialised the set
        line = ways[way]
        if not line.valid:
            return
        self.stats.evictions += 1
        block_addr = line.block_addr
        # Back-invalidate child copies first: a dirty child line writes back
        # into this line (mark_dirty), so the dirty check below sees it and
        # the modified data propagates instead of dying with the eviction.
        if self.on_evict is not None:
            self.on_evict(block_addr, now)
        if line.dirty:
            self.stats.writebacks += 1
            self.parent.mark_dirty(block_addr)
        tags = self._tags[set_index]
        if tags.get(block_addr) == way:
            del tags[block_addr]
        line.invalidate()

    def _insert(
        self,
        block_addr: int,
        now: int,
        ready_time: int,
        prefetched: bool,
        component: str | None,
    ) -> CacheLine:
        set_index = (block_addr >> self._block_bits) & self._set_mask
        way = self._victim_way(set_index)
        self._evict(set_index, way, now)
        ways = self._sets[set_index]
        assert ways is not None  # _victim_way materialised the set
        line = ways[way]
        line.fill(
            block_addr, ready_time, prefetched=prefetched, component=component
        )
        self._tags[set_index][block_addr] = way
        self._touch(set_index, way)
        return line

    def mark_dirty(self, block_addr: int) -> None:
        """Receive a writeback from a child (inclusive hierarchy)."""
        line = self.line_for(block_addr)
        if line is not None:
            line.dirty = True
        # A missing line (back-invalidated earlier) silently reaches memory.

    # -- demand path ---------------------------------------------------------

    def access(
        self, addr: int, now: int, write: bool = False, demand: bool = True
    ) -> tuple[int, str]:
        """Access ``addr`` at time ``now``; returns (latency, source level).

        ``demand=False`` is the prefetch-fill path used by child caches: the
        state transitions are identical but the counters differ.
        """
        block_addr = addr & self._block_mask
        set_index = (block_addr >> self._block_bits) & self._set_mask
        stats = self.stats
        if demand:
            stats.demand_accesses += 1

        way = self._tags[set_index].get(block_addr)
        if way is not None:
            ways = self._sets[set_index]
            assert ways is not None  # the tag index only covers materialised sets
            line = ways[way]
            self._clock += 1
            self._stamps[set_index][way] = self._clock
            if write:
                line.dirty = True
            if line.ready_time <= now:
                if demand:
                    stats.hits += 1
                    if line.prefetched and not line.useful_counted:
                        stats.useful_prefetches += 1
                        line.useful_counted = True
                return self.hit_latency, self.level_name
            # In-flight fill: merge with it and pay the residual latency.
            latency = line.ready_time - now
            if latency < self.hit_latency:
                latency = self.hit_latency
            if demand:
                stats.inflight_hits += 1
                stats.miss_latency_total += latency - self.hit_latency
                if line.prefetched:
                    # The load's charged latency assumes this fill lands:
                    # pin its MSHR entry against demand-priority squashing.
                    self.mshr.mark_demand_consumed(block_addr, now)
            return latency, "INFLIGHT"

        if demand:
            stats.misses += 1

        merged_ready = self.mshr.merge(block_addr, now, demand=demand)
        if merged_ready is not None:
            latency = max(self.hit_latency, merged_ready - now)
            if demand:
                stats.mshr_merge_hits += 1
                stats.miss_latency_total += latency - self.hit_latency
            return latency, "MSHR"

        below_latency, below_level = self.parent.access(
            block_addr, now + self.hit_latency, write=False, demand=demand
        )
        fill_time = self.hit_latency + below_latency
        if demand:
            start, ready_time = self.mshr.allocate_demand(block_addr, now, fill_time)
            squashed = self.mshr.last_squashed_block
            if squashed is not None:
                self._cancel_squashed_fill(squashed, now)
        else:
            # Prefetch-triggered fill arriving from a child cache: it must
            # not occupy a demand MSHR (capacity was enforced at the child).
            start = now
            ready_time = self.mshr.allocate_prefetch_fill(
                block_addr, now, fill_time
            )
        total_latency = (start - now) + fill_time
        line = self._insert(
            block_addr,
            now,
            now + total_latency,
            prefetched=not demand,
            component=None,
        )
        if write:
            line.dirty = True
        if demand:
            stats.miss_latency_total += total_latency - self.hit_latency
        return total_latency, below_level

    def _cancel_squashed_fill(self, block_addr: int, now: int) -> None:
        """Abandon an in-flight prefetch fill whose MSHR entry was squashed.

        Demand priority means the squashed prefetch's data never arrives:
        the line inserted at issue time is removed again while still in
        flight, so later probes see a genuine miss instead of a fill that
        the MSHR file claims was abandoned.  A fill that already landed
        (``ready_time <= now``) or a demand line is left alone.  Child
        copies of the in-flight fill are back-invalidated (``on_evict``) so
        an inclusive parent never cancels data an L1 still advertises, and
        a dirty in-flight line (a store merged into the fill) writes back
        first, as every other removal path does.
        """
        set_index = (block_addr >> self._block_bits) & self._set_mask
        way = self._tags[set_index].get(block_addr)
        if way is None:
            return
        ways = self._sets[set_index]
        assert ways is not None  # the tag index only covers materialised sets
        line = ways[way]
        if not line.prefetched or line.ready_time <= now:
            return
        if self.on_evict is not None:
            self.on_evict(block_addr, now)
        if line.dirty:
            self.stats.writebacks += 1
            self.parent.mark_dirty(block_addr)
        del self._tags[set_index][block_addr]
        line.invalidate()
        self.stats.prefetch_squashed += 1

    # -- prefetch path -------------------------------------------------------

    def prefetch(self, addr: int, now: int, component: str) -> int | None:
        """Prefetch ``addr`` into this cache (and below, via the parent).

        Returns the fill's ready time, or ``None`` when suppressed (already
        present) or dropped (no MSHR free).
        """
        block_addr = addr & self._block_mask
        set_index = (block_addr >> self._block_bits) & self._set_mask
        if block_addr in self._tags[set_index]:
            return None
        if not self.mshr.prefetch_available(now):
            self.mshr.prefetch_drops += 1
            self.stats.prefetch_dropped += 1
            return None
        below_latency, _ = self.parent.access(
            block_addr, now + self.hit_latency, write=False, demand=False
        )
        fill_time = self.hit_latency + below_latency
        ready_time = self.mshr.allocate_prefetch(block_addr, now, fill_time)
        if ready_time is None:  # pragma: no cover - guarded by available()
            self.stats.prefetch_dropped += 1
            return None
        self._insert(
            block_addr, now, ready_time, prefetched=True, component=component
        )
        self.stats.prefetch_issued += 1
        return ready_time

    # -- invalidation --------------------------------------------------------

    def invalidate_block(self, block_addr: int) -> bool:
        """Drop the line if present; returns True when a valid copy existed.

        A dirty copy is written back to the parent first (like ``_evict``
        and ``flush_block``): cross-core store invalidations, prefetchw
        ownership steals and inclusive back-invalidations must not discard
        modified data.
        """
        block_addr &= self._block_mask
        set_index = (block_addr >> self._block_bits) & self._set_mask
        way = self._tags[set_index].pop(block_addr, None)
        if way is None:
            return False
        ways = self._sets[set_index]
        assert ways is not None  # the tag index only covers materialised sets
        line = ways[way]
        if line.dirty:
            self.stats.writebacks += 1
            self.parent.mark_dirty(line.block_addr)
        line.invalidate()
        return True

    def flush_block(self, block_addr: int) -> bool:
        """clflush semantics: write back if dirty, then invalidate."""
        block_addr &= self._block_mask
        set_index = (block_addr >> self._block_bits) & self._set_mask
        way = self._tags[set_index].pop(block_addr, None)
        if way is None:
            return False
        line = self._sets[set_index][way]
        if line.dirty:
            self.stats.writebacks += 1
            self.parent.mark_dirty(line.block_addr)
        line.invalidate()
        self.stats.flushes += 1
        return True

    # -- snapshot/restore ----------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """All mutable state; only materialised sets are recorded.

        Lazy materialisation is itself state: an unmaterialised set and a
        materialised all-invalid set behave identically on the demand path,
        but restore reproduces the exact shape so a restored cache is
        field-for-field identical to the live cache it was taken from
        (which is what the state-parity harness compares).
        """
        sets = []
        stamps = self._stamps
        tags = self._tags
        for set_index, ways in enumerate(self._sets):
            if ways is None:
                continue
            sets.append((
                set_index,
                tuple(
                    (line.block_addr, line.valid, line.dirty,
                     line.ready_time, line.prefetched, line.component,
                     line.useful_counted)
                    for line in ways
                ),
                tuple(stamps[set_index]),
                tuple(tags[set_index].items()),
            ))
        stats = self.stats
        return {
            "sets": tuple(sets),
            "clock": self._clock,
            "stats": tuple(
                getattr(stats, name) for name in _CACHE_STATS_FIELDS
            ),
            "mshr": self.mshr.snapshot(),
        }

    def restore(self, data: dict[str, Any]) -> None:
        """Inverse of :meth:`snapshot`; line objects are reused in place."""
        require_keys(data, ("sets", "clock", "stats", "mshr"), self.name)
        snap_sets = data["sets"]
        covered = frozenset(entry[0] for entry in snap_sets)
        sets = self._sets
        # De-materialise sets the snapshot never saw (restoring an older,
        # colder image onto a warmer cache).
        for set_index in range(self.num_sets):
            if sets[set_index] is not None and set_index not in covered:
                sets[set_index] = None
                self._stamps[set_index] = _EMPTY_STAMPS
                self._tags[set_index].clear()
        for set_index, lines, stamps, tags in snap_sets:
            ways = sets[set_index]
            if ways is None:
                ways = [CacheLine() for _ in range(self.assoc)]
                sets[set_index] = ways
            for line, state in zip(ways, lines):
                (line.block_addr, line.valid, line.dirty, line.ready_time,
                 line.prefetched, line.component, line.useful_counted) = state
            self._stamps[set_index] = list(stamps)
            self._tags[set_index] = dict(tags)
        self._clock = data["clock"]
        stats = self.stats
        for name, value in zip(_CACHE_STATS_FIELDS, data["stats"]):
            setattr(stats, name, value)
        self.mshr.restore(data["mshr"])

    def resident_blocks(self) -> list[int]:
        """All valid block addresses (tests/analysis)."""
        return [
            line.block_addr
            for ways in self._sets
            if ways is not None
            for line in ways
            if line.valid
        ]
