"""Set-associative write-back cache with true LRU, MSHRs and in-flight fills.

Latency composition: a hit costs ``hit_latency``; a miss costs
``hit_latency`` (tag lookup) plus whatever the parent level reports, and the
line is inserted with a future ``ready_time`` so later accesses that race the
fill merge into it.  With the default configuration this yields the three
latency classes the attacks in the paper distinguish:

* L1 hit:   4 cycles
* L2 hit:   16 cycles (4 + 12)
* memory:   136 cycles (4 + 12 + 120)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ConfigError
from repro.mem.cacheline import CacheLine
from repro.mem.mshr import MSHRFile
from repro.mem.memory import MainMemory
from repro.utils.addr import AddressMap


@dataclass
class CacheStats:
    """Per-cache counters; Fig. 10 consumes ``miss_latency_total``."""

    demand_accesses: int = 0
    hits: int = 0
    misses: int = 0
    inflight_hits: int = 0
    mshr_merge_hits: int = 0
    miss_latency_total: int = 0
    prefetch_issued: int = 0
    prefetch_dropped: int = 0
    useful_prefetches: int = 0
    evictions: int = 0
    writebacks: int = 0
    back_invalidations: int = 0
    cross_invalidations: int = 0
    flushes: int = 0

    @property
    def miss_rate(self) -> float:
        if self.demand_accesses == 0:
            return 0.0
        return self.misses / self.demand_accesses

    def as_dict(self) -> dict[str, int | float]:
        data = {name: getattr(self, name) for name in self.__dataclass_fields__}
        data["miss_rate"] = self.miss_rate
        return data


class MemoryPort:
    """Terminal 'parent' wrapping main memory's flat latency."""

    level_name = "MEM"

    def __init__(self, memory: MainMemory) -> None:
        self._memory = memory

    def access(
        self, addr: int, now: int, write: bool = False, demand: bool = True
    ) -> tuple[int, str]:
        return self._memory.latency, "MEM"

    def mark_dirty(self, block_addr: int) -> None:
        """Writebacks reaching memory need no bookkeeping."""


class Cache:
    """One level of set-associative cache."""

    def __init__(
        self,
        name: str,
        size: int,
        assoc: int,
        amap: AddressMap,
        hit_latency: int,
        parent: "Cache | MemoryPort",
        mshr_entries: int = 4,
        mshr_max_merges: int = 20,
    ) -> None:
        block = amap.block_size
        if size % (assoc * block) != 0:
            raise ConfigError(
                f"{name}: size {size} not divisible by assoc*block "
                f"({assoc}*{block})"
            )
        self.name = name
        # "L1D0" -> "L1D" (strip the core id), but keep "L2" intact.
        stripped = name.rstrip("0123456789")
        self.level_name = stripped if len(stripped) >= 2 else name
        self.size = size
        self.assoc = assoc
        self.amap = amap
        self.hit_latency = hit_latency
        self.parent = parent
        self.num_sets = size // (assoc * block)
        if self.num_sets & (self.num_sets - 1):
            raise ConfigError(f"{name}: num_sets {self.num_sets} not a power of two")
        self._sets = [[CacheLine() for _ in range(assoc)] for _ in range(self.num_sets)]
        self._stamps = [[0] * assoc for _ in range(self.num_sets)]
        self._clock = 0
        self.mshr = MSHRFile(num_entries=mshr_entries, max_merges=mshr_max_merges)
        self.stats = CacheStats()
        # Set by the hierarchy on the shared L2 to back-invalidate L1 copies.
        self.on_evict: Callable[[int, int], None] | None = None

    # -- lookup helpers ------------------------------------------------------

    def _set_index(self, block_addr: int) -> int:
        return self.amap.set_index(block_addr, self.num_sets)

    def _find(self, block_addr: int) -> tuple[int, int | None]:
        set_index = self._set_index(block_addr)
        for way, line in enumerate(self._sets[set_index]):
            if line.valid and line.block_addr == block_addr:
                return set_index, way
        return set_index, None

    def _touch(self, set_index: int, way: int) -> None:
        self._clock += 1
        self._stamps[set_index][way] = self._clock

    def contains(self, block_addr: int) -> bool:
        """True when the line is present (including in-flight fills)."""
        return self._find(self.amap.block_addr(block_addr))[1] is not None

    def contains_ready(self, block_addr: int, now: int) -> bool:
        """True when the line is present and its data has arrived."""
        set_index, way = self._find(self.amap.block_addr(block_addr))
        return way is not None and self._sets[set_index][way].ready(now)

    def line_for(self, block_addr: int) -> CacheLine | None:
        """The line holding ``block_addr`` or None (tests/analysis)."""
        set_index, way = self._find(self.amap.block_addr(block_addr))
        return None if way is None else self._sets[set_index][way]

    # -- replacement ---------------------------------------------------------

    def _victim_way(self, set_index: int) -> int:
        ways = self._sets[set_index]
        for way, line in enumerate(ways):
            if not line.valid:
                return way
        stamps = self._stamps[set_index]
        return min(range(self.assoc), key=lambda way: stamps[way])

    def _evict(self, set_index: int, way: int, now: int) -> None:
        line = self._sets[set_index][way]
        if not line.valid:
            return
        self.stats.evictions += 1
        if line.dirty:
            self.stats.writebacks += 1
            self.parent.mark_dirty(line.block_addr)
        if self.on_evict is not None:
            self.on_evict(line.block_addr, now)
        line.invalidate()

    def _insert(
        self,
        block_addr: int,
        now: int,
        ready_time: int,
        prefetched: bool,
        component: str | None,
    ) -> CacheLine:
        set_index = self._set_index(block_addr)
        way = self._victim_way(set_index)
        self._evict(set_index, way, now)
        line = self._sets[set_index][way]
        line.fill(
            block_addr, ready_time, prefetched=prefetched, component=component
        )
        self._touch(set_index, way)
        return line

    def mark_dirty(self, block_addr: int) -> None:
        """Receive a writeback from a child (inclusive hierarchy)."""
        set_index, way = self._find(self.amap.block_addr(block_addr))
        if way is not None:
            self._sets[set_index][way].dirty = True
        # A missing line (back-invalidated earlier) silently reaches memory.

    # -- demand path ---------------------------------------------------------

    def access(
        self, addr: int, now: int, write: bool = False, demand: bool = True
    ) -> tuple[int, str]:
        """Access ``addr`` at time ``now``; returns (latency, source level).

        ``demand=False`` is the prefetch-fill path used by child caches: the
        state transitions are identical but the counters differ.
        """
        block_addr = self.amap.block_addr(addr)
        set_index, way = self._find(block_addr)
        if demand:
            self.stats.demand_accesses += 1

        if way is not None:
            line = self._sets[set_index][way]
            self._touch(set_index, way)
            if write:
                line.dirty = True
            if line.ready(now):
                if demand:
                    self.stats.hits += 1
                    if line.prefetched and not line.useful_counted:
                        self.stats.useful_prefetches += 1
                        line.useful_counted = True
                return self.hit_latency, self.level_name
            # In-flight fill: merge with it and pay the residual latency.
            latency = max(self.hit_latency, line.ready_time - now)
            if demand:
                self.stats.inflight_hits += 1
                self.stats.miss_latency_total += latency - self.hit_latency
            return latency, "INFLIGHT"

        if demand:
            self.stats.misses += 1

        merged_ready = self.mshr.merge(block_addr, now)
        if merged_ready is not None:
            latency = max(self.hit_latency, merged_ready - now)
            if demand:
                self.stats.mshr_merge_hits += 1
                self.stats.miss_latency_total += latency - self.hit_latency
            return latency, "MSHR"

        below_latency, below_level = self.parent.access(
            block_addr, now + self.hit_latency, write=False, demand=demand
        )
        fill_time = self.hit_latency + below_latency
        if demand:
            start, ready_time = self.mshr.allocate_demand(block_addr, now, fill_time)
        else:
            # Prefetch-triggered fill arriving from a child cache: it must
            # not occupy a demand MSHR (capacity was enforced at the child).
            start = now
            ready_time = self.mshr.allocate_prefetch_fill(
                block_addr, now, fill_time
            )
        total_latency = (start - now) + fill_time
        line = self._insert(
            block_addr,
            now,
            now + total_latency,
            prefetched=not demand,
            component=None,
        )
        if write:
            line.dirty = True
        if demand:
            self.stats.miss_latency_total += total_latency - self.hit_latency
        return total_latency, below_level

    # -- prefetch path -------------------------------------------------------

    def prefetch(self, addr: int, now: int, component: str) -> int | None:
        """Prefetch ``addr`` into this cache (and below, via the parent).

        Returns the fill's ready time, or ``None`` when suppressed (already
        present) or dropped (no MSHR free).
        """
        block_addr = self.amap.block_addr(addr)
        if self.contains(block_addr):
            return None
        if not self.mshr.prefetch_available(now):
            self.mshr.prefetch_drops += 1
            self.stats.prefetch_dropped += 1
            return None
        below_latency, _ = self.parent.access(
            block_addr, now + self.hit_latency, write=False, demand=False
        )
        fill_time = self.hit_latency + below_latency
        ready_time = self.mshr.allocate_prefetch(block_addr, now, fill_time)
        if ready_time is None:  # pragma: no cover - guarded by available()
            self.stats.prefetch_dropped += 1
            return None
        self._insert(
            block_addr, now, ready_time, prefetched=True, component=component
        )
        self.stats.prefetch_issued += 1
        return ready_time

    # -- invalidation --------------------------------------------------------

    def invalidate_block(self, block_addr: int) -> bool:
        """Drop the line if present; returns True when a valid copy existed."""
        block_addr = self.amap.block_addr(block_addr)
        set_index, way = self._find(block_addr)
        if way is None:
            return False
        self._sets[set_index][way].invalidate()
        return True

    def flush_block(self, block_addr: int) -> bool:
        """clflush semantics: write back if dirty, then invalidate."""
        block_addr = self.amap.block_addr(block_addr)
        set_index, way = self._find(block_addr)
        if way is None:
            return False
        line = self._sets[set_index][way]
        if line.dirty:
            self.stats.writebacks += 1
            self.parent.mark_dirty(line.block_addr)
        line.invalidate()
        self.stats.flushes += 1
        return True

    def resident_blocks(self) -> list[int]:
        """All valid block addresses (tests/analysis)."""
        return [
            line.block_addr
            for ways in self._sets
            for line in ways
            if line.valid
        ]
