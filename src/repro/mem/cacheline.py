"""Cacheline metadata.

``ready_time`` models in-flight fills: a line inserted by a miss or a
prefetch at time *t* only supplies data from ``ready_time`` onward; an access
arriving earlier merges with the fill and pays the residual latency.  This is
what makes prefetch *timeliness* observable — a PREFENDER prefetch racing the
attacker's probe can still lose if issued too late.
"""

from __future__ import annotations


class CacheLine:
    """One cache line's tag-array state."""

    __slots__ = (
        "block_addr",
        "valid",
        "dirty",
        "ready_time",
        "prefetched",
        "component",
        "useful_counted",
    )

    def __init__(self) -> None:
        self.block_addr = -1
        self.valid = False
        self.dirty = False
        self.ready_time = 0
        self.prefetched = False
        self.component: str | None = None
        self.useful_counted = False

    def fill(
        self,
        block_addr: int,
        ready_time: int,
        prefetched: bool = False,
        component: str | None = None,
    ) -> None:
        """(Re)populate this line for ``block_addr``."""
        self.block_addr = block_addr
        self.valid = True
        self.dirty = False
        self.ready_time = ready_time
        self.prefetched = prefetched
        self.component = component
        self.useful_counted = False

    def invalidate(self) -> None:
        self.valid = False
        self.dirty = False
        self.block_addr = -1
        self.prefetched = False
        self.component = None
        self.useful_counted = False

    def ready(self, now: int) -> bool:
        """True when the line's data has arrived by ``now``."""
        return self.valid and self.ready_time <= now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if not self.valid:
            return "CacheLine(invalid)"
        flags = "D" if self.dirty else "-"
        flags += "P" if self.prefetched else "-"
        return f"CacheLine({self.block_addr:#x} {flags} ready@{self.ready_time})"
