"""Access Tracker (paper Sec. IV-C).

Four stages on every load (paper Fig. 6):

1. **Buffer Allocation** — find the buffer associated with the load's PC;
   otherwise allocate an empty buffer; otherwise replace the LRU buffer
   (only among *unprotected* buffers once the Record Protector is active).
2. **Entry Updating** — record the accessed block address (entry-level LRU).
3. **DiffMin Updating** — once the buffer holds at least ``threshold`` valid
   entries, recompute the minimum pairwise block-address difference.
4. **Data Prefetching** — propose ``blk ± DiffMin`` (or ``blk ± sc`` when the
   Record Protector supplies a trusted scale), skipping candidates already in
   the buffer or in L1D; at most ``max_prefetches`` per activation.
"""

from __future__ import annotations

from repro.core.access_buffer import AccessBuffer
from repro.errors import SnapshotError
from repro.prefetch.base import ContainsProbe, Observation, PrefetchRequest
from repro.snapshot import require_keys
from repro.utils.addr import AddressMap
from repro.utils.lru import LRUTracker


class AccessTracker:
    """Phase-3 defense: learn and outrun the attacker's probe pattern."""

    component = "at"
    guided_component = "rp"

    def __init__(
        self,
        amap: AddressMap,
        num_buffers: int = 32,
        entries_per_buffer: int = 8,
        threshold: int = 4,
        max_prefetches: int = 1,
    ) -> None:
        self.amap = amap
        self.threshold = threshold
        self.max_prefetches = max_prefetches
        self.buffers = [AccessBuffer(entries_per_buffer) for _ in range(num_buffers)]
        self._lru = LRUTracker()
        self.proposals = 0
        self.guided_proposals = 0
        self.allocation_failures = 0

    def reset(self) -> None:
        for buffer in self.buffers:
            buffer.reset()
        self._lru = LRUTracker()
        self.proposals = 0
        self.guided_proposals = 0
        self.allocation_failures = 0

    def snapshot(self) -> dict:
        """All mutable AT state (the buffer pool itself is fixed-size)."""
        return {
            "buffers": tuple(buffer.snapshot() for buffer in self.buffers),
            "lru": self._lru.snapshot(),
            "proposals": self.proposals,
            "guided_proposals": self.guided_proposals,
            "allocation_failures": self.allocation_failures,
        }

    def restore(self, data: dict) -> None:
        """Inverse of :meth:`snapshot`; buffer objects mutated in place."""
        require_keys(
            data,
            ("buffers", "lru", "proposals", "guided_proposals",
             "allocation_failures"),
            "AccessTracker",
        )
        snaps = data["buffers"]
        if len(snaps) != len(self.buffers):
            raise SnapshotError(
                f"AccessTracker: snapshot has {len(snaps)} buffers, "
                f"tracker has {len(self.buffers)}"
            )
        for buffer, snap in zip(self.buffers, snaps):
            buffer.restore(snap)
        self._lru.restore(data["lru"])
        self.proposals = data["proposals"]
        self.guided_proposals = data["guided_proposals"]
        self.allocation_failures = data["allocation_failures"]

    # -- queries ---------------------------------------------------------------

    def buffer_for_pc(self, pc: int) -> AccessBuffer | None:
        for buffer in self.buffers:
            if buffer.valid and buffer.inst_addr == pc:
                return buffer
        return None

    def protected_count(self) -> int:
        """Number of currently protected buffers (Fig. 12 series)."""
        return sum(1 for buffer in self.buffers if buffer.protected)

    # -- stage 1: allocation ------------------------------------------------------

    def allocate(self, pc: int) -> AccessBuffer | None:
        """Find or allocate the buffer associated with ``pc``.

        The recency tracker is keyed by *pool index* (stable across
        snapshot/restore, unlike ``id()``); candidate order is pool order
        either way, so victim selection is unchanged.
        """
        buffers = self.buffers
        for index, buffer in enumerate(buffers):
            if buffer.valid and buffer.inst_addr == pc:
                self._lru.touch(index)
                return buffer
        index = self._allocate_new(pc)
        if index is None:
            self.allocation_failures += 1
            return None
        self._lru.touch(index)
        return buffers[index]

    def _allocate_new(self, pc: int) -> int | None:
        for index, buffer in enumerate(self.buffers):
            if not buffer.valid:
                buffer.reset(pc)
                return index
        candidates = [i for i, b in enumerate(self.buffers) if not b.protected]
        if not candidates:
            # Every buffer is protected: no replacement is allowed (C3).
            return None
        victim = self._lru.victim(candidates)
        self.buffers[victim].reset(pc)
        return victim

    # -- stages 2-4: record + prefetch ---------------------------------------------

    def observe_load(
        self,
        observation: Observation,
        l1d_contains: ContainsProbe,
        guided_scale: int | None = None,
    ) -> list[PrefetchRequest]:
        """Run the four AT stages for one load; returns prefetch requests.

        Args:
            observation: the demand access.
            l1d_contains: L1D residency probe.
            guided_scale: trusted scale from the Record Protector; when given
                it overrides DiffMin and the request is attributed to ``rp``.
        """
        buffer = self.allocate(observation.pc)
        if buffer is None:
            return []
        block_addr = observation.block_addr
        buffer.record(block_addr, observation.now)
        if buffer.valid_entries >= self.threshold:
            buffer.update_diff_min()
        step: int | None
        component = self.component
        if guided_scale is not None:
            step = guided_scale
            component = self.guided_component
        else:
            if buffer.valid_entries < self.threshold:
                return []
            step = buffer.diff_min
        if not step:
            return []
        requests: list[PrefetchRequest] = []
        for candidate in (block_addr + step, block_addr - step):
            if len(requests) >= self.max_prefetches:
                break
            if candidate < 0:
                continue
            if buffer.contains(self.amap.block_addr(candidate)):
                continue
            if l1d_contains(candidate):
                continue
            requests.append(PrefetchRequest(addr=candidate, component=component))
        if component == self.guided_component:
            self.guided_proposals += len(requests)
            buffer.guided_prefetches += len(requests)
        else:
            self.proposals += len(requests)
        return requests
