"""Scale buffer (paper Sec. IV-D, stage 1 "Scale Recording").

Each entry is a ``(sc, blk)`` pair describing a predicted eviction-cacheline
pattern ``{blk + k*sc}``.  Recording applies the paper's redundancy rule:
when a new pattern and an existing entry describe overlapping arithmetic
sequences (``(blk' - blk_i) % min(sc', sc_i) == 0``), only the pattern with
the *larger* scale is kept (the larger scale's set is the subset, hence the
more precise prediction).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.snapshot import require_keys
from repro.utils.lru import LRUTracker


@dataclass
class ScaleRecord:
    """One scale buffer entry."""

    sc: int
    blk: int


class ScaleBuffer:
    """Small associative buffer of trusted ``(sc, blk)`` patterns."""

    def __init__(self, capacity: int = 8) -> None:
        self.capacity = capacity
        self._records: list[ScaleRecord] = []
        self._lru = LRUTracker()
        self.records_made = 0
        self.subsumed = 0
        self.updated = 0

    def reset(self) -> None:
        self._records.clear()
        self._lru = LRUTracker()
        self.records_made = 0
        self.subsumed = 0
        self.updated = 0

    def __len__(self) -> int:
        return len(self._records)

    def entries(self) -> list[ScaleRecord]:
        return list(self._records)

    def record(self, sc: int, blk: int) -> None:
        """Stage 1: record a (sc, blk) pattern with redundancy reduction.

        Recency is keyed by *slot index* (stable across snapshot/restore,
        unlike ``id()``); slots are only ever appended or updated in place,
        and candidate order is slot order either way, so victim selection
        is unchanged.
        """
        if sc <= 0:
            return
        for index, record in enumerate(self._records):
            overlap = (blk - record.blk) % min(sc, record.sc) == 0
            if not overlap:
                continue
            if sc > record.sc:
                # The new, sparser pattern subsumes the old one: replace.
                record.sc = sc
                record.blk = blk
                self.updated += 1
            else:
                self.subsumed += 1
            self._lru.touch(index)
            return
        if len(self._records) < self.capacity:
            self._records.append(ScaleRecord(sc=sc, blk=blk))
            index = len(self._records) - 1
        else:
            index = self._lru.victim(range(len(self._records)))
            record = self._records[index]
            record.sc = sc
            record.blk = blk
        self._lru.touch(index)
        self.records_made += 1

    def match(self, block_addr: int) -> ScaleRecord | None:
        """Stage 2 hit check: does ``block_addr`` fit a recorded pattern?"""
        for index, record in enumerate(self._records):
            if (block_addr - record.blk) % record.sc == 0:
                self._lru.touch(index)
                return record
        return None

    def snapshot(self) -> dict:
        """All mutable state as flat tuples."""
        return {
            "records": tuple((r.sc, r.blk) for r in self._records),
            "lru": self._lru.snapshot(),
            "records_made": self.records_made,
            "subsumed": self.subsumed,
            "updated": self.updated,
        }

    def restore(self, data: dict) -> None:
        """Inverse of :meth:`snapshot`."""
        require_keys(
            data,
            ("records", "lru", "records_made", "subsumed", "updated"),
            "ScaleBuffer",
        )
        self._records[:] = [
            ScaleRecord(sc=sc, blk=blk) for sc, blk in data["records"]
        ]
        self._lru.restore(data["lru"])
        self.records_made = data["records_made"]
        self.subsumed = data["subsumed"]
        self.updated = data["updated"]
