"""Scale buffer (paper Sec. IV-D, stage 1 "Scale Recording").

Each entry is a ``(sc, blk)`` pair describing a predicted eviction-cacheline
pattern ``{blk + k*sc}``.  Recording applies the paper's redundancy rule:
when a new pattern and an existing entry describe overlapping arithmetic
sequences (``(blk' - blk_i) % min(sc', sc_i) == 0``), only the pattern with
the *larger* scale is kept (the larger scale's set is the subset, hence the
more precise prediction).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.lru import LRUTracker


@dataclass
class ScaleRecord:
    """One scale buffer entry."""

    sc: int
    blk: int


class ScaleBuffer:
    """Small associative buffer of trusted ``(sc, blk)`` patterns."""

    def __init__(self, capacity: int = 8) -> None:
        self.capacity = capacity
        self._records: list[ScaleRecord] = []
        self._lru = LRUTracker()
        self.records_made = 0
        self.subsumed = 0
        self.updated = 0

    def reset(self) -> None:
        self._records.clear()
        self._lru = LRUTracker()
        self.records_made = 0
        self.subsumed = 0
        self.updated = 0

    def __len__(self) -> int:
        return len(self._records)

    def entries(self) -> list[ScaleRecord]:
        return list(self._records)

    def record(self, sc: int, blk: int) -> None:
        """Stage 1: record a (sc, blk) pattern with redundancy reduction."""
        if sc <= 0:
            return
        for record in self._records:
            overlap = (blk - record.blk) % min(sc, record.sc) == 0
            if not overlap:
                continue
            if sc > record.sc:
                # The new, sparser pattern subsumes the old one: replace.
                record.sc = sc
                record.blk = blk
                self.updated += 1
            else:
                self.subsumed += 1
            self._lru.touch(id(record))
            return
        if len(self._records) < self.capacity:
            record = ScaleRecord(sc=sc, blk=blk)
            self._records.append(record)
        else:
            victim_id = self._lru.victim([id(r) for r in self._records])
            record = next(r for r in self._records if id(r) == victim_id)
            record.sc = sc
            record.blk = blk
        self._lru.touch(id(record))
        self.records_made += 1

    def match(self, block_addr: int) -> ScaleRecord | None:
        """Stage 2 hit check: does ``block_addr`` fit a recorded pattern?"""
        for record in self._records:
            if (block_addr - record.blk) % record.sc == 0:
                self._lru.touch(id(record))
                return record
        return None
