"""PREFENDER: the paper's contribution.

* :class:`CalculationBuffer` — per-register ``(fva, sc)`` dataflow tracking
  (paper Table III), maintained by the core at execute stage.
* :class:`ScaleTracker` — phase-2 defense: prefetch ``addr ± sc`` around a
  victim load (paper Sec. IV-B).
* :class:`AccessTracker` — phase-3 defense: per-PC access buffers with
  DiffMin stride estimation (paper Sec. IV-C).
* :class:`RecordProtector` — scale buffer linking ST and AT; protects access
  buffers from noisy replacement (C3) and redirects prefetching to trusted
  scales (C4) (paper Sec. IV-D).
* :class:`Prefender` — the assembled secure prefetcher.
"""

from repro.core.calc import CalculationBuffer, RegisterTrack
from repro.core.config import PrefenderConfig
from repro.core.scale_tracker import ScaleTracker
from repro.core.access_buffer import AccessBuffer
from repro.core.access_tracker import AccessTracker
from repro.core.scale_buffer import ScaleBuffer, ScaleRecord
from repro.core.record_protector import RecordProtector
from repro.core.prefender import Prefender

__all__ = [
    "CalculationBuffer",
    "RegisterTrack",
    "PrefenderConfig",
    "ScaleTracker",
    "AccessBuffer",
    "AccessTracker",
    "ScaleBuffer",
    "ScaleRecord",
    "RecordProtector",
    "Prefender",
]
