"""One access buffer of the Access Tracker (paper Fig. 6).

Each buffer is associated with a single load instruction (``inst_addr``),
records the block addresses that load recently touched, and derives
``DiffMin`` — the minimum pairwise difference between recorded block
addresses — as the stride estimate for the attacker's probe pattern.

The Record Protector may mark a buffer *protected*: protected buffers are
exempt from LRU replacement (challenge C3) and carry a *protected scale*
register pair ``(sc, blk)`` copied from the scale buffer that overrides
DiffMin-based prefetching (challenge C4).
"""

from __future__ import annotations

from repro.snapshot import require_keys

_SNAP_KEYS = (
    "inst_addr",
    "valid",
    "entries",
    "stamps",
    "clock",
    "diff_min",
    "protected",
    "protected_scale",
    "protected_blk",
    "guided_prefetches",
    "last_touch",
)


class AccessBuffer:
    """Per-load-PC block-address history with DiffMin estimation."""

    __slots__ = (
        "capacity",
        "inst_addr",
        "valid",
        "entries",
        "_stamps",
        "_clock",
        "diff_min",
        "protected",
        "protected_scale",
        "protected_blk",
        "guided_prefetches",
        "last_touch",
    )

    def __init__(self, capacity: int = 8) -> None:
        self.capacity = capacity
        self.inst_addr: int | None = None
        self.valid = False
        self.entries: list[int] = []
        self._stamps: list[int] = []
        self._clock = 0
        self.diff_min: int | None = None
        self.protected = False
        self.protected_scale: int | None = None
        self.protected_blk: int | None = None
        self.guided_prefetches = 0
        self.last_touch = 0

    def reset(self, inst_addr: int | None = None) -> None:
        """Reinitialise for a (possibly new) associated load."""
        self.inst_addr = inst_addr
        self.valid = inst_addr is not None
        self.entries.clear()
        self._stamps.clear()
        self._clock = 0
        self.diff_min = None
        self.protected = False
        self.protected_scale = None
        self.protected_blk = None
        self.guided_prefetches = 0
        self.last_touch = 0

    def snapshot(self) -> dict:
        """All mutable state (``capacity`` is configuration, not state)."""
        return {
            "inst_addr": self.inst_addr,
            "valid": self.valid,
            "entries": tuple(self.entries),
            "stamps": tuple(self._stamps),
            "clock": self._clock,
            "diff_min": self.diff_min,
            "protected": self.protected,
            "protected_scale": self.protected_scale,
            "protected_blk": self.protected_blk,
            "guided_prefetches": self.guided_prefetches,
            "last_touch": self.last_touch,
        }

    def restore(self, data: dict) -> None:
        """Inverse of :meth:`snapshot`; list contents replaced in place."""
        require_keys(data, _SNAP_KEYS, "AccessBuffer")
        self.inst_addr = data["inst_addr"]
        self.valid = data["valid"]
        self.entries[:] = data["entries"]
        self._stamps[:] = data["stamps"]
        self._clock = data["clock"]
        self.diff_min = data["diff_min"]
        self.protected = data["protected"]
        self.protected_scale = data["protected_scale"]
        self.protected_blk = data["protected_blk"]
        self.guided_prefetches = data["guided_prefetches"]
        self.last_touch = data["last_touch"]

    @property
    def valid_entries(self) -> int:
        return len(self.entries)

    def contains(self, block_addr: int) -> bool:
        return block_addr in self.entries

    def record(self, block_addr: int, now: int) -> bool:
        """Stage 2 (Entry Updating): insert ``block_addr``; LRU on overflow.

        Returns True when a new entry was created (False: already present,
        only its recency was refreshed).
        """
        self.last_touch = now
        self._clock += 1
        if block_addr in self.entries:
            index = self.entries.index(block_addr)
            self._stamps[index] = self._clock
            return False
        if len(self.entries) < self.capacity:
            self.entries.append(block_addr)
            self._stamps.append(self._clock)
            return True
        victim = min(range(len(self.entries)), key=lambda i: self._stamps[i])
        self.entries[victim] = block_addr
        self._stamps[victim] = self._clock
        return True

    def update_diff_min(self) -> int | None:
        """Stage 3 (DiffMin Updating): recompute over all valid entries."""
        if len(self.entries) < 2:
            self.diff_min = None
            return None
        ordered = sorted(self.entries)
        self.diff_min = min(b - a for a, b in zip(ordered, ordered[1:]))
        return self.diff_min

    # -- protection (Record Protector hooks) -----------------------------------

    def protect(self, scale: int, block_addr: int) -> None:
        """Mark protected and latch the protecting (sc, blk) pair."""
        self.protected = True
        self.protected_scale = scale
        self.protected_blk = block_addr
        self.guided_prefetches = 0

    def unprotect(self) -> None:
        self.protected = False
        self.protected_scale = None
        self.protected_blk = None
        self.guided_prefetches = 0

    def protected_scale_matches(self, block_addr: int) -> int | None:
        """Return the protected scale when ``block_addr`` fits its pattern."""
        if not self.protected or self.protected_scale is None:
            return None
        if (block_addr - self.protected_blk) % self.protected_scale == 0:
            return self.protected_scale
        return None
