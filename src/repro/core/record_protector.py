"""Record Protector (paper Sec. IV-D).

Links the Scale Tracker and the Access Tracker:

1. **Scale Recording** — whenever a load's base-register scale is in ST's
   trigger range, the ``(sc, blk)`` pair is recorded in the scale buffer
   (this is the victim's trusted phase-2 pattern).
2. **Protection Status Updating** — when any load's block address *hits* a
   recorded pattern, the access buffer associated with that load is marked
   protected (immune to LRU replacement — challenge C3) and the hit
   ``(sc, blk)`` is latched into the buffer's protected-scale registers.
3. **Protected Prefetching** — while a buffer is protected, AT's prefetch
   step uses the hit scale rather than DiffMin (challenge C4).  Protection
   expires after a bounded number of guided prefetches or after the buffer
   stays untouched for a time threshold.

Idle expiry is enforced by a *sweep* over every protected buffer on each
observed load, not just the buffer mapped to the currently loading PC: a
buffer whose load PC never executes again would otherwise never be seen by
``guidance_for``, so its ``unprotect_idle_cycles`` deadline could never
fire and the protection (and its immunity to LRU replacement) was eternal.
With enough quiescent protected PCs, ``AccessTracker._allocate_new`` runs
out of replaceable buffers and the defense silently stops learning new
patterns — challenge C3's protection inverted into self-inflicted denial
of defense.  The protector keeps an explicit list of the buffers it has
protected so the sweep walks only those (the protected set is small),
never all ``num_buffers``.
"""

from __future__ import annotations

from repro.core.access_buffer import AccessBuffer
from repro.core.access_tracker import AccessTracker
from repro.core.scale_buffer import ScaleBuffer
from repro.prefetch.base import Observation
from repro.snapshot import require_keys


class RecordProtector:
    """Noise shield for the Access Tracker."""

    def __init__(
        self,
        scale_buffer_entries: int = 8,
        unprotect_prefetch_limit: int = 64,
        unprotect_idle_cycles: int = 200_000,
    ) -> None:
        self.scale_buffer = ScaleBuffer(scale_buffer_entries)
        self.unprotect_prefetch_limit = unprotect_prefetch_limit
        self.unprotect_idle_cycles = unprotect_idle_cycles
        self.protections = 0
        self.unprotections = 0
        # Idle expirations found by the all-buffer sweep (quiescent PCs the
        # per-PC path could never reach); a subset of ``unprotections``,
        # counted separately so Fig. 12-style series stay interpretable.
        self.sweep_unprotections = 0
        # Buffers this protector marked protected, in protection order.
        # Entries go stale when a buffer is unprotected or reset elsewhere;
        # the sweep drops them lazily.
        self._protected: list[AccessBuffer] = []

    def reset(self) -> None:
        self.scale_buffer.reset()
        self.protections = 0
        self.unprotections = 0
        self.sweep_unprotections = 0
        self._protected.clear()

    def snapshot(self, buffers: list[AccessBuffer] | tuple = ()) -> dict:
        """All mutable RP state.

        Args:
            buffers: the Access Tracker's buffer pool.  ``_protected``
                holds live :class:`AccessBuffer` references, which cannot
                survive a snapshot; they are stored as indices into this
                pool instead (the pool is fixed — buffers are reset in
                place, never replaced).  The composing
                :class:`~repro.core.prefender.Prefender` supplies it.
        """
        index_of = {id(buffer): i for i, buffer in enumerate(buffers)}
        return {
            "scale_buffer": self.scale_buffer.snapshot(),
            "protections": self.protections,
            "unprotections": self.unprotections,
            "sweep_unprotections": self.sweep_unprotections,
            "protected": tuple(
                index_of[id(buffer)] for buffer in self._protected
            ),
        }

    def restore(
        self, data: dict, buffers: list[AccessBuffer] | tuple = ()
    ) -> None:
        """Inverse of :meth:`snapshot` (same ``buffers`` pool required)."""
        require_keys(
            data,
            ("scale_buffer", "protections", "unprotections",
             "sweep_unprotections", "protected"),
            "RecordProtector",
        )
        self.scale_buffer.restore(data["scale_buffer"])
        self.protections = data["protections"]
        self.unprotections = data["unprotections"]
        self.sweep_unprotections = data["sweep_unprotections"]
        self._protected[:] = [buffers[index] for index in data["protected"]]

    # -- stage 1 ---------------------------------------------------------------

    def record_scale(self, scale: int, block_addr: int) -> None:
        """Record a trusted (scale, block) pattern from a victim load."""
        self.scale_buffer.record(scale, block_addr)

    # -- stages 2 & 3 ------------------------------------------------------------

    def _remember_protected(self, buffer: AccessBuffer) -> None:
        """Index a freshly protected buffer for the idle-expiry sweep."""
        for tracked in self._protected:
            if tracked is buffer:
                return
        self._protected.append(buffer)

    def expire_stale_protection(self, buffer: AccessBuffer, now: int) -> None:
        """Drop protection on exhausted or idle buffers."""
        if not buffer.protected:
            return
        if (
            buffer.guided_prefetches >= self.unprotect_prefetch_limit
            or now - buffer.last_touch > self.unprotect_idle_cycles
        ):
            buffer.unprotect()
            self.unprotections += 1

    def sweep_idle_protection(self, now: int) -> int:
        """Expire idle protection across *every* protected buffer.

        ``guidance_for`` only sees the buffer of the currently loading PC,
        so this sweep is the only path that can ever unprotect a buffer
        whose PC went quiescent.  Returns the number of buffers expired.
        """
        if not self._protected:
            return 0
        expired = 0
        kept: list[AccessBuffer] = []
        for buffer in self._protected:
            if not buffer.protected:
                continue  # unprotected or reset elsewhere: drop the entry
            if now - buffer.last_touch > self.unprotect_idle_cycles:
                buffer.unprotect()
                self.unprotections += 1
                self.sweep_unprotections += 1
                expired += 1
            else:
                kept.append(buffer)
        self._protected = kept
        return expired

    def guidance_for(
        self, observation: Observation, tracker: AccessTracker
    ) -> int | None:
        """Protection update + guided-scale lookup for one load.

        Returns the trusted scale AT should prefetch with, or ``None`` when
        the access matches no recorded pattern (AT then uses DiffMin).
        """
        block_addr = observation.block_addr
        buffer = tracker.buffer_for_pc(observation.pc)
        if buffer is not None:
            # Per-PC expiry first, so an expiry of the *loading* PC's own
            # buffer is attributed to the plain counter, not the sweep.
            self.expire_stale_protection(buffer, observation.now)
        self.sweep_idle_protection(observation.now)

        record = self.scale_buffer.match(block_addr)
        if record is not None:
            if buffer is None:
                # The buffer will be allocated by AT stage 1 in this same
                # access; protect it then via `protect_after_allocation`.
                return record.sc
            if not buffer.protected:
                # Latch (sc, blk) and reset the guided-prefetch counter only
                # on a protection *transition*.  Refreshing them on every hit
                # would keep `guided_prefetches` at zero for as long as the
                # pattern keeps hitting — exactly the sustained-access regime
                # an adaptive attacker creates — so `unprotect_prefetch_limit`
                # could never fire.
                self.protections += 1
                buffer.protect(record.sc, record.blk)
                self._remember_protected(buffer)
            return record.sc

        # No scale-buffer hit: fall back to the buffer's latched protected
        # scale (the scale-buffer entry may have been replaced — Fig. 7(b)).
        if buffer is not None:
            return buffer.protected_scale_matches(block_addr)
        return None

    def protect_after_allocation(
        self, observation: Observation, tracker: AccessTracker
    ) -> None:
        """Latch protection onto a buffer allocated during this access."""
        record = self.scale_buffer.match(observation.block_addr)
        if record is None:
            return
        buffer = tracker.buffer_for_pc(observation.pc)
        if buffer is not None and not buffer.protected:
            buffer.protect(record.sc, record.blk)
            self._remember_protected(buffer)
            self.protections += 1
