r"""Calculation buffer: Table III of the paper.

For every architectural register the buffer tracks

* ``fva`` — the *fixed value*: the exact value of the register when its whole
  dataflow history depends only on immediates; ``None`` encodes the paper's
  ``NA`` ("depends on a loaded/unknown variable").
* ``sc`` — the *scale*: the stride with which the register's value can move
  when the unknown variables in its history change by one step.

Rules implemented (Table III; ``+`` also covers ``-``, ``x`` also covers
``<<``/``>>``):

=====================  =======================  =======================
Instruction            ``fva_d``                ``sc_d``
=====================  =======================  =======================
``li rd, imm``         ``imm``                  1
``load rd, imm(rs)``   NA                       1
``add rd, rs, imm``    NA if fva(rs) NA         sc(rs)
\                      fva(rs)+imm otherwise    1
``add rd, rs0, rs1``   both valid: sum          1  (see note)
\                      one NA: NA               sc of the NA-side register
\                      both NA: NA              min(sc0, sc1)
``mul rd, rs, imm``    NA if fva(rs) NA         sc(rs) * imm
\                      fva(rs)*imm otherwise    1
``mul rd, rs0, rs1``   both valid: product      1  (see note)
\                      rs0 NA: NA               sc0 * fva1
\                      rs1 NA: NA               fva0 * sc1
\                      both NA: NA              sc0 * sc1
otherwise              NA                       1
=====================  =======================  =======================

Note: the paper prints the two both-valid result scales as ``NA`` while
every other constant-producing row uses ``1``.  Since prefetching only
triggers for ``sc`` larger than a cacheline, ``NA`` and ``1`` are
behaviourally identical; we canonicalise to ``1`` (documented in DESIGN.md).

Scales are kept positive and saturated at the page size (the hardware uses
16-bit registers because prefetching never crosses a page — Sec. V-E).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.registers import NUM_REGISTERS, WORD_MASK

ADD_OPS = frozenset({"add", "sub"})
MUL_OPS = frozenset({"mul", "sll", "srl"})


@dataclass
class RegisterTrack:
    """Tracking state for one register: ``(fva, sc)``."""

    fva: int | None = None
    sc: int = 1

    def reset(self) -> None:
        self.fva = None
        self.sc = 1


class CalculationBuffer:
    """Per-register ``(fva, sc)`` state plus the Table III update rules."""

    def __init__(
        self, num_registers: int = NUM_REGISTERS, scale_cap: int = 4096
    ) -> None:
        self.scale_cap = scale_cap
        self._tracks = [RegisterTrack() for _ in range(num_registers)]

    # -- queries --------------------------------------------------------------

    def track(self, reg: int) -> RegisterTrack:
        return self._tracks[reg]

    def scale_of(self, reg: int) -> int:
        """The scale used by the Scale Tracker for a load based on ``reg``."""
        return self._tracks[reg].sc

    def fva_of(self, reg: int) -> int | None:
        return self._tracks[reg].fva

    def reset(self) -> None:
        for track in self._tracks:
            track.reset()

    # -- helpers ---------------------------------------------------------------

    def _clamp_scale(self, scale: int) -> int:
        scale = abs(scale)
        if scale < 1:
            return 1
        return min(scale, self.scale_cap)

    @staticmethod
    def _mask(value: int) -> int:
        return value & WORD_MASK

    # -- update rules -----------------------------------------------------------

    def load_immediate(self, rd: int, imm: int) -> None:
        """``li rd, imm``: fva <- imm, sc <- 1."""
        track = self._tracks[rd]
        track.fva = self._mask(imm)
        track.sc = 1

    def load_from_memory(self, rd: int) -> None:
        """``load rd, imm(rs)``: destination becomes an unknown variable."""
        self._tracks[rd].reset()

    def move(self, rd: int, rs: int) -> None:
        """``mov rd, rs`` == ``add rd, rs, 0`` under Table III."""
        self.alu("add", rd, rs, imm=0)

    def other(self, rd: int) -> None:
        """The "Otherwise" rule: reinitialise the destination."""
        self._tracks[rd].reset()

    def alu(
        self,
        op: str,
        rd: int,
        rs0: int,
        rs1: int | None = None,
        imm: int | None = None,
    ) -> None:
        """Apply the Table III rule for one ALU instruction.

        Exactly one of ``rs1`` / ``imm`` must be provided.  Ops outside
        add/sub/mul/sll/srl fall into the "Otherwise" rule.
        """
        if op in ADD_OPS:
            self._add_like(op, rd, rs0, rs1, imm)
        elif op in MUL_OPS:
            self._mul_like(op, rd, rs0, rs1, imm)
        else:
            self.other(rd)

    # Addition / subtraction ---------------------------------------------------

    def _add_like(
        self, op: str, rd: int, rs0: int, rs1: int | None, imm: int | None
    ) -> None:
        source = self._tracks[rs0]
        destination = self._tracks[rd]
        if imm is not None:
            if source.fva is None:
                # Adding an immediate offset does not change the scale.
                new_fva, new_sc = None, source.sc
            else:
                value = source.fva + imm if op == "add" else source.fva - imm
                new_fva, new_sc = self._mask(value), 1
        else:
            other = self._tracks[rs1]
            if source.fva is not None and other.fva is not None:
                value = (
                    source.fva + other.fva
                    if op == "add"
                    else source.fva - other.fva
                )
                new_fva, new_sc = self._mask(value), 1
            elif source.fva is None and other.fva is not None:
                new_fva, new_sc = None, source.sc
            elif source.fva is not None and other.fva is None:
                new_fva, new_sc = None, other.sc
            else:
                new_fva, new_sc = None, min(source.sc, other.sc)
        destination.fva = new_fva
        destination.sc = self._clamp_scale(new_sc)

    # Multiplication / shifts ----------------------------------------------------

    @staticmethod
    def _apply_mul(op: str, value: int, factor: int) -> int:
        if op == "mul":
            return value * factor
        shift = factor & 0x3F
        if op == "sll":
            return value << shift
        return value >> shift  # srl

    def _mul_like(
        self, op: str, rd: int, rs0: int, rs1: int | None, imm: int | None
    ) -> None:
        source = self._tracks[rs0]
        destination = self._tracks[rd]
        if imm is not None:
            if source.fva is None:
                new_fva = None
                new_sc = self._apply_mul(op, source.sc, imm)
            else:
                new_fva = self._mask(self._apply_mul(op, source.fva, imm))
                new_sc = 1
        else:
            other = self._tracks[rs1]
            if source.fva is not None and other.fva is not None:
                new_fva = self._mask(self._apply_mul(op, source.fva, other.fva))
                new_sc = 1
            elif source.fva is None and other.fva is not None:
                new_fva = None
                new_sc = self._apply_mul(op, source.sc, other.fva)
            elif source.fva is not None and other.fva is None:
                if op == "mul":
                    new_fva, new_sc = None, source.fva * other.sc
                else:
                    # Shift by an unknown amount: conservatively reinitialise.
                    new_fva, new_sc = None, 1
            else:
                if op == "mul":
                    new_fva, new_sc = None, source.sc * other.sc
                else:
                    new_fva, new_sc = None, 1
        destination.fva = new_fva
        destination.sc = self._clamp_scale(new_sc)
