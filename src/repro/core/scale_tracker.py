"""Scale Tracker (paper Sec. IV-B).

When a load executes, the core supplies the *scale* of the load's base
register from the calculation buffer.  If the scale is larger than a
cacheline and smaller than a page, the victim's access pattern is predicted
to include ``addr - sc`` and ``addr + sc``, and those lines are prefetched
(same-page candidates only, skipping lines already resident in L1D).
"""

from __future__ import annotations

from repro.prefetch.base import ContainsProbe, Observation, PrefetchRequest
from repro.snapshot import require_keys
from repro.utils.addr import AddressMap


class ScaleTracker:
    """Phase-2 defense: prefetch the victim's plausible neighbours."""

    component = "st"

    def __init__(self, amap: AddressMap, max_prefetches: int = 2) -> None:
        self.amap = amap
        self.max_prefetches = max_prefetches
        self.proposals = 0
        self.triggers = 0

    def reset(self) -> None:
        self.proposals = 0
        self.triggers = 0

    def snapshot(self) -> dict:
        """ST state is just its counters (the tracker itself is stateless)."""
        return {"proposals": self.proposals, "triggers": self.triggers}

    def restore(self, data: dict) -> None:
        """Inverse of :meth:`snapshot`."""
        require_keys(data, ("proposals", "triggers"), "ScaleTracker")
        self.proposals = data["proposals"]
        self.triggers = data["triggers"]

    def scale_in_range(self, scale: int) -> bool:
        """The paper's trigger condition: cacheline < sc < page."""
        return self.amap.block_size < scale < self.amap.page_size

    def observe_load(
        self, observation: Observation, l1d_contains: ContainsProbe
    ) -> list[PrefetchRequest]:
        """Return ST prefetch requests for one load (possibly empty)."""
        scale = observation.scale
        if not self.scale_in_range(scale):
            return []
        self.triggers += 1
        addr = observation.addr
        requests: list[PrefetchRequest] = []
        for candidate in (addr - scale, addr + scale):
            if len(requests) >= self.max_prefetches:
                break
            if candidate < 0 or not self.amap.same_page(addr, candidate):
                continue
            if self.amap.same_block(addr, candidate):
                continue
            if l1d_contains(candidate):
                continue
            requests.append(PrefetchRequest(addr=candidate, component=self.component))
            self.proposals += 1
        return requests
