"""The assembled PREFENDER secure prefetcher (paper Fig. 2).

PREFENDER sits on an L1D cache and reacts to every demand load:

* the Scale Tracker proposes phase-2 prefetches from the load's
  calculation-buffer scale,
* the Record Protector records trusted scales and computes protection /
  guidance for the Access Tracker,
* the Access Tracker proposes phase-3 prefetches from per-PC access
  history (DiffMin) or from the trusted scale when protected.

Component attribution follows the paper's Figs. 9/11: requests carry
``"st"``, ``"at"`` or ``"rp"`` (the latter meaning "Access Tracker guided by
the Record Protector").
"""

from __future__ import annotations

from repro.core.access_tracker import AccessTracker
from repro.core.config import PrefenderConfig
from repro.core.record_protector import RecordProtector
from repro.core.scale_tracker import ScaleTracker
from repro.errors import SnapshotError
from repro.prefetch.base import ContainsProbe, Observation, Prefetcher, PrefetchRequest
from repro.snapshot import require_keys
from repro.utils.addr import AddressMap


class Prefender(Prefetcher):
    """Secure prefetcher: ST + AT + RP behind one observe() entry point."""

    def __init__(
        self,
        config: PrefenderConfig | None = None,
        amap: AddressMap | None = None,
    ) -> None:
        self.config = config or PrefenderConfig()
        self.amap = amap or AddressMap()
        self.name = self.config.variant_name.lower()
        self.scale_tracker = (
            ScaleTracker(self.amap, max_prefetches=self.config.st_max_prefetches)
            if self.config.st_enabled
            else None
        )
        self.access_tracker = (
            AccessTracker(
                self.amap,
                num_buffers=self.config.num_access_buffers,
                entries_per_buffer=self.config.entries_per_buffer,
                threshold=self.config.at_threshold,
                max_prefetches=self.config.at_max_prefetches,
            )
            if self.config.at_enabled
            else None
        )
        self.record_protector = (
            RecordProtector(
                scale_buffer_entries=self.config.scale_buffer_entries,
                unprotect_prefetch_limit=self.config.unprotect_prefetch_limit,
                unprotect_idle_cycles=self.config.unprotect_idle_cycles,
            )
            if self.config.rp_enabled
            else None
        )
        # A tracking-only ScaleTracker is needed for RP's trigger condition
        # even when ST prefetching is disabled (Prefender-AT+RP in Fig. 8).
        self._range_probe = ScaleTracker(self.amap)

    def reset(self) -> None:
        if self.scale_tracker is not None:
            self.scale_tracker.reset()
        if self.access_tracker is not None:
            self.access_tracker.reset()
        if self.record_protector is not None:
            self.record_protector.reset()

    def snapshot(self) -> dict:
        """Compose ST/AT/RP snapshots (``None`` for disabled components)."""
        buffers = (
            self.access_tracker.buffers
            if self.access_tracker is not None
            else ()
        )
        return {
            "st": (
                self.scale_tracker.snapshot()
                if self.scale_tracker is not None
                else None
            ),
            "at": (
                self.access_tracker.snapshot()
                if self.access_tracker is not None
                else None
            ),
            "rp": (
                self.record_protector.snapshot(buffers)
                if self.record_protector is not None
                else None
            ),
        }

    def restore(self, data: dict) -> None:
        """Inverse of :meth:`snapshot`; component set must match config."""
        require_keys(data, ("st", "at", "rp"), "Prefender")
        for label, component, snap in (
            ("scale_tracker", self.scale_tracker, data["st"]),
            ("access_tracker", self.access_tracker, data["at"]),
            ("record_protector", self.record_protector, data["rp"]),
        ):
            if (component is None) != (snap is None):
                raise SnapshotError(
                    f"Prefender: {label} is "
                    f"{'disabled' if component is None else 'enabled'} but "
                    f"the snapshot says otherwise"
                )
        if self.scale_tracker is not None:
            self.scale_tracker.restore(data["st"])
        if self.access_tracker is not None:
            self.access_tracker.restore(data["at"])
        if self.record_protector is not None:
            buffers = (
                self.access_tracker.buffers
                if self.access_tracker is not None
                else ()
            )
            self.record_protector.restore(data["rp"], buffers)

    # -- queries ------------------------------------------------------------------

    def protected_buffer_count(self) -> int:
        """Currently protected access buffers (Fig. 12)."""
        if self.access_tracker is None:
            return 0
        return self.access_tracker.protected_count()

    def defense_stats(self) -> dict[str, int]:
        """Defense-internal counters for ``RunResult.defense_stats``.

        Buffer starvation (``allocation_failures``) and the protection
        lifecycle counters are what the scenario suite and Fig. 12-style
        series read; without this export they died with the prefetcher
        object at the end of the run.
        """
        stats: dict[str, int] = {}
        if self.access_tracker is not None:
            at = self.access_tracker
            stats["at_proposals"] = at.proposals
            stats["rp_guided_proposals"] = at.guided_proposals
            stats["allocation_failures"] = at.allocation_failures
            stats["protected_buffers"] = at.protected_count()
        if self.record_protector is not None:
            rp = self.record_protector
            stats["protections"] = rp.protections
            stats["unprotections"] = rp.unprotections
            stats["sweep_unprotections"] = rp.sweep_unprotections
        return stats

    # -- the prefetcher interface ----------------------------------------------------

    def observe(
        self, observation: Observation, l1d_contains: ContainsProbe
    ) -> list[PrefetchRequest]:
        if observation.op != "load":
            return []
        requests: list[PrefetchRequest] = []

        scale_in_range = self._range_probe.scale_in_range(observation.scale)
        if scale_in_range and self.record_protector is not None:
            self.record_protector.record_scale(
                observation.scale, observation.block_addr
            )
        if self.scale_tracker is not None:
            requests.extend(
                self.scale_tracker.observe_load(observation, l1d_contains)
            )

        if self.access_tracker is not None:
            guided_scale = None
            if self.record_protector is not None:
                guided_scale = self.record_protector.guidance_for(
                    observation, self.access_tracker
                )
            requests.extend(
                self.access_tracker.observe_load(
                    observation, l1d_contains, guided_scale=guided_scale
                )
            )
            if self.record_protector is not None and guided_scale is not None:
                self.record_protector.protect_after_allocation(
                    observation, self.access_tracker
                )
        return requests
