"""PREFENDER configuration.

Defaults follow the paper's evaluation: 32 access buffers of 8 entries, an
activation threshold of 4 valid entries, and an 8-entry scale buffer
(Secs. IV-C, IV-D and V-E).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError


@dataclass(frozen=True)
class PrefenderConfig:
    """Feature switches and sizing knobs for one PREFENDER instance."""

    st_enabled: bool = True
    at_enabled: bool = True
    rp_enabled: bool = True
    num_access_buffers: int = 32
    entries_per_buffer: int = 8
    at_threshold: int = 4
    at_max_prefetches: int = 1
    st_max_prefetches: int = 2
    scale_buffer_entries: int = 8
    unprotect_prefetch_limit: int = 64
    unprotect_idle_cycles: int = 200_000

    def __post_init__(self) -> None:
        if self.rp_enabled and not self.at_enabled:
            raise ConfigError("the Record Protector requires the Access Tracker")
        if self.num_access_buffers < 1 or self.entries_per_buffer < 2:
            raise ConfigError("access buffers need >=1 buffers of >=2 entries")
        if self.at_threshold < 2:
            raise ConfigError("AT threshold below 2 cannot form a DiffMin")

    @property
    def variant_name(self) -> str:
        """Human-readable variant label matching the paper's legends."""
        parts = []
        if self.st_enabled:
            parts.append("ST")
        if self.at_enabled:
            parts.append("AT")
        if self.rp_enabled:
            parts.append("RP")
        if parts == ["ST", "AT", "RP"]:
            return "Prefender"
        return "Prefender-" + "+".join(parts) if parts else "Prefender-off"

    def with_buffers(self, num_access_buffers: int) -> "PrefenderConfig":
        """Copy with a different access-buffer count (Tables IV/V sweeps)."""
        return replace(self, num_access_buffers=num_access_buffers)

    # -- paper variants ---------------------------------------------------------

    @classmethod
    def st_only(cls) -> "PrefenderConfig":
        return cls(st_enabled=True, at_enabled=False, rp_enabled=False)

    @classmethod
    def at_only(cls) -> "PrefenderConfig":
        return cls(st_enabled=False, at_enabled=True, rp_enabled=False)

    @classmethod
    def st_at(cls, num_access_buffers: int = 32) -> "PrefenderConfig":
        return cls(
            st_enabled=True,
            at_enabled=True,
            rp_enabled=False,
            num_access_buffers=num_access_buffers,
        )

    @classmethod
    def at_rp(cls) -> "PrefenderConfig":
        return cls(st_enabled=False, at_enabled=True, rp_enabled=True)

    @classmethod
    def full(cls, num_access_buffers: int = 32) -> "PrefenderConfig":
        return cls(num_access_buffers=num_access_buffers)
