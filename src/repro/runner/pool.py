"""Persistent warm worker pool for repeated simulation batches.

:func:`~repro.runner.executor.run_batch` normally shards a batch across a
throwaway ``ProcessPoolExecutor`` — fine for one big table, wasteful for a
frontier sweep that submits many small batches in a row, where each batch
pays full pool fork/startup cost again.  A :class:`WorkerPool` keeps a
fixed set of worker processes alive across batches: jobs travel to workers
over a task queue, results come back over a result queue tagged with their
submission index, so every batch returns results in input order and the
output stays byte-identical to a sequential run.

Typical use (the ``frontier`` CLI command does exactly this)::

    from repro.runner import WorkerPool, run_batch

    with WorkerPool(workers=4) as pool:
        security = run_batch(attack_jobs, store=store, pool=pool)
        perf = run_batch(sim_jobs, store=store, pool=pool)  # same workers

Workers are spawned lazily on the first batch and reused until
:meth:`WorkerPool.close` (or the ``with`` block) ends them; they are
daemonic, so an abandoned pool can never keep the interpreter alive.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue
from typing import TYPE_CHECKING, Any, Iterable

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover — typing-only imports
    from multiprocessing.process import BaseProcess
    from multiprocessing.queues import Queue as MPQueue

#: Seconds between liveness checks while waiting on batch results.  Only
#: matters if a worker dies abnormally (e.g. OOM-killed) mid-batch; normal
#: batches never wait this long between result arrivals.
_POLL_INTERVAL = 1.0


def default_workers() -> int:
    """Worker count when the caller asks for ``--jobs 0`` (= all cores)."""
    return max(1, os.cpu_count() or 1)


def _worker_loop(
    tasks: "MPQueue[tuple[int, Any] | None]",
    results: "MPQueue[tuple[int, bool, Any]]",
) -> None:
    """Worker process body: run jobs off ``tasks`` until the ``None`` sentinel.

    Each task is ``(index, job)``; each result is ``(index, ok, payload)``
    where ``payload`` is the job's return value or, on failure, the raised
    exception (re-wrapped in a ``RuntimeError`` carrying its repr if the
    original does not pickle).
    """
    while True:
        item = tasks.get()
        if item is None:
            return
        index, job = item
        try:
            payload = (index, True, job.run())
        except Exception as exc:  # noqa: BLE001 — forwarded to the parent
            try:
                pickle.dumps(exc)
            except Exception:  # noqa: BLE001 — unpicklable exception
                exc = RuntimeError(f"job failed in pool worker: {exc!r}")
            payload = (index, False, exc)
        results.put(payload)


class WorkerPool:
    """Long-lived worker processes shared by successive job batches.

    Args:
        workers: number of worker processes; ``0`` means one per CPU core
            (like ``--jobs 0`` on the CLI).  Negative counts are a
            :class:`~repro.errors.ConfigError`.

    Attributes:
        workers: resolved worker count.
        batches: number of completed :meth:`run` calls (tests use this to
            prove reuse).
    """

    def __init__(self, workers: int = 0) -> None:
        if workers < 0:
            raise ConfigError(f"pool workers must be >= 0, got {workers}")
        self.workers = workers or default_workers()
        self.batches = 0
        self._context = multiprocessing.get_context()
        self._tasks: "MPQueue[tuple[int, Any] | None]" = self._context.Queue()
        self._results: "MPQueue[tuple[int, bool, Any]]" = self._context.Queue()
        self._processes: list["BaseProcess"] = []
        self._closed = False

    # -- lifecycle ----------------------------------------------------------------

    def _ensure_workers(self) -> None:
        """Spawn the workers on first use (lazy, so an unused pool is free)."""
        if self._processes:
            return
        for _ in range(self.workers):
            process = self._context.Process(
                target=_worker_loop,
                args=(self._tasks, self._results),
                daemon=True,
            )
            process.start()
            self._processes.append(process)

    def pids(self) -> list[int | None]:
        """PIDs of the live workers (empty before the first batch)."""
        return [process.pid for process in self._processes]

    def alive(self) -> bool:
        """True when every spawned worker process is still running."""
        return bool(self._processes) and all(
            process.is_alive() for process in self._processes
        )

    def close(self) -> None:
        """Send every worker its shutdown sentinel and join them (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for _ in self._processes:
            self._tasks.put(None)
        for process in self._processes:
            process.join(timeout=10)
            if process.is_alive():  # pragma: no cover — stuck worker
                process.terminate()
        self._processes.clear()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- execution ----------------------------------------------------------------

    def run(self, jobs: Iterable[Any]) -> list[Any]:
        """Run ``jobs`` on the (reused) workers; results in input order.

        The whole batch is drained even when a job raises, so a failure
        never leaves stale tasks behind for the next batch; the earliest
        failing job's exception is then re-raised here.  If a *worker*
        dies mid-batch (e.g. OOM-killed) the queues can no longer be
        trusted, so the pool marks itself closed before raising — a fresh
        pool is the only safe recovery.
        """
        if self._closed:
            raise ConfigError("cannot run jobs on a closed WorkerPool")
        jobs = list(jobs)
        if not jobs:
            return []
        self._ensure_workers()
        for item in enumerate(jobs):
            self._tasks.put(item)
        results: list[Any] = [None] * len(jobs)
        errors: dict[int, Exception] = {}
        collected = 0
        while collected < len(jobs):
            try:
                index, ok, payload = self._results.get(timeout=_POLL_INTERVAL)
            except queue.Empty:
                if not self.alive():
                    # Stale tasks/results may linger in the queues; poison
                    # the pool so no later batch can collect them.
                    self._closed = True
                    for process in self._processes:
                        if process.is_alive():
                            process.terminate()
                    self._processes.clear()
                    raise RuntimeError(
                        "a pool worker died mid-batch; results are "
                        "incomplete and the pool is closed"
                    ) from None
                continue
            if ok:
                results[index] = payload
            else:
                errors[index] = payload
            collected += 1
        self.batches += 1
        if errors:
            raise errors[min(errors)]
        return results
