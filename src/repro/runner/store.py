"""On-disk JSON result store for cacheable simulation jobs.

One file per job key under ``benchmarks/results/cache/`` (or any directory
you point a :class:`ResultStore` at).  Each file records the key-schema
version, the job's full fingerprint (so a human can see exactly which
configuration produced it) and the :class:`~repro.runner.job.SimResult`.
A version bump, an unreadable file or a key mismatch all degrade to a
cache miss — the store can never serve a result for the wrong config.
"""

from __future__ import annotations

import json
import os
import pathlib

from repro.runner.job import KEY_VERSION, SimResult, fingerprint

#: CLI default, relative to the invocation directory (documented in
#: ``python -m repro --help``); benchmarks/conftest.py creates it.
DEFAULT_CACHE_DIR = pathlib.Path("benchmarks") / "results" / "cache"


class ResultStore:
    """Content-keyed ``{key}.json`` files with hit/miss counters."""

    def __init__(self, root: pathlib.Path | str) -> None:
        self.root = pathlib.Path(root)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> pathlib.Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> SimResult | None:
        path = self._path(key)
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if data.get("version") != KEY_VERSION or data.get("key") != key:
            self.misses += 1
            return None
        try:
            result = SimResult.from_json(data["result"])
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, job: object, result: SimResult) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": KEY_VERSION,
            "key": key,
            "job": fingerprint(job),
            "result": result.to_json(),
        }
        # Write-then-rename so a crashed run never leaves a torn file that
        # a later get() would have to classify.
        tmp = self._path(key).with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True, indent=1) + "\n")
        os.replace(tmp, self._path(key))

    def clear(self) -> int:
        """Delete every stored result; returns how many were removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                path.unlink()
                removed += 1
        return removed

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))
