"""On-disk JSON result store for cacheable simulation jobs.

One file per job key under ``benchmarks/results/cache/`` (or any directory
you point a :class:`ResultStore` at).  Each file records the key-schema
version, the result's type (``SimResult``, ``AttackProbe`` or
``ScenarioProbe``), the job's
full fingerprint (so a human can see exactly which configuration produced
it) and the result payload.  A version bump, an unreadable file, a key
mismatch or an unknown result type all degrade to a cache miss — the store
can never serve a result for the wrong config.

Growth is bounded: pass ``max_bytes`` (``--store-max-mb`` on the CLI) and
the store evicts least-recently-used entries after every write.  "Used"
means read *or* written — :meth:`ResultStore.get` touches the file's
mtime on a hit, so hot entries survive frontier-scale sweeps while stale
ones age out.  :meth:`ResultStore.clear` remains the manual escape hatch.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Any

from repro.errors import ConfigError
from repro.runner.job import (
    KEY_VERSION,
    AttackProbe,
    ScenarioProbe,
    SimResult,
    fingerprint,
)

#: CLI default, relative to the invocation directory (documented in
#: ``python -m repro --help``); benchmarks/conftest.py creates it.
DEFAULT_CACHE_DIR = pathlib.Path("benchmarks") / "results" / "cache"

#: Result payload types the store can round-trip, keyed by the
#: ``result_kind`` field written into each entry.  Entries from before the
#: field existed are all SimResults, hence the lookup default in ``get``.
RESULT_TYPES = {
    "SimResult": SimResult,
    "AttackProbe": AttackProbe,
    "ScenarioProbe": ScenarioProbe,
}


class ResultStore:
    """Content-keyed ``{key}.json`` files with hit/miss/eviction counters.

    Args:
        root: directory holding the entries (created on first write).
        max_bytes: optional size cap; when the entries' total size exceeds
            it after a write, least-recently-used files are deleted until
            the store fits again (the just-written entry is never evicted,
            so a single oversized result still caches).

    Attributes:
        hits / misses: lookup counters for this instance.
        evictions: entries deleted by the size cap for this instance.
    """

    def __init__(
        self, root: pathlib.Path | str, max_bytes: int | None = None
    ) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ConfigError(f"store max_bytes must be > 0, got {max_bytes}")
        self.root = pathlib.Path(root)
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _path(self, key: str) -> pathlib.Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> Any:
        """Return the stored result for ``key``, or ``None`` on any miss.

        A hit refreshes the entry's mtime, which is the recency the size
        cap's LRU eviction ranks on.
        """
        path = self._path(key)
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if data.get("version") != KEY_VERSION or data.get("key") != key:
            self.misses += 1
            return None
        result_cls = RESULT_TYPES.get(data.get("result_kind", "SimResult"))
        if result_cls is None:
            self.misses += 1
            return None
        try:
            result = result_cls.from_json(data["result"])
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        try:
            os.utime(path)  # mark as recently used for LRU eviction
        except OSError:  # pragma: no cover — entry raced away under us
            pass
        return result

    def put(self, key: str, job: object, result: Any) -> None:
        """Persist one result (then enforce the size cap, if any)."""
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": KEY_VERSION,
            "key": key,
            "result_kind": type(result).__name__,
            "job": fingerprint(job),
            "result": result.to_json(),
        }
        # Write-then-rename so a crashed run never leaves a torn file that
        # a later get() would have to classify.
        tmp = self._path(key).with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True, indent=1) + "\n")
        os.replace(tmp, self._path(key))
        if self.max_bytes is not None:
            self._evict(keep=self._path(key))

    def _evict(self, keep: pathlib.Path) -> None:
        """Delete LRU entries until the store fits ``max_bytes`` again."""
        cap = self.max_bytes
        if cap is None:  # pragma: no cover — only called when a cap is set
            return
        entries: list[tuple[float, str, pathlib.Path, int]] = []
        total = 0
        for path in self.root.glob("*.json"):
            try:
                stat = path.stat()
            except OSError:  # pragma: no cover — entry raced away under us
                continue
            entries.append((stat.st_mtime, path.name, path, stat.st_size))
            total += stat.st_size
        entries.sort()  # oldest mtime first; name breaks ties deterministically
        for _, _, path, size in entries:
            if total <= cap:
                return
            if path == keep:
                continue
            try:
                path.unlink()
            except OSError:  # pragma: no cover — entry raced away under us
                continue
            total -= size
            self.evictions += 1

    def clear(self) -> int:
        """Delete every stored result; returns how many were removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                path.unlink()
                removed += 1
        return removed

    def size_bytes(self) -> int:
        """Total size of the stored entries (what ``max_bytes`` caps)."""
        if not self.root.is_dir():
            return 0
        return sum(path.stat().st_size for path in self.root.glob("*.json"))

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))
