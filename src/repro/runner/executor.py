"""Batch execution of simulation jobs across CPU cores.

``run_batch`` takes the *full* grid of jobs an experiment declares up
front, deduplicates them by content key, satisfies what it can from the
optional disk store, and shards the rest across a
``ProcessPoolExecutor``.  Results always come back in input order, so a
parallel table regeneration is byte-identical to a sequential one.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor

from repro.errors import ConfigError
from repro.runner.store import ResultStore


def default_workers() -> int:
    """Worker count when the caller asks for ``--jobs 0`` (= all cores)."""
    return max(1, os.cpu_count() or 1)


def _execute(job):
    """Module-level trampoline so jobs pickle cleanly into pool workers."""
    return job.run()


def run_batch(jobs, workers: int = 1, store: ResultStore | None = None) -> list:
    """Run a batch of jobs; results are returned in input order.

    Args:
        jobs: sequence of :class:`~repro.runner.job.SimJob` /
            :class:`~repro.runner.job.AttackJob` (anything with ``key()``,
            ``run()`` and a ``cacheable`` flag).  Duplicate keys are run
            once and the result shared.
        workers: process count; ``1`` runs inline (no pool), ``0`` means
            one worker per CPU core.
        store: optional on-disk store consulted before running and updated
            after, for ``cacheable`` jobs only.
    """
    if workers < 0:
        raise ConfigError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        workers = default_workers()
    jobs = list(jobs)
    keys = [job.key() for job in jobs]

    results: dict[str, object] = {}
    pending: list[tuple[str, object]] = []
    pending_keys: set[str] = set()
    for key, job in zip(keys, jobs):
        if key in results or key in pending_keys:
            continue
        if store is not None and job.cacheable:
            cached = store.get(key)
            if cached is not None:
                results[key] = cached
                continue
        pending_keys.add(key)
        pending.append((key, job))

    if workers == 1 or len(pending) <= 1:
        for key, job in pending:
            results[key] = _execute(job)
    else:
        with ProcessPoolExecutor(max_workers=min(workers, len(pending))) as pool:
            futures = [(key, pool.submit(_execute, job)) for key, job in pending]
            for key, future in futures:
                results[key] = future.result()

    if store is not None:
        for key, job in pending:
            if job.cacheable:
                store.put(key, job, results[key])

    return [results[key] for key in keys]
