"""Batch execution of simulation jobs across CPU cores.

``run_batch`` takes the *full* grid of jobs an experiment declares up
front, deduplicates them by content key, satisfies what it can from the
optional disk store, and shards the rest across worker processes.
Results always come back in input order, so a parallel table regeneration
is byte-identical to a sequential one.

Two execution backends share that contract:

* default — a throwaway ``ProcessPoolExecutor`` per call, right for a
  single large batch (``python -m repro table 4 --jobs 4``);
* ``pool=`` — a caller-owned :class:`~repro.runner.pool.WorkerPool` whose
  warm workers are reused across *successive* ``run_batch`` calls, right
  for sweeps that submit many batches (``python -m repro frontier``).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Any, Iterable

from repro.errors import ConfigError
from repro.runner.pool import WorkerPool, default_workers
from repro.runner.store import ResultStore

__all__ = ["default_workers", "run_batch"]


#: Don't split a replay group below this many trials: each chunk repeats
#: the cell's warm-up, so tiny chunks trade shared prefix for parallelism.
_MIN_GROUP_CHUNK = 4


def run_batch(
    jobs: Iterable[Any],
    workers: int = 1,
    store: ResultStore | None = None,
    pool: WorkerPool | None = None,
    reuse_snapshots: bool = False,
) -> list[Any]:
    """Run a batch of jobs; results are returned in input order.

    Args:
        jobs: sequence of :class:`~repro.runner.job.SimJob` /
            :class:`~repro.runner.job.AttackJob` /
            :class:`~repro.runner.job.AttackProbeJob` (anything with
            ``key()``, ``run()`` and a ``cacheable`` flag).  Duplicate keys
            are run once and the result shared.
        workers: process count; ``1`` runs inline (no pool), ``0`` means
            one worker per CPU core.  Ignored when ``pool`` is given.
        store: optional on-disk store consulted before running and updated
            after, for ``cacheable`` jobs only.
        pool: optional persistent :class:`~repro.runner.pool.WorkerPool`;
            its warm workers execute the batch (and stay alive for the
            caller's next batch) instead of a freshly forked executor.
        reuse_snapshots: serve eligible ``ScenarioJob`` trials off one
            warmed system snapshot per (attack, victim, defense) cell
            (:mod:`repro.attacks.replay`) instead of rebuilding the system
            for every trial.  Probes are byte-identical to the rebuild
            path (``tests/test_scenarios.py`` pins this); ineligible jobs
            fall back to their own ``run()`` transparently.

    Returns:
        One result per input job, in input order.
    """
    if workers < 0:
        raise ConfigError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        workers = default_workers()
    jobs = list(jobs)
    keys = [job.key() for job in jobs]

    results: dict[str, Any] = {}
    pending: list[tuple[str, Any]] = []
    pending_keys: set[str] = set()
    for key, job in zip(keys, jobs):
        if key in results or key in pending_keys:
            continue
        if store is not None and job.cacheable:
            cached = store.get(key)
            if cached is not None:
                results[key] = cached
                continue
        pending_keys.add(key)
        pending.append((key, job))

    # Each unit is (member keys, runnable, is_group): a plain job carries
    # one key and returns one result; a ScenarioReplayJob group carries its
    # members' keys and returns one result per member, fanned back out
    # below.
    target_tasks = pool.workers if pool is not None else workers
    units = _plan_units(pending, reuse_snapshots, target_tasks)

    if pool is not None:
        outputs = pool.run([runnable for _, runnable, _ in units])
    elif workers == 1 or len(units) <= 1:
        outputs = [runnable.run() for _, runnable, _ in units]
    else:
        with ProcessPoolExecutor(max_workers=min(workers, len(units))) as ppe:
            futures = [ppe.submit(_execute, runnable) for _, runnable, _ in units]
            outputs = [future.result() for future in futures]

    for (unit_keys, _, is_group), output in zip(units, outputs):
        if is_group:
            for key, result in zip(unit_keys, output):
                results[key] = result
        else:
            results[unit_keys[0]] = output

    if store is not None:
        for key, job in pending:
            if job.cacheable:
                store.put(key, job, results[key])

    return [results[key] for key in keys]


def _plan_units(
    pending: list[tuple[str, Any]], reuse_snapshots: bool, target_tasks: int
) -> list[tuple[list[str], Any, bool]]:
    """Schedule pending jobs into executable units.

    Without snapshot reuse every job is its own unit.  With it, eligible
    scenario trials are grouped by cell (same attack × victim × defense,
    secrets neutralised out of the key) into :class:`ScenarioReplayJob`
    tasks; oversized groups split so at least ``target_tasks`` units exist
    when the trial counts allow — each chunk re-runs the cell's warm-up,
    so chunks never shrink below ``_MIN_GROUP_CHUNK`` trials.
    """
    if not reuse_snapshots:
        return [([key], job, False) for key, job in pending]
    # Imported lazily: the replay module pulls in the attack registry,
    # which plain (non-scenario) batches never need.
    from repro.attacks.replay import (
        ScenarioReplayJob,
        replay_eligible,
        replay_group_key,
    )
    from repro.runner.job import ScenarioJob

    groups: dict[str, list[tuple[str, Any]]] = {}
    units: list[tuple[list[str], Any, bool]] = []
    for key, job in pending:
        if isinstance(job, ScenarioJob) and replay_eligible(job):
            groups.setdefault(replay_group_key(job), []).append((key, job))
        else:
            units.append(([key], job, False))
    chunks = _split_groups(list(groups.values()), target_tasks - len(units))
    for chunk in chunks:
        units.append(
            (
                [key for key, _ in chunk],
                ScenarioReplayJob(tuple(job for _, job in chunk)),
                True,
            )
        )
    return units


def _split_groups(
    groups: list[list[tuple[str, Any]]], target: int
) -> list[list[tuple[str, Any]]]:
    """Halve the largest group until ``target`` tasks exist (or nothing
    splittable remains); keeps all workers busy on few-cell grids."""
    while len(groups) < target:
        largest = max(groups, key=len, default=None)
        if largest is None or len(largest) < 2 * _MIN_GROUP_CHUNK:
            break
        groups.remove(largest)
        middle = len(largest) // 2
        groups.extend([largest[:middle], largest[middle:]])
    return groups


def _execute(job: Any) -> Any:
    """Module-level trampoline so jobs pickle cleanly into pool workers."""
    return job.run()
