"""Batch execution of simulation jobs across CPU cores.

``run_batch`` takes the *full* grid of jobs an experiment declares up
front, deduplicates them by content key, satisfies what it can from the
optional disk store, and shards the rest across worker processes.
Results always come back in input order, so a parallel table regeneration
is byte-identical to a sequential one.

Two execution backends share that contract:

* default — a throwaway ``ProcessPoolExecutor`` per call, right for a
  single large batch (``python -m repro table 4 --jobs 4``);
* ``pool=`` — a caller-owned :class:`~repro.runner.pool.WorkerPool` whose
  warm workers are reused across *successive* ``run_batch`` calls, right
  for sweeps that submit many batches (``python -m repro frontier``).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Any, Iterable

from repro.errors import ConfigError
from repro.runner.pool import WorkerPool, default_workers
from repro.runner.store import ResultStore

__all__ = ["default_workers", "run_batch"]


def run_batch(
    jobs: Iterable[Any],
    workers: int = 1,
    store: ResultStore | None = None,
    pool: WorkerPool | None = None,
) -> list[Any]:
    """Run a batch of jobs; results are returned in input order.

    Args:
        jobs: sequence of :class:`~repro.runner.job.SimJob` /
            :class:`~repro.runner.job.AttackJob` /
            :class:`~repro.runner.job.AttackProbeJob` (anything with
            ``key()``, ``run()`` and a ``cacheable`` flag).  Duplicate keys
            are run once and the result shared.
        workers: process count; ``1`` runs inline (no pool), ``0`` means
            one worker per CPU core.  Ignored when ``pool`` is given.
        store: optional on-disk store consulted before running and updated
            after, for ``cacheable`` jobs only.
        pool: optional persistent :class:`~repro.runner.pool.WorkerPool`;
            its warm workers execute the batch (and stay alive for the
            caller's next batch) instead of a freshly forked executor.

    Returns:
        One result per input job, in input order.
    """
    if workers < 0:
        raise ConfigError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        workers = default_workers()
    jobs = list(jobs)
    keys = [job.key() for job in jobs]

    results: dict[str, Any] = {}
    pending: list[tuple[str, Any]] = []
    pending_keys: set[str] = set()
    for key, job in zip(keys, jobs):
        if key in results or key in pending_keys:
            continue
        if store is not None and job.cacheable:
            cached = store.get(key)
            if cached is not None:
                results[key] = cached
                continue
        pending_keys.add(key)
        pending.append((key, job))

    if pool is not None:
        for (key, _), result in zip(
            pending, pool.run([job for _, job in pending])
        ):
            results[key] = result
    elif workers == 1 or len(pending) <= 1:
        for key, job in pending:
            results[key] = job.run()
    else:
        with ProcessPoolExecutor(max_workers=min(workers, len(pending))) as ppe:
            futures = [(key, ppe.submit(_execute, job)) for key, job in pending]
            for key, future in futures:
                results[key] = future.result()

    if store is not None:
        for key, job in pending:
            if job.cacheable:
                store.put(key, job, results[key])

    return [results[key] for key in keys]


def _execute(job: Any) -> Any:
    """Module-level trampoline so jobs pickle cleanly into pool workers."""
    return job.run()
