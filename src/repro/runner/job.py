"""Canonical simulation jobs with lossless, content-addressed keys.

The experiment layer used to memoise runs behind a hand-written tuple key
that encoded a handful of ``PrefenderConfig`` fields and silently rebuilt
the rest from defaults — any sweep varying a non-encoded knob (e.g.
``at_threshold``) read back cycles for the wrong configuration.  The job
key here is derived *structurally*: :func:`fingerprint` walks every
``dataclasses.fields`` entry of the full ``SystemConfig`` tree (prefetcher
spec, PREFENDER knobs, core timing, hierarchy geometry), so a newly added
config field participates in the key automatically and can never fall out
of it again (``tests/test_runner.py`` asserts this field-by-field).

Three job kinds cover everything the experiments run:

* :class:`SimJob` — one workload program on one system config
  (:func:`repro.sim.simulator.run_program`); returns a JSON-serialisable
  :class:`SimResult`, so results can live in the on-disk store.
* :class:`AttackJob` — one attack (by registry name) against one system
  config; returns the full :class:`repro.attacks.AttackOutcome` (picklable
  but not JSON-able, so attack jobs never hit the disk store).
* :class:`AttackProbeJob` — the same attack run reduced to its verdict
  (:class:`AttackProbe`: succeeded?, candidate set, cycles).  Probes *are*
  JSON-able, so frontier sweeps can serve repeat security grids warm from
  the disk store.
* :class:`ScenarioJob` — one attack × crypto-victim × defense trial for
  one secret (:mod:`repro.attacks.scenarios` builds the grids).  Its
  :class:`ScenarioProbe` scores the candidate set against the victim's
  *expected access footprint* (multi-line victims are recovered when the
  attacker isolates exactly those lines) and keeps the raw latencies, so
  the leakage scorer can estimate mutual information.  JSON-able and
  disk-cacheable.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

from repro.attacks import (
    AdversarialPrefetchA1,
    AdversarialPrefetchA2,
    AttackOutcome,
    EvictReloadAttack,
    EvictTimeAttack,
    FlushReloadAttack,
    PrimeProbeAttack,
)
from repro.attacks.layout import AttackOptions
from repro.cpu.system import RunResult
from repro.errors import ConfigError
from repro.sim.config import SystemConfig
from repro.sim.simulator import run_program
from repro.workloads import get_workload

#: Bump when the key schema or the simulator's observable semantics change;
#: invalidates every on-disk store entry at once.
#: v2: Record Protector idle-expiry sweep, MSHR demand-priority prefetch
#: squash and Baer–Chen stride confidence gating all shift cycle counts;
#: SimResult additionally grew ``defense_stats``.
KEY_VERSION = 2

#: Attack registry names (shared with the CLI's ``attack`` command).
ATTACK_KINDS = {
    "flush-reload": FlushReloadAttack,
    "evict-reload": EvictReloadAttack,
    "prime-probe": PrimeProbeAttack,
    "evict-time": EvictTimeAttack,
    "adversarial-prefetch-a1": AdversarialPrefetchA1,
    "adversarial-prefetch-a2": AdversarialPrefetchA2,
}

#: Family name the CLI expands to every adversarial-prefetch variant.
ADVERSARIAL_PREFETCH_FAMILY = "adversarial-prefetch"
ADVERSARIAL_PREFETCH_VARIANTS = {
    "a1": "adversarial-prefetch-a1",
    "a2": "adversarial-prefetch-a2",
}


def fingerprint(value: object) -> object:
    """Canonical JSON-able projection of a job or config value.

    Dataclasses contribute *every* field (via ``dataclasses.fields``) plus
    their class name; containers recurse; scalars pass through.  Anything
    unrecognised is an error — silence here is exactly the bug this module
    replaces.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        out: dict[str, object] = {"__class__": type(value).__name__}
        for f in dataclasses.fields(value):
            out[f.name] = fingerprint(getattr(value, f.name))
        return out
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [fingerprint(item) for item in value]
    if isinstance(value, dict):
        return {str(key): fingerprint(val) for key, val in sorted(value.items())}
    raise ConfigError(
        f"cannot fingerprint {type(value).__name__!r} into a job key"
    )


def job_key(job: object) -> str:
    """Content hash of a job: sha256 over its canonical JSON fingerprint."""
    blob = json.dumps(
        {"version": KEY_VERSION, "job": fingerprint(job)},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class SimResult:
    """JSON-serialisable summary of one simulation run.

    Everything the performance tables and figures read; prefetch timelines
    are deliberately excluded (they are large, and the only consumer —
    Fig. 9 — runs attacks, whose jobs return full outcomes).
    """

    cycles: int
    instructions: int
    core_cycles: list[int]
    core_instructions: list[int]
    l1d_stats: list[dict[str, int]]
    l2_stats: dict[str, int]
    prefetch_counts: list[dict[str, int]]
    samples: list[tuple[int, int]] = field(default_factory=list)
    defense_stats: list[dict[str, int]] = field(default_factory=list)

    @classmethod
    def from_run(cls, result: RunResult) -> "SimResult":
        return cls(
            cycles=result.cycles,
            instructions=result.instructions,
            core_cycles=list(result.core_cycles),
            core_instructions=list(result.core_instructions),
            l1d_stats=[dict(stats) for stats in result.l1d_stats],
            l2_stats=dict(result.l2_stats),
            prefetch_counts=[dict(counts) for counts in result.prefetch_counts],
            samples=[(int(step), int(value)) for step, value in result.samples],
            defense_stats=[dict(stats) for stats in result.defense_stats],
        )

    def to_json(self) -> dict[str, Any]:
        data = dataclasses.asdict(self)
        data["samples"] = [[step, value] for step, value in self.samples]
        return data

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "SimResult":
        return cls(
            cycles=data["cycles"],
            instructions=data["instructions"],
            core_cycles=list(data["core_cycles"]),
            core_instructions=list(data["core_instructions"]),
            l1d_stats=[dict(stats) for stats in data["l1d_stats"]],
            l2_stats=dict(data["l2_stats"]),
            prefetch_counts=[dict(counts) for counts in data["prefetch_counts"]],
            samples=[(step, value) for step, value in data["samples"]],
            defense_stats=[
                {str(key): int(value) for key, value in stats.items()}
                for stats in data.get("defense_stats", [])
            ],
        )


@dataclass(frozen=True)
class SimJob:
    """One workload program on one fully specified system configuration.

    Attributes:
        workload: registry name from :mod:`repro.workloads`.
        scale: loop-count multiplier (> 0); 1.0 is the paper's size.
        system: the full :class:`~repro.sim.config.SystemConfig` — every
            field participates in :meth:`key`.
        sample_interval: record ``(step, cycles)`` samples every N steps
            (``None`` disables sampling; figures 10/12 use it).
        max_steps: simulation step budget (guards runaway programs).
    """

    workload: str
    scale: float = 1.0
    system: SystemConfig = field(default_factory=SystemConfig)
    sample_interval: int | None = None
    max_steps: int = 20_000_000

    #: SimResults are JSON round-trippable, so the disk store may keep them.
    cacheable = True

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ConfigError(f"workload scale must be > 0, got {self.scale}")

    def key(self) -> str:
        return job_key(self)

    def run(self) -> SimResult:
        program = get_workload(self.workload).program(self.scale)
        result = run_program(
            program,
            self.system,
            max_steps=self.max_steps,
            sample_interval=self.sample_interval,
        )
        return SimResult.from_run(result)


@dataclass(frozen=True)
class AttackJob:
    """One attack (by registry name) against one system configuration.

    Attributes:
        attack: key into :data:`ATTACK_KINDS` (e.g. ``"flush-reload"``).
        system: the defense under attack; ``num_cores`` and speculation
            settings are adjusted by the attack itself at run time.
        options: resolved :class:`~repro.attacks.layout.AttackOptions`;
            ``None`` defers to the attack class's defaults — prefer
            :meth:`build`, which resolves the merge *into the key*.
        max_steps: simulation step budget.

    For disk-cacheable attack verdicts, see :class:`AttackProbeJob`.
    """

    attack: str
    system: SystemConfig = field(default_factory=SystemConfig)
    options: AttackOptions | None = None
    max_steps: int = 20_000_000

    #: AttackOutcomes carry a full RunResult; pool-picklable, not JSON-able.
    cacheable = False

    def __post_init__(self) -> None:
        if self.attack not in ATTACK_KINDS:
            raise ConfigError(
                f"unknown attack {self.attack!r}; "
                f"choose from {sorted(ATTACK_KINDS)}"
            )

    @classmethod
    def build(
        cls, attack: str, system: SystemConfig | None = None, **option_overrides: Any
    ) -> "AttackJob":
        """Job with the attack class's default options merged in.

        Attack classes carry per-class option defaults (e.g. Prime+Probe's
        64 monitored sets); instantiating one resolves the merge so the job
        key reflects the *effective* options.
        """
        if attack not in ATTACK_KINDS:
            raise ConfigError(
                f"unknown attack {attack!r}; choose from {sorted(ATTACK_KINDS)}"
            )
        merged = ATTACK_KINDS[attack](**option_overrides).options
        return cls(attack=attack, system=system or SystemConfig(), options=merged)

    def key(self) -> str:
        return job_key(self)

    def run(self) -> AttackOutcome:
        attack_cls = ATTACK_KINDS[self.attack]
        attack = attack_cls() if self.options is None else attack_cls(self.options)
        return attack.run(self.system, max_steps=self.max_steps)


@dataclass
class AttackProbe:
    """JSON-serialisable verdict of one attack run.

    Everything the frontier needs from an attack — did it uniquely recover
    the secret, which indices stayed candidates, and how many cycles the
    run took — without the full (non-JSON-able) ``RunResult`` an
    :class:`~repro.attacks.AttackOutcome` carries.  Probes therefore
    qualify for the on-disk :class:`~repro.runner.store.ResultStore`.
    """

    attack: str
    challenges: str
    secret: int
    succeeded: bool
    candidates: list[int]
    cycles: int

    def to_json(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "AttackProbe":
        return cls(
            attack=str(data["attack"]),
            challenges=str(data["challenges"]),
            secret=int(data["secret"]),
            succeeded=bool(data["succeeded"]),
            candidates=[int(index) for index in data["candidates"]],
            cycles=int(data["cycles"]),
        )


@dataclass(frozen=True)
class AttackProbeJob:
    """One attack run reduced to its storable :class:`AttackProbe` verdict.

    Same inputs as :class:`AttackJob` (and a distinct content key — the
    fingerprint includes the class name), but the result drops the raw
    ``RunResult``, so frontier-scale security grids can be cached on disk
    and served warm on the next invocation.
    """

    attack: str
    system: SystemConfig = field(default_factory=SystemConfig)
    options: AttackOptions | None = None
    max_steps: int = 20_000_000

    #: AttackProbes are JSON round-trippable, so the disk store may keep them.
    cacheable = True

    def __post_init__(self) -> None:
        if self.attack not in ATTACK_KINDS:
            raise ConfigError(
                f"unknown attack {self.attack!r}; "
                f"choose from {sorted(ATTACK_KINDS)}"
            )

    @classmethod
    def build(
        cls, attack: str, system: SystemConfig | None = None, **option_overrides: Any
    ) -> "AttackProbeJob":
        """Probe job with the attack class's default options merged in.

        Mirrors :meth:`AttackJob.build` so the job key reflects the
        *effective* options, not just the overrides.
        """
        inner = AttackJob.build(attack, system, **option_overrides)
        return cls(attack=inner.attack, system=inner.system, options=inner.options)

    def key(self) -> str:
        return job_key(self)

    def run(self) -> AttackProbe:
        outcome = AttackJob(
            attack=self.attack,
            system=self.system,
            options=self.options,
            max_steps=self.max_steps,
        ).run()
        return AttackProbe(
            attack=self.attack,
            challenges=outcome.challenges,
            secret=outcome.secret,
            succeeded=outcome.attack_succeeded,
            candidates=list(outcome.candidates),
            cycles=outcome.run_result.cycles,
        )


@dataclass
class ScenarioProbe:
    """JSON-serialisable outcome of one attack × victim × defense trial.

    ``expected`` is the victim's secret-dependent access footprint (from
    :meth:`repro.workloads.crypto.CryptoVictim.expected_indices`);
    ``succeeded`` means the attacker's candidate set singled out exactly
    that footprint.  ``latencies`` keeps the per-index measurements so
    :mod:`repro.attacks.leakage` can estimate the mutual information
    between the secret and the attacker's observable, and
    ``defense_stats`` carries the per-core PREFENDER counters (protection
    lifecycle, buffer starvation) of the run.
    """

    attack: str
    victim: str
    challenges: str
    secret: int
    expected: list[int]
    candidates: list[int]
    latencies: list[int]
    succeeded: bool
    cycles: int
    defense_stats: list[dict[str, int]]

    def to_json(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "ScenarioProbe":
        return cls(
            attack=str(data["attack"]),
            victim=str(data["victim"]),
            challenges=str(data["challenges"]),
            secret=int(data["secret"]),
            expected=[int(index) for index in data["expected"]],
            candidates=[int(index) for index in data["candidates"]],
            latencies=[int(latency) for latency in data["latencies"]],
            succeeded=bool(data["succeeded"]),
            cycles=int(data["cycles"]),
            defense_stats=[
                {str(key): int(value) for key, value in stats.items()}
                for stats in data.get("defense_stats", [])
            ],
        )


@dataclass(frozen=True)
class ScenarioJob:
    """One attack on one crypto victim for one secret, scored by footprint.

    The victim name and trial secret live inside ``options`` (both are
    :class:`~repro.attacks.layout.AttackOptions` fields), so the content
    key covers them automatically; prefer :meth:`build`, which resolves
    the victim's probe-array geometry and the attack's option defaults
    *into* the key.
    """

    attack: str
    system: SystemConfig = field(default_factory=SystemConfig)
    options: AttackOptions = field(default_factory=AttackOptions)
    max_steps: int = 20_000_000

    #: ScenarioProbes are JSON round-trippable; scenario grids cache warm.
    cacheable = True

    def __post_init__(self) -> None:
        if self.attack not in ATTACK_KINDS:
            raise ConfigError(
                f"unknown attack {self.attack!r}; "
                f"choose from {sorted(ATTACK_KINDS)}"
            )

    @classmethod
    def build(
        cls,
        attack: str,
        victim: str,
        secret: int,
        system: SystemConfig | None = None,
        **option_overrides: Any,
    ) -> "ScenarioJob":
        """Job with victim geometry and attack defaults resolved in.

        The victim dictates the probe-array size its index map assumes;
        the attack class's own option defaults fill the rest, exactly as
        :meth:`AttackJob.build` does.
        """
        from repro.workloads.crypto import get_victim

        descriptor = get_victim(victim)
        if not 0 <= secret < descriptor.secret_space:
            raise ConfigError(
                f"secret {secret} outside victim {victim!r} space "
                f"0..{descriptor.secret_space - 1}"
            )
        inner = AttackJob.build(
            attack,
            system,
            victim=victim,
            secret=secret,
            num_indices=descriptor.num_indices,
            **option_overrides,
        )
        return cls(attack=inner.attack, system=inner.system, options=inner.options)

    def key(self) -> str:
        return job_key(self)

    def run(self) -> ScenarioProbe:
        outcome = AttackJob(
            attack=self.attack,
            system=self.system,
            options=self.options,
            max_steps=self.max_steps,
        ).run()
        return self.probe_from_outcome(outcome)

    def probe_from_outcome(self, outcome: AttackOutcome) -> ScenarioProbe:
        """Score one classified outcome against the victim's footprint.

        Shared by :meth:`run` (rebuild path) and the snapshot-replay runner
        (:mod:`repro.attacks.replay`), so both paths produce probes through
        the same scoring code.
        """
        from repro.workloads.crypto import get_victim

        expected = get_victim(self.options.victim).expected_indices(
            self.options.secret, self.options
        )
        candidates = outcome.candidates
        return ScenarioProbe(
            attack=self.attack,
            victim=self.options.victim,
            challenges=outcome.challenges,
            secret=self.options.secret,
            expected=list(expected),
            candidates=list(candidates),
            latencies=list(outcome.latencies),
            succeeded=set(candidates) == set(expected),
            cycles=outcome.run_result.cycles,
            defense_stats=[
                dict(stats) for stats in outcome.run_result.defense_stats
            ],
        )
