"""Simulation-job runner: lossless content keys, batching, disk store.

Declare the full grid of runs an experiment needs, submit it as one
:func:`run_batch`, and read the results back in input order:

    from repro.runner import SimJob, run_batch

    jobs = [SimJob(workload=name, scale=0.5, system=config)
            for name in names for config in configs]
    results = run_batch(jobs, workers=4)

Keys are content hashes over *every* configuration dataclass field (see
:mod:`repro.runner.job`), so two jobs differing in any knob — however
obscure — never share a result.
"""

from repro.runner.executor import default_workers, run_batch
from repro.runner.job import (
    ATTACK_KINDS,
    KEY_VERSION,
    AttackJob,
    SimJob,
    SimResult,
    fingerprint,
    job_key,
)
from repro.runner.store import DEFAULT_CACHE_DIR, ResultStore

__all__ = [
    "ATTACK_KINDS",
    "AttackJob",
    "DEFAULT_CACHE_DIR",
    "KEY_VERSION",
    "ResultStore",
    "SimJob",
    "SimResult",
    "default_workers",
    "fingerprint",
    "job_key",
    "run_batch",
]
