"""Simulation-job runner: lossless content keys, batching, disk store.

Declare the full grid of runs an experiment needs, submit it as one
:func:`run_batch`, and read the results back in input order:

    from repro.runner import SimJob, run_batch

    jobs = [SimJob(workload=name, scale=0.5, system=config)
            for name in names for config in configs]
    results = run_batch(jobs, workers=4)

Keys are content hashes over *every* configuration dataclass field (see
:mod:`repro.runner.job`), so two jobs differing in any knob — however
obscure — never share a result.

Sweeps that submit many batches in a row (the ``frontier`` command) keep
one :class:`WorkerPool` open and pass it to every ``run_batch`` call, so
worker processes are forked once and reused instead of being respawned per
batch:

    with WorkerPool(workers=4) as pool:
        first = run_batch(jobs_a, pool=pool)
        second = run_batch(jobs_b, pool=pool)  # same warm workers
"""

from repro.runner.executor import run_batch
from repro.runner.job import (
    ADVERSARIAL_PREFETCH_FAMILY,
    ADVERSARIAL_PREFETCH_VARIANTS,
    ATTACK_KINDS,
    KEY_VERSION,
    AttackJob,
    AttackProbe,
    AttackProbeJob,
    ScenarioJob,
    ScenarioProbe,
    SimJob,
    SimResult,
    fingerprint,
    job_key,
)
from repro.runner.pool import WorkerPool, default_workers
from repro.runner.store import DEFAULT_CACHE_DIR, ResultStore

__all__ = [
    "ADVERSARIAL_PREFETCH_FAMILY",
    "ADVERSARIAL_PREFETCH_VARIANTS",
    "ATTACK_KINDS",
    "AttackJob",
    "AttackProbe",
    "AttackProbeJob",
    "DEFAULT_CACHE_DIR",
    "KEY_VERSION",
    "ResultStore",
    "ScenarioJob",
    "ScenarioProbe",
    "SimJob",
    "SimResult",
    "WorkerPool",
    "default_workers",
    "fingerprint",
    "job_key",
    "run_batch",
]
