"""Prefetcher protocol: observations in, prefetch requests out.

The memory hierarchy notifies the L1D's prefetcher after every demand access
with an :class:`Observation`; the prefetcher answers with zero or more
:class:`PrefetchRequest` objects which the hierarchy then issues (subject to
MSHR availability and duplicate-line suppression).

PREFENDER additionally needs the *scale* of the load's base register from the
core's calculation buffer (paper Sec. IV-B); the core threads it through the
observation.  ``l1d_contains`` lets trackers honour the paper's "not currently
in the L1D cache" candidate filters without reaching into cache internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.snapshot import require_keys


@dataclass(frozen=True)
class Observation:
    """One demand access as seen by an L1D prefetcher.

    Attributes:
        op: ``"load"`` or ``"store"``.
        core_id: issuing core.
        pc: instruction address of the memory instruction.
        addr: full byte address accessed.
        block_addr: ``addr`` rounded to its cacheline base.
        hit: True when the access hit in L1D (ready data).
        now: issue time in cycles.
        scale: Scale Tracker scale of the address base register at execute
            time (canonical 1 = "no useful scale").
        speculative: True when issued by a not-yet-resolved (transient) path.
    """

    op: str
    core_id: int
    pc: int
    addr: int
    block_addr: int
    hit: bool
    now: int
    scale: int = 1
    speculative: bool = False


@dataclass(frozen=True)
class PrefetchRequest:
    """A single-line prefetch request raised by a prefetcher.

    Attributes:
        addr: byte address anywhere in the target line.
        component: stats key attributing the prefetch (``"st"``, ``"at"``,
            ``"rp"``, ``"tagged"``, ``"stride"``, ...).
    """

    addr: int
    component: str


# Callable the hierarchy exposes so prefetchers can probe L1D residency:
# f(block_addr) -> bool (valid line, including in-flight fills).
ContainsProbe = Callable[[int], bool]


class Prefetcher:
    """Base class: observes demand accesses, proposes prefetches."""

    name = "null"

    def observe(
        self, observation: Observation, l1d_contains: ContainsProbe
    ) -> list[PrefetchRequest]:
        """Return prefetch requests for this access (may be empty)."""
        raise NotImplementedError

    def on_back_invalidation(self, block_addr: int, now: int) -> list[PrefetchRequest]:
        """Hook for back-invalidation events (used by BITP); default: none."""
        return []

    def reset(self) -> None:
        """Clear all learned state (used between experiment phases)."""

    def snapshot(self) -> dict[str, Any]:
        """All mutable state; stateless prefetchers return ``{}``."""
        return {}

    def restore(self, data: dict[str, Any]) -> None:
        """Inverse of :meth:`snapshot` (strict-key, in-place)."""
        require_keys(data, (), type(self).__name__)


@dataclass
class NullPrefetcher(Prefetcher):
    """A prefetcher that never prefetches (the paper's Baseline column)."""

    name: str = field(default="none")

    def observe(
        self, observation: Observation, l1d_contains: ContainsProbe
    ) -> list[PrefetchRequest]:
        return []
