"""Prefetcher interfaces and the baseline prefetchers from the paper.

* :class:`TaggedPrefetcher` — Smith's tagged sequential prefetcher [15].
* :class:`StridePrefetcher` — Baer/Chen PC-indexed stride prefetcher [16,40].
* :class:`CompositePrefetcher` — PREFENDER-over-basic composition with
  PREFENDER priority (paper Sec. V-A).
* :class:`BITPPrefetcher` / :class:`DisruptivePrefetcher` — related-work
  models used only for the Table II ablation.
"""

from repro.prefetch.base import (
    NullPrefetcher,
    Observation,
    Prefetcher,
    PrefetchRequest,
)
from repro.prefetch.tagged import TaggedPrefetcher
from repro.prefetch.stride import StridePrefetcher
from repro.prefetch.composite import CompositePrefetcher
from repro.prefetch.bitp import BITPPrefetcher
from repro.prefetch.disruptive import DisruptivePrefetcher

__all__ = [
    "NullPrefetcher",
    "Observation",
    "Prefetcher",
    "PrefetchRequest",
    "TaggedPrefetcher",
    "StridePrefetcher",
    "CompositePrefetcher",
    "BITPPrefetcher",
    "DisruptivePrefetcher",
]
