"""PREFENDER composed with a basic prefetcher.

The paper runs PREFENDER alongside Tagged or Stride basic prefetchers with
"the priority of PREFENDER's prefetching higher than basic prefetchers for
timely defense" (Sec. V-A).  The composite therefore emits PREFENDER's
requests first; when MSHRs run out, the basic prefetcher's requests are the
ones that get dropped.
"""

from __future__ import annotations

from typing import Any

from repro.prefetch.base import ContainsProbe, Observation, Prefetcher, PrefetchRequest
from repro.snapshot import require_keys


class CompositePrefetcher(Prefetcher):
    """Priority composition: ``primary`` requests precede ``secondary``'s."""

    def __init__(self, primary: Prefetcher, secondary: Prefetcher) -> None:
        self.primary = primary
        self.secondary = secondary
        self.name = f"{primary.name}+{secondary.name}"

    def reset(self) -> None:
        self.primary.reset()
        self.secondary.reset()

    def snapshot(self) -> dict[str, Any]:
        return {
            "primary": self.primary.snapshot(),
            "secondary": self.secondary.snapshot(),
        }

    def restore(self, data: dict[str, Any]) -> None:
        require_keys(data, ("primary", "secondary"), "CompositePrefetcher")
        self.primary.restore(data["primary"])
        self.secondary.restore(data["secondary"])

    def observe(
        self, observation: Observation, l1d_contains: ContainsProbe
    ) -> list[PrefetchRequest]:
        requests = list(self.primary.observe(observation, l1d_contains))
        requests.extend(self.secondary.observe(observation, l1d_contains))
        return requests

    def on_back_invalidation(self, block_addr: int, now: int) -> list[PrefetchRequest]:
        requests = list(self.primary.on_back_invalidation(block_addr, now))
        requests.extend(self.secondary.on_back_invalidation(block_addr, now))
        return requests
