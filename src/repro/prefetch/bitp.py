"""BITP (Panda, PACT 2019 — paper ref. [13]) related-work model.

BITP watches cross-core *back-invalidation hits*: when an inclusive LLC
eviction knocks a line out of a private L1 that still held it, BITP
prefetches the line straight back.  This defeats cross-core eviction-based
attackers (their carefully constructed LLC eviction is undone) but does
nothing for single-core attacks — the contrast row in the paper's Table II
that our ablation benchmark reproduces.
"""

from __future__ import annotations

from typing import Any

from repro.prefetch.base import ContainsProbe, Observation, Prefetcher, PrefetchRequest
from repro.snapshot import require_keys


class BITPPrefetcher(Prefetcher):
    """Back-invalidation-triggered prefetcher."""

    name = "bitp"

    def __init__(self) -> None:
        self.back_invalidation_hits = 0

    def reset(self) -> None:
        self.back_invalidation_hits = 0

    def snapshot(self) -> dict[str, Any]:
        return {"back_invalidation_hits": self.back_invalidation_hits}

    def restore(self, data: dict[str, Any]) -> None:
        require_keys(data, ("back_invalidation_hits",), "BITPPrefetcher")
        self.back_invalidation_hits = data["back_invalidation_hits"]

    def observe(
        self, observation: Observation, l1d_contains: ContainsProbe
    ) -> list[PrefetchRequest]:
        return []

    def on_back_invalidation(self, block_addr: int, now: int) -> list[PrefetchRequest]:
        self.back_invalidation_hits += 1
        return [PrefetchRequest(addr=block_addr, component=self.name)]
