"""PC-indexed stride prefetcher (Baer & Chen 1991, paper refs. [16, 40]).

A reference prediction table keyed by the load/store PC tracks the last
address and the last observed stride with a two-state confidence scheme
(transient -> steady): the second matching delta promotes an entry to
steady, and only an *already steady* entry issues prefetches — the first
fetch goes out on the third matching delta, per Baer & Chen's
"prediction verified twice" gating.  Once steady, it prefetches
``distance`` strides ahead.  Random probe orders defeat it — exactly the
paper's challenge C2 motivation for the Access Tracker.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

from repro.prefetch.base import ContainsProbe, Observation, Prefetcher, PrefetchRequest
from repro.snapshot import require_keys
from repro.utils.addr import AddressMap


@dataclass
class _Entry:
    last_addr: int
    stride: int = 0
    confident: bool = False


class StridePrefetcher(Prefetcher):
    """Reference-prediction-table stride prefetcher."""

    name = "stride"

    def __init__(
        self,
        amap: AddressMap | None = None,
        table_size: int = 64,
        distance: int = 2,
        max_stride: int | None = None,
    ) -> None:
        self.amap = amap or AddressMap()
        self.table_size = table_size
        self.distance = distance
        # Strides beyond a page are almost always noise; cap like gem5 does.
        self.max_stride = max_stride or self.amap.page_size
        self._table: OrderedDict[int, _Entry] = OrderedDict()

    def reset(self) -> None:
        self._table.clear()

    def snapshot(self) -> dict[str, Any]:
        # Table order matters: eviction pops the oldest entry.
        return {
            "table": tuple(
                (pc, e.last_addr, e.stride, e.confident)
                for pc, e in self._table.items()
            )
        }

    def restore(self, data: dict[str, Any]) -> None:
        require_keys(data, ("table",), "StridePrefetcher")
        self._table.clear()
        for pc, last_addr, stride, confident in data["table"]:
            self._table[pc] = _Entry(
                last_addr=last_addr, stride=stride, confident=confident
            )

    def _entry(self, pc: int, addr: int) -> _Entry:
        entry = self._table.get(pc)
        if entry is None:
            entry = _Entry(last_addr=addr)
            self._table[pc] = entry
            while len(self._table) > self.table_size:
                self._table.popitem(last=False)
        self._table.move_to_end(pc)
        return entry

    def observe(
        self, observation: Observation, l1d_contains: ContainsProbe
    ) -> list[PrefetchRequest]:
        entry = self._table.get(observation.pc)
        if entry is None:
            self._entry(observation.pc, observation.addr)
            return []
        self._table.move_to_end(observation.pc)
        new_stride = observation.addr - entry.last_addr
        requests: list[PrefetchRequest] = []
        if new_stride != 0 and abs(new_stride) <= self.max_stride:
            if new_stride == entry.stride:
                if entry.confident:
                    # Third matching delta onwards: steady — prefetch ahead.
                    for step in range(1, self.distance + 1):
                        candidate = observation.addr + new_stride * step
                        if candidate < 0 or l1d_contains(candidate):
                            continue
                        requests.append(
                            PrefetchRequest(addr=candidate, component=self.name)
                        )
                else:
                    # Second matching delta: transient -> steady, no issue yet.
                    entry.confident = True
            else:
                entry.confident = False
                entry.stride = new_stride
        else:
            entry.confident = False
            entry.stride = 0
        entry.last_addr = observation.addr
        return requests
