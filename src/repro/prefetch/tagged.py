"""Tagged sequential prefetcher (Smith 1978, paper ref. [15]).

On a demand miss, prefetch the next sequential line.  On the first demand
hit to a line we previously prefetched (its *tag* bit is still set),
prefetch the next line as well — this is what keeps a sequential stream
running ahead of the consumer.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any

from repro.prefetch.base import ContainsProbe, Observation, Prefetcher, PrefetchRequest
from repro.snapshot import require_keys
from repro.utils.addr import AddressMap


class TaggedPrefetcher(Prefetcher):
    """Next-line prefetcher with tag bits on prefetched lines."""

    name = "tagged"

    def __init__(
        self,
        amap: AddressMap | None = None,
        degree: int = 1,
        tag_capacity: int = 4096,
    ) -> None:
        self.amap = amap or AddressMap()
        self.degree = degree
        self.tag_capacity = tag_capacity
        self._tagged: OrderedDict[int, None] = OrderedDict()

    def reset(self) -> None:
        self._tagged.clear()

    def snapshot(self) -> dict[str, Any]:
        # Tag order matters: eviction pops the oldest entry.
        return {"tagged": tuple(self._tagged)}

    def restore(self, data: dict[str, Any]) -> None:
        require_keys(data, ("tagged",), "TaggedPrefetcher")
        self._tagged.clear()
        for block_addr in data["tagged"]:
            self._tagged[block_addr] = None

    def _remember(self, block_addr: int) -> None:
        self._tagged[block_addr] = None
        self._tagged.move_to_end(block_addr)
        while len(self._tagged) > self.tag_capacity:
            self._tagged.popitem(last=False)

    def observe(
        self, observation: Observation, l1d_contains: ContainsProbe
    ) -> list[PrefetchRequest]:
        block = observation.block_addr
        trigger = False
        if not observation.hit:
            trigger = True
        elif block in self._tagged:
            # First use of a prefetched line: untag and keep streaming.
            del self._tagged[block]
            trigger = True
        if not trigger:
            return []
        requests = []
        step = self.amap.block_size
        for distance in range(1, self.degree + 1):
            candidate = block + distance * step
            if l1d_contains(candidate):
                continue
            self._remember(candidate)
            requests.append(PrefetchRequest(addr=candidate, component=self.name))
        return requests
