"""Disruptive Prefetching (Fuchs & Lee, SYSTOR 2015 — paper ref. [12]).

Randomly prefetches lines that map to the *same cache set* as a demand
access.  This perturbs Prime+Probe (set-granularity conflicts get noise) but
leaves Flush+Reload-style line-granularity attacks intact, and its random
policy can pollute the cache — both limitations the paper's Table II lists.
A deterministic xorshift PRNG keeps runs reproducible.
"""

from __future__ import annotations

from typing import Any

from repro.prefetch.base import ContainsProbe, Observation, Prefetcher, PrefetchRequest
from repro.snapshot import require_keys
from repro.utils.addr import AddressMap


class _XorShift:
    """Tiny deterministic PRNG (xorshift64*)."""

    def __init__(self, seed: int) -> None:
        self._state = (seed or 1) & ((1 << 64) - 1)

    def next(self) -> int:
        x = self._state
        x ^= (x >> 12) & ((1 << 64) - 1)
        x ^= (x << 25) & ((1 << 64) - 1)
        x ^= (x >> 27) & ((1 << 64) - 1)
        self._state = x
        return (x * 0x2545F4914F6CDD1D) & ((1 << 64) - 1)

    def below(self, bound: int) -> int:
        return self.next() % bound


class DisruptivePrefetcher(Prefetcher):
    """Random same-set prefetcher (cacheset defense granularity)."""

    name = "disruptive"

    def __init__(
        self,
        amap: AddressMap | None = None,
        l1_sets: int = 512,
        probability_percent: int = 25,
        window_tags: int = 8,
        seed: int = 0xD15C0,
    ) -> None:
        self.amap = amap or AddressMap()
        self.l1_sets = l1_sets
        self.probability_percent = probability_percent
        self.window_tags = window_tags
        self._rng = _XorShift(seed)
        self._seed = seed

    def reset(self) -> None:
        self._rng = _XorShift(self._seed)

    def snapshot(self) -> dict[str, Any]:
        return {"rng_state": self._rng._state}

    def restore(self, data: dict[str, Any]) -> None:
        require_keys(data, ("rng_state",), "DisruptivePrefetcher")
        self._rng._state = data["rng_state"]

    def observe(
        self, observation: Observation, l1d_contains: ContainsProbe
    ) -> list[PrefetchRequest]:
        if self._rng.below(100) >= self.probability_percent:
            return []
        set_stride = self.l1_sets * self.amap.block_size
        offset = (self._rng.below(self.window_tags) + 1) * set_stride
        if self._rng.below(2):
            offset = -offset
        candidate = observation.block_addr + offset
        if candidate < 0 or l1d_contains(candidate):
            return []
        return [PrefetchRequest(addr=candidate, component=self.name)]
