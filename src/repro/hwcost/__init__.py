"""Hardware resource model for PREFENDER (paper Sec. V-E)."""

from repro.hwcost.model import (
    AccessTrackerCost,
    HardwareCostReport,
    RecordProtectorCost,
    ScaleTrackerCost,
    estimate,
    render_report,
)

__all__ = [
    "AccessTrackerCost",
    "HardwareCostReport",
    "RecordProtectorCost",
    "ScaleTrackerCost",
    "estimate",
    "render_report",
]
