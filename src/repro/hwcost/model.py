"""Analytical reproduction of the paper's Section V-E resource estimates.

The paper's claims to reproduce:

* Scale Tracker: 16-bit values suffice (prefetching stays in one page even
  at 64KB pages); 2 values/register -> "hundreds of bytes" for dozens of
  registers; datapath: one 16-bit adder, multiplier, comparator.
* Access Tracker: 32 buffers x 8 entries at worst-case 64-bit values ->
  < 3KB SRAM; 20-bit comparators/adders suffice up to a 1MB L1D.
* Record Protector: 8-entry scale buffer x (16+64) bits + one 80-bit
  register per access buffer -> 400 bytes; a 9-bit modulus (set index of a
  64KB 2-way L1D) computes in 2 cycles on ASAP7, hidden behind the access.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ScaleTrackerCost:
    registers: int = 32
    value_bits: int = 16  # enough for in-page scales even at 64KB pages
    values_per_register: int = 2  # fva + sc

    @property
    def sram_bits(self) -> int:
        return self.registers * self.values_per_register * self.value_bits

    @property
    def sram_bytes(self) -> int:
        return self.sram_bits // 8

    @property
    def datapath(self) -> dict[str, int]:
        return {"adder_bits": 16, "multiplier_bits": 16, "comparator_bits": 16}


@dataclass(frozen=True)
class AccessTrackerCost:
    buffers: int = 32
    entries_per_buffer: int = 8
    entry_bits: int = 64  # conservative upper bound from the paper
    inst_addr_bits: int = 64
    diff_min_bits: int = 20  # covers set+tag distances up to a 1MB L1D

    @property
    def sram_bits(self) -> int:
        per_buffer = (
            self.entries_per_buffer * self.entry_bits
            + self.inst_addr_bits
            + self.diff_min_bits
        )
        return self.buffers * per_buffer

    @property
    def sram_bytes(self) -> int:
        return self.sram_bits // 8

    @property
    def datapath(self) -> dict[str, int]:
        return {
            "comparator_bits": self.diff_min_bits,
            "adder_bits": self.diff_min_bits,
            "comparators_per_buffer": self.entries_per_buffer,
        }


@dataclass(frozen=True)
class RecordProtectorCost:
    scale_buffer_entries: int = 8
    scale_bits: int = 16
    blk_addr_bits: int = 64
    access_buffers: int = 32
    l1_sets: int = 512  # 64KB 2-way, 64B lines
    modulus_latency_cycles: int = 2  # Synopsys DC + ASAP7 synthesis result

    @property
    def entry_bits(self) -> int:
        return self.scale_bits + self.blk_addr_bits  # 80 bits

    @property
    def sram_bits(self) -> int:
        scale_buffer = self.scale_buffer_entries * self.entry_bits
        protected_regs = self.access_buffers * self.entry_bits
        return scale_buffer + protected_regs

    @property
    def sram_bytes(self) -> int:
        return self.sram_bits // 8

    @property
    def modulus_bits(self) -> int:
        return (self.l1_sets - 1).bit_length()  # 9 bits for 512 sets


@dataclass(frozen=True)
class HardwareCostReport:
    scale_tracker: ScaleTrackerCost
    access_tracker: AccessTrackerCost
    record_protector: RecordProtectorCost

    @property
    def total_sram_bytes(self) -> int:
        return (
            self.scale_tracker.sram_bytes
            + self.access_tracker.sram_bytes
            + self.record_protector.sram_bytes
        )


def estimate(
    registers: int = 32,
    buffers: int = 32,
    entries_per_buffer: int = 8,
    scale_buffer_entries: int = 8,
    l1_sets: int = 512,
) -> HardwareCostReport:
    """Build the Section V-E cost report for a PREFENDER configuration."""
    return HardwareCostReport(
        scale_tracker=ScaleTrackerCost(registers=registers),
        access_tracker=AccessTrackerCost(
            buffers=buffers, entries_per_buffer=entries_per_buffer
        ),
        record_protector=RecordProtectorCost(
            scale_buffer_entries=scale_buffer_entries,
            access_buffers=buffers,
            l1_sets=l1_sets,
        ),
    )


def render_report(report: HardwareCostReport) -> str:
    st, at, rp = (
        report.scale_tracker,
        report.access_tracker,
        report.record_protector,
    )
    return "\n".join(
        [
            "Section V-E hardware resource estimates",
            f"  Scale Tracker:    {st.sram_bytes} B SRAM "
            f"({st.registers} regs x 2 x {st.value_bits}b), "
            f"16-bit adder/multiplier/comparator",
            f"  Access Tracker:   {at.sram_bytes} B SRAM "
            f"({at.buffers} buffers x {at.entries_per_buffer} x {at.entry_bits}b"
            f" + tags), {at.diff_min_bits}-bit datapath",
            f"  Record Protector: {rp.sram_bytes} B SRAM "
            f"({rp.scale_buffer_entries}+{rp.access_buffers} x {rp.entry_bits}b),"
            f" {rp.modulus_bits}-bit modulus in {rp.modulus_latency_cycles} cycles",
            f"  Total:            {report.total_sram_bytes} B",
        ]
    )
