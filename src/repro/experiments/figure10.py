"""Figure 10: normalized total L1D miss latency per benchmark.

Nine configurations as in the paper: Baseline, PREFENDER-ST+AT, PREFENDER,
then Tagged and Stride with and without PREFENDER on top.  Values are
normalized to the Baseline; effective prefetching drives them below 1.0.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import batch_results, sim_job, table_spec
from repro.runner import ResultStore
from repro.sim.config import PrefetcherSpec
from repro.utils.tables import render_table
from repro.workloads import SPEC2006_NAMES

CONFIGS: list[tuple[str, PrefetcherSpec]] = [
    ("Baseline", PrefetcherSpec(kind="none")),
    ("ST+AT", table_spec("prefender", 32, with_rp=False)),
    ("Prefender", table_spec("prefender", 32, with_rp=True)),
    ("Tagged", table_spec("tagged")),
    ("ST+AT(T)", table_spec("prefender+tagged", 32, with_rp=False)),
    ("Prefender(T)", table_spec("prefender+tagged", 32, with_rp=True)),
    ("Stride", table_spec("stride")),
    ("ST+AT(S)", table_spec("prefender+stride", 32, with_rp=False)),
    ("Prefender(S)", table_spec("prefender+stride", 32, with_rp=True)),
]


@dataclass
class MissLatencyResult:
    headers: list[str]
    rows: list[list[object]]  # benchmark + normalized miss latencies

    def normalized(self, config: str) -> dict[str, float]:
        index = self.headers.index(config)
        return {row[0]: row[index] for row in self.rows}

    def averages(self) -> dict[str, float]:
        return {
            header: sum(row[i] for row in self.rows) / len(self.rows)
            for i, header in enumerate(self.headers)
            if header != "benchmark"
        }


def run(
    scale: float = 1.0,
    workloads: list[str] | None = None,
    jobs: int = 1,
    store: ResultStore | None = None,
) -> MissLatencyResult:
    names = workloads or SPEC2006_NAMES
    grid = [(name, spec) for name in names for _, spec in CONFIGS]
    results = batch_results(
        [sim_job(name, spec, scale) for name, spec in grid],
        workers=jobs,
        store=store,
    )
    latency = {
        cell: result.l1d_stats[0]["miss_latency_total"]
        for cell, result in zip(grid, results)
    }
    rows: list[list[object]] = []
    for name in names:
        miss_latencies = [latency[(name, spec)] for _, spec in CONFIGS]
        baseline = miss_latencies[0]
        if baseline:
            normalized = [value / baseline for value in miss_latencies]
        else:
            # No misses at all (compute-only): nothing to normalize.
            normalized = [1.0] * len(miss_latencies)
        rows.append([name] + normalized)
    return MissLatencyResult(
        headers=["benchmark"] + [label for label, _ in CONFIGS],
        rows=rows,
    )


def render(result: MissLatencyResult) -> str:
    rows = [list(row) for row in result.rows]
    averages = result.averages()
    rows.append(["Avg."] + [averages[h] for h in result.headers[1:]])
    return render_table(
        result.headers,
        rows,
        title="Figure 10: normalized total L1D miss latency",
        float_format="{:.3f}",
    )
