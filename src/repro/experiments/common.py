"""Shared experiment configuration and helpers.

Two standard cores:

* ``PERF_CORE`` — the performance-evaluation core (Tables IV/V/VI, Figs.
  10-12): an OoO-like window hides up to 110 cycles of load latency.
* security runs use the default blocking core (attacks serialise their
  measurements anyway, so the distinction only affects wall-clock).

Security experiments use 8 access buffers so the C3 noise (12 distinct
load PCs) genuinely thrashes the Access Tracker, as in the paper's
challenge construction; performance experiments use the paper's 16/32/64
sweep.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.config import PrefenderConfig
from repro.cpu.core import CoreConfig
from repro.sim.config import PrefetcherSpec, SystemConfig
from repro.sim.simulator import run_program
from repro.workloads import get_workload

PERF_CORE = CoreConfig(load_hide_cycles=110)

SECURITY_BUFFERS = 8


def security_prefender(variant: str) -> PrefenderConfig:
    """PREFENDER variant configs used in Fig. 8 (8 access buffers)."""
    variants = {
        "ST": PrefenderConfig.st_only(),
        "AT": PrefenderConfig.at_only().with_buffers(SECURITY_BUFFERS),
        "ST+AT": PrefenderConfig.st_at(SECURITY_BUFFERS),
        "AT+RP": PrefenderConfig.at_rp().with_buffers(SECURITY_BUFFERS),
        "FULL": PrefenderConfig.full(SECURITY_BUFFERS),
    }
    return variants[variant]


def security_spec(variant: str) -> PrefetcherSpec:
    """PrefetcherSpec for a Fig. 8 defense column (or ``"Base"``)."""
    if variant == "Base":
        return PrefetcherSpec(kind="none")
    return PrefetcherSpec(kind="prefender", prefender=security_prefender(variant))


def perf_config(spec: PrefetcherSpec) -> SystemConfig:
    """System config for performance runs (OoO-like core)."""
    return SystemConfig(prefetcher=spec, core=PERF_CORE)


@lru_cache(maxsize=512)
def _cycles(workload_name: str, spec_key: tuple, scale: float) -> int:
    spec = _spec_from_key(spec_key)
    program = get_workload(workload_name).program(scale)
    return run_program(program, perf_config(spec)).cycles


def _spec_key(spec: PrefetcherSpec) -> tuple:
    prefender = spec.prefender
    return (
        spec.kind,
        prefender.st_enabled,
        prefender.at_enabled,
        prefender.rp_enabled,
        prefender.num_access_buffers,
    )


def _spec_from_key(key: tuple) -> PrefetcherSpec:
    kind, st, at, rp, buffers = key
    prefender = PrefenderConfig(
        st_enabled=st,
        at_enabled=at,
        rp_enabled=rp,
        num_access_buffers=buffers,
    )
    return PrefetcherSpec(kind=kind, prefender=prefender)


def workload_cycles(
    workload_name: str, spec: PrefetcherSpec, scale: float = 1.0
) -> int:
    """Cycles for one workload under one prefetcher config (cached)."""
    return _cycles(workload_name, _spec_key(spec), scale)


def improvement(
    workload_name: str, spec: PrefetcherSpec, scale: float = 1.0
) -> float:
    """Relative speedup vs the no-prefetcher baseline (paper's metric)."""
    baseline = workload_cycles(workload_name, PrefetcherSpec(kind="none"), scale)
    cycles = workload_cycles(workload_name, spec, scale)
    return baseline / cycles - 1.0


def clear_cycle_cache() -> None:
    """Reset memoised runs (tests use this between parameter changes)."""
    _cycles.cache_clear()


def table_spec(kind: str, buffers: int = 32, with_rp: bool = False) -> PrefetcherSpec:
    """Column spec for the performance tables."""
    prefender = (
        PrefenderConfig.full(buffers) if with_rp else PrefenderConfig.st_at(buffers)
    )
    return PrefetcherSpec(kind=kind, prefender=prefender)
