"""Shared experiment configuration and helpers.

Two standard cores:

* ``PERF_CORE`` — the performance-evaluation core (Tables IV/V/VI, Figs.
  10-12): an OoO-like window hides up to 110 cycles of load latency.
* security runs use the default blocking core (attacks serialise their
  measurements anyway, so the distinction only affects wall-clock).

Security experiments use 8 access buffers so the C3 noise (12 distinct
load PCs) genuinely thrashes the Access Tracker, as in the paper's
challenge construction; performance experiments use the paper's 16/32/64
sweep.

Memoisation note: runs are cached by the runner's *lossless* content key
(:func:`repro.runner.job_key`), which hashes every field of the full
``SystemConfig`` tree.  The previous hand-written tuple key encoded only
``(kind, st, at, rp, num_access_buffers)`` and rebuilt everything else
from defaults, so sweeps over ``at_threshold``, ``entries_per_buffer``,
``st_max_prefetches``, … silently shared cycle counts across different
configurations.  ``tests/test_runner.py`` pins the fix.
"""

from __future__ import annotations

from repro.core.config import PrefenderConfig
from repro.cpu.core import CoreConfig
from repro.runner import ResultStore, SimJob, SimResult, run_batch
from repro.sim.config import PrefetcherSpec, SystemConfig

PERF_CORE = CoreConfig(load_hide_cycles=110)

SECURITY_BUFFERS = 8

BASELINE_SPEC = PrefetcherSpec(kind="none")

#: Every defense column label `security_spec` resolves (the CLI's
#: --defense/--defenses choices).
DEFENSES = ("Base", "ST", "AT", "ST+AT", "AT+RP", "FULL")


def security_prefender(variant: str) -> PrefenderConfig:
    """PREFENDER variant configs used in Fig. 8 (8 access buffers)."""
    variants = {
        "ST": PrefenderConfig.st_only(),
        "AT": PrefenderConfig.at_only().with_buffers(SECURITY_BUFFERS),
        "ST+AT": PrefenderConfig.st_at(SECURITY_BUFFERS),
        "AT+RP": PrefenderConfig.at_rp().with_buffers(SECURITY_BUFFERS),
        "FULL": PrefenderConfig.full(SECURITY_BUFFERS),
    }
    return variants[variant]


def security_spec(variant: str) -> PrefetcherSpec:
    """PrefetcherSpec for a Fig. 8 defense column (or ``"Base"``)."""
    if variant == "Base":
        return PrefetcherSpec(kind="none")
    return PrefetcherSpec(kind="prefender", prefender=security_prefender(variant))


def perf_config(spec: PrefetcherSpec) -> SystemConfig:
    """System config for performance runs (OoO-like core)."""
    return SystemConfig(prefetcher=spec, core=PERF_CORE)


def sim_job(
    workload_name: str,
    spec: PrefetcherSpec,
    scale: float = 1.0,
    sample_interval: int | None = None,
) -> SimJob:
    """Performance-core :class:`SimJob` for one workload × prefetcher cell."""
    return SimJob(
        workload=workload_name,
        scale=scale,
        system=perf_config(spec),
        sample_interval=sample_interval,
    )


# In-process memo over the runner, shared by every experiment in a process.
# Bounded (FIFO eviction) so long sweep sessions don't grow without limit.
_MEMO_CAP = 4096
_RESULTS: dict[str, SimResult] = {}
_CACHE_STATS = {"hits": 0, "misses": 0}


def _remember(key: str, result: SimResult) -> None:
    if key not in _RESULTS and len(_RESULTS) >= _MEMO_CAP:
        _RESULTS.pop(next(iter(_RESULTS)))
    _RESULTS[key] = result


def batch_results(
    jobs: list[SimJob], workers: int = 1, store: ResultStore | None = None
) -> list[SimResult]:
    """Run a job grid through the memo + runner; results in input order."""
    keys = [job.key() for job in jobs]
    # Local overlay so the batch's own results survive memo eviction.
    gathered: dict[str, SimResult | None] = {}
    missing: list[SimJob] = []
    missing_keys: list[str] = []
    for key, job in zip(keys, jobs):
        if key in gathered:
            _CACHE_STATS["hits"] += 1
            continue
        cached = _RESULTS.get(key)
        if cached is not None:
            _CACHE_STATS["hits"] += 1
            gathered[key] = cached
            continue
        _CACHE_STATS["misses"] += 1
        gathered[key] = None  # placeholder: dedups repeats within the batch
        missing_keys.append(key)
        missing.append(job)
    if missing:
        for key, result in zip(
            missing_keys, run_batch(missing, workers=workers, store=store)
        ):
            gathered[key] = result
            _remember(key, result)
    return [gathered[key] for key in keys]


def workload_cycles(
    workload_name: str,
    spec: PrefetcherSpec,
    scale: float = 1.0,
    workers: int = 1,
    store: ResultStore | None = None,
) -> int:
    """Cycles for one workload under one prefetcher config (cached)."""
    job = sim_job(workload_name, spec, scale)
    return batch_results([job], workers=workers, store=store)[0].cycles


def improvement(
    workload_name: str,
    spec: PrefetcherSpec,
    scale: float = 1.0,
    workers: int = 1,
    store: ResultStore | None = None,
) -> float:
    """Relative speedup vs the no-prefetcher baseline (paper's metric)."""
    values = grid_improvements(
        [workload_name], [spec], scale, workers=workers, store=store
    )
    return values[(workload_name, spec)]


def grid_improvements(
    workload_names: list[str],
    specs: list[PrefetcherSpec],
    scale: float = 1.0,
    workers: int = 1,
    store: ResultStore | None = None,
) -> dict[tuple[str, PrefetcherSpec], float]:
    """Improvements for a workload × prefetcher grid, submitted as one batch.

    The no-prefetcher baseline each workload needs is folded into the same
    batch (and deduplicated), so the whole grid shards across workers.
    """
    cells = [
        (name, spec)
        for name in workload_names
        for spec in [BASELINE_SPEC, *specs]
    ]
    jobs = [sim_job(name, spec, scale) for name, spec in cells]
    results = batch_results(jobs, workers=workers, store=store)
    cycles = dict(zip(cells, (result.cycles for result in results)))
    return {
        (name, spec): cycles[(name, BASELINE_SPEC)] / cycles[(name, spec)] - 1.0
        for name in workload_names
        for spec in specs
    }


def improvement_rows(
    workload_names: list[str],
    columns: list[tuple[str, PrefetcherSpec]],
    scale: float = 1.0,
    workers: int = 1,
    store: ResultStore | None = None,
) -> tuple[list[list[object]], list[float]]:
    """Per-benchmark improvement rows + column averages for a column list.

    Shared by Tables IV/V/VI and the CLI ``sweep`` command so the row
    layout and averaging live in exactly one place.
    """
    values = grid_improvements(
        workload_names,
        [spec for _, spec in columns],
        scale,
        workers=workers,
        store=store,
    )
    rows: list[list[object]] = [
        [name] + [values[(name, spec)] for _, spec in columns]
        for name in workload_names
    ]
    averages = [
        sum(row[i + 1] for row in rows) / len(rows) for i in range(len(columns))
    ]
    return rows, averages


def cache_stats() -> dict[str, int]:
    """Hit/miss counters of the in-process result memo (tests read this)."""
    return dict(_CACHE_STATS, entries=len(_RESULTS))


def clear_cycle_cache() -> None:
    """Reset memoised runs (tests use this between parameter changes)."""
    _RESULTS.clear()
    _CACHE_STATS["hits"] = 0
    _CACHE_STATS["misses"] = 0


def table_spec(kind: str, buffers: int = 32, with_rp: bool = False) -> PrefetcherSpec:
    """Column spec for the performance tables."""
    prefender = (
        PrefenderConfig.full(buffers) if with_rp else PrefenderConfig.st_at(buffers)
    )
    return PrefetcherSpec(kind=kind, prefender=prefender)
