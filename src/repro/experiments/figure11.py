"""Figure 11: number of prefetches by ST / AT / RP per benchmark.

Shape target (paper): AT dominates, RP-guided prefetches outnumber ST's
(the RP trigger fires on every scale-buffer hit; ST needs a fresh
add/mul-derived large scale).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import batch_results, sim_job, table_spec
from repro.runner import ResultStore
from repro.utils.tables import render_table
from repro.workloads import SPEC2006_NAMES

COMPONENTS = ("st", "at", "rp")


@dataclass
class PrefetchCountResult:
    headers: list[str]
    rows: list[list[object]]

    def totals(self) -> dict[str, int]:
        sums = {component: 0 for component in COMPONENTS}
        for row in self.rows:
            for i, component in enumerate(COMPONENTS):
                sums[component] += row[i + 1]
        return sums


def run(
    scale: float = 1.0,
    workloads: list[str] | None = None,
    basic: str | None = None,
    jobs: int = 1,
    store: ResultStore | None = None,
) -> PrefetchCountResult:
    """Count ST/AT/RP prefetches under the full PREFENDER.

    ``basic`` optionally composes a basic prefetcher underneath
    (``"tagged"`` / ``"stride"``), matching the paper's grouped bars.
    """
    kind = "prefender" if basic is None else f"prefender+{basic}"
    spec = table_spec(kind, 32, with_rp=True)
    names = workloads or SPEC2006_NAMES
    results = batch_results(
        [sim_job(name, spec, scale) for name in names], workers=jobs, store=store
    )
    rows: list[list[object]] = []
    for name, result in zip(names, results):
        counts = result.prefetch_counts[0]
        rows.append([name] + [counts.get(component, 0) for component in COMPONENTS])
    return PrefetchCountResult(
        headers=["benchmark", "ST", "AT", "RP"],
        rows=rows,
    )


def render(result: PrefetchCountResult) -> str:
    rows = [list(row) for row in result.rows]
    totals = result.totals()
    rows.append(["Total"] + [totals[c] for c in COMPONENTS])
    return render_table(
        result.headers,
        rows,
        title="Figure 11: prefetches issued by component",
        float_format="{:d}",
    )
