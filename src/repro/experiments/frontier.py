"""Defense-vs-performance Pareto frontiers over PREFENDER knob grids.

PR 1's lossless job keys made sweeps over ``at_threshold``,
``entries_per_buffer`` and ``st_max_prefetches`` trustworthy; this module
actually runs them.  Every grid point is one full PREFENDER configuration,
scored on two axes:

* **attack success rate** — the fraction of attack kinds (Flush+Reload,
  Evict+Reload, Prime+Probe by default) that uniquely recover the secret
  against the configuration (lower is safer);
* **normalized cycles** — geometric mean over the perf workloads of
  ``cycles(defense) / cycles(no-prefetcher baseline)`` on the
  performance core (lower is faster; PREFENDER's prefetching usually
  lands *below* 1.0, the paper's headline result).

Minimising both axes gives a Pareto frontier: the knob settings for which
no other setting is at least as safe *and* at least as fast.  Two fixed
comparison points frame the frontier, per the related-work discussion in
PAPERS.md (PCG, arXiv:2405.03217; Adversarial Prefetch, arXiv:2110.12340):

* ``no-defense`` — the empty-prefetcher baseline (normalized cycles 1.0);
* ``pcg-style`` — the repo's Disruptive random same-set prefetcher, the
  closest in-tree stand-in for PCG-style conflict-obfuscating prefetch
  defenses.

The whole sweep is two :func:`~repro.runner.run_batch` calls (all attack
probes, then all perf runs) that share one
:class:`~repro.runner.WorkerPool`, so worker processes fork once for the
entire grid; attack probes and sim results are both JSON-able, so
``--store`` serves a repeated grid warm from disk.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.core.config import PrefenderConfig
from repro.errors import ConfigError
from repro.experiments.common import BASELINE_SPEC, sim_job
from repro.runner import AttackProbeJob, ResultStore, WorkerPool, run_batch
from repro.sim.config import PrefetcherSpec, SystemConfig
from repro.utils.tables import render_table
from repro.utils.textplot import ascii_scatter

#: PrefenderConfig knobs a frontier grid may sweep (the very fields the
#: pre-PR-1 memoiser silently dropped from its cache key).
GRID_KNOBS = ("at_threshold", "entries_per_buffer", "st_max_prefetches")

#: Default grid: 3 x 2 x 2 = 12 configurations, small enough for a laptop.
DEFAULT_GRID: dict[str, tuple[int, ...]] = {
    "at_threshold": (2, 4, 6),
    "entries_per_buffer": (4, 8),
    "st_max_prefetches": (1, 2),
}

#: Attack kinds scored by default (Evict+Time is excluded: whole-run
#: timing channels are outside PREFENDER's threat model, paper Table II).
#: The adversarial-prefetch variants keep the frontier honest against the
#: strongest published prefetch-channel adversary (Guo et al. 2022).
DEFAULT_ATTACKS = (
    "flush-reload",
    "evict-reload",
    "prime-probe",
    "adversarial-prefetch-a1",
    "adversarial-prefetch-a2",
)

#: Perf workloads scored by default: one memory-pattern winner and one
#: pointer-chasing workload, the two shapes the paper's tables contrast.
DEFAULT_WORKLOADS = ("462.libquantum", "429.mcf")

#: Access-buffer count per grid configuration (the security experiments'
#: 8-buffer setup, so C3-style thrashing remains possible).
DEFAULT_BUFFERS = 8


@dataclass(frozen=True)
class FrontierPoint:
    """One scored configuration: knob values + the two frontier axes."""

    label: str
    at_threshold: int
    entries_per_buffer: int
    st_max_prefetches: int
    success_rate: float
    normalized_cycles: float

    @property
    def coords(self) -> tuple[float, float]:
        """(normalized_cycles, success_rate) — both minimised."""
        return (self.normalized_cycles, self.success_rate)


@dataclass
class FrontierResult:
    """Scored grid, its Pareto subset, and the fixed comparison points."""

    grid: dict[str, tuple[int, ...]]
    attacks: tuple[str, ...]
    workloads: tuple[str, ...]
    scale: float
    points: list[FrontierPoint]
    frontier: list[FrontierPoint]
    baselines: list[FrontierPoint]  # no-defense and PCG-style rows


def parse_grid(text: str) -> dict[str, tuple[int, ...]]:
    """Parse a ``--grid`` spec into knob -> values.

    Format: semicolon-separated ``knob=v1,v2,...`` pairs over
    :data:`GRID_KNOBS`; knobs left out keep their :data:`DEFAULT_GRID`
    values.  Example: ``"at_threshold=2,6;entries_per_buffer=4"``.
    """
    grid = dict(DEFAULT_GRID)
    if not text.strip():
        return grid
    for part in text.replace(";", " ").split():
        knob, _, values = part.partition("=")
        if knob not in GRID_KNOBS:
            raise ConfigError(
                f"unknown grid knob {knob!r}; choose from {GRID_KNOBS}"
            )
        try:
            parsed = tuple(int(value) for value in values.split(","))
        except ValueError:
            raise ConfigError(
                f"--grid values for {knob} must be comma-separated integers, "
                f"got {values!r}"
            ) from None
        if not parsed:
            raise ConfigError(f"--grid knob {knob} needs at least one value")
        grid[knob] = parsed
    return grid


def grid_configs(
    grid: dict[str, tuple[int, ...]], buffers: int = DEFAULT_BUFFERS
) -> list[tuple[str, PrefenderConfig]]:
    """(label, config) for every knob combination, in deterministic order."""
    configs = []
    for at_threshold in grid["at_threshold"]:
        for entries in grid["entries_per_buffer"]:
            for st_max in grid["st_max_prefetches"]:
                label = f"t{at_threshold}/e{entries}/s{st_max}"
                configs.append(
                    (
                        label,
                        replace(
                            PrefenderConfig.full(buffers),
                            at_threshold=at_threshold,
                            entries_per_buffer=entries,
                            st_max_prefetches=st_max,
                        ),
                    )
                )
    return configs


def _dominates(a: FrontierPoint, b: FrontierPoint) -> bool:
    """True when ``a`` is at least as good as ``b`` on both axes, better on one."""
    ax, ay = a.coords
    bx, by = b.coords
    return ax <= bx and ay <= by and (ax < bx or ay < by)


def pareto_frontier(points: list[FrontierPoint]) -> list[FrontierPoint]:
    """Non-dominated subset, sorted fast-to-safe (cycles asc, rate desc).

    A point survives unless some other point is at least as safe *and* at
    least as fast, and strictly better on one axis; ties on both axes keep
    both points.  O(n^2), fine for knob grids of dozens of points.
    """
    kept = [
        point
        for point in points
        if not any(_dominates(other, point) for other in points)
    ]
    return sorted(kept, key=lambda p: (p.normalized_cycles, p.success_rate, p.label))


def _geomean(values: list[float]) -> float:
    return math.exp(sum(math.log(value) for value in values) / len(values))


def run(
    grid: dict[str, tuple[int, ...]] | None = None,
    attacks: tuple[str, ...] = DEFAULT_ATTACKS,
    workloads: tuple[str, ...] = DEFAULT_WORKLOADS,
    scale: float = 0.2,
    buffers: int = DEFAULT_BUFFERS,
    jobs: int = 1,
    store: ResultStore | None = None,
    pool: WorkerPool | None = None,
) -> FrontierResult:
    """Score the grid and extract its Pareto frontier.

    Args:
        grid: knob -> values (default :data:`DEFAULT_GRID`).
        attacks: attack kinds for the success-rate axis.
        workloads: perf workloads for the normalized-cycles axis.
        scale: workload scale passed to every sim job.
        buffers: access-buffer count per configuration.
        jobs: process count for ``run_batch`` when no ``pool`` is given.
        store: optional disk store; probes and sim results both cache.
        pool: optional persistent :class:`~repro.runner.WorkerPool`; both
            batches (security, then perf) reuse its warm workers.
    """
    if not attacks or not workloads:
        raise ConfigError("frontier needs at least one attack and one workload")
    grid = grid or dict(DEFAULT_GRID)
    for knob in GRID_KNOBS:
        if knob not in grid:
            raise ConfigError(f"grid is missing knob {knob!r}")
    configs = grid_configs(grid, buffers)

    # Every column the sweep scores: the grid plus the two comparison specs.
    specs: list[tuple[str, PrefetcherSpec]] = [
        (label, PrefetcherSpec(kind="prefender", prefender=config))
        for label, config in configs
    ]
    specs.append(("no-defense", BASELINE_SPEC))
    specs.append(("pcg-style", PrefetcherSpec(kind="disruptive")))

    # Batch 1: every attack kind against every spec (default blocking core,
    # as in the paper's security runs).
    probe_jobs = [
        AttackProbeJob.build(attack, SystemConfig(prefetcher=spec))
        for _, spec in specs
        for attack in attacks
    ]
    probes = run_batch(probe_jobs, workers=jobs, store=store, pool=pool)
    success: dict[str, float] = {}
    for index, (label, _) in enumerate(specs):
        mine = probes[index * len(attacks) : (index + 1) * len(attacks)]
        success[label] = sum(probe.succeeded for probe in mine) / len(attacks)

    # Batch 2: every perf workload under every spec (perf core), sharing
    # the pool's already-warm workers with batch 1.
    perf_jobs = [
        sim_job(workload, spec, scale)
        for _, spec in specs
        for workload in workloads
    ]
    perf = run_batch(perf_jobs, workers=jobs, store=store, pool=pool)
    cycles: dict[str, list[int]] = {}
    for index, (label, _) in enumerate(specs):
        mine = perf[index * len(workloads) : (index + 1) * len(workloads)]
        cycles[label] = [result.cycles for result in mine]

    def normalized(label: str) -> float:
        return _geomean(
            [
                float(defended) / float(base)
                for defended, base in zip(cycles[label], cycles["no-defense"])
            ]
        )

    points = [
        FrontierPoint(
            label=label,
            at_threshold=config.at_threshold,
            entries_per_buffer=config.entries_per_buffer,
            st_max_prefetches=config.st_max_prefetches,
            success_rate=success[label],
            normalized_cycles=normalized(label),
        )
        for label, config in configs
    ]
    baselines = [
        FrontierPoint(
            label=label,
            at_threshold=0,
            entries_per_buffer=0,
            st_max_prefetches=0,
            success_rate=success[label],
            normalized_cycles=normalized(label),
        )
        for label in ("no-defense", "pcg-style")
    ]
    return FrontierResult(
        grid=dict(grid),
        attacks=tuple(attacks),
        workloads=tuple(workloads),
        scale=scale,
        points=points,
        frontier=pareto_frontier(points),
        baselines=baselines,
    )


def render(result: FrontierResult) -> str:
    """Frontier table + ASCII scatter, ready for the terminal."""
    on_frontier = {point.label for point in result.frontier}
    rows = [
        [
            point.label,
            point.at_threshold,
            point.entries_per_buffer,
            point.st_max_prefetches,
            f"{point.success_rate:.2f}",
            f"{point.normalized_cycles:.4f}",
            "*" if point.label in on_frontier else "",
        ]
        for point in sorted(result.points, key=lambda p: p.coords + (p.label,))
    ]
    for baseline in result.baselines:
        rows.append(
            [
                baseline.label,
                "-",
                "-",
                "-",
                f"{baseline.success_rate:.2f}",
                f"{baseline.normalized_cycles:.4f}",
                "",
            ]
        )
    table = render_table(
        [
            "config",
            "at_thresh",
            "entries",
            "st_max",
            "attack success",
            "norm cycles",
            "frontier",
        ],
        rows,
        title=(
            f"Defense-vs-performance frontier "
            f"(attacks: {', '.join(result.attacks)}; "
            f"workloads: {', '.join(result.workloads)}; "
            f"scale {result.scale})"
        ),
    )
    scatter = ascii_scatter(
        {
            # Frontier points are excluded from "grid" so they draw as F,
            # not as the collision marker.
            "grid": [
                point.coords
                for point in result.points
                if point.label not in on_frontier
            ],
            "Frontier": [point.coords for point in result.frontier],
            "base": [result.baselines[0].coords],
            "pcg": [result.baselines[1].coords],
        },
        title="attack success rate vs normalized cycles (down-left is better)",
        x_label="norm cycles",
        y_label="success",
    )
    frontier_line = "Pareto frontier: " + (
        " -> ".join(point.label for point in result.frontier) or "(empty)"
    )
    return "\n".join([table, "", scatter, "", frontier_line])
