"""Tables I & II: related-work comparisons, plus a behavioural ablation.

The paper's Tables I/II are qualitative; we encode them as data (for the
docs) and *verify the rows we can*: BITP and Disruptive Prefetching are
implemented in :mod:`repro.prefetch`, so the ablation runs the actual
attacks against them and checks the claimed defense coverage:

* BITP triggers only on cross-core back-invalidations — single-core
  Flush+Reload / Evict+Reload / Prime+Probe go straight through it.
* Disruptive Prefetching perturbs set-granularity attacks (Prime+Probe)
  but leaves line-granularity Flush+Reload intact.
* PREFENDER defends all of them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import PrefenderConfig
from repro.runner import AttackJob, run_batch
from repro.sim.config import PrefetcherSpec, SystemConfig

# Table I (condensed): approach class and reported performance overhead.
TABLE_I = {
    "Conditional Speculation": ("speculation restriction", "13%-54%"),
    "NDA": ("speculation restriction", "11%-125%"),
    "SpecShield": ("speculation restriction", "10%-73%"),
    "InvisiSpec": ("shadow structures", "21%-72%"),
    "SafeSpec": ("shadow structures", "-3%"),
    "MuonTrap": ("shadow structures", "4%"),
    "SpecPref": ("prefetcher hardening", "1.17%"),
    "Catalyst": ("cache partition", "0.70%"),
    "StealthMem": ("cache partition", "5.90%"),
    "DAWG": ("cache partition", "15%"),
    "CEASER": ("randomized mapping", "1%"),
    "RPcache": ("randomized mapping", "0.30%"),
    "SHARP": ("replacement policy", "0%"),
    "Prefender": ("prefetch", "-1.69%/-6.28% (improvement)"),
}

# Table II rows we verify behaviourally (True = defends).
TABLE_II_CLAIMS = {
    # (defense, attack, single_core): defends?
    ("bitp", "Flush+Reload", True): False,
    ("bitp", "Evict+Reload", True): False,
    ("bitp", "Prime+Probe", True): False,
    ("disruptive", "Flush+Reload", True): False,
    ("disruptive", "Prime+Probe", True): True,
    ("prefender", "Flush+Reload", True): True,
    ("prefender", "Evict+Reload", True): True,
    ("prefender", "Prime+Probe", True): True,
    # Table II marks Evict+Time (timing-based, types 1/3 of [20]) as NOT
    # defended by PREFENDER: the attacker times the whole victim run, so
    # decoy lines add no ambiguity — the single anomalous round survives.
    ("prefender", "Evict+Time", True): False,
    # Adversarial Prefetch (Guo et al. 2022): cross-core, prefetchw-based.
    # BITP only reacts to inclusive-LLC back-invalidations; prefetchw's
    # ownership steals are coherence traffic, so BITP never fires.
    ("bitp", "AdvPrefetch-A1", False): False,
    ("bitp", "AdvPrefetch-A2", False): False,
    # PCG-style random same-set prefetching observes A1's demand-load probe
    # and pollutes the attacker's own sets into ambiguity — but A2 probes
    # with timed prefetches it never sees, and goes straight through.
    ("disruptive", "AdvPrefetch-A1", False): True,
    ("disruptive", "AdvPrefetch-A2", False): False,
    # PREFENDER defends both: the victim-side Scale Tracker migrates the
    # secret's neighbours out of the attacker's L1 along with the secret
    # (and, for A1, the attacker-side Access Tracker outruns the probe).
    ("prefender", "AdvPrefetch-A1", False): True,
    ("prefender", "AdvPrefetch-A2", False): True,
}

ATTACKS = {
    "Flush+Reload": "flush-reload",
    "Evict+Reload": "evict-reload",
    "Prime+Probe": "prime-probe",
    "Evict+Time": "evict-time",
    "AdvPrefetch-A1": "adversarial-prefetch-a1",
    "AdvPrefetch-A2": "adversarial-prefetch-a2",
}

#: Display names for the ablation rows ("disruptive" is the in-tree
#: stand-in for PCG-style conflict-obfuscating prefetch defenses).
DEFENSE_LABELS = {"disruptive": "disruptive/PCG"}


@dataclass
class AblationRow:
    defense: str
    attack: str
    expected_defended: bool
    observed_defended: bool
    candidates: int

    @property
    def matches_paper(self) -> bool:
        return self.expected_defended == self.observed_defended


def _spec(defense: str) -> PrefetcherSpec:
    if defense == "prefender":
        return PrefetcherSpec(
            kind="prefender", prefender=PrefenderConfig.full(8)
        )
    return PrefetcherSpec(kind=defense)


def run(jobs: int = 1) -> list[AblationRow]:
    """Run the verifiable Table II rows (declared as one attack batch)."""
    claims = list(TABLE_II_CLAIMS.items())
    attack_jobs = [
        AttackJob.build(
            ATTACKS[attack_name], SystemConfig(prefetcher=_spec(defense))
        )
        for (defense, attack_name, _single), _ in claims
    ]
    outcomes = run_batch(attack_jobs, workers=jobs)
    rows = []
    for ((defense, attack_name, _single), expected), outcome in zip(
        claims, outcomes
    ):
        if attack_name == "Evict+Time":
            # "Defended" for a whole-run timing channel means the anomalous
            # round became ambiguous; a single surviving candidate (even if
            # shifted by the defense's own prefetches) is a working channel.
            defended = len(outcome.candidates) != 1
        else:
            defended = outcome.defended
        rows.append(
            AblationRow(
                defense=defense,
                attack=attack_name,
                expected_defended=expected,
                observed_defended=defended,
                candidates=len(outcome.candidates),
            )
        )
    return rows


def render(rows: list[AblationRow]) -> str:
    lines = ["Table II ablation: defense coverage of related prefetch defenses"]
    for row in rows:
        status = "matches paper" if row.matches_paper else "MISMATCH"
        defense = DEFENSE_LABELS.get(row.defense, row.defense)
        lines.append(
            f"  {defense:>14} vs {row.attack:<14} "
            f"defended={str(row.observed_defended):<5} "
            f"(paper: {row.expected_defended}, {row.candidates} candidates) "
            f"[{status}]"
        )
    return "\n".join(lines)
