"""Figure 8: latency-vs-index curves for every attack/challenge/defense.

Twelve panels: {Flush+Reload, Evict+Reload, Prime+Probe} x {C1+C2,
+C3, +C4, +C3+C4}, each with the paper's defense configurations.  The
verdict shape targets (DESIGN.md): baseline uniquely leaks; ST yields
secret±1; AT floods (and fails under C3/C4 noise); RP restores the
defense.

The whole matrix is one declarative :class:`~repro.runner.ScenarioJob`
grid submitted as a single :func:`~repro.runner.run_batch` — the same
path the crypto-victim scenario suite uses — so panels deduplicate,
shard across ``jobs`` processes and cache in the disk store instead of
running attacks one by one inline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attacks.base import verdict_line
from repro.experiments.common import security_spec
from repro.runner import (
    ATTACK_KINDS,
    ResultStore,
    ScenarioJob,
    ScenarioProbe,
    run_batch,
)
from repro.sim.config import SystemConfig
from repro.utils.textplot import ascii_series

#: Display name -> attack registry kind.
ATTACKS = {
    "Flush+Reload": "flush-reload",
    "Evict+Reload": "evict-reload",
    "Prime+Probe": "prime-probe",
}

# Panel layout mirrors the paper: challenges -> defense configs shown.
PANEL_DEFENSES = {
    "C1+C2": ["Base", "ST", "AT", "ST+AT"],
    "C1+C2+C3": ["AT", "AT+RP"],
    "C1+C2+C4": ["AT", "AT+RP"],
    "C1+C2+C3+C4": ["Base", "FULL"],
}

CHALLENGE_OPTIONS = {
    "C1+C2": {},
    "C1+C2+C3": {"noise_c3": True},
    "C1+C2+C4": {"noise_c4": True},
    "C1+C2+C3+C4": {"noise_c3": True, "noise_c4": True},
}


@dataclass
class Panel:
    attack: str
    challenges: str
    outcomes: dict[str, ScenarioProbe]  # defense label -> scored trial


def run(
    attacks: list[str] | None = None,
    challenges: list[str] | None = None,
    jobs: int = 1,
    store: ResultStore | None = None,
) -> list[Panel]:
    """Run the Figure 8 grid; returns one Panel per (attack, challenge)."""
    cells: list[tuple[str, str, str]] = []
    grid: list[ScenarioJob] = []
    for challenge in challenges or list(PANEL_DEFENSES):
        options = CHALLENGE_OPTIONS[challenge]
        for attack_name in attacks or list(ATTACKS):
            kind = ATTACKS[attack_name]
            # Attack-class defaults (e.g. Prime+Probe's 48 monitored sets)
            # merge into the options — and thus into the content key.
            merged = ATTACK_KINDS[kind](**options).options
            for defense in PANEL_DEFENSES[challenge]:
                cells.append((attack_name, challenge, defense))
                grid.append(
                    ScenarioJob(
                        attack=kind,
                        system=SystemConfig(prefetcher=security_spec(defense)),
                        options=merged,
                    )
                )
    probes = run_batch(grid, workers=jobs, store=store)
    panels: list[Panel] = []
    by_panel: dict[tuple[str, str], Panel] = {}
    for (attack_name, challenge, defense), probe in zip(cells, probes):
        panel = by_panel.get((attack_name, challenge))
        if panel is None:
            panel = Panel(attack=attack_name, challenges=challenge, outcomes={})
            by_panel[(attack_name, challenge)] = panel
            panels.append(panel)
        panel.outcomes[defense] = probe
    return panels


def _summary(probe: ScenarioProbe, defense: str) -> str:
    return verdict_line(
        ATTACK_KINDS[probe.attack].name,
        probe.challenges,
        security_spec(defense).label,
        probe.succeeded,
        probe.candidates,
        probe.secret,
    )


def render(panels: list[Panel]) -> str:
    blocks = []
    for panel in panels:
        lines = [f"--- Figure 8: {panel.attack} ({panel.challenges}) ---"]
        first = next(iter(panel.outcomes.values()))
        xs = list(range(len(first.latencies)))
        series = {
            defense: outcome.latencies for defense, outcome in panel.outcomes.items()
        }
        lines.append(
            ascii_series(
                xs,
                series,
                height=10,
                title=f"latency (cycles) vs array index, secret={first.secret}",
            )
        )
        for defense, outcome in panel.outcomes.items():
            lines.append(f"  {defense:>6}: {_summary(outcome, defense)}")
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


def verdicts(panels: list[Panel]) -> dict[tuple[str, str, str], bool]:
    """(attack, challenge, defense) -> attack_succeeded map for assertions."""
    result = {}
    for panel in panels:
        for defense, outcome in panel.outcomes.items():
            result[(panel.attack, panel.challenges, defense)] = outcome.succeeded
    return result
