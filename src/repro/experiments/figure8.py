"""Figure 8: latency-vs-index curves for every attack/challenge/defense.

Twelve panels: {Flush+Reload, Evict+Reload, Prime+Probe} x {C1+C2,
+C3, +C4, +C3+C4}, each with the paper's defense configurations.  The
verdict shape targets (DESIGN.md): baseline uniquely leaks; ST yields
secret±1; AT floods (and fails under C3/C4 noise); RP restores the
defense.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attacks import (
    AttackOutcome,
    EvictReloadAttack,
    FlushReloadAttack,
    PrimeProbeAttack,
)
from repro.experiments.common import security_spec
from repro.sim.config import SystemConfig
from repro.utils.textplot import ascii_series

ATTACKS = {
    "Flush+Reload": FlushReloadAttack,
    "Evict+Reload": EvictReloadAttack,
    "Prime+Probe": PrimeProbeAttack,
}

# Panel layout mirrors the paper: challenges -> defense configs shown.
PANEL_DEFENSES = {
    "C1+C2": ["Base", "ST", "AT", "ST+AT"],
    "C1+C2+C3": ["AT", "AT+RP"],
    "C1+C2+C4": ["AT", "AT+RP"],
    "C1+C2+C3+C4": ["Base", "FULL"],
}

CHALLENGE_OPTIONS = {
    "C1+C2": {},
    "C1+C2+C3": {"noise_c3": True},
    "C1+C2+C4": {"noise_c4": True},
    "C1+C2+C3+C4": {"noise_c3": True, "noise_c4": True},
}


@dataclass
class Panel:
    attack: str
    challenges: str
    outcomes: dict[str, AttackOutcome]  # defense label -> outcome


def run(
    attacks: list[str] | None = None,
    challenges: list[str] | None = None,
) -> list[Panel]:
    """Run the Figure 8 grid; returns one Panel per (attack, challenge)."""
    panels = []
    for challenge in challenges or list(PANEL_DEFENSES):
        options = CHALLENGE_OPTIONS[challenge]
        for attack_name in attacks or list(ATTACKS):
            attack_cls = ATTACKS[attack_name]
            outcomes = {}
            for defense in PANEL_DEFENSES[challenge]:
                attack = attack_cls(**options)
                outcomes[defense] = attack.run(
                    SystemConfig(prefetcher=security_spec(defense))
                )
            panels.append(
                Panel(attack=attack_name, challenges=challenge, outcomes=outcomes)
            )
    return panels


def render(panels: list[Panel]) -> str:
    blocks = []
    for panel in panels:
        lines = [f"--- Figure 8: {panel.attack} ({panel.challenges}) ---"]
        first = next(iter(panel.outcomes.values()))
        xs = list(range(len(first.latencies)))
        series = {
            defense: outcome.latencies for defense, outcome in panel.outcomes.items()
        }
        lines.append(
            ascii_series(
                xs,
                series,
                height=10,
                title=f"latency (cycles) vs array index, secret={first.secret}",
            )
        )
        for defense, outcome in panel.outcomes.items():
            lines.append(f"  {defense:>6}: {outcome.summary()}")
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


def verdicts(panels: list[Panel]) -> dict[tuple[str, str, str], bool]:
    """(attack, challenge, defense) -> attack_succeeded map for assertions."""
    result = {}
    for panel in panels:
        for defense, outcome in panel.outcomes.items():
            result[(panel.attack, panel.challenges, defense)] = (
                outcome.attack_succeeded
            )
    return result
