"""Table V: SPEC 2006 speedups *with* the Record Protector.

Identical structure to Table IV with the full PREFENDER (ST+AT+RP); the
paper's observation to reproduce: averages stay positive but sit slightly
below Table IV (protection redirects some prefetches).
"""

from __future__ import annotations

from repro.experiments import table4


def run(scale: float = 1.0, workloads=None, buffer_sweep=None, jobs=1, store=None):
    return table4.run(
        scale=scale,
        with_rp=True,
        workloads=workloads,
        buffer_sweep=buffer_sweep,
        jobs=jobs,
        store=store,
    )


def render(result) -> str:
    return table4.render(result)
