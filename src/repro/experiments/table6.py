"""Table VI: SPEC 2017 speedups (32 access buffers).

Paper columns: PREFENDER-ST+AT; full PREFENDER; Tagged; ST+AT (Tagged);
full (Tagged); Stride; ST+AT (Stride); full (Stride).
"""

from __future__ import annotations

from repro.experiments.common import improvement_rows, table_spec
from repro.experiments.table4 import TableResult
from repro.runner import ResultStore
from repro.utils.tables import render_table
from repro.workloads import SPEC2017_NAMES


def _columns() -> list[tuple[str, object]]:
    return [
        ("ST+AT", table_spec("prefender", 32, with_rp=False)),
        ("Prefender", table_spec("prefender", 32, with_rp=True)),
        ("Tagged", table_spec("tagged")),
        ("ST+AT(T)", table_spec("prefender+tagged", 32, with_rp=False)),
        ("Prefender(T)", table_spec("prefender+tagged", 32, with_rp=True)),
        ("Stride", table_spec("stride")),
        ("ST+AT(S)", table_spec("prefender+stride", 32, with_rp=False)),
        ("Prefender(S)", table_spec("prefender+stride", 32, with_rp=True)),
    ]


def run(
    scale: float = 1.0,
    workloads: list[str] | None = None,
    jobs: int = 1,
    store: ResultStore | None = None,
) -> TableResult:
    """Regenerate Table VI (full grid submitted as one runner batch)."""
    names = workloads or SPEC2017_NAMES
    columns = _columns()
    rows, averages = improvement_rows(
        names, columns, scale, workers=jobs, store=store
    )
    return TableResult(
        title="Table VI: SPEC2017 improvement (32 access buffers)",
        headers=["benchmark"] + [header for header, _ in columns],
        rows=rows,
        averages=averages,
    )


def render(result: TableResult) -> str:
    rows = [list(row) for row in result.rows]
    rows.append(["Avg."] + list(result.averages))
    return render_table(result.headers, rows, title=result.title)
