"""Table VI: SPEC 2017 speedups (32 access buffers).

Paper columns: PREFENDER-ST+AT; full PREFENDER; Tagged; ST+AT (Tagged);
full (Tagged); Stride; ST+AT (Stride); full (Stride).
"""

from __future__ import annotations

from repro.experiments.common import improvement, table_spec
from repro.experiments.table4 import TableResult
from repro.utils.tables import render_table
from repro.workloads import SPEC2017_NAMES


def _columns() -> list[tuple[str, object]]:
    return [
        ("ST+AT", table_spec("prefender", 32, with_rp=False)),
        ("Prefender", table_spec("prefender", 32, with_rp=True)),
        ("Tagged", table_spec("tagged")),
        ("ST+AT(T)", table_spec("prefender+tagged", 32, with_rp=False)),
        ("Prefender(T)", table_spec("prefender+tagged", 32, with_rp=True)),
        ("Stride", table_spec("stride")),
        ("ST+AT(S)", table_spec("prefender+stride", 32, with_rp=False)),
        ("Prefender(S)", table_spec("prefender+stride", 32, with_rp=True)),
    ]


def run(scale: float = 1.0, workloads: list[str] | None = None) -> TableResult:
    """Regenerate Table VI."""
    names = workloads or SPEC2017_NAMES
    columns = _columns()
    rows: list[list[object]] = []
    for name in names:
        row: list[object] = [name]
        for _, spec in columns:
            row.append(improvement(name, spec, scale))
        rows.append(row)
    averages = [
        sum(row[i + 1] for row in rows) / len(rows) for i in range(len(columns))
    ]
    return TableResult(
        title="Table VI: SPEC2017 improvement (32 access buffers)",
        headers=["benchmark"] + [header for header, _ in columns],
        rows=rows,
        averages=averages,
    )


def render(result: TableResult) -> str:
    rows = [list(row) for row in result.rows]
    rows.append(["Avg."] + list(result.averages))
    return render_table(result.headers, rows, title=result.title)
