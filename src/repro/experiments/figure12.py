"""Figure 12: number of protected access buffers over execution progress.

Shape target (paper): benchmarks differ sharply — pure-compute and random
benchmarks keep zero protected buffers; benchmarks with memory-derived
scaled addressing protect many of the 32 buffers for long stretches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import perf_config, table_spec
from repro.sim.simulator import build_system
from repro.utils.textplot import ascii_series
from repro.workloads import SPEC2006_NAMES, get_workload


@dataclass
class ProtectionSeries:
    benchmark: str
    progress: list[float]  # fraction of execution 0..1
    protected: list[int]

    @property
    def peak(self) -> int:
        return max(self.protected, default=0)


def run(
    scale: float = 1.0,
    workloads: list[str] | None = None,
    samples: int = 40,
) -> list[ProtectionSeries]:
    names = workloads or SPEC2006_NAMES
    spec = table_spec("prefender", 32, with_rp=True)
    series = []
    for name in names:
        program = get_workload(name).program(scale)
        # Pre-measure the run length to place samples uniformly.
        config = perf_config(spec)
        probe_system = build_system([program], config)
        total_steps = 0
        while any(not core.halted for core in probe_system.cores):
            probe_system.cores[0].step()
            total_steps += 1
            if total_steps > 50_000_000:  # pragma: no cover - guard
                break
        interval = max(1, total_steps // samples)
        program2 = get_workload(name).program(scale)
        system = build_system([program2], config)
        result = system.run(sample_interval=interval)
        progress = [
            min(1.0, step / total_steps) for step, _ in result.samples
        ]
        protected = [int(value) for _, value in result.samples]
        series.append(
            ProtectionSeries(benchmark=name, progress=progress, protected=protected)
        )
    return series


def render(series: list[ProtectionSeries]) -> str:
    lines = ["Figure 12: protected access buffers over execution"]
    for entry in series:
        if entry.progress and entry.peak > 0:
            lines.append(
                ascii_series(
                    entry.progress,
                    {entry.benchmark: entry.protected},
                    height=6,
                    width=60,
                    title=f"{entry.benchmark} (peak {entry.peak}/32)",
                )
            )
        else:
            lines.append(f"{entry.benchmark}: no protected buffers")
    return "\n".join(lines)
