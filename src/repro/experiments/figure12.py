"""Figure 12: number of protected access buffers over execution progress.

Shape target (paper): benchmarks differ sharply — pure-compute and random
benchmarks keep zero protected buffers; benchmarks with memory-derived
scaled addressing protect many of the 32 buffers for long stretches.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.experiments.common import batch_results, sim_job, table_spec
from repro.runner import ResultStore
from repro.utils.textplot import ascii_series
from repro.workloads import SPEC2006_NAMES


@dataclass
class ProtectionSeries:
    benchmark: str
    progress: list[float]  # fraction of execution 0..1
    protected: list[int]

    @property
    def peak(self) -> int:
        return max(self.protected, default=0)


def run(
    scale: float = 1.0,
    workloads: list[str] | None = None,
    samples: int = 40,
    jobs: int = 1,
    store: ResultStore | None = None,
) -> list[ProtectionSeries]:
    names = workloads or SPEC2006_NAMES
    spec = table_spec("prefender", 32, with_rp=True)
    # Pre-measure run lengths (one probe batch) to place samples uniformly.
    # The perf core never speculates, so every scheduler step retires one
    # instruction and the retired-instruction count *is* the step count.
    probe_jobs = [sim_job(name, spec, scale) for name in names]
    probes = batch_results(probe_jobs, workers=jobs, store=store)
    totals = [probe.instructions for probe in probes]
    sampled = batch_results(
        [
            replace(job, sample_interval=max(1, total // samples))
            for job, total in zip(probe_jobs, totals)
        ],
        workers=jobs,
        store=store,
    )
    series = []
    for name, total_steps, result in zip(names, totals, sampled):
        progress = [
            min(1.0, step / total_steps) for step, _ in result.samples
        ]
        protected = [int(value) for _, value in result.samples]
        series.append(
            ProtectionSeries(benchmark=name, progress=progress, protected=protected)
        )
    return series


def render(series: list[ProtectionSeries]) -> str:
    lines = ["Figure 12: protected access buffers over execution"]
    for entry in series:
        if entry.progress and entry.peak > 0:
            lines.append(
                ascii_series(
                    entry.progress,
                    {entry.benchmark: entry.protected},
                    height=6,
                    width=60,
                    title=f"{entry.benchmark} (peak {entry.peak}/32)",
                )
            )
        else:
            lines.append(f"{entry.benchmark}: no protected buffers")
    return "\n".join(lines)
