"""Table IV: SPEC 2006 speedups *without* the Record Protector.

Columns (paper numbering): PREFENDER-ST+AT with 16/32/64 access buffers;
Tagged; PREFENDER-ST+AT over Tagged (16/32/64); Stride; PREFENDER-ST+AT
over Stride (16/32/64).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import improvement_rows, table_spec
from repro.runner import ResultStore
from repro.utils.tables import render_table
from repro.workloads import SPEC2006_NAMES

BUFFER_SWEEP = (16, 32, 64)


@dataclass
class TableResult:
    title: str
    headers: list[str]
    rows: list[list[object]]  # benchmark name + float improvements
    averages: list[float]

    def column(self, header: str) -> dict[str, float]:
        """Per-benchmark values of one column."""
        index = self.headers.index(header)
        return {row[0]: row[index] for row in self.rows}


def _columns(with_rp: bool) -> list[tuple[str, object]]:
    prefix = "Prefender" if with_rp else "ST+AT"
    columns: list[tuple[str, object]] = []
    for buffers in BUFFER_SWEEP:
        columns.append(
            (f"{prefix}/{buffers}", table_spec("prefender", buffers, with_rp))
        )
    columns.append(("Tagged", table_spec("tagged")))
    for buffers in BUFFER_SWEEP:
        columns.append(
            (
                f"{prefix}(T)/{buffers}",
                table_spec("prefender+tagged", buffers, with_rp),
            )
        )
    columns.append(("Stride", table_spec("stride")))
    for buffers in BUFFER_SWEEP:
        columns.append(
            (
                f"{prefix}(S)/{buffers}",
                table_spec("prefender+stride", buffers, with_rp),
            )
        )
    return columns


def run(
    scale: float = 1.0,
    with_rp: bool = False,
    workloads: list[str] | None = None,
    buffer_sweep: tuple[int, ...] | None = None,
    jobs: int = 1,
    store: ResultStore | None = None,
) -> TableResult:
    """Regenerate Table IV (or Table V with ``with_rp=True``).

    The full workload × column grid (plus the shared baseline) is declared
    up front and submitted as one runner batch; ``jobs`` shards it across
    processes without changing a byte of the output.
    """
    names = workloads or SPEC2006_NAMES
    columns = _columns(with_rp)
    if buffer_sweep is not None:
        keep = {f.split("/")[-1] for f in map(str, buffer_sweep)}
        columns = [
            (header, spec)
            for header, spec in columns
            if "/" not in header or header.split("/")[-1] in keep
        ]
    rows, averages = improvement_rows(
        names, columns, scale, workers=jobs, store=store
    )
    title = (
        "Table V: SPEC2006 improvement with Record Protector"
        if with_rp
        else "Table IV: SPEC2006 improvement without Record Protector"
    )
    return TableResult(
        title=title,
        headers=["benchmark"] + [header for header, _ in columns],
        rows=rows,
        averages=averages,
    )


def render(result: TableResult) -> str:
    rows = [list(row) for row in result.rows]
    rows.append(["Avg."] + list(result.averages))
    return render_table(result.headers, rows, title=result.title)
