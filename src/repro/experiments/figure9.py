"""Figure 9: number of prefetches over time during the attacks.

Panels (a-c): PREFENDER-ST+AT under C1+C2 — ST contributes a small early
burst (phase 2), AT a large burst through phase 3.  Panels (d-f): full
PREFENDER under C1+C2+C3+C4 — RP-guided prefetches dominate phase 3.
Times are reported in microseconds at the paper's 2GHz clock.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import security_spec
from repro.runner import AttackJob, run_batch
from repro.sim.config import SystemConfig
from repro.utils.textplot import ascii_series

CYCLES_PER_MICROSECOND = 2000

ATTACKS = {
    "Flush+Reload": "flush-reload",
    "Evict+Reload": "evict-reload",
    "Prime+Probe": "prime-probe",
}


@dataclass
class TimelinePanel:
    attack: str
    challenges: str
    defense: str
    # component -> list of (time_us, cumulative_count)
    series: dict[str, list[tuple[float, int]]]
    totals: dict[str, int]


def _binned(timeline: list[tuple[int, str, int]]) -> dict[str, list[tuple[float, int]]]:
    series: dict[str, list[tuple[float, int]]] = {}
    counts: dict[str, int] = {}
    for cycle, component, _blk in timeline:
        counts[component] = counts.get(component, 0) + 1
        series.setdefault(component, []).append(
            (cycle / CYCLES_PER_MICROSECOND, counts[component])
        )
    return series


def run(noisy: bool = False, jobs: int = 1) -> list[TimelinePanel]:
    """Panels a-c (``noisy=False``) or d-f (``noisy=True``)."""
    defense = "FULL" if noisy else "ST+AT"
    options = {"noise_c3": True, "noise_c4": True} if noisy else {}
    system = SystemConfig(prefetcher=security_spec(defense))
    attack_jobs = [
        AttackJob.build(kind, system, **options) for kind in ATTACKS.values()
    ]
    outcomes = run_batch(attack_jobs, workers=jobs)
    panels = []
    for attack_name, outcome in zip(ATTACKS, outcomes):
        timeline = outcome.run_result.prefetch_timelines[0]
        series = _binned(timeline)
        totals = {component: points[-1][1] for component, points in series.items()}
        panels.append(
            TimelinePanel(
                attack=attack_name,
                challenges=outcome.challenges,
                defense=defense,
                series=series,
                totals=totals,
            )
        )
    return panels


def render(panels: list[TimelinePanel]) -> str:
    blocks = []
    for panel in panels:
        lines = [
            f"--- Figure 9: {panel.attack} ({panel.challenges}) "
            f"vs {panel.defense} ---",
            f"  totals: {panel.totals}",
        ]
        for component, points in panel.series.items():
            xs = [t for t, _ in points]
            ys = [c for _, c in points]
            if len(xs) > 1:
                lines.append(
                    ascii_series(
                        xs,
                        {component: ys},
                        height=6,
                        width=60,
                        title=f"  {component}: cumulative prefetches vs time (us)",
                    )
                )
            else:
                lines.append(f"  {component}: {ys[-1]} prefetch(es) at {xs[0]:.1f}us")
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)
