"""Experiment harnesses: one module per paper table/figure.

Every module exposes ``run(...)`` returning a plain-data result and
``render(result)`` returning the text table/chart that ``benchmarks/``
prints and EXPERIMENTS.md records.
"""

from repro.experiments import (  # noqa: F401
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    frontier,
    related,
    table4,
    table5,
    table6,
)
from repro.experiments.common import (
    PERF_CORE,
    improvement,
    perf_config,
    security_prefender,
    security_spec,
)

__all__ = [
    "PERF_CORE",
    "improvement",
    "perf_config",
    "security_prefender",
    "security_spec",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "frontier",
    "related",
    "table4",
    "table5",
    "table6",
]
