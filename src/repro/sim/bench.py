"""Simulator-throughput benchmark: the ``python -m repro bench`` backend.

Times three scenarios that together cover every hot path the simulator has
(the decode/dispatch core loop, the tag-indexed caches, the single-core
fast loop, the two-core scheduler, coherence traffic, and the speculative
substrate):

* ``single_core_victim`` — one SPEC-like workload on the performance core
  (Tables IV-VI's configuration).
* ``dual_core_attack``   — cross-core Flush+Reload, attacker + victim on
  two cores sharing the L2.
* ``speculative_spectre`` — Flush+Reload against a Spectre-v1 victim with
  speculative execution, mispredictions and squashes.

Each scenario runs ``repeats`` times and reports the best wall-clock pass
(instructions / second); results serialise to ``BENCH_sim_throughput.json``
so CI and the growth driver can track the throughput trajectory.
``tests/test_golden_parity.py`` guards that none of this speed moved a
single cycle or counter.
"""

from __future__ import annotations

import json
import pathlib
import time
from dataclasses import dataclass
from typing import Callable

from repro.cpu.core import CoreConfig
from repro.sim.config import SystemConfig
from repro.sim.simulator import run_program
from repro.workloads import get_workload

SCHEMA = "bench_sim_throughput/v1"

#: Scenario keys, in report order; CI asserts all three are present.
SCENARIO_NAMES = ("single_core_victim", "dual_core_attack", "speculative_spectre")

DEFAULT_WORKLOAD = "462.libquantum"
DEFAULT_SCALE = 0.5
QUICK_SCALE = 0.1

# The performance-evaluation core (same knobs as experiments.common's
# PERF_CORE, restated here so the sim layer does not import the experiment
# layer): an OoO-like window hides up to 110 cycles of load latency.
_PERF_CORE = CoreConfig(load_hide_cycles=110)


@dataclass(frozen=True)
class ScenarioResult:
    """Best-of-N timing for one scenario."""

    name: str
    instructions: int
    cycles: int
    seconds: float
    repeats: int

    @property
    def instr_per_sec(self) -> float:
        return self.instructions / self.seconds if self.seconds else 0.0

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "instructions": self.instructions,
            "cycles": self.cycles,
            "seconds": self.seconds,
            "repeats": self.repeats,
            "instr_per_sec": self.instr_per_sec,
        }


def run_single_core(scale: float, workload: str = DEFAULT_WORKLOAD):
    """One victim workload on the performance core (no attacker)."""
    program = get_workload(workload).program(scale)
    return run_program(program, SystemConfig(core=_PERF_CORE))


def run_dual_core_attack():
    """Cross-core Flush+Reload: two cores, shared L2, coherence traffic."""
    from repro.attacks import FlushReloadAttack

    return FlushReloadAttack(cross_core=True).run().run_result


def run_speculative_spectre():
    """Flush+Reload against a Spectre-v1 victim (speculation + squashes)."""
    from repro.attacks import FlushReloadAttack

    return FlushReloadAttack(victim_mode="spectre").run().run_result


def _time_scenario(
    name: str, run: Callable[[], object], repeats: int
) -> ScenarioResult:
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()  # lint: allow DET102
        result = run()
        elapsed = time.perf_counter() - start  # lint: allow DET102
        if elapsed < best:
            best = elapsed
    return ScenarioResult(
        name=name,
        instructions=result.instructions,
        cycles=result.cycles,
        seconds=best,
        repeats=max(1, repeats),
    )


def run_bench(
    scale: float = DEFAULT_SCALE,
    repeats: int = 3,
    workload: str = DEFAULT_WORKLOAD,
) -> dict:
    """Run all three scenarios; returns the JSON-able report."""
    scenarios = {
        "single_core_victim": lambda: run_single_core(scale, workload),
        "dual_core_attack": run_dual_core_attack,
        "speculative_spectre": run_speculative_spectre,
    }
    report = {
        "schema": SCHEMA,
        "workload": workload,
        "scale": scale,
        "repeats": max(1, repeats),
        "scenarios": {},
    }
    for name in SCENARIO_NAMES:
        report["scenarios"][name] = _time_scenario(
            name, scenarios[name], repeats
        ).as_dict()
    return report


def write_report(report: dict, path: str | pathlib.Path) -> pathlib.Path:
    """Serialise a :func:`run_bench` report to ``path`` (parents created)."""
    path = pathlib.Path(path)
    if path.parent != pathlib.Path("."):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")
    return path


def render_report(report: dict) -> str:
    """Human-readable summary table of one report."""
    lines = [
        f"Simulator throughput (workload {report['workload']}, "
        f"scale {report['scale']}, best of {report['repeats']})",
    ]
    for name in SCENARIO_NAMES:
        cell = report["scenarios"][name]
        lines.append(
            f"  {name:<20} {cell['instr_per_sec']:>12,.0f} instr/s "
            f"({cell['instructions']} instr in {cell['seconds']*1000:.1f} ms)"
        )
    return "\n".join(lines)
