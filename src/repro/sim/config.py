"""System configuration and the prefetcher factory.

``PrefetcherSpec.kind`` names match the paper's evaluation columns:

==================== =========================================================
``none``             the no-prefetcher Baseline
``tagged``           Tagged prefetcher [15]
``stride``           Stride prefetcher [16, 40]
``prefender``        PREFENDER alone (variant set by ``prefender`` config)
``prefender+tagged`` PREFENDER with a Tagged basic prefetcher (PREFENDER
                     priority, paper Sec. V-A)
``prefender+stride`` PREFENDER with a Stride basic prefetcher
``bitp``             related-work model for the Table II ablation
``disruptive``       related-work model for the Table II ablation
==================== =========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import PrefenderConfig
from repro.core.prefender import Prefender
from repro.cpu.core import CoreConfig
from repro.errors import ConfigError
from repro.mem.hierarchy import HierarchyConfig
from repro.prefetch.base import NullPrefetcher, Prefetcher
from repro.prefetch.bitp import BITPPrefetcher
from repro.prefetch.composite import CompositePrefetcher
from repro.prefetch.disruptive import DisruptivePrefetcher
from repro.prefetch.stride import StridePrefetcher
from repro.prefetch.tagged import TaggedPrefetcher
from repro.utils.addr import AddressMap

PREFETCHER_KINDS = (
    "none",
    "tagged",
    "stride",
    "prefender",
    "prefender+tagged",
    "prefender+stride",
    "bitp",
    "disruptive",
)


@dataclass(frozen=True)
class PrefetcherSpec:
    """Which prefetcher each core's L1D gets."""

    kind: str = "none"
    prefender: PrefenderConfig = field(default_factory=PrefenderConfig)

    def __post_init__(self) -> None:
        if self.kind not in PREFETCHER_KINDS:
            raise ConfigError(
                f"unknown prefetcher kind {self.kind!r}; "
                f"choose from {PREFETCHER_KINDS}"
            )

    @property
    def label(self) -> str:
        """Human-readable label matching the paper's table headers."""
        if self.kind == "none":
            return "Baseline"
        if self.kind == "tagged":
            return "Tagged"
        if self.kind == "stride":
            return "Stride"
        if self.kind == "prefender":
            return self.prefender.variant_name
        if self.kind.startswith("prefender+"):
            basic = self.kind.split("+", 1)[1].capitalize()
            return f"{self.prefender.variant_name} ({basic})"
        return self.kind


def build_prefetcher(spec: PrefetcherSpec, amap: AddressMap) -> Prefetcher:
    """Instantiate the prefetcher described by ``spec``."""
    if spec.kind == "none":
        return NullPrefetcher()
    if spec.kind == "tagged":
        return TaggedPrefetcher(amap, degree=2)
    if spec.kind == "stride":
        return StridePrefetcher(amap)
    if spec.kind == "prefender":
        return Prefender(spec.prefender, amap)
    if spec.kind == "prefender+tagged":
        return CompositePrefetcher(
            Prefender(spec.prefender, amap), TaggedPrefetcher(amap, degree=2)
        )
    if spec.kind == "prefender+stride":
        return CompositePrefetcher(
            Prefender(spec.prefender, amap), StridePrefetcher(amap)
        )
    if spec.kind == "bitp":
        return BITPPrefetcher()
    if spec.kind == "disruptive":
        return DisruptivePrefetcher(amap)
    raise ConfigError(f"unknown prefetcher kind {spec.kind!r}")  # pragma: no cover


@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to build a system around a set of programs."""

    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)
    core: CoreConfig = field(default_factory=CoreConfig)
    prefetcher: PrefetcherSpec = field(default_factory=PrefetcherSpec)
    num_cores: int = 1
    block_size: int = 64
    page_size: int = 4096

    def address_map(self) -> AddressMap:
        return AddressMap(block_size=self.block_size, page_size=self.page_size)
