"""Simulation front door: configuration dataclasses and system builders."""

from repro.sim.config import PrefetcherSpec, SystemConfig, build_prefetcher
from repro.sim.simulator import build_system, run_program, run_programs

__all__ = [
    "PrefetcherSpec",
    "SystemConfig",
    "build_prefetcher",
    "build_system",
    "run_program",
    "run_programs",
]
