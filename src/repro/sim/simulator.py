"""Build-and-run helpers used by examples, tests and experiments."""

from __future__ import annotations

from repro.cpu.system import RunResult, System
from repro.errors import ConfigError
from repro.isa.program import Program
from repro.mem.hierarchy import MemoryHierarchy
from repro.sim.config import SystemConfig, build_prefetcher


def build_system(programs: list[Program], config: SystemConfig | None = None) -> System:
    """Construct a ready-to-run :class:`System` for ``programs``.

    One program per core; the configured prefetcher is instantiated
    independently for every core's L1D (per Fig. 2, PREFENDER lives in each
    L1D).
    """
    config = config or SystemConfig()
    if config.num_cores != len(programs):
        raise ConfigError(
            f"config.num_cores={config.num_cores} but {len(programs)} "
            "program(s) supplied"
        )
    amap = config.address_map()
    hierarchy = MemoryHierarchy(
        num_cores=config.num_cores, config=config.hierarchy, amap=amap
    )
    for core_id in range(config.num_cores):
        hierarchy.attach_prefetcher(
            core_id, build_prefetcher(config.prefetcher, amap)
        )
    return System(programs, hierarchy, config.core)


def run_program(
    program: Program,
    config: SystemConfig | None = None,
    max_steps: int = 20_000_000,
    sample_interval: int | None = None,
) -> RunResult:
    """Run a single-core program to halt and return its statistics."""
    config = config or SystemConfig()
    if config.num_cores != 1:
        raise ConfigError("run_program is single-core; use run_programs")
    system = build_system([program], config)
    return system.run(max_steps=max_steps, sample_interval=sample_interval)


def run_programs(
    programs: list[Program],
    config: SystemConfig,
    max_steps: int = 20_000_000,
    sample_interval: int | None = None,
) -> RunResult:
    """Run one program per core to halt and return combined statistics."""
    system = build_system(programs, config)
    return system.run(max_steps=max_steps, sample_interval=sample_interval)
