"""Command-line front door: ``python -m repro <command>``.

Commands:

* ``attack``   — run one attack against one defense and print the verdict
* ``figure8``  — regenerate the security matrix (one attack/challenge)
* ``table``    — regenerate a performance table (4, 5 or 6)
* ``sweep``    — improvements for an arbitrary workload × prefetcher grid
* ``hwcost``   — print the Section V-E resource report
* ``ablation`` — run the Table II related-work ablation

Simulation batches go through :mod:`repro.runner`: every run is keyed by a
content hash over the *full* configuration (workload, scale and every
``SystemConfig``/``PrefenderConfig``/``CoreConfig``/``HierarchyConfig``
field), deduplicated, and sharded across processes.

* ``--jobs N`` (``table``, ``sweep``, ``ablation``) runs up to N
  simulations in parallel; ``--jobs 0`` uses every CPU core.  Output is
  byte-identical to a sequential run.
* ``--store`` (``table``, ``sweep``) persists results as JSON under
  ``benchmarks/results/cache/`` (relative to the invocation directory) and
  reuses them on later invocations; keys are lossless, so a cached result
  is only ever served for the exact same configuration.

Examples::

    python -m repro table 4 --scale 0.5 --jobs 4
    python -m repro sweep --workloads 429.mcf,462.libquantum \\
        --kinds prefender,tagged --buffers 16,32 --jobs 0 --store
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ConfigError
from repro.experiments import figure8, related, table4, table5, table6
from repro.experiments.common import improvement_rows, security_spec, table_spec
from repro.hwcost import estimate, render_report
from repro.runner import ATTACK_KINDS, DEFAULT_CACHE_DIR, AttackJob, ResultStore
from repro.sim.config import PREFETCHER_KINDS, PrefetcherSpec, SystemConfig
from repro.utils.tables import render_table
from repro.workloads import SPEC2006_NAMES, SPEC2017_NAMES, workload_names

DEFENSES = ("Base", "ST", "AT", "ST+AT", "AT+RP", "FULL")


def _scale_arg(text: str) -> float:
    """Positive-float argparse type for ``--scale`` (rejects <= 0)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid scale {text!r}") from None
    if not value > 0:  # also rejects NaN
        # Backed by the same ConfigError SimJob raises if a bad scale ever
        # reaches job construction by another path.
        error = ConfigError(
            f"--scale must be > 0 (workload loop counts scale with it), "
            f"got {value}"
        )
        raise argparse.ArgumentTypeError(str(error)) from error
    return value


def _jobs_arg(text: str) -> int:
    """Worker count for ``--jobs``: >= 1, or 0 for one per CPU core."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid job count {text!r}") from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"--jobs must be >= 0, got {value}")
    return value


def _store_for(args: argparse.Namespace) -> ResultStore | None:
    return ResultStore(DEFAULT_CACHE_DIR) if args.store else None


def _cmd_attack(args: argparse.Namespace) -> int:
    job = AttackJob.build(
        args.attack,
        SystemConfig(prefetcher=security_spec(args.defense)),
        noise_c3=args.c3,
        noise_c4=args.c4,
        victim_mode="spectre" if args.spectre else "direct",
        cross_core=args.cross_core,
    )
    print(job.run().summary())
    return 0


def _cmd_figure8(args: argparse.Namespace) -> int:
    panels = figure8.run()
    print(figure8.render(panels))
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    module = {4: table4, 5: table5, 6: table6}[args.number]
    result = module.run(scale=args.scale, jobs=args.jobs, store=_store_for(args))
    print(module.render(result))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.workloads:
        names = args.workloads.split(",")
    else:
        names = {
            "spec2006": SPEC2006_NAMES,
            "spec2017": SPEC2017_NAMES,
            "all": workload_names(),
        }[args.suite]
    try:
        buffers = [int(b) for b in args.buffers.split(",")]
    except ValueError:
        raise ConfigError(
            f"--buffers must be comma-separated integers, got {args.buffers!r}"
        ) from None
    specs: list[tuple[str, PrefetcherSpec]] = []
    for kind in args.kinds.split(","):
        if kind not in PREFETCHER_KINDS:
            raise ConfigError(
                f"unknown prefetcher kind {kind!r}; "
                f"choose from {PREFETCHER_KINDS}"
            )
        if kind == "none":
            specs.append(("Baseline", PrefetcherSpec(kind="none")))
        elif "prefender" in kind:
            for count in buffers:
                specs.append(
                    (f"{kind}/{count}", table_spec(kind, count, with_rp=args.rp))
                )
        else:
            specs.append((kind, table_spec(kind)))
    rows, averages = improvement_rows(
        names, specs, args.scale, workers=args.jobs, store=_store_for(args)
    )
    rows.append(["Avg."] + averages)
    print(
        render_table(
            ["benchmark"] + [header for header, _ in specs],
            rows,
            title=f"Sweep: improvement vs baseline (scale {args.scale})",
        )
    )
    return 0


def _cmd_hwcost(args: argparse.Namespace) -> int:
    print(render_report(estimate(buffers=args.buffers)))
    return 0


def _cmd_ablation(args: argparse.Namespace) -> int:
    rows = related.run(jobs=args.jobs)
    print(related.render(rows))
    return 0 if all(row.matches_paper for row in rows) else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    commands = parser.add_subparsers(dest="command", required=True)

    attack = commands.add_parser("attack", help="run one attack")
    attack.add_argument("attack", choices=sorted(ATTACK_KINDS))
    attack.add_argument("--defense", choices=DEFENSES, default="Base")
    attack.add_argument("--c3", action="store_true", help="noisy instructions")
    attack.add_argument("--c4", action="store_true", help="noisy accesses")
    attack.add_argument("--spectre", action="store_true")
    attack.add_argument("--cross-core", action="store_true")
    attack.set_defaults(handler=_cmd_attack)

    fig8 = commands.add_parser("figure8", help="security matrix")
    fig8.set_defaults(handler=_cmd_figure8)

    table = commands.add_parser("table", help="performance tables")
    table.add_argument("number", type=int, choices=(4, 5, 6))
    table.add_argument("--scale", type=_scale_arg, default=0.5)
    table.add_argument(
        "--jobs", type=_jobs_arg, default=1,
        help="parallel simulation processes (0 = all cores)",
    )
    table.add_argument(
        "--store", action="store_true",
        help=f"persist/reuse results under {DEFAULT_CACHE_DIR}",
    )
    table.set_defaults(handler=_cmd_table)

    sweep = commands.add_parser(
        "sweep", help="arbitrary workload x prefetcher improvement grid"
    )
    sweep.add_argument(
        "--suite", choices=("spec2006", "spec2017", "all"), default="spec2006"
    )
    sweep.add_argument(
        "--workloads", default="",
        help="comma-separated workload names (overrides --suite)",
    )
    sweep.add_argument(
        "--kinds", default="prefender",
        help=f"comma-separated prefetcher kinds from {PREFETCHER_KINDS}",
    )
    sweep.add_argument(
        "--buffers", default="32",
        help="comma-separated access-buffer counts for prefender kinds",
    )
    sweep.add_argument(
        "--rp", action="store_true", help="enable the Record Protector"
    )
    sweep.add_argument("--scale", type=_scale_arg, default=0.5)
    sweep.add_argument("--jobs", type=_jobs_arg, default=1)
    sweep.add_argument("--store", action="store_true")
    sweep.set_defaults(handler=_cmd_sweep)

    hwcost = commands.add_parser("hwcost", help="Section V-E report")
    hwcost.add_argument("--buffers", type=int, default=32)
    hwcost.set_defaults(handler=_cmd_hwcost)

    ablation = commands.add_parser("ablation", help="Table II ablation")
    ablation.add_argument("--jobs", type=_jobs_arg, default=1)
    ablation.set_defaults(handler=_cmd_ablation)

    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ConfigError as error:
        parser.error(str(error))


if __name__ == "__main__":
    sys.exit(main())
