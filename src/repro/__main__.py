"""Command-line front door: ``python -m repro <command>``.

Commands:

* ``attack``   — run one attack against one defense and print the verdict
* ``figure8``  — regenerate the security matrix (one attack/challenge)
* ``table``    — regenerate a performance table (4, 5 or 6)
* ``hwcost``   — print the Section V-E resource report
* ``ablation`` — run the Table II related-work ablation
"""

from __future__ import annotations

import argparse
import sys

from repro.attacks import (
    EvictReloadAttack,
    EvictTimeAttack,
    FlushReloadAttack,
    PrimeProbeAttack,
)
from repro.experiments import figure8, related, table4, table5, table6
from repro.experiments.common import security_spec
from repro.hwcost import estimate, render_report
from repro.sim.config import SystemConfig

ATTACKS = {
    "flush-reload": FlushReloadAttack,
    "evict-reload": EvictReloadAttack,
    "prime-probe": PrimeProbeAttack,
    "evict-time": EvictTimeAttack,
}

DEFENSES = ("Base", "ST", "AT", "ST+AT", "AT+RP", "FULL")


def _cmd_attack(args: argparse.Namespace) -> int:
    attack_cls = ATTACKS[args.attack]
    attack = attack_cls(
        noise_c3=args.c3,
        noise_c4=args.c4,
        victim_mode="spectre" if args.spectre else "direct",
        cross_core=args.cross_core,
    )
    outcome = attack.run(SystemConfig(prefetcher=security_spec(args.defense)))
    print(outcome.summary())
    return 0


def _cmd_figure8(args: argparse.Namespace) -> int:
    panels = figure8.run()
    print(figure8.render(panels))
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    module = {4: table4, 5: table5, 6: table6}[args.number]
    result = module.run(scale=args.scale)
    print(module.render(result))
    return 0


def _cmd_hwcost(args: argparse.Namespace) -> int:
    print(render_report(estimate(buffers=args.buffers)))
    return 0


def _cmd_ablation(args: argparse.Namespace) -> int:
    rows = related.run()
    print(related.render(rows))
    return 0 if all(row.matches_paper for row in rows) else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    commands = parser.add_subparsers(dest="command", required=True)

    attack = commands.add_parser("attack", help="run one attack")
    attack.add_argument("attack", choices=sorted(ATTACKS))
    attack.add_argument("--defense", choices=DEFENSES, default="Base")
    attack.add_argument("--c3", action="store_true", help="noisy instructions")
    attack.add_argument("--c4", action="store_true", help="noisy accesses")
    attack.add_argument("--spectre", action="store_true")
    attack.add_argument("--cross-core", action="store_true")
    attack.set_defaults(handler=_cmd_attack)

    fig8 = commands.add_parser("figure8", help="security matrix")
    fig8.set_defaults(handler=_cmd_figure8)

    table = commands.add_parser("table", help="performance tables")
    table.add_argument("number", type=int, choices=(4, 5, 6))
    table.add_argument("--scale", type=float, default=0.5)
    table.set_defaults(handler=_cmd_table)

    hwcost = commands.add_parser("hwcost", help="Section V-E report")
    hwcost.add_argument("--buffers", type=int, default=32)
    hwcost.set_defaults(handler=_cmd_hwcost)

    ablation = commands.add_parser("ablation", help="Table II ablation")
    ablation.set_defaults(handler=_cmd_ablation)

    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
