"""Command-line front door: ``python -m repro <command>``.

Commands:

* ``attack``   — run an attack × defense grid and print one verdict line
  per cell; ``--name adversarial-prefetch`` expands to the A1/A2 variants
* ``scenarios`` — crypto-victim leakage suite: every attack × victim ×
  defense cell runs over a set of trial secrets and is scored by attacker
  success rate and a mutual-information estimate (bits of secret leaked)
* ``figure8``  — regenerate the security matrix (one attack/challenge)
* ``table``    — regenerate a performance table (4, 5 or 6)
* ``sweep``    — improvements for an arbitrary workload × prefetcher grid
* ``frontier`` — defense-vs-performance Pareto frontier over PREFENDER
  knob grids (``at_threshold`` × ``entries_per_buffer`` ×
  ``st_max_prefetches``), with no-defense and PCG-style baselines
* ``hwcost``   — print the Section V-E resource report
* ``ablation`` — run the Table II related-work ablation
* ``bench``    — time the simulator's three throughput scenarios
  (single-core victim, dual-core attack, speculative Spectre) and emit
  ``BENCH_sim_throughput.json``; ``--quick`` shrinks the workload for CI
  smoke runs
* ``analyze``  — static analysis (CFG + dataflow) over ``.asm`` files
  and/or every built-in workload, crypto victim and attack program
  (``--builtin``); findings carry source line numbers and rule IDs from
  :data:`repro.analysis.ANALYSIS_RULES`.  ``--taint`` adds the
  secret-taint classification and static per-secret leak maps;
  ``--json`` emits one machine-readable document.  The exit code is
  non-zero only for *error*-severity findings and build failures

Simulation batches go through :mod:`repro.runner`: every run is keyed by a
content hash over the *full* configuration (workload, scale and every
``SystemConfig``/``PrefenderConfig``/``CoreConfig``/``HierarchyConfig``
field), deduplicated, and sharded across processes.

* ``--jobs N`` (``attack``, ``table``, ``sweep``, ``frontier``,
  ``ablation``) runs up to N simulations in parallel; ``--jobs 0`` uses
  every CPU core.  Output is byte-identical to a sequential run.
  ``frontier`` keeps one persistent warm worker pool across its batches,
  so workers fork once for the whole sweep.
* ``--store`` (``attack``, ``table``, ``sweep``, ``frontier``) persists results as
  JSON under ``benchmarks/results/cache/`` (relative to the invocation
  directory) and reuses them on later invocations; keys are lossless, so
  a cached result is only ever served for the exact same configuration.
* ``--store-max-mb M`` caps that cache: least-recently-used entries are
  evicted once it outgrows M megabytes.

Examples::

    python -m repro table 4 --scale 0.5 --jobs 4
    python -m repro sweep --workloads 429.mcf,462.libquantum \\
        --kinds prefender,tagged --buffers 16,32 --jobs 0 --store
    python -m repro frontier --grid "at_threshold=2,4,6" --jobs 2 \\
        --store --store-max-mb 64
"""

from __future__ import annotations

import argparse
import math
import sys

from repro.attacks import scenarios
from repro.attacks.base import verdict_line
from repro.errors import ConfigError
from repro.experiments import figure8, frontier, related, table4, table5, table6
from repro.experiments.common import (
    DEFENSES,
    improvement_rows,
    security_spec,
    table_spec,
)
from repro.hwcost import estimate, render_report
from repro.runner import (
    ADVERSARIAL_PREFETCH_FAMILY,
    ADVERSARIAL_PREFETCH_VARIANTS,
    ATTACK_KINDS,
    DEFAULT_CACHE_DIR,
    AttackProbe,
    AttackProbeJob,
    ResultStore,
    WorkerPool,
    run_batch,
)
from repro.sim.config import PREFETCHER_KINDS, PrefetcherSpec, SystemConfig
from repro.utils.tables import render_table
from repro.workloads import SPEC2006_NAMES, SPEC2017_NAMES, workload_names


def _scale_arg(text: str) -> float:
    """Positive-float argparse type for ``--scale`` (rejects <= 0)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid scale {text!r}") from None
    if not value > 0:  # also rejects NaN
        # Backed by the same ConfigError SimJob raises if a bad scale ever
        # reaches job construction by another path.
        error = ConfigError(
            f"--scale must be > 0 (workload loop counts scale with it), "
            f"got {value}"
        )
        raise argparse.ArgumentTypeError(str(error)) from error
    return value


def _jobs_arg(text: str) -> int:
    """Worker count for ``--jobs``: >= 1, or 0 for one per CPU core."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid job count {text!r}") from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"--jobs must be >= 0, got {value}")
    return value


def _store_max_mb_arg(text: str) -> float:
    """Megabyte cap for ``--store-max-mb``: a positive finite number."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid size {text!r}") from None
    if not (value > 0 and math.isfinite(value * 1024 * 1024)):  # rejects NaN too
        raise argparse.ArgumentTypeError(f"--store-max-mb must be > 0, got {value}")
    return value


def _store_for(args: argparse.Namespace) -> ResultStore | None:
    """Build the disk store the command asked for (None without ``--store``)."""
    max_mb = getattr(args, "store_max_mb", None)
    if max_mb is not None and not args.store:
        raise ConfigError("--store-max-mb only makes sense with --store")
    if not args.store:
        return None
    max_bytes = int(max_mb * 1024 * 1024) if max_mb is not None else None
    return ResultStore(DEFAULT_CACHE_DIR, max_bytes=max_bytes)


def _add_store_flags(parser: argparse.ArgumentParser) -> None:
    """The shared ``--store`` / ``--store-max-mb`` pair (table/sweep/frontier)."""
    parser.add_argument(
        "--store", action="store_true",
        help=f"persist/reuse results under {DEFAULT_CACHE_DIR}",
    )
    parser.add_argument(
        "--store-max-mb", type=_store_max_mb_arg, default=None, metavar="MB",
        help="cap the store; least-recently-used entries are evicted beyond "
        "this size (requires --store)",
    )


def _attack_kinds_for(args: argparse.Namespace) -> list[str]:
    """Resolve the positional kind / ``--name`` / ``--variant`` trio."""
    if args.attack and args.name:
        raise ConfigError("give either a positional attack kind or --name, not both")
    name = args.attack or args.name
    if name is None:
        raise ConfigError("attack needs a kind (positional or --name)")
    if name == ADVERSARIAL_PREFETCH_FAMILY:
        variants = (
            tuple(sorted(ADVERSARIAL_PREFETCH_VARIANTS))
            if args.variant == "both"
            else (args.variant,)
        )
        return [ADVERSARIAL_PREFETCH_VARIANTS[variant] for variant in variants]
    if args.variant != "both":
        raise ConfigError(
            f"--variant only applies to --name {ADVERSARIAL_PREFETCH_FAMILY}"
        )
    return [name]


def _probe_summary(probe: AttackProbe, defense_label: str) -> str:
    """One verdict line per grid cell, in AttackOutcome.summary's format."""
    return verdict_line(
        ATTACK_KINDS[probe.attack].name,
        probe.challenges,
        defense_label,
        probe.succeeded,
        probe.candidates,
        probe.secret,
    )


def _cmd_attack(args: argparse.Namespace) -> int:
    kinds = _attack_kinds_for(args)
    defenses = [d.strip() for d in args.defense.split(",") if d.strip()]
    for defense in defenses:
        if defense not in DEFENSES:
            raise ConfigError(
                f"unknown defense {defense!r}; choose from {DEFENSES}"
            )
    if not defenses:
        raise ConfigError("--defense needs at least one defense")
    # Option flags only override when set, so attack-class defaults (e.g.
    # adversarial-prefetch's cross_core=True) survive untouched.
    overrides: dict[str, object] = {}
    if args.c3:
        overrides["noise_c3"] = True
    if args.c4:
        overrides["noise_c4"] = True
    if args.spectre:
        overrides["victim_mode"] = "spectre"
    if args.cross_core:
        overrides["cross_core"] = True
    cells = [(kind, defense) for kind in kinds for defense in defenses]
    jobs = [
        AttackProbeJob.build(
            kind, SystemConfig(prefetcher=security_spec(defense)), **overrides
        )
        for kind, defense in cells
    ]
    probes = run_batch(jobs, workers=args.jobs, store=_store_for(args))
    for (_, defense), probe in zip(cells, probes):
        print(_probe_summary(probe, security_spec(defense).label))
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    def _split(text: str) -> tuple[str, ...]:
        return tuple(part.strip() for part in text.split(",") if part.strip())

    result = scenarios.run(
        victims=_split(args.victims),
        attacks=_split(args.attacks),
        defenses=_split(args.defenses),
        secrets=args.secrets,
        jobs=args.jobs,
        store=_store_for(args),
        reuse_snapshots=not args.no_reuse_snapshots,
    )
    print(scenarios.render(result))
    return 0


def _cmd_figure8(args: argparse.Namespace) -> int:
    panels = figure8.run(jobs=args.jobs, store=_store_for(args))
    print(figure8.render(panels))
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    module = {4: table4, 5: table5, 6: table6}[args.number]
    result = module.run(scale=args.scale, jobs=args.jobs, store=_store_for(args))
    print(module.render(result))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.workloads:
        names = args.workloads.split(",")
    else:
        names = {
            "spec2006": SPEC2006_NAMES,
            "spec2017": SPEC2017_NAMES,
            "all": workload_names(),
        }[args.suite]
    try:
        buffers = [int(b) for b in args.buffers.split(",")]
    except ValueError:
        raise ConfigError(
            f"--buffers must be comma-separated integers, got {args.buffers!r}"
        ) from None
    specs: list[tuple[str, PrefetcherSpec]] = []
    for kind in args.kinds.split(","):
        if kind not in PREFETCHER_KINDS:
            raise ConfigError(
                f"unknown prefetcher kind {kind!r}; "
                f"choose from {PREFETCHER_KINDS}"
            )
        if kind == "none":
            specs.append(("Baseline", PrefetcherSpec(kind="none")))
        elif "prefender" in kind:
            for count in buffers:
                specs.append(
                    (f"{kind}/{count}", table_spec(kind, count, with_rp=args.rp))
                )
        else:
            specs.append((kind, table_spec(kind)))
    rows, averages = improvement_rows(
        names, specs, args.scale, workers=args.jobs, store=_store_for(args)
    )
    rows.append(["Avg."] + averages)
    print(
        render_table(
            ["benchmark"] + [header for header, _ in specs],
            rows,
            title=f"Sweep: improvement vs baseline (scale {args.scale})",
        )
    )
    return 0


def _cmd_frontier(args: argparse.Namespace) -> int:
    grid = frontier.parse_grid(args.grid)
    store = _store_for(args)
    # One warm pool for the whole sweep: both of the frontier's batches
    # (attack probes, then perf runs) reuse the same forked workers.
    pool = WorkerPool(args.jobs) if args.jobs != 1 else None
    try:
        result = frontier.run(
            grid=grid,
            attacks=tuple(args.attacks.split(",")),
            workloads=tuple(args.workloads.split(",")),
            scale=args.scale,
            buffers=args.buffers,
            jobs=args.jobs,
            store=store,
            pool=pool,
        )
    finally:
        if pool is not None:
            pool.close()
    print(frontier.render(result))
    if store is not None:
        print(
            f"store: {store.hits} hit(s), {store.misses} miss(es), "
            f"{store.evictions} evicted, {len(store)} entries on disk"
        )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.sim import bench

    scale = args.scale
    repeats = args.repeats
    if args.quick:
        scale = min(scale, bench.QUICK_SCALE)
        repeats = 1
    report = bench.run_bench(scale=scale, repeats=repeats, workload=args.workload)
    path = bench.write_report(report, args.output)
    print(bench.render_report(report))
    print(f"wrote {path}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    import json as json_module
    from pathlib import Path

    from repro.analysis import (
        ANALYSIS_RULES,
        analyze_program,
        cache_distinguishers,
        leak_map,
        render_findings,
        trial_intervals,
    )
    from repro.errors import AnalysisError, AssemblyError
    from repro.isa.assembler import assemble

    if args.list_rules:
        for rule_id, (severity, description, fixit) in sorted(
            ANALYSIS_RULES.items()
        ):
            print(f"{rule_id}  [{severity}] {description}")
            print(f"          fix: {fixit}")
        return 0
    if not args.paths and not args.builtin and not args.certify:
        raise ConfigError(
            "analyze needs .asm paths, --builtin and/or --certify"
        )

    checked = 0
    error_count = 0
    records: list[dict] = []
    timing_records: list[dict] = []
    cache_records: list[dict] = []

    def interval_payload(interval) -> dict:
        return {"lo": interval.lo, "hi": interval.hi}

    def finding_payload(program, finding) -> dict:
        severity, _, fixit = ANALYSIS_RULES[finding.rule]
        line = None
        if finding.index is not None and finding.index < len(
            program.source_lines
        ):
            line = program.source_lines[finding.index]
        return {
            "rule": finding.rule,
            "severity": severity,
            "program": program.name,
            "index": finding.index,
            "line": line,
            "message": finding.message,
            "fixit": fixit,
        }

    def report(program, source: str, leak_maps=None, secrets=None) -> None:
        nonlocal checked, error_count
        checked += 1
        analysis = program.analysis
        if analysis is None:
            analysis = analyze_program(program)
        error_count += len(analysis.errors())
        intervals = None
        distinguisher = None
        if args.timing:
            bounds = analysis.timing.bounds
            timing_entry: dict = {
                "program": program.name,
                "source": source,
                "bounds": interval_payload(bounds),
            }
            if secrets and program.taint_sources:
                intervals = trial_intervals(program, secrets)
                timing_entry["intervals"] = {
                    str(secret): interval_payload(interval)
                    for secret, interval in intervals.items()
                }
                distinguisher = cache_distinguishers(
                    program, secrets=secrets
                )
                cache_records.append(
                    {
                        "program": program.name,
                        "source": source,
                        "secrets": list(distinguisher.secrets),
                        "distinguishable": distinguisher.distinguishable,
                        "witness": (
                            list(distinguisher.witness)
                            if distinguisher.witness is not None
                            else None
                        ),
                        "index": distinguisher.index,
                        "detail": distinguisher.detail,
                    }
                )
            timing_records.append(timing_entry)
        record: dict = {
            "program": program.name,
            "source": source,
            "instructions": len(program),
            "findings": [
                finding_payload(program, f) for f in analysis.findings
            ],
            "suppressed": len(analysis.suppressed),
        }
        if args.taint:
            taint = analysis.taint
            record["taint"] = {
                "sources": list(taint.sources),
                "secret_addressed": list(taint.secret_addressed()),
                "secret_valued": list(taint.secret_valued()),
                "secret_branches": list(taint.branches),
                "undeclared": list(taint.undeclared),
                "leaks": taint.leaks,
            }
            if leak_maps is not None:
                record["leak_map"] = {
                    str(secret): list(indices)
                    for secret, indices in leak_maps
                }
        records.append(record)
        if args.json:
            return
        for line in render_findings(program, analysis):
            print(line)
        if args.taint:
            taint = analysis.taint
            print(
                f"{program.name}: taint: {len(taint.sources)} source(s), "
                f"{len(taint.secret_addressed())} secret-addressed, "
                f"{len(taint.secret_valued())} secret-valued, "
                f"{len(taint.branches)} secret branch(es) -> "
                f"{'leaks' if taint.leaks else 'clean'}"
            )
            if leak_maps is not None:
                footprints = {indices for _, indices in leak_maps}
                print(
                    f"{program.name}: leak map: {len(leak_maps)} secret(s), "
                    f"{len(footprints)} distinct footprint(s)"
                )
                if len(leak_maps) <= 16:
                    for secret, indices in leak_maps:
                        print(
                            f"{program.name}:   secret {secret} -> "
                            f"{list(indices)}"
                        )
        elif args.verbose and not analysis.findings:
            print(
                f"{program.name}: clean ({len(program)} instruction(s), "
                f"{len(analysis.cfg.blocks)} block(s), "
                f"{len(analysis.suppressed)} suppressed)"
            )
        if args.timing:
            bounds = analysis.timing.bounds
            hi = "unbounded" if bounds.hi is None else bounds.hi
            print(f"{program.name}: timing: path bounds [{bounds.lo}, {hi}]")
            if intervals is not None:
                for secret, interval in intervals.items():
                    hi = (
                        "unresolved"
                        if interval.hi is None
                        else interval.hi
                    )
                    print(
                        f"{program.name}:   secret {secret} -> "
                        f"[{interval.lo}, {hi}]"
                    )
                distinct = {
                    (interval.lo, interval.hi)
                    for interval in intervals.values()
                }
                constant = len(distinct) == 1 and all(
                    interval.exact for interval in intervals.values()
                )
                print(
                    f"{program.name}: timing: "
                    + (
                        "constant-time across "
                        f"{len(intervals)} trial secret(s)"
                        if constant
                        else f"{len(distinct)} distinct cycle interval(s) "
                        f"over {len(intervals)} trial secret(s)"
                    )
                )
            if distinguisher is not None:
                print(
                    f"{program.name}: cache: "
                    + (
                        "DISTINGUISHABLE"
                        if distinguisher.distinguishable
                        else "indistinguishable"
                    )
                    + f" -- {distinguisher.detail}"
                )

    def guarded(build, label: str, leak_maps=None, secrets=None) -> None:
        nonlocal checked, error_count
        try:
            programs = build()
        except AnalysisError as error:
            checked += 1
            error_count += 1
            records.append({"program": label, "build_error": str(error)})
            if not args.json:
                print(f"{label}: {error}")
            return
        for program in programs:
            report(
                program,
                label,
                leak_maps=leak_maps if program.taint_sources else None,
                secrets=secrets,
            )

    if args.builtin:
        from repro.runner import ATTACK_KINDS as attack_kinds
        from repro.workloads import get_workload, workload_names
        from repro.workloads.crypto import get_victim, victim_names

        for name in workload_names():
            guarded(lambda n=name: [get_workload(n).program()], name)
        for kind in sorted(attack_kinds):
            guarded(
                lambda k=kind: attack_kinds[k]().build_programs(), kind
            )
        for victim in victim_names():
            descriptor = get_victim(victim)
            attack = attack_kinds["flush-reload"](
                victim=victim,
                num_indices=descriptor.num_indices,
                secret=0,
            )
            leak_maps = None
            if args.taint:
                try:
                    carriers = [
                        p
                        for p in attack.build_programs()
                        if p.taint_sources
                    ]
                except AnalysisError:
                    carriers = []
                if carriers:
                    leak_maps = [
                        (
                            secret,
                            leak_map(
                                carriers[0],
                                secret,
                                probe_base=attack.layout.probe_base,
                                scale=attack.options.scale,
                                num_indices=attack.options.num_indices,
                            ),
                        )
                        for secret in range(descriptor.secret_space)
                    ]
            guarded(
                lambda a=attack: a.build_programs(),
                f"victim {victim}",
                leak_maps=leak_maps,
                secrets=(
                    descriptor.trial_secrets(
                        min(8, descriptor.secret_space)
                    )
                    if args.timing
                    else None
                ),
            )

    for path in args.paths:
        source = Path(path).read_text(encoding="utf-8")
        try:
            program = assemble(source, name=Path(path).stem)
        except AssemblyError as error:
            checked += 1
            error_count += 1
            records.append({"program": str(path), "build_error": str(error)})
            if not args.json:
                print(f"{path}: {error}")
            continue
        report(
            program,
            str(path),
            secrets=(
                (0, 1, 2, 3)
                if args.timing and program.taint_sources
                else None
            ),
        )

    certify_section: dict = {"enabled": False}
    if args.certify:
        from repro.analysis import certify_grid

        report_grid = certify_grid()
        cells = []
        findings = []
        for cell in report_grid.cells:
            cells.append(
                {
                    "attack": cell.attack,
                    "coverage": cell.coverage,
                    "defense": cell.defense,
                    "detail": cell.detail,
                    "distinguishing": list(cell.distinguishing),
                    "feasible": cell.feasible,
                    "havoc": list(cell.havoc),
                    "secrets": list(cell.secrets),
                    "verdict": cell.verdict,
                    "victim": cell.victim,
                    "witness": (
                        list(cell.witness)
                        if cell.witness is not None
                        else None
                    ),
                }
            )
            rule = None
            if cell.verdict == "LEAKS":
                rule = "AN-ATTACK-FEASIBLE"
            elif cell.verdict == "DEFENDED":
                rule = "AN-DEFENSE-CERTIFIED"
            if rule is not None:
                severity, _, fixit = ANALYSIS_RULES[rule]
                findings.append(
                    {
                        "attack": cell.attack,
                        "defense": cell.defense,
                        "fixit": fixit,
                        "message": cell.detail,
                        "rule": rule,
                        "severity": severity,
                        "victim": cell.victim,
                        "witness": (
                            list(cell.witness)
                            if cell.witness is not None
                            else None
                        ),
                    }
                )
        certify_section = {
            "enabled": True,
            "victims": sorted({c.victim for c in report_grid.cells}),
            "attacks": sorted({c.attack for c in report_grid.cells}),
            "defenses": sorted({c.defense for c in report_grid.cells}),
            "matrix": cells,
            "findings": findings,
            "verdicts": {
                verdict: report_grid.count(verdict)
                for verdict in ("LEAKS", "DEFENDED", "UNKNOWN")
            },
        }
        if not args.json:
            for cell in report_grid.cells:
                print(
                    f"certify: {cell.victim} x {cell.attack} x "
                    f"{cell.defense} -> {cell.verdict} "
                    f"(coverage {cell.coverage}) -- {cell.detail}"
                )
            print(
                f"certify: {len(report_grid.cells)} cell(s): "
                f"{report_grid.count('LEAKS')} LEAKS, "
                f"{report_grid.count('DEFENDED')} DEFENDED, "
                f"{report_grid.count('UNKNOWN')} UNKNOWN"
            )

    if args.json:
        timing_section: dict = {"enabled": False}
        cache_section: dict = {"enabled": False}
        if args.timing:
            timing_section = {"enabled": True, "programs": timing_records}
            cache_section = {
                "enabled": True,
                "distinguishers": cache_records,
            }
        print(
            json_module.dumps(
                {
                    "schema": "analyze/v3",
                    "checked": checked,
                    "errors": error_count,
                    "programs": records,
                    "timing": timing_section,
                    "cache": cache_section,
                    "certify": certify_section,
                },
                indent=2,
            )
        )
    else:
        print(f"analyze: {checked} program(s), {error_count} error(s)")
    return 1 if error_count else 0


def _cmd_hwcost(args: argparse.Namespace) -> int:
    print(render_report(estimate(buffers=args.buffers)))
    return 0


def _cmd_ablation(args: argparse.Namespace) -> int:
    rows = related.run(jobs=args.jobs)
    print(related.render(rows))
    return 0 if all(row.matches_paper for row in rows) else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    commands = parser.add_subparsers(dest="command", required=True)

    attack = commands.add_parser(
        "attack", help="run an attack (or attack family) against defenses"
    )
    attack.add_argument(
        "attack", nargs="?", choices=sorted(ATTACK_KINDS),
        help="single attack kind (alternative to --name)",
    )
    attack.add_argument(
        "--name",
        choices=sorted(ATTACK_KINDS) + [ADVERSARIAL_PREFETCH_FAMILY],
        help="attack kind or family; "
        f"{ADVERSARIAL_PREFETCH_FAMILY!r} expands to every variant",
    )
    attack.add_argument(
        "--variant", choices=("a1", "a2", "both"), default="both",
        help=f"variant filter for --name {ADVERSARIAL_PREFETCH_FAMILY}",
    )
    attack.add_argument(
        "--defense", default="Base",
        help=f"comma-separated defenses from {DEFENSES}",
    )
    attack.add_argument("--c3", action="store_true", help="noisy instructions")
    attack.add_argument("--c4", action="store_true", help="noisy accesses")
    attack.add_argument("--spectre", action="store_true")
    attack.add_argument("--cross-core", action="store_true")
    attack.add_argument(
        "--jobs", type=_jobs_arg, default=1,
        help="parallel simulation processes (0 = all cores)",
    )
    _add_store_flags(attack)
    attack.set_defaults(handler=_cmd_attack)

    scenarios_cmd = commands.add_parser(
        "scenarios",
        help="crypto-victim leakage suite (success rate + mutual information)",
    )
    scenarios_cmd.add_argument(
        "--victims", default=",".join(scenarios.DEFAULT_VICTIMS),
        help="comma-separated victim names from the crypto registry "
        "(aes-ttable, rsa-sqmul, ecdsa-window, direct)",
    )
    scenarios_cmd.add_argument(
        "--attacks", default=",".join(scenarios.DEFAULT_ATTACKS),
        help=f"comma-separated attack kinds from {sorted(ATTACK_KINDS)}",
    )
    scenarios_cmd.add_argument(
        "--defenses", default=",".join(scenarios.DEFAULT_DEFENSES),
        help=f"comma-separated defenses from {DEFENSES}",
    )
    scenarios_cmd.add_argument(
        "--secrets", type=int, default=scenarios.DEFAULT_SECRETS,
        help="trial secrets per cell, evenly spaced over the victim's "
        "secret space",
    )
    scenarios_cmd.add_argument(
        "--jobs", type=_jobs_arg, default=1,
        help="parallel simulation processes (0 = all cores)",
    )
    scenarios_cmd.add_argument(
        "--no-reuse-snapshots", action="store_true",
        help="rebuild the system for every trial secret instead of "
        "replaying each cell off one warmed snapshot (slower; results "
        "are byte-identical either way)",
    )
    _add_store_flags(scenarios_cmd)
    scenarios_cmd.set_defaults(handler=_cmd_scenarios)

    fig8 = commands.add_parser("figure8", help="security matrix")
    fig8.add_argument(
        "--jobs", type=_jobs_arg, default=1,
        help="parallel simulation processes (0 = all cores)",
    )
    _add_store_flags(fig8)
    fig8.set_defaults(handler=_cmd_figure8)

    table = commands.add_parser("table", help="performance tables")
    table.add_argument("number", type=int, choices=(4, 5, 6))
    table.add_argument("--scale", type=_scale_arg, default=0.5)
    table.add_argument(
        "--jobs", type=_jobs_arg, default=1,
        help="parallel simulation processes (0 = all cores)",
    )
    _add_store_flags(table)
    table.set_defaults(handler=_cmd_table)

    sweep = commands.add_parser(
        "sweep", help="arbitrary workload x prefetcher improvement grid"
    )
    sweep.add_argument(
        "--suite", choices=("spec2006", "spec2017", "all"), default="spec2006"
    )
    sweep.add_argument(
        "--workloads", default="",
        help="comma-separated workload names (overrides --suite)",
    )
    sweep.add_argument(
        "--kinds", default="prefender",
        help=f"comma-separated prefetcher kinds from {PREFETCHER_KINDS}",
    )
    sweep.add_argument(
        "--buffers", default="32",
        help="comma-separated access-buffer counts for prefender kinds",
    )
    sweep.add_argument(
        "--rp", action="store_true", help="enable the Record Protector"
    )
    sweep.add_argument(
        "--scale", type=_scale_arg, default=0.5,
        help="workload scale factor (loop counts scale with it)",
    )
    sweep.add_argument(
        "--jobs", type=_jobs_arg, default=1,
        help="parallel simulation processes (0 = all cores)",
    )
    _add_store_flags(sweep)
    sweep.set_defaults(handler=_cmd_sweep)

    frontier_cmd = commands.add_parser(
        "frontier",
        help="defense-vs-performance Pareto frontier over PREFENDER knob grids",
    )
    frontier_cmd.add_argument(
        "--grid", default="",
        help="semicolon-separated knob=v1,v2 pairs over "
        f"{frontier.GRID_KNOBS} (unset knobs keep the default grid), e.g. "
        '"at_threshold=2,4,6;entries_per_buffer=4,8"',
    )
    frontier_cmd.add_argument(
        "--attacks", default=",".join(frontier.DEFAULT_ATTACKS),
        help="comma-separated attack kinds scored for the success-rate axis",
    )
    frontier_cmd.add_argument(
        "--workloads", default=",".join(frontier.DEFAULT_WORKLOADS),
        help="comma-separated workloads scored for the normalized-cycles axis",
    )
    frontier_cmd.add_argument(
        "--buffers", type=int, default=frontier.DEFAULT_BUFFERS,
        help="access-buffer count per grid configuration",
    )
    frontier_cmd.add_argument(
        "--scale", type=_scale_arg, default=0.2,
        help="workload scale factor (loop counts scale with it)",
    )
    frontier_cmd.add_argument(
        "--jobs", type=_jobs_arg, default=1,
        help="persistent pool workers shared by the sweep's batches "
        "(0 = all cores)",
    )
    _add_store_flags(frontier_cmd)
    frontier_cmd.set_defaults(handler=_cmd_frontier)

    bench_cmd = commands.add_parser(
        "bench",
        help="simulator throughput benchmark (emits BENCH_sim_throughput.json)",
    )
    bench_cmd.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: one pass at a reduced workload scale",
    )
    bench_cmd.add_argument(
        "--scale", type=_scale_arg, default=0.5,
        help="single-core workload scale factor (default 0.5)",
    )
    bench_cmd.add_argument(
        "--repeats", type=int, default=3,
        help="timed passes per scenario; the best one is reported",
    )
    bench_cmd.add_argument(
        "--workload", default="462.libquantum",
        help="workload for the single-core scenario",
    )
    bench_cmd.add_argument(
        "--output", default="BENCH_sim_throughput.json",
        help="report path (default: ./BENCH_sim_throughput.json)",
    )
    bench_cmd.set_defaults(handler=_cmd_bench)

    analyze = commands.add_parser(
        "analyze",
        help="static analysis (CFG + dataflow) of .asm files and built-ins",
    )
    analyze.add_argument(
        "paths", nargs="*", help="assembly source files to analyze"
    )
    analyze.add_argument(
        "--builtin", action="store_true",
        help="analyze every built-in workload, attack and crypto victim",
    )
    analyze.add_argument(
        "--verbose", action="store_true",
        help="also print a line for each clean program",
    )
    analyze.add_argument(
        "--list-rules", action="store_true",
        help="print the analysis rule catalog and exit",
    )
    analyze.add_argument(
        "--taint", action="store_true",
        help="report secret-taint classification and, for builtin crypto "
        "victims, the static per-secret leak map",
    )
    analyze.add_argument(
        "--timing", action="store_true",
        help="report abstract cycle bounds and, for secret-bearing "
        "programs, the per-secret timing map and cache-distinguisher "
        "verdict",
    )
    analyze.add_argument(
        "--certify", action="store_true",
        help="certify the attack x victim x defense grid: two-core "
        "abstract interpretation yielding LEAKS / DEFENDED / UNKNOWN "
        "per cell",
    )
    analyze.add_argument(
        "--json", action="store_true",
        help="emit one machine-readable JSON document instead of text",
    )
    analyze.set_defaults(handler=_cmd_analyze)

    hwcost = commands.add_parser("hwcost", help="Section V-E report")
    hwcost.add_argument("--buffers", type=int, default=32)
    hwcost.set_defaults(handler=_cmd_hwcost)

    ablation = commands.add_parser("ablation", help="Table II ablation")
    ablation.add_argument("--jobs", type=_jobs_arg, default=1)
    ablation.set_defaults(handler=_cmd_ablation)

    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ConfigError as error:
        parser.error(str(error))


if __name__ == "__main__":
    sys.exit(main())
