"""Timing CPU model: cores (optionally speculative) and the system."""

from repro.cpu.core import Core, CoreConfig
from repro.cpu.system import RunResult, System

__all__ = ["Core", "CoreConfig", "System", "RunResult"]
