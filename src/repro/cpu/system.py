"""Multi-core system: min-local-time scheduling plus run statistics.

Cores advance independent local clocks; the scheduler always steps the core
with the smallest local time, which keeps cross-core cache interactions in
causal order (a discrete-event style common to multi-core timing models).

Scheduling is specialised by active-core count: a single core runs a tight
``step()`` loop with no arbitration at all, two cores (every cross-core
attack) use a direct comparison, and larger systems use a binary heap keyed
on ``(local_time, core_index)``.  All three orders are identical to the
seed implementation's per-step ``min(active, key=time)`` scan — ties break
toward the lower core index — which ``tests/test_golden_parity.py`` pins.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.cpu.core import Core, CoreConfig
from repro.errors import SimulationError, SnapshotError
from repro.isa.program import Program
from repro.mem.hierarchy import MemoryHierarchy
from repro.snapshot import SNAPSHOT_VERSION, require_keys


@dataclass
class RunResult:
    """Everything the experiments need from one simulation run."""

    cycles: int
    instructions: int
    core_cycles: list[int]
    core_instructions: list[int]
    l1d_stats: list[dict[str, int | float]]
    l2_stats: dict[str, int | float]
    prefetch_counts: list[dict[str, int]]
    prefetch_timelines: list[list[tuple[int, str, int]]]
    samples: list[tuple[int, object]] = field(default_factory=list)
    # Per-core PREFENDER-internal counters (allocation_failures, protection
    # lifecycle); empty dicts for cores without a PREFENDER.
    defense_stats: list[dict[str, int]] = field(default_factory=list)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def total_prefetches(self, core_id: int = 0) -> int:
        return sum(self.prefetch_counts[core_id].values())


class System:
    """Programs + cores + hierarchy, ready to run."""

    def __init__(
        self,
        programs: list[Program],
        hierarchy: MemoryHierarchy,
        core_config: CoreConfig | None = None,
    ) -> None:
        if len(programs) != hierarchy.num_cores:
            raise SimulationError(
                f"{len(programs)} program(s) for {hierarchy.num_cores} core(s)"
            )
        self.hierarchy = hierarchy
        for program in programs:
            program.finalize()
            hierarchy.memory.load_program_data(program)
        self.cores = [
            Core(core_id, program, hierarchy, core_config)
            for core_id, program in enumerate(programs)
        ]

    def run(
        self,
        max_steps: int = 20_000_000,
        sample_interval: int | None = None,
        sample_fn: Callable[["System"], object] | None = None,
    ) -> RunResult:
        """Run all cores to halt.

        Args:
            max_steps: guard against runaway programs (spin deadlocks).
            sample_interval: when set, record ``sample_fn(self)`` every this
                many scheduler steps (Fig. 12 uses this to sample protected
                buffer counts over execution progress).
            sample_fn: sampling callback; defaults to core 0's protected
                buffer count when its prefetcher is a PREFENDER.

        Raises:
            SimulationError: when ``max_steps`` is exhausted first.
        """
        if sample_fn is None:
            sample_fn = _default_sample
        samples: list[tuple[int, object]] = []
        if sample_interval:
            # Sampling cadence counts scheduler steps, and countdown-loop
            # fusion collapses many steps into one; interpret loops fully so
            # a sampled run sees the same step sequence as the seed engine.
            for core in self.cores:
                core._fuse_loops = False
        active = [core for core in self.cores if not core.halted]
        steps = 0
        while active:
            if steps >= max_steps:
                # Only a run with work left is a runaway; when the final
                # step halted the last core the budget was exactly enough.
                raise SimulationError(
                    f"exceeded {max_steps} scheduler steps; "
                    "a program probably fails to halt"
                )
            count = len(active)
            if count == 1:
                steps = self._run_single(
                    active[0], steps, max_steps, sample_interval, sample_fn, samples
                )
            elif count == 2:
                steps = self._run_pair(
                    active[0], active[1], steps, max_steps, sample_interval,
                    sample_fn, samples,
                )
            else:
                steps = self._run_heap(
                    active, steps, max_steps, sample_interval, sample_fn, samples
                )
            active = [core for core in active if not core.halted]
        return self._result(samples)

    # -- snapshot/restore ------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Versioned whole-system snapshot: every core plus the hierarchy.

        The result is a plain nested dict of immutable leaves (ints, bools,
        tuples) safe to hold across any number of :meth:`restore` calls.
        """
        return {
            "version": SNAPSHOT_VERSION,
            "cores": tuple(core.snapshot() for core in self.cores),
            "hierarchy": self.hierarchy.snapshot(),
        }

    def restore(self, data: dict[str, Any]) -> None:
        """Inverse of :meth:`snapshot` on a same-shape system.

        Raises:
            SnapshotError: on a version mismatch, an unknown/missing field
                anywhere in the tree, or a core-count mismatch.
        """
        require_keys(data, ("version", "cores", "hierarchy"), "System")
        if data["version"] != SNAPSHOT_VERSION:
            raise SnapshotError(
                f"snapshot version {data['version']!r} does not match "
                f"engine version {SNAPSHOT_VERSION}"
            )
        if len(data["cores"]) != len(self.cores):
            raise SnapshotError(
                f"snapshot has {len(data['cores'])} core(s), "
                f"system has {len(self.cores)}"
            )
        for core, snap in zip(self.cores, data["cores"]):
            core.restore(snap)
        self.hierarchy.restore(data["hierarchy"])

    def run_steps(self, steps: int) -> int:
        """Advance exactly ``steps`` scheduler steps (or until all halt).

        Scheduling order is identical to :meth:`run`: the non-halted core
        with the smallest local time steps next, ties to the lower core
        index.  Returns the number of steps actually taken — fewer than
        ``steps`` only when every core halted first.  The parity harness
        uses this to stop a run at an arbitrary point, snapshot, and
        compare resumed executions state-for-state.
        """
        taken = 0
        active = [core for core in self.cores if not core.halted]
        while active and taken < steps:
            core = active[0]
            for candidate in active[1:]:
                # Strict < keeps the earlier (lower-index) core on ties.
                if candidate.time < core.time:
                    core = candidate
            core.step()
            taken += 1
            if core.halted:
                active = [c for c in active if not c.halted]
        return taken

    def _overrun(self, max_steps: int) -> SimulationError:
        return SimulationError(
            f"exceeded {max_steps} scheduler steps; "
            "a program probably fails to halt"
        )

    def _run_single(
        self,
        core: Core,
        steps: int,
        max_steps: int,
        sample_interval: int | None,
        sample_fn: Callable[["System"], object],
        samples: list[tuple[int, object]],
    ) -> int:
        """Tight loop for one active core; returns the updated step count."""
        step = core.step
        if not sample_interval:
            while True:
                step()
                steps += 1
                if core.halted:
                    return steps
                if steps >= max_steps:
                    raise self._overrun(max_steps)
        while True:
            step()
            steps += 1
            if steps % sample_interval == 0:
                samples.append((steps, sample_fn(self)))
            if core.halted:
                return steps
            if steps >= max_steps:
                raise self._overrun(max_steps)

    def _run_pair(
        self,
        first: Core,
        second: Core,
        steps: int,
        max_steps: int,
        sample_interval: int | None,
        sample_fn: Callable[["System"], object],
        samples: list[tuple[int, object]],
    ) -> int:
        """Two active cores: direct min-time comparison, until one halts.

        ``<=`` keeps the seed scheduler's tie-break (lower core index).
        """
        while True:
            core = first if first.time <= second.time else second
            core.step()
            steps += 1
            if sample_interval and steps % sample_interval == 0:
                samples.append((steps, sample_fn(self)))
            if core.halted:
                return steps
            if steps >= max_steps:
                raise self._overrun(max_steps)

    def _run_heap(
        self,
        active: list[Core],
        steps: int,
        max_steps: int,
        sample_interval: int | None,
        sample_fn: Callable[["System"], object],
        samples: list[tuple[int, object]],
    ) -> int:
        """Three or more active cores: heap keyed on (time, position).

        Stepping a core only ever advances that core's own clock, so
        re-pushing just the stepped core preserves the full min-scan order.
        Returns as soon as any core halts; the caller re-dispatches.
        """
        heap = [(core.time, position, core) for position, core in enumerate(active)]
        heapq.heapify(heap)
        heapreplace = heapq.heapreplace
        while True:
            _, position, core = heap[0]
            core.step()
            steps += 1
            if sample_interval and steps % sample_interval == 0:
                samples.append((steps, sample_fn(self)))
            if core.halted:
                return steps
            if steps >= max_steps:
                raise self._overrun(max_steps)
            heapreplace(heap, (core.time, position, core))

    def _result(self, samples: list[tuple[int, object]]) -> RunResult:
        hierarchy = self.hierarchy
        return RunResult(
            cycles=max(core.time for core in self.cores),
            instructions=sum(
                core.stats.instructions_retired for core in self.cores
            ),
            core_cycles=[core.time for core in self.cores],
            core_instructions=[
                core.stats.instructions_retired for core in self.cores
            ],
            l1d_stats=[l1d.stats.as_dict() for l1d in hierarchy.l1ds],
            l2_stats=hierarchy.l2.stats.as_dict(),
            prefetch_counts=[
                hierarchy.prefetch_counts(core_id)
                for core_id in range(hierarchy.num_cores)
            ],
            prefetch_timelines=[
                hierarchy.prefetch_timeline(core_id)
                for core_id in range(hierarchy.num_cores)
            ],
            samples=samples,
            defense_stats=[
                _defense_stats(hierarchy.prefetcher_for(core_id))
                for core_id in range(hierarchy.num_cores)
            ],
        )


def _defense_stats(prefetcher: object) -> dict[str, int]:
    """PREFENDER-internal counters for one core's prefetcher (or {})."""
    stats = getattr(prefetcher, "defense_stats", None)
    if callable(stats):
        return dict(stats())
    # CompositePrefetcher wraps PREFENDER as `primary`.
    primary = getattr(prefetcher, "primary", None)
    stats = getattr(primary, "defense_stats", None)
    if callable(stats):
        return dict(stats())
    return {}


def _default_sample(system: System) -> int:
    prefetcher = system.hierarchy.prefetcher_for(0)
    count = getattr(prefetcher, "protected_buffer_count", None)
    if callable(count):
        return int(count())
    # CompositePrefetcher wraps PREFENDER as `primary`.
    primary = getattr(prefetcher, "primary", None)
    count = getattr(primary, "protected_buffer_count", None)
    if callable(count):
        return int(count())
    return 0
