"""An in-order timing core with optional speculative execution.

Every instruction executes functionally and advances the core's local clock
by its cost; loads/stores pay the memory hierarchy's latency.  The core
maintains the PREFENDER calculation buffer (paper Table III) at execute
stage and threads each load's base-register *scale* into the hierarchy so
the Scale Tracker can see it.

Execution dispatches through the program's pre-decoded tuples
(:mod:`repro.isa.decode`, built once at ``Program.finalize()``): ``step``
indexes a handler table with the tuple's kind integer instead of walking an
``if op == "load"`` string chain, and each handler applies both the
architectural semantics and the matching Table III calculation-buffer rule
in straight-line code.  ``tests/test_golden_parity.py`` pins this dispatch
engine cycle- and counter-exact against the pre-overhaul interpreter.

Speculative execution (``CoreConfig.speculative_execution``) models the
Spectre-v1 substrate: conditional branches are predicted by a 2-bit counter
table and resolve ``resolve_delay`` cycles after issue.  On a misprediction
the core *follows the predicted (wrong) path*: transient loads access the
cache hierarchy for real (this is the leak), transient stores are buffered
and dropped, and at resolve time the architectural state rolls back while
cache state — and the calculation buffer, which is microarchitectural —
persists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.calc import CalculationBuffer
from repro.errors import ExecutionError
from repro.isa.decode import (
    K_ADD_RI,
    K_ADD_RR,
    K_AND_RI,
    K_AND_RR,
    K_BRANCH,
    K_CLFLUSH,
    K_FENCE,
    K_HALT,
    K_JMP,
    K_LI,
    K_LOAD,
    K_MOV,
    K_MUL_RI,
    K_MUL_RR,
    K_NOP,
    K_OR_RI,
    K_OR_RR,
    K_PREFETCH,
    K_RDCYCLE,
    K_SLL_RI,
    K_SLL_RR,
    K_SRL_RI,
    K_SRL_RR,
    K_STORE,
    K_SUB_RR,
    K_XOR_RI,
    K_XOR_RR,
    NUM_KINDS,
)
from repro.isa.program import Program
from repro.isa.registers import SIGN_BIT, WORD_MASK, RegisterFile
from repro.mem.hierarchy import MemoryHierarchy
from repro.snapshot import require_keys

_TWO_POW_64 = 1 << 64


@dataclass(frozen=True)
class CoreConfig:
    """Per-core timing and speculation parameters."""

    base_cost: int = 1
    mul_cost: int = 3
    branch_cost: int = 1
    # Cycles of load latency an out-of-order window can hide (ROB depth x
    # issue rate).  0 = fully blocking in-order core.  The exposed stall is
    # ``max(base_cost, latency - load_hide_cycles)``: L2 hits vanish, DRAM
    # misses keep a tail — the standard analytical OoO stall model.  Loads
    # that immediately follow a serialising instruction (rdcycle/fence)
    # always pay the full latency — a timed load cannot be overlapped,
    # which is exactly why attackers serialise their measurements.
    load_hide_cycles: int = 0
    # Collapse pure `sub rX,rX,1; bne rX,zero,back` countdown loops into a
    # single scheduler step with the closed-form state delta (cycle- and
    # counter-exact; tests/test_golden_parity.py and the fuse-on/off tests
    # in tests/test_snapshot_parity.py pin the equivalence).  Busy-wait
    # delay loops dominate attack instruction counts, so interpreting them
    # iteration by iteration dominated scenario wall-time.
    fuse_countdown_loops: bool = True
    speculative_execution: bool = False
    resolve_delay: int = 60
    branch_miss_penalty: int = 8
    predictor_entries: int = 512
    spec_window: int = 48


@dataclass
class CoreStats:
    """Execution counters for one core."""

    instructions_retired: int = 0
    transient_executed: int = 0
    loads: int = 0
    stores: int = 0
    flushes: int = 0
    software_prefetches: int = 0
    branches: int = 0
    mispredictions: int = 0
    squashes: int = 0
    load_latency_total: int = 0


_CORE_STATS_FIELDS = tuple(CoreStats.__dataclass_fields__)
_CORE_SNAP_KEYS = (
    "regs",
    "tracks",
    "pc_index",
    "time",
    "halted",
    "stats",
    "speculating",
    "checkpoint_regs",
    "correct_index",
    "resolve_time",
    "spec_count",
    "store_buffer",
    "predictor",
    "serialized",
)


class Core:
    """One in-order core bound to a program and a memory hierarchy."""

    def __init__(
        self,
        core_id: int,
        program: Program,
        hierarchy: MemoryHierarchy,
        config: CoreConfig | None = None,
        start_time: int = 0,
    ) -> None:
        if not program.finalized:
            program.finalize()
        self.core_id = core_id
        self.program = program
        self.hierarchy = hierarchy
        self.config = config or CoreConfig()
        self.regs = RegisterFile()
        self.calc = CalculationBuffer(scale_cap=hierarchy.amap.page_size)
        self.pc_index = 0
        self.time = start_time
        self.halted = False
        self.stats = CoreStats()
        # Speculation state (one outstanding checkpoint).
        self._speculating = False
        self._checkpoint_regs: list[int] | None = None
        self._correct_index = 0
        self._resolve_time = 0
        self._spec_count = 0
        self._store_buffer: list[tuple[int, int]] = []
        self._predictor: dict[int, int] = {}
        self._serialized = False
        # Hot-loop caches: the decoded program, direct views into the
        # register/track arrays (both mutated in place, so the references
        # stay valid across restore/reset), and flattened config scalars.
        self._decoded = program.decoded
        self._program_len = len(program.decoded)
        self._values = self.regs._values
        self._tracks = self.calc._tracks
        self._scale_cap = self.calc.scale_cap
        config = self.config
        self._base_cost = config.base_cost
        self._mul_cost = config.mul_cost
        self._branch_cost = config.branch_cost
        self._load_hide = config.load_hide_cycles
        self._fuse_loops = config.fuse_countdown_loops
        self._spec_enabled = config.speculative_execution
        self._resolve_delay = config.resolve_delay
        self._predictor_entries = config.predictor_entries
        self._spec_window = config.spec_window
        self._dispatch = self._build_dispatch()

    def _build_dispatch(self) -> list[Any]:
        """Handler table indexed by the decode-kind integers (``Any`` holes
        for kinds without a handler: decode emits every kind listed here)."""
        table: list[Any] = [None] * NUM_KINDS
        table[K_LOAD] = self._op_load
        table[K_STORE] = self._op_store
        table[K_LI] = self._op_li
        table[K_MOV] = self._op_mov
        table[K_ADD_RR] = self._op_add_rr
        table[K_SUB_RR] = self._op_sub_rr
        table[K_ADD_RI] = self._op_add_ri
        table[K_MUL_RR] = self._op_mul_rr
        table[K_MUL_RI] = self._op_mul_ri
        table[K_SLL_RR] = self._op_sll_rr
        table[K_SRL_RR] = self._op_srl_rr
        table[K_SLL_RI] = self._op_sll_ri
        table[K_SRL_RI] = self._op_srl_ri
        table[K_AND_RR] = self._op_and_rr
        table[K_OR_RR] = self._op_or_rr
        table[K_XOR_RR] = self._op_xor_rr
        table[K_AND_RI] = self._op_and_ri
        table[K_OR_RI] = self._op_or_ri
        table[K_XOR_RI] = self._op_xor_ri
        table[K_BRANCH] = self._op_branch
        table[K_JMP] = self._op_jmp
        table[K_RDCYCLE] = self._op_rdcycle
        table[K_CLFLUSH] = self._op_clflush
        table[K_PREFETCH] = self._op_prefetch
        table[K_NOP] = self._op_nop
        table[K_FENCE] = self._op_fence
        table[K_HALT] = self._op_halt
        return table

    # -- snapshot/restore ---------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """All mutable core state as flat tuples.

        The program, decode cache and dispatch table are immutable per core
        and stay out; registers and calculation tracks are copied because
        the hot loop aliases them (``_values``/``_tracks``).
        """
        return {
            "regs": tuple(self._values),
            "tracks": tuple((track.fva, track.sc) for track in self._tracks),
            "pc_index": self.pc_index,
            "time": self.time,
            "halted": self.halted,
            "stats": tuple(
                getattr(self.stats, name) for name in _CORE_STATS_FIELDS
            ),
            "speculating": self._speculating,
            "checkpoint_regs": (
                tuple(self._checkpoint_regs)
                if self._checkpoint_regs is not None
                else None
            ),
            "correct_index": self._correct_index,
            "resolve_time": self._resolve_time,
            "spec_count": self._spec_count,
            "store_buffer": tuple(self._store_buffer),
            "predictor": tuple(self._predictor.items()),
            "serialized": self._serialized,
        }

    def restore(self, data: dict[str, Any]) -> None:
        """Inverse of :meth:`snapshot`.

        Registers and tracks are written in place so the ``_values`` /
        ``_tracks`` aliases cached at construction stay valid.
        """
        require_keys(data, _CORE_SNAP_KEYS, "Core")
        self._values[:] = data["regs"]
        for track, (fva, sc) in zip(self._tracks, data["tracks"]):
            track.fva = fva
            track.sc = sc
        self.pc_index = data["pc_index"]
        self.time = data["time"]
        self.halted = data["halted"]
        for name, value in zip(_CORE_STATS_FIELDS, data["stats"]):
            setattr(self.stats, name, value)
        self._speculating = data["speculating"]
        checkpoint = data["checkpoint_regs"]
        self._checkpoint_regs = (
            list(checkpoint) if checkpoint is not None else None
        )
        self._correct_index = data["correct_index"]
        self._resolve_time = data["resolve_time"]
        self._spec_count = data["spec_count"]
        self._store_buffer[:] = data["store_buffer"]
        # Predictor insertion order is its FIFO eviction order; the items
        # tuple preserves it.
        self._predictor.clear()
        self._predictor.update(data["predictor"])
        self._serialized = data["serialized"]

    # -- helpers -----------------------------------------------------------------

    @property
    def speculating(self) -> bool:
        return self._speculating

    def pc_addr(self) -> int:
        """Current instruction address."""
        return self.program.pc_of_index(self.pc_index)

    def _squash(self) -> None:
        """Roll back a mispredicted path; cache/calc effects persist."""
        assert self._checkpoint_regs is not None
        self.regs.restore(self._checkpoint_regs)
        self.pc_index = self._correct_index
        self.time = max(self.time, self._resolve_time) + self.config.branch_miss_penalty
        self._speculating = False
        self._checkpoint_regs = None
        self._store_buffer.clear()
        self.stats.squashes += 1

    def _stall_to_resolve(self) -> None:
        self.time = max(self.time, self._resolve_time)

    def _retire(self) -> None:
        """Advance past the current instruction for one base cost."""
        self.time += self._base_cost
        self.pc_index += 1
        if self._speculating:
            self.stats.transient_executed += 1
        else:
            self.stats.instructions_retired += 1

    def _clamp_sc(self, sc: int) -> int:
        """The calculation buffer's scale clamp: abs, >= 1, <= page size."""
        if sc < 0:
            sc = -sc
        if sc < 1:
            return 1
        cap = self._scale_cap
        return sc if sc <= cap else cap

    def _charged_latency(self, latency: int) -> int:
        """Stall cycles the pipeline pays for a load of ``latency`` cycles.

        An OoO window hides up to ``load_hide_cycles`` of any load's
        latency; serialised (timed) loads always pay everything.
        """
        if self._serialized:
            self._serialized = False
            return latency
        hide = self._load_hide
        if hide <= 0:
            return latency
        charged = latency - hide
        base = self._base_cost
        return charged if charged > base else base

    # -- main step ------------------------------------------------------------------

    def step(self) -> None:
        """Execute one instruction (or resolve a pending squash)."""
        if self.halted:
            return
        if self._speculating and self.time >= self._resolve_time:
            self._squash()
            return
        index = self.pc_index
        if 0 <= index < self._program_len:
            d = self._decoded[index]
            self._dispatch[d[0]](d)
            if self._speculating:
                self._spec_count += 1
                if self._spec_count >= self._spec_window:
                    self._stall_to_resolve()
            return
        if self._speculating:
            self._stall_to_resolve()
            return
        raise ExecutionError(
            f"core {self.core_id}: pc {self.pc_index} outside program "
            f"{self.program.name!r}"
        )

    # -- memory instructions -----------------------------------------------------------

    def _op_load(self, d: tuple[Any, ...]) -> None:
        _, rd, rs0, imm, pc = d
        values = self._values
        addr = (values[rs0] + imm) & WORD_MASK
        stats = self.stats
        track = self._tracks[rd]
        if self._speculating:
            # Store-to-load forwarding from the speculative store buffer.
            for buffered_addr, buffered_value in reversed(self._store_buffer):
                if buffered_addr == addr:
                    if rd:
                        values[rd] = buffered_value & WORD_MASK
                    track.fva = None
                    track.sc = 1
                    stats.loads += 1
                    stats.load_latency_total += self._base_cost
                    self.time += self._base_cost
                    self.pc_index += 1
                    stats.transient_executed += 1
                    return
        outcome = self.hierarchy.load(
            self.core_id,
            addr,
            self.time,
            pc,
            self._tracks[rs0].sc,
            self._speculating,
        )
        if rd:
            values[rd] = outcome.value & WORD_MASK
        track.fva = None
        track.sc = 1
        latency = outcome.latency
        stats.loads += 1
        stats.load_latency_total += latency
        self.time += self._charged_latency(latency)
        self.pc_index += 1
        if self._speculating:
            stats.transient_executed += 1
        else:
            stats.instructions_retired += 1

    def _op_store(self, d: tuple[Any, ...]) -> None:
        _, rs0, rs1, imm, pc = d
        values = self._values
        addr = (values[rs1] + imm) & WORD_MASK
        if self._speculating:
            self._store_buffer.append((addr, values[rs0]))
            self._retire()
            return
        latency = self.hierarchy.store(
            self.core_id, addr, values[rs0], self.time, pc
        )
        self.stats.stores += 1
        self.time += latency
        self.pc_index += 1
        self.stats.instructions_retired += 1

    def _op_clflush(self, d: tuple[Any, ...]) -> None:
        if self._speculating:
            # Flushes are ordered like stores: they do not execute transiently.
            self._retire()
            return
        _, rs0, imm = d
        addr = (self._values[rs0] + imm) & WORD_MASK
        latency = self.hierarchy.flush(self.core_id, addr, self.time)
        self.stats.flushes += 1
        self.time += latency
        self.pc_index += 1
        self.stats.instructions_retired += 1

    def _op_prefetch(self, d: tuple[Any, ...]) -> None:
        if self._speculating:
            # Ordered like stores/flushes: not executed transiently.
            self._retire()
            return
        _, rs0, imm, write = d
        addr = (self._values[rs0] + imm) & WORD_MASK
        outcome = self.hierarchy.software_prefetch(
            self.core_id, addr, self.time, write
        )
        self.stats.software_prefetches += 1
        # No destination register: the only architectural effect is time —
        # which is the whole point of a prefetch-latency probe.
        self.time += self._charged_latency(outcome.latency)
        self.pc_index += 1
        self.stats.instructions_retired += 1

    # -- register moves ----------------------------------------------------------------

    def _op_li(self, d: tuple[Any, ...]) -> None:
        _, rd, imm = d
        if rd:
            self._values[rd] = imm
        track = self._tracks[rd]
        track.fva = imm
        track.sc = 1
        self._retire()

    def _op_mov(self, d: tuple[Any, ...]) -> None:
        _, rd, rs0 = d
        if rd:
            self._values[rd] = self._values[rs0]
        src = self._tracks[rs0]
        dst = self._tracks[rd]
        if src.fva is None:
            dst.fva = None
            dst.sc = src.sc
        else:
            dst.fva = src.fva
            dst.sc = 1
        self._retire()

    def _op_rdcycle(self, d: tuple[Any, ...]) -> None:
        rd = d[1]
        if rd:
            self._values[rd] = self.time & WORD_MASK
        track = self._tracks[rd]  # unknown variable under Table III
        track.fva = None
        track.sc = 1
        self._serialized = True
        self._retire()

    # -- ALU: add/sub (Table III "+/-" rules) -------------------------------------------

    def _op_add_rr(self, d: tuple[Any, ...]) -> None:
        _, rd, rs0, rs1 = d
        values = self._values
        if rd:
            values[rd] = (values[rs0] + values[rs1]) & WORD_MASK
        tracks = self._tracks
        src, other, dst = tracks[rs0], tracks[rs1], tracks[rd]
        sfva, ofva = src.fva, other.fva
        if sfva is not None and ofva is not None:
            dst.fva = (sfva + ofva) & WORD_MASK
            dst.sc = 1
        elif sfva is None and ofva is not None:
            dst.fva = None
            dst.sc = src.sc
        elif sfva is not None:
            dst.fva = None
            dst.sc = other.sc
        else:
            dst.fva = None
            ssc, osc = src.sc, other.sc
            dst.sc = ssc if ssc < osc else osc
        self._retire()

    def _op_sub_rr(self, d: tuple[Any, ...]) -> None:
        _, rd, rs0, rs1 = d
        values = self._values
        if rd:
            values[rd] = (values[rs0] - values[rs1]) & WORD_MASK
        tracks = self._tracks
        src, other, dst = tracks[rs0], tracks[rs1], tracks[rd]
        sfva, ofva = src.fva, other.fva
        if sfva is not None and ofva is not None:
            dst.fva = (sfva - ofva) & WORD_MASK
            dst.sc = 1
        elif sfva is None and ofva is not None:
            dst.fva = None
            dst.sc = src.sc
        elif sfva is not None:
            dst.fva = None
            dst.sc = other.sc
        else:
            dst.fva = None
            ssc, osc = src.sc, other.sc
            dst.sc = ssc if ssc < osc else osc
        self._retire()

    def _op_add_ri(self, d: tuple[Any, ...]) -> None:
        # Covers ``sub rd, rs, imm`` too: decode negates the immediate.
        _, rd, rs0, imm = d
        values = self._values
        if rd:
            values[rd] = (values[rs0] + imm) & WORD_MASK
        tracks = self._tracks
        src, dst = tracks[rs0], tracks[rd]
        sfva = src.fva
        if sfva is None:
            # Adding an immediate offset does not change the scale.
            dst.fva = None
            dst.sc = src.sc
        else:
            dst.fva = (sfva + imm) & WORD_MASK
            dst.sc = 1
        self._retire()

    # -- ALU: mul/shift (Table III "x" rules) -------------------------------------------

    def _op_mul_rr(self, d: tuple[Any, ...]) -> None:
        _, rd, rs0, rs1 = d
        values = self._values
        if rd:
            values[rd] = (values[rs0] * values[rs1]) & WORD_MASK
        tracks = self._tracks
        src, other, dst = tracks[rs0], tracks[rs1], tracks[rd]
        sfva, ofva = src.fva, other.fva
        if sfva is not None and ofva is not None:
            dst.fva = (sfva * ofva) & WORD_MASK
            dst.sc = 1
        elif sfva is None and ofva is not None:
            dst.fva = None
            dst.sc = self._clamp_sc(src.sc * ofva)
        elif sfva is not None:
            dst.fva = None
            dst.sc = self._clamp_sc(sfva * other.sc)
        else:
            dst.fva = None
            dst.sc = self._clamp_sc(src.sc * other.sc)
        self.time += self._mul_cost
        self.pc_index += 1
        if self._speculating:
            self.stats.transient_executed += 1
        else:
            self.stats.instructions_retired += 1

    def _op_mul_ri(self, d: tuple[Any, ...]) -> None:
        _, rd, rs0, imm = d
        values = self._values
        if rd:
            values[rd] = (values[rs0] * imm) & WORD_MASK
        tracks = self._tracks
        src, dst = tracks[rs0], tracks[rd]
        sfva = src.fva
        if sfva is None:
            dst.fva = None
            dst.sc = self._clamp_sc(src.sc * imm)
        else:
            dst.fva = (sfva * imm) & WORD_MASK
            dst.sc = 1
        self.time += self._mul_cost
        self.pc_index += 1
        if self._speculating:
            self.stats.transient_executed += 1
        else:
            self.stats.instructions_retired += 1

    def _op_sll_rr(self, d: tuple[Any, ...]) -> None:
        _, rd, rs0, rs1 = d
        values = self._values
        shift = values[rs1] & 0x3F
        if rd:
            values[rd] = (values[rs0] << shift) & WORD_MASK
        tracks = self._tracks
        src, other, dst = tracks[rs0], tracks[rs1], tracks[rd]
        sfva, ofva = src.fva, other.fva
        if sfva is not None and ofva is not None:
            dst.fva = (sfva << (ofva & 0x3F)) & WORD_MASK
            dst.sc = 1
        elif sfva is None and ofva is not None:
            dst.fva = None
            dst.sc = self._clamp_sc(src.sc << (ofva & 0x3F))
        else:
            # Shift by an unknown amount: conservatively reinitialise.
            dst.fva = None
            dst.sc = 1
        self._retire()

    def _op_srl_rr(self, d: tuple[Any, ...]) -> None:
        _, rd, rs0, rs1 = d
        values = self._values
        shift = values[rs1] & 0x3F
        if rd:
            values[rd] = values[rs0] >> shift
        tracks = self._tracks
        src, other, dst = tracks[rs0], tracks[rs1], tracks[rd]
        sfva, ofva = src.fva, other.fva
        if sfva is not None and ofva is not None:
            dst.fva = (sfva >> (ofva & 0x3F)) & WORD_MASK
            dst.sc = 1
        elif sfva is None and ofva is not None:
            dst.fva = None
            dst.sc = self._clamp_sc(src.sc >> (ofva & 0x3F))
        else:
            dst.fva = None
            dst.sc = 1
        self._retire()

    def _op_sll_ri(self, d: tuple[Any, ...]) -> None:
        _, rd, rs0, shift = d
        values = self._values
        if rd:
            values[rd] = (values[rs0] << shift) & WORD_MASK
        tracks = self._tracks
        src, dst = tracks[rs0], tracks[rd]
        sfva = src.fva
        if sfva is None:
            dst.fva = None
            dst.sc = self._clamp_sc(src.sc << shift)
        else:
            dst.fva = (sfva << shift) & WORD_MASK
            dst.sc = 1
        self._retire()

    def _op_srl_ri(self, d: tuple[Any, ...]) -> None:
        _, rd, rs0, shift = d
        values = self._values
        if rd:
            values[rd] = values[rs0] >> shift
        tracks = self._tracks
        src, dst = tracks[rs0], tracks[rd]
        sfva = src.fva
        if sfva is None:
            dst.fva = None
            dst.sc = self._clamp_sc(src.sc >> shift)
        else:
            dst.fva = (sfva >> shift) & WORD_MASK
            dst.sc = 1
        self._retire()

    # -- ALU: and/or/xor (Table III "Otherwise" rule) -----------------------------------

    def _op_and_rr(self, d: tuple[Any, ...]) -> None:
        _, rd, rs0, rs1 = d
        values = self._values
        if rd:
            values[rd] = values[rs0] & values[rs1]
        dst = self._tracks[rd]
        dst.fva = None
        dst.sc = 1
        self._retire()

    def _op_or_rr(self, d: tuple[Any, ...]) -> None:
        _, rd, rs0, rs1 = d
        values = self._values
        if rd:
            values[rd] = values[rs0] | values[rs1]
        dst = self._tracks[rd]
        dst.fva = None
        dst.sc = 1
        self._retire()

    def _op_xor_rr(self, d: tuple[Any, ...]) -> None:
        _, rd, rs0, rs1 = d
        values = self._values
        if rd:
            values[rd] = values[rs0] ^ values[rs1]
        dst = self._tracks[rd]
        dst.fva = None
        dst.sc = 1
        self._retire()

    def _op_and_ri(self, d: tuple[Any, ...]) -> None:
        _, rd, rs0, imm = d
        if rd:
            self._values[rd] = self._values[rs0] & imm
        dst = self._tracks[rd]
        dst.fva = None
        dst.sc = 1
        self._retire()

    def _op_or_ri(self, d: tuple[Any, ...]) -> None:
        _, rd, rs0, imm = d
        if rd:
            self._values[rd] = self._values[rs0] | imm
        dst = self._tracks[rd]
        dst.fva = None
        dst.sc = 1
        self._retire()

    def _op_xor_ri(self, d: tuple[Any, ...]) -> None:
        _, rd, rs0, imm = d
        if rd:
            self._values[rd] = self._values[rs0] ^ imm
        dst = self._tracks[rd]
        dst.fva = None
        dst.sc = 1
        self._retire()

    # -- control flow -------------------------------------------------------------------

    def _op_jmp(self, d: tuple[Any, ...]) -> None:
        self.pc_index = d[1]
        self.time += self._branch_cost
        if self._speculating:
            self.stats.transient_executed += 1
        else:
            self.stats.instructions_retired += 1

    def _op_branch(self, d: tuple[Any, ...]) -> None:
        _, cond, rs0, rs1, target = d
        values = self._values
        a = values[rs0]
        b = values[rs1]
        if cond == 0:
            taken = a == b
        elif cond == 1:
            taken = a != b
        else:
            if a & SIGN_BIT:
                a -= _TWO_POW_64
            if b & SIGN_BIT:
                b -= _TWO_POW_64
            taken = a < b if cond == 2 else a >= b
        index = self.pc_index
        actual_index = target if taken else index + 1
        stats = self.stats
        stats.branches += 1

        if not self._spec_enabled or self._speculating:
            # Non-speculative core, or already inside a transient window:
            # resolve immediately (one outstanding checkpoint only).
            self.pc_index = actual_index
            self.time += self._branch_cost
            if self._speculating:
                stats.transient_executed += 1
            else:
                stats.instructions_retired += 1
                if taken and target == index - 1 and self._fuse_loops:
                    self._fuse_countdown(index, cond, rs0, rs1)
            return

        key = index % self._predictor_entries
        counter = self._predictor.get(key, 1)
        predicted_taken = counter >= 2
        self._predictor[key] = (
            counter + 1 if counter < 3 else 3
        ) if taken else (counter - 1 if counter > 0 else 0)
        if predicted_taken == taken:
            self.pc_index = actual_index
            self.time += self._branch_cost
            stats.instructions_retired += 1
            if taken and target == index - 1 and self._fuse_loops:
                # predicted_taken == taken == True implies the 2-bit counter
                # was >= 2 before this branch, so it is saturated (3) now and
                # every fused iteration would also predict correctly — the
                # counter update below is min(3, 3 + m) == 3, a no-op.
                self._fuse_countdown(index, cond, rs0, rs1)
            return

        # Misprediction: checkpoint and follow the wrong path transiently.
        stats.mispredictions += 1
        self._checkpoint_regs = self.regs.snapshot()
        self._correct_index = actual_index
        self._resolve_time = self.time + self._resolve_delay
        self._speculating = True
        self._spec_count = 0
        self._store_buffer.clear()
        self.pc_index = target if predicted_taken else index + 1
        self.time += self._branch_cost
        stats.instructions_retired += 1  # the branch itself retires

    def _fuse_countdown(self, index: int, cond: int, rs0: int, rs1: int) -> None:
        """Fast-forward a `sub rX,rX,1; bne rX,zero,back` busy-wait loop.

        Called after a *retired, taken* backwards-by-one branch.  When the
        branch is `bne rX, zero` and the preceding instruction is exactly
        `sub rX, rX, 1` (decoded as add_ri with imm -1), the remaining
        iterations are pure ALU work with a constant per-iteration state
        delta: no memory traffic, no hierarchy calls, no cross-core
        visibility.  Apply the closed form for all but the final iteration
        (left interpreted so the not-taken exit takes the normal path).

        The collapsed iterations advance ``time`` in one jump instead of
        2 * m scheduler steps; since they touch nothing outside this core's
        registers/calc buffer/counters, every other core observes the same
        memory-event sequence either way.  Exactness is pinned by
        tests/test_golden_parity.py (unchanged goldens) and the fuse-on/off
        differential test in tests/test_snapshot_parity.py.
        """
        if cond != 1 or rs1 != 0 or rs0 == 0:
            return
        prev = self._decoded[index - 1]
        # Decode pre-masks immediates, so `sub rX, rX, 1` carries WORD_MASK.
        if prev[0] != K_ADD_RI or prev[1] != rs0 or prev[2] != rs0 or prev[3] != WORD_MASK:
            return
        values = self._values
        m = values[rs0] - 1  # leave the exiting iteration interpreted
        if m <= 0:
            return
        values[rs0] = 1
        track = self._tracks[rs0]
        if track.fva is not None:
            track.fva = (track.fva - m) & WORD_MASK
            track.sc = 1
        self.time += m * (self._base_cost + self._branch_cost)
        stats = self.stats
        stats.instructions_retired += 2 * m
        stats.branches += m

    # -- no-effect / serialising / halt -------------------------------------------------

    def _op_nop(self, d: tuple[Any, ...]) -> None:
        self._retire()

    def _op_fence(self, d: tuple[Any, ...]) -> None:
        self._serialized = True
        if self._speculating:
            # Serialising instruction: a transient path cannot proceed
            # past a fence; wait for the branch to resolve (then squash).
            self._stall_to_resolve()
        else:
            self._retire()

    def _op_halt(self, d: tuple[Any, ...]) -> None:
        if self._speculating:
            # A transient halt stalls until the branch resolves.
            self._stall_to_resolve()
        else:
            self.halted = True
            self.time += self._base_cost
            self.stats.instructions_retired += 1
