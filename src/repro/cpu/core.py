"""An in-order timing core with optional speculative execution.

Every instruction executes functionally and advances the core's local clock
by its cost; loads/stores pay the memory hierarchy's latency.  The core
maintains the PREFENDER calculation buffer (paper Table III) at execute
stage and threads each load's base-register *scale* into the hierarchy so
the Scale Tracker can see it.

Speculative execution (``CoreConfig.speculative_execution``) models the
Spectre-v1 substrate: conditional branches are predicted by a 2-bit counter
table and resolve ``resolve_delay`` cycles after issue.  On a misprediction
the core *follows the predicted (wrong) path*: transient loads access the
cache hierarchy for real (this is the leak), transient stores are buffered
and dropped, and at resolve time the architectural state rolls back while
cache state — and the calculation buffer, which is microarchitectural —
persists.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.calc import CalculationBuffer
from repro.errors import ExecutionError
from repro.isa.instructions import ALU_OPS
from repro.isa.program import INSTRUCTION_SIZE, Program
from repro.isa.registers import RegisterFile
from repro.mem.hierarchy import MemoryHierarchy


@dataclass(frozen=True)
class CoreConfig:
    """Per-core timing and speculation parameters."""

    base_cost: int = 1
    mul_cost: int = 3
    branch_cost: int = 1
    # Cycles of load latency an out-of-order window can hide (ROB depth x
    # issue rate).  0 = fully blocking in-order core.  The exposed stall is
    # ``max(base_cost, latency - load_hide_cycles)``: L2 hits vanish, DRAM
    # misses keep a tail — the standard analytical OoO stall model.  Loads
    # that immediately follow a serialising instruction (rdcycle/fence)
    # always pay the full latency — a timed load cannot be overlapped,
    # which is exactly why attackers serialise their measurements.
    load_hide_cycles: int = 0
    speculative_execution: bool = False
    resolve_delay: int = 60
    branch_miss_penalty: int = 8
    predictor_entries: int = 512
    spec_window: int = 48


@dataclass
class CoreStats:
    """Execution counters for one core."""

    instructions_retired: int = 0
    transient_executed: int = 0
    loads: int = 0
    stores: int = 0
    flushes: int = 0
    software_prefetches: int = 0
    branches: int = 0
    mispredictions: int = 0
    squashes: int = 0
    load_latency_total: int = 0


class Core:
    """One in-order core bound to a program and a memory hierarchy."""

    def __init__(
        self,
        core_id: int,
        program: Program,
        hierarchy: MemoryHierarchy,
        config: CoreConfig | None = None,
        start_time: int = 0,
    ) -> None:
        if not program.finalized:
            program.finalize()
        self.core_id = core_id
        self.program = program
        self.hierarchy = hierarchy
        self.config = config or CoreConfig()
        self.regs = RegisterFile()
        self.calc = CalculationBuffer(scale_cap=hierarchy.amap.page_size)
        self.pc_index = 0
        self.time = start_time
        self.halted = False
        self.stats = CoreStats()
        # Speculation state (one outstanding checkpoint).
        self._speculating = False
        self._checkpoint_regs: list[int] | None = None
        self._correct_index = 0
        self._resolve_time = 0
        self._spec_count = 0
        self._store_buffer: list[tuple[int, int]] = []
        self._predictor: dict[int, int] = {}
        self._serialized = False

    # -- helpers -----------------------------------------------------------------

    @property
    def speculating(self) -> bool:
        return self._speculating

    def pc_addr(self) -> int:
        """Current instruction address."""
        return self.program.code_base + INSTRUCTION_SIZE * self.pc_index

    def _predict_taken(self, index: int) -> bool:
        counter = self._predictor.get(index % self.config.predictor_entries, 1)
        return counter >= 2

    def _train_predictor(self, index: int, taken: bool) -> None:
        key = index % self.config.predictor_entries
        counter = self._predictor.get(key, 1)
        counter = min(3, counter + 1) if taken else max(0, counter - 1)
        self._predictor[key] = counter

    def _squash(self) -> None:
        """Roll back a mispredicted path; cache/calc effects persist."""
        assert self._checkpoint_regs is not None
        self.regs.restore(self._checkpoint_regs)
        self.pc_index = self._correct_index
        self.time = max(self.time, self._resolve_time) + self.config.branch_miss_penalty
        self._speculating = False
        self._checkpoint_regs = None
        self._store_buffer.clear()
        self.stats.squashes += 1

    def _stall_to_resolve(self) -> None:
        self.time = max(self.time, self._resolve_time)

    # -- main step ------------------------------------------------------------------

    def step(self) -> None:
        """Execute one instruction (or resolve a pending squash)."""
        if self.halted:
            return
        if self._speculating and self.time >= self._resolve_time:
            self._squash()
            return
        if not 0 <= self.pc_index < len(self.program.instructions):
            if self._speculating:
                self._stall_to_resolve()
                return
            raise ExecutionError(
                f"core {self.core_id}: pc {self.pc_index} outside program "
                f"{self.program.name!r}"
            )

        instruction = self.program.instructions[self.pc_index]
        op = instruction.op

        if op == "load":
            self._do_load(instruction)
        elif op in ALU_OPS:
            self._do_alu(instruction)
        elif op == "li":
            self.regs.write(instruction.rd, instruction.imm)
            self.calc.load_immediate(instruction.rd, instruction.imm)
            self._advance(self.config.base_cost)
        elif op == "mov":
            self.regs.write(instruction.rd, self.regs.read(instruction.rs0))
            self.calc.move(instruction.rd, instruction.rs0)
            self._advance(self.config.base_cost)
        elif op == "store":
            self._do_store(instruction)
        elif op in ("beq", "bne", "blt", "bge"):
            self._do_branch(instruction)
        elif op == "jmp":
            self.pc_index = instruction.target
            self.time += self.config.branch_cost
            self._count_retire()
        elif op == "rdcycle":
            self.regs.write(instruction.rd, self.time)
            self.calc.load_from_memory(instruction.rd)  # unknown variable
            self._serialized = True
            self._advance(self.config.base_cost)
        elif op == "clflush":
            self._do_flush(instruction)
        elif op in ("prefetch", "prefetchw"):
            self._do_software_prefetch(instruction)
        elif op == "nop":
            self._advance(self.config.base_cost)
        elif op == "fence":
            self._serialized = True
            if self._speculating:
                # Serialising instruction: a transient path cannot proceed
                # past a fence; wait for the branch to resolve (then squash).
                self._stall_to_resolve()
            else:
                self._advance(self.config.base_cost)
        elif op == "halt":
            if self._speculating:
                # A transient halt stalls until the branch resolves.
                self._stall_to_resolve()
            else:
                self.halted = True
                self.time += self.config.base_cost
                self.stats.instructions_retired += 1
        else:  # pragma: no cover - opcode set is closed
            raise ExecutionError(f"unhandled opcode {op!r}")

        if self._speculating:
            self._spec_count += 1
            if self._spec_count >= self.config.spec_window:
                self._stall_to_resolve()

    # -- instruction semantics ---------------------------------------------------------

    def _advance(self, cost: int) -> None:
        self.time += cost
        self.pc_index += 1
        self._count_retire()

    def _count_retire(self) -> None:
        if self._speculating:
            self.stats.transient_executed += 1
        else:
            self.stats.instructions_retired += 1

    def _alu_operand(self, instruction) -> int:
        if instruction.rs1 is not None:
            return self.regs.read(instruction.rs1)
        return instruction.imm & ((1 << 64) - 1)

    def _do_alu(self, instruction) -> None:
        op = instruction.op
        a = self.regs.read(instruction.rs0)
        b = self._alu_operand(instruction)
        if op == "add":
            result = a + b
        elif op == "sub":
            result = a - b
        elif op == "mul":
            result = a * b
        elif op == "sll":
            result = a << (b & 0x3F)
        elif op == "srl":
            result = a >> (b & 0x3F)
        elif op == "and":
            result = a & b
        elif op == "or":
            result = a | b
        else:  # xor
            result = a ^ b
        self.regs.write(instruction.rd, result)
        if instruction.rs1 is not None:
            self.calc.alu(op, instruction.rd, instruction.rs0, rs1=instruction.rs1)
        else:
            self.calc.alu(op, instruction.rd, instruction.rs0, imm=instruction.imm)
        cost = self.config.mul_cost if op == "mul" else self.config.base_cost
        self._advance(cost)

    def _do_load(self, instruction) -> None:
        base = instruction.rs0
        addr = (self.regs.read(base) + instruction.imm) & ((1 << 64) - 1)
        # Store-to-load forwarding from the speculative store buffer.
        forwarded = None
        if self._speculating:
            for buffered_addr, buffered_value in reversed(self._store_buffer):
                if buffered_addr == addr:
                    forwarded = buffered_value
                    break
        if forwarded is not None:
            self.regs.write(instruction.rd, forwarded)
            self.calc.load_from_memory(instruction.rd)
            self._advance(self.config.base_cost)
            return
        outcome = self.hierarchy.load(
            self.core_id,
            addr,
            now=self.time,
            pc=self.pc_addr(),
            scale=self.calc.scale_of(base),
            speculative=self._speculating,
        )
        self.regs.write(instruction.rd, outcome.value)
        self.calc.load_from_memory(instruction.rd)
        self.stats.loads += 1
        self.stats.load_latency_total += outcome.latency
        self._advance(self._charged_latency(outcome.latency))

    def _charged_latency(self, latency: int) -> int:
        """Stall cycles the pipeline pays for a load of ``latency`` cycles.

        An OoO window hides up to ``load_hide_cycles`` of any load's
        latency; serialised (timed) loads always pay everything.
        """
        serialized = self._serialized
        self._serialized = False
        hide = self.config.load_hide_cycles
        if serialized or hide <= 0:
            return latency
        return max(self.config.base_cost, latency - hide)

    def _do_store(self, instruction) -> None:
        addr = (self.regs.read(instruction.rs1) + instruction.imm) & ((1 << 64) - 1)
        value = self.regs.read(instruction.rs0)
        if self._speculating:
            self._store_buffer.append((addr, value))
            self._advance(self.config.base_cost)
            return
        latency = self.hierarchy.store(
            self.core_id, addr, value, now=self.time, pc=self.pc_addr()
        )
        self.stats.stores += 1
        self._advance(latency)

    def _do_flush(self, instruction) -> None:
        if self._speculating:
            # Flushes are ordered like stores: they do not execute transiently.
            self._advance(self.config.base_cost)
            return
        addr = (self.regs.read(instruction.rs0) + instruction.imm) & ((1 << 64) - 1)
        latency = self.hierarchy.flush(self.core_id, addr, now=self.time)
        self.stats.flushes += 1
        self._advance(latency)

    def _do_software_prefetch(self, instruction) -> None:
        if self._speculating:
            # Ordered like stores/flushes: not executed transiently.
            self._advance(self.config.base_cost)
            return
        addr = (self.regs.read(instruction.rs0) + instruction.imm) & ((1 << 64) - 1)
        outcome = self.hierarchy.software_prefetch(
            self.core_id,
            addr,
            now=self.time,
            write=(instruction.op == "prefetchw"),
        )
        self.stats.software_prefetches += 1
        # No destination register: the only architectural effect is time —
        # which is the whole point of a prefetch-latency probe.
        self._advance(self._charged_latency(outcome.latency))

    def _do_branch(self, instruction) -> None:
        op = instruction.op
        if op in ("beq", "bne"):
            a = self.regs.read(instruction.rs0)
            b = self.regs.read(instruction.rs1)
            taken = (a == b) if op == "beq" else (a != b)
        else:
            a = self.regs.read_signed(instruction.rs0)
            b = self.regs.read_signed(instruction.rs1)
            taken = (a < b) if op == "blt" else (a >= b)
        actual_index = instruction.target if taken else self.pc_index + 1
        self.stats.branches += 1

        if not self.config.speculative_execution or self._speculating:
            # Non-speculative core, or already inside a transient window:
            # resolve immediately (one outstanding checkpoint only).
            self.pc_index = actual_index
            self.time += self.config.branch_cost
            self._count_retire()
            return

        branch_index = self.pc_index
        predicted_taken = self._predict_taken(branch_index)
        self._train_predictor(branch_index, taken)
        if predicted_taken == taken:
            self.pc_index = actual_index
            self.time += self.config.branch_cost
            self._count_retire()
            return

        # Misprediction: checkpoint and follow the wrong path transiently.
        self.stats.mispredictions += 1
        predicted_index = instruction.target if predicted_taken else branch_index + 1
        self._checkpoint_regs = self.regs.snapshot()
        self._correct_index = actual_index
        self._resolve_time = self.time + self.config.resolve_delay
        self._speculating = True
        self._spec_count = 0
        self._store_buffer.clear()
        self.pc_index = predicted_index
        self.time += self.config.branch_cost
        self.stats.instructions_retired += 1  # the branch itself retires
