"""Small shared utilities: address math, LRU tracking, text rendering."""

from repro.utils.addr import AddressMap
from repro.utils.lru import LRUTracker
from repro.utils.tables import render_table
from repro.utils.textplot import ascii_series

__all__ = [
    "AddressMap",
    "LRUTracker",
    "render_table",
    "ascii_series",
]
