"""ASCII series plotting for figure reproduction.

The paper's figures are latency-vs-index and count-vs-time curves; we render
them as compact text charts so ``pytest benchmarks/`` output is self
contained (no matplotlib dependency, works offline).
"""

from __future__ import annotations

from typing import Mapping, Sequence


def ascii_series(
    xs: Sequence[float],
    series: Mapping[str, Sequence[float]],
    height: int = 12,
    width: int = 72,
    title: str | None = None,
    y_label: str = "",
) -> str:
    """Render one or more y-series over a shared x-axis as an ASCII chart.

    Args:
        xs: x coordinates (monotonic).
        series: mapping from series name to y values (same length as ``xs``).
        height: chart rows.
        width: chart columns.
        title: optional title line.
        y_label: label printed next to the y axis.

    Returns:
        Multi-line chart string.  Each series is drawn with the first letter
        of its name; collisions are drawn as ``*``.
    """
    if not xs:
        return title or "(empty series)"
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(f"series {name!r} length {len(ys)} != x length {len(xs)}")

    all_ys = [y for ys in series.values() for y in ys]
    y_min = min(all_ys)
    y_max = max(all_ys)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min = float(xs[0])
    x_max = float(xs[-1])
    if x_max == x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for name, ys in series.items():
        marker = name[0] if name else "*"
        for x, y in zip(xs, ys):
            col = int((float(x) - x_min) / (x_max - x_min) * (width - 1))
            row = int((float(y) - y_min) / (y_max - y_min) * (height - 1))
            row = height - 1 - row
            current = grid[row][col]
            grid[row][col] = marker if current in (" ", marker) else "*"

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_max:>10.1f} +" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " |" + "".join(row))
    lines.append(f"{y_min:>10.1f} +" + "".join(grid[-1]))
    lines.append(" " * 12 + f"{x_min:<.0f}".ljust(width // 2) + f"{x_max:>.0f}")
    legend = "  ".join(f"{name[0] if name else '*'}={name}" for name in series)
    lines.append(" " * 12 + legend + (f"  [{y_label}]" if y_label else ""))
    return "\n".join(lines)


def ascii_scatter(
    series: Mapping[str, Sequence[tuple[float, float]]],
    height: int = 12,
    width: int = 60,
    title: str | None = None,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render named (x, y) point sets on one shared-axis ASCII scatter.

    Unlike :func:`ascii_series`, points need no shared or monotonic x axis
    — bounds are computed over every point of every series — which is what
    a Pareto frontier plot needs (grid points land wherever their
    (cycles, success-rate) pair puts them).  Each series is drawn with the
    first letter of its name; collisions are drawn as ``*``.
    """
    points = [pt for pts in series.values() for pt in pts]
    if not points:
        return title or "(no points)"
    x_min = min(x for x, _ in points)
    x_max = max(x for x, _ in points)
    y_min = min(y for _, y in points)
    y_max = max(y for _, y in points)
    if x_max == x_min:
        x_max = x_min + 1.0
    if y_max == y_min:
        y_max = y_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for name, pts in series.items():
        marker = name[0] if name else "*"
        for x, y in pts:
            col = int((float(x) - x_min) / (x_max - x_min) * (width - 1))
            row = height - 1 - int((float(y) - y_min) / (y_max - y_min) * (height - 1))
            current = grid[row][col]
            grid[row][col] = marker if current in (" ", marker) else "*"

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_max:>10.3f} +" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " |" + "".join(row))
    lines.append(f"{y_min:>10.3f} +" + "".join(grid[-1]))
    lines.append(
        " " * 12 + f"{x_min:<.3f}".ljust(width // 2) + f"{x_max:>.3f}"
    )
    legend = "  ".join(f"{name[0] if name else '*'}={name}" for name in series)
    axes = "  ".join(label for label in (f"x:{x_label}" if x_label else "",
                                         f"y:{y_label}" if y_label else "") if label)
    lines.append(" " * 12 + legend + (f"  [{axes}]" if axes else ""))
    return "\n".join(lines)


def histogram_line(counts: Mapping[str, int], width: int = 50) -> str:
    """One-line-per-key log-ish bar chart for count comparisons (Fig. 11)."""
    if not counts:
        return "(no counts)"
    peak = max(max(counts.values()), 1)
    lines = []
    for name, count in counts.items():
        bar = "#" * max(1 if count else 0, int(count / peak * width))
        lines.append(f"{name:>24} {count:>10} {bar}")
    return "\n".join(lines)
