"""A tiny true-LRU recency tracker.

Used by cache sets, access buffers (paper Sec. IV-C) and the scale buffer
(paper Sec. IV-D).  Keys are arbitrary hashables; the tracker orders them by
recency of ``touch`` and answers "which is least recent", optionally
restricted to a candidate subset (the Record Protector only allows LRU
replacement among *unprotected* access buffers).
"""

from __future__ import annotations

from typing import Hashable, Iterable


class LRUTracker:
    """Orders keys by recency; lowest recency counter is least recent."""

    def __init__(self) -> None:
        self._clock = 0
        self._stamp: dict[Hashable, int] = {}

    def touch(self, key: Hashable) -> None:
        """Mark ``key`` as most recently used."""
        self._clock += 1
        self._stamp[key] = self._clock

    def forget(self, key: Hashable) -> None:
        """Drop ``key`` from the tracker (no-op if absent)."""
        self._stamp.pop(key, None)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._stamp

    def __len__(self) -> int:
        return len(self._stamp)

    def victim(self, candidates: Iterable[Hashable] | None = None) -> Hashable:
        """Return the least recently used key.

        Args:
            candidates: if given, only these keys are considered.  Keys never
                touched rank older than any touched key (stamp 0).

        Raises:
            ValueError: when there are no candidates at all.
        """
        pool = list(candidates) if candidates is not None else list(self._stamp)
        if not pool:
            raise ValueError("no candidates for LRU victim selection")
        return min(pool, key=lambda key: self._stamp.get(key, 0))

    def stamps(self) -> dict[Hashable, int]:
        """Snapshot of the recency stamps (for tests/debugging)."""
        return dict(self._stamp)

    def snapshot(self) -> tuple:
        """Flat ``(clock, ((key, stamp), ...))`` picture of the tracker."""
        return (self._clock, tuple(self._stamp.items()))

    def restore(self, data: tuple) -> None:
        """Inverse of :meth:`snapshot` (stamp insertion order preserved)."""
        self._clock = data[0]
        self._stamp = dict(data[1])
