"""Address arithmetic shared by caches, prefetchers and attacks.

All addresses in the simulator are flat physical byte addresses held in
Python ints.  An :class:`AddressMap` captures the two granularities that
matter to PREFENDER: the cacheline (block) size and the page size, and
provides the derived helpers (block/page alignment, set index extraction)
used throughout the memory system.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class AddressMap:
    """Byte-address geometry: block and page sizes (both powers of two).

    Args:
        block_size: cacheline size in bytes (default 64, as in the paper).
        page_size: page size in bytes (default 4096).
    """

    block_size: int = 64
    page_size: int = 4096

    def __post_init__(self) -> None:
        if not _is_power_of_two(self.block_size):
            raise ConfigError(f"block_size must be a power of two: {self.block_size}")
        if not _is_power_of_two(self.page_size):
            raise ConfigError(f"page_size must be a power of two: {self.page_size}")
        if self.page_size < self.block_size:
            raise ConfigError("page_size must be >= block_size")

    @property
    def block_bits(self) -> int:
        """Number of byte-offset bits within a block."""
        return self.block_size.bit_length() - 1

    @property
    def page_bits(self) -> int:
        """Number of byte-offset bits within a page."""
        return self.page_size.bit_length() - 1

    def block_addr(self, addr: int) -> int:
        """Return ``addr`` rounded down to its block base."""
        return addr & ~(self.block_size - 1)

    def block_offset(self, addr: int) -> int:
        """Return the byte offset of ``addr`` within its block."""
        return addr & (self.block_size - 1)

    def block_index(self, addr: int) -> int:
        """Return the block number (block address shifted right)."""
        return addr >> self.block_bits

    def page_addr(self, addr: int) -> int:
        """Return ``addr`` rounded down to its page base."""
        return addr & ~(self.page_size - 1)

    def page_offset(self, addr: int) -> int:
        """Return the byte offset of ``addr`` within its page."""
        return addr & (self.page_size - 1)

    def same_page(self, a: int, b: int) -> bool:
        """True when both addresses fall in the same page."""
        return self.page_addr(a) == self.page_addr(b)

    def same_block(self, a: int, b: int) -> bool:
        """True when both addresses fall in the same cacheline."""
        return self.block_addr(a) == self.block_addr(b)

    def set_index(self, addr: int, num_sets: int) -> int:
        """Cache set index for ``addr`` in a cache with ``num_sets`` sets."""
        if not _is_power_of_two(num_sets):
            raise ConfigError(f"num_sets must be a power of two: {num_sets}")
        return (addr >> self.block_bits) & (num_sets - 1)

    def blocks_in_range(self, base: int, length: int) -> list[int]:
        """Block addresses covering ``[base, base + length)``."""
        if length <= 0:
            return []
        first = self.block_addr(base)
        last = self.block_addr(base + length - 1)
        return list(range(first, last + 1, self.block_size))


DEFAULT_ADDRESS_MAP = AddressMap()
