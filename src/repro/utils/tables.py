"""Plain-text table rendering for experiment reports.

The benchmark harness prints every reproduced paper table as aligned text so
the rows can be compared against the paper directly in the terminal and in
``EXPERIMENTS.md``.
"""

from __future__ import annotations

from typing import Sequence


def _format_cell(value: object, float_format: str) -> str:
    if isinstance(value, float):
        return float_format.format(value)
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    float_format: str = "{:+.3%}",
) -> str:
    """Render an aligned text table.

    Args:
        headers: column names.
        rows: row cells; floats are rendered with ``float_format``.
        title: optional title line printed above the table.
        float_format: format spec applied to float cells (default is the
            signed-percentage style the paper's tables use).

    Returns:
        The table as a single string (no trailing newline).
    """
    text_rows = [[_format_cell(cell, float_format) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row}"
            )
        for col, cell in enumerate(row):
            widths[col] = max(widths[col], len(cell))

    def line(cells: Sequence[str]) -> str:
        padded = []
        for col, cell in enumerate(cells):
            if col == 0:
                padded.append(cell.ljust(widths[col]))
            else:
                padded.append(cell.rjust(widths[col]))
        return "  ".join(padded)

    separator = "  ".join("-" * width for width in widths)
    parts = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    parts.append(line(headers))
    parts.append(separator)
    parts.extend(line(row) for row in text_rows)
    return "\n".join(parts)
