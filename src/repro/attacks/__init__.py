"""The paper's attacks: Flush+Reload, Evict+Reload, Prime+Probe.

Each attack builds ISA programs (attacker + optional cross-core victim),
runs them on a configured system and classifies the measured per-index
latencies into an :class:`AttackOutcome` (candidate secrets, verdict).

Challenge knobs (paper Sec. IV-A):

* C1/C2 are inherent: the victim touches a single eviction cacheline and the
  attacker probes in a register-generated pseudo-random order.
* ``noise_c3=True`` interleaves benign loads (distinct PCs) between probes to
  thrash the Access Tracker's buffers.
* ``noise_c4=True`` makes the probe load itself touch non-eviction lines to
  corrupt DiffMin.
* ``victim_mode="spectre"`` (Flush+Reload) runs the victim access as a
  genuine Spectre-v1 transient: a mistrained bounds check speculatively
  reads out-of-bounds and leaves the secret-dependent line in the cache.
"""

from repro.attacks.base import AttackOutcome, CacheAttack
from repro.attacks.layout import AttackLayout, AttackOptions
from repro.attacks.flush_reload import FlushReloadAttack
from repro.attacks.evict_reload import EvictReloadAttack
from repro.attacks.prime_probe import PrimeProbeAttack
from repro.attacks.evict_time import EvictTimeAttack
from repro.attacks.adversarial_prefetch import (
    AdversarialPrefetchA1,
    AdversarialPrefetchA2,
)

__all__ = [
    "AdversarialPrefetchA1",
    "AdversarialPrefetchA2",
    "AttackLayout",
    "AttackOptions",
    "AttackOutcome",
    "CacheAttack",
    "FlushReloadAttack",
    "EvictReloadAttack",
    "EvictTimeAttack",
    "PrimeProbeAttack",
]
