"""Declarative scenario registry: attack × victim × defense × secret grids.

One scenario *cell* is an attack kind (anything in
:data:`repro.runner.ATTACK_KINDS`) against one crypto victim
(:mod:`repro.workloads.crypto`) under one defense configuration.  Each
cell runs once per trial secret, every trial is one content-keyed
:class:`~repro.runner.ScenarioJob`, and the whole grid is submitted as a
single :func:`~repro.runner.run_batch` — deduplication, process sharding
(``--jobs``), warm worker pools and the on-disk store all come for free
from the runner, replacing the per-attack wiring the experiment modules
used to hand-roll.

Cells are scored by :mod:`repro.attacks.leakage`: attacker success rate
over the trials plus a mutual-information estimate between the secret and
the attacker's candidate sets.  ``peak_allocation_failures`` surfaces the
Access Tracker's buffer starvation — the long multi-victim runs in this
grid are exactly the load under which the pre-fix Record Protector kept
quiescent PCs protected forever and drove that counter monotonically up.

CLI front door: ``python -m repro scenarios --victims … --attacks …
--defenses … --secrets N --jobs N --store``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.attacks.leakage import LeakageScore, score_trials
from repro.errors import ConfigError
from repro.runner import (
    ATTACK_KINDS,
    ResultStore,
    ScenarioJob,
    ScenarioProbe,
    WorkerPool,
    run_batch,
)
from repro.sim.config import PrefetcherSpec, SystemConfig
from repro.utils.tables import render_table
from repro.utils.textplot import ascii_scatter
from repro.workloads.crypto import get_victim

#: The three bundled crypto victims (the "direct" paper victim also
#: registers and can be requested explicitly).
DEFAULT_VICTIMS = ("aes-ttable", "rsa-sqmul", "ecdsa-window")

#: Probe-based attack kinds scored by default; Evict+Time is excluded for
#: the same reason the frontier excludes it (whole-run timing channels are
#: outside PREFENDER's threat model, paper Table II) but can be requested.
DEFAULT_ATTACKS = (
    "flush-reload",
    "evict-reload",
    "prime-probe",
    "adversarial-prefetch-a1",
    "adversarial-prefetch-a2",
)

DEFAULT_DEFENSES = ("Base", "FULL")

#: Trial secrets per cell (evenly spaced over the victim's secret space).
DEFAULT_SECRETS = 4


def defense_spec(label: str) -> PrefetcherSpec:
    """Resolve a defense column label ("Base", "FULL", "AT+RP", ...)."""
    from repro.experiments.common import DEFENSES, security_spec

    try:
        return security_spec(label)
    except KeyError:
        raise ConfigError(
            f"unknown defense {label!r}; choose from {DEFENSES}"
        ) from None


@dataclass(frozen=True)
class ScenarioSpec:
    """One grid cell: which attack hits which victim under which defense."""

    victim: str
    attack: str
    defense: str


@dataclass
class ScenarioCell:
    """A scored cell: the spec, its trials and the leakage verdict."""

    spec: ScenarioSpec
    score: LeakageScore
    probes: list[ScenarioProbe] = field(repr=False)

    @property
    def peak_allocation_failures(self) -> int:
        """Worst-trial Access Tracker buffer starvation (all cores)."""
        return max(
            (
                sum(stats.get("allocation_failures", 0) for stats in probe.defense_stats)
                for probe in self.probes
            ),
            default=0,
        )


@dataclass
class ScenarioResult:
    """The scored grid plus the axes that produced it."""

    victims: tuple[str, ...]
    attacks: tuple[str, ...]
    defenses: tuple[str, ...]
    secrets: int
    cells: list[ScenarioCell]

    def cell(self, victim: str, attack: str, defense: str) -> ScenarioCell:
        for cell in self.cells:
            if cell.spec == ScenarioSpec(victim, attack, defense):
                return cell
        raise ConfigError(f"no cell for {(victim, attack, defense)!r}")

    def victim_success(self, victim: str, defense: str) -> float:
        """Mean attacker success over every attack for one victim/defense."""
        scores = [
            cell.score.success_rate
            for cell in self.cells
            if cell.spec.victim == victim and cell.spec.defense == defense
        ]
        return sum(scores) / len(scores)


def build_grid(
    victims: tuple[str, ...],
    attacks: tuple[str, ...],
    defenses: tuple[str, ...],
    secrets: int,
) -> tuple[list[ScenarioSpec], list[ScenarioJob]]:
    """The declarative cross product, as (cell specs, ordered trial jobs).

    Jobs are grouped by cell in spec order (``secrets`` trials per cell),
    which is the slicing :func:`run` relies on.
    """
    if not victims or not attacks or not defenses:
        raise ConfigError(
            "scenarios need at least one victim, one attack and one defense"
        )
    for attack in attacks:
        if attack not in ATTACK_KINDS:
            raise ConfigError(
                f"unknown attack {attack!r}; choose from {sorted(ATTACK_KINDS)}"
            )
    systems = {label: SystemConfig(prefetcher=defense_spec(label)) for label in defenses}
    specs: list[ScenarioSpec] = []
    jobs: list[ScenarioJob] = []
    for victim in victims:
        descriptor = get_victim(victim)  # validates the name
        trial_secrets = descriptor.trial_secrets(secrets)
        for attack in attacks:
            for defense in defenses:
                specs.append(ScenarioSpec(victim=victim, attack=attack, defense=defense))
                jobs.extend(
                    ScenarioJob.build(attack, victim, secret, systems[defense])
                    for secret in trial_secrets
                )
    return specs, jobs


def slice_trials(
    specs: list[ScenarioSpec], probes: list[ScenarioProbe], secrets: int
) -> list[ScenarioCell]:
    """Regroup the flat probe list into scored cells, spec by spec.

    Trial counts are re-derived per victim (``trial_secrets`` clamps to the
    victim's secret space), so mixed-victim grids with different effective
    trial counts never misassign probes across cells.
    """
    cells = []
    cursor = 0
    for spec in specs:
        count = len(get_victim(spec.victim).trial_secrets(secrets))
        mine = list(probes[cursor : cursor + count])
        cursor += count
        cells.append(ScenarioCell(spec=spec, score=score_trials(mine), probes=mine))
    if cursor != len(probes):
        raise ConfigError(
            f"scenario grid shape drifted: {len(probes)} probes for "
            f"{cursor} expected trials"
        )
    return cells


def run(
    victims: tuple[str, ...] = DEFAULT_VICTIMS,
    attacks: tuple[str, ...] = DEFAULT_ATTACKS,
    defenses: tuple[str, ...] = DEFAULT_DEFENSES,
    secrets: int = DEFAULT_SECRETS,
    jobs: int = 1,
    store: ResultStore | None = None,
    pool: WorkerPool | None = None,
    reuse_snapshots: bool = True,
) -> ScenarioResult:
    """Run and score the whole grid through one ``run_batch``.

    ``reuse_snapshots`` (default on) builds each cell's system once, warms
    it to the victim's secret load, and replays every trial secret off the
    restored snapshot — byte-identical probes, a multiple faster (see
    README "Crypto-victim scenarios"); pass ``False`` to force the
    rebuild-per-trial path.
    """
    specs, trial_jobs = build_grid(victims, attacks, defenses, secrets)
    probes = run_batch(
        trial_jobs,
        workers=jobs,
        store=store,
        pool=pool,
        reuse_snapshots=reuse_snapshots,
    )
    cells = slice_trials(specs, probes, secrets)
    return ScenarioResult(
        victims=tuple(victims),
        attacks=tuple(attacks),
        defenses=tuple(defenses),
        secrets=secrets,
        cells=cells,
    )


def render(result: ScenarioResult) -> str:
    """Cell table + success/MI scatter + per-victim defense summary."""
    rows = [
        [
            cell.spec.victim,
            ATTACK_KINDS[cell.spec.attack].name,
            cell.spec.defense,
            f"{cell.score.success_rate:.2f}",
            f"{cell.score.mi_bits:.2f}/{cell.score.mi_ceiling_bits:.2f}",
            cell.peak_allocation_failures,
        ]
        for cell in result.cells
    ]
    table = render_table(
        ["victim", "attack", "defense", "success", "MI (bits)", "alloc fails"],
        rows,
        title=(
            f"Crypto-victim scenarios ({result.secrets} secrets/cell; "
            "MI = leaked bits of the secret, plug-in estimate)"
        ),
    )
    scatter = ascii_scatter(
        {
            defense: [
                (cell.score.mi_fraction, cell.score.success_rate)
                for cell in result.cells
                if cell.spec.defense == defense
            ]
            for defense in result.defenses
        },
        title="attacker success rate vs leaked-secret fraction (per cell)",
        x_label="MI fraction",
        y_label="success",
    )
    summary = ["Per-victim mean attacker success (over attacks):"]
    for victim in result.victims:
        parts = [
            f"{defense} {result.victim_success(victim, defense):.2f}"
            for defense in result.defenses
        ]
        summary.append(f"  {victim:>14}: " + "  ".join(parts))
    return "\n".join([table, "", scatter, ""] + summary)
