"""Memory layout and option set shared by all attacks.

The probe (eviction) array uses the paper's 0x200 scale (Fig. 5): index
``i`` lives at ``probe_base + i * 0x200``.  With 64-byte lines and 512 L1
sets, consecutive indices are 8 sets apart, so set-congruent helper regions
(eviction ways for Evict+Reload, the attacker's primed arrays for
Prime+Probe) sit at multiples of 32KB (= 512 sets x 64B), beyond the 48KB
array span.  C3 noise lines are placed on sets ≡ 4 (mod 8) so they never
conflict with probe lines.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

L1_SET_SPAN = 512 * 64  # bytes covered by one pass over all L1 sets


@dataclass(frozen=True)
class AttackOptions:
    """Attack shape: secret, array geometry, challenges, victim placement."""

    secret: int = 65
    num_indices: int = 96
    scale: int = 0x200
    probe_step: int = 67  # register-generated pseudo-random probe order (C2)
    sequential_probe: bool = False
    noise_c3: bool = False
    noise_c4: bool = False
    noise_loads: int = 12
    victim_mode: str = "direct"  # "direct" | "spectre"
    cross_core: bool = False
    probe_gap_cycles: int = 260
    train_rounds: int = 16
    # How the measurement phase touches a probe line: "load" (a demand load
    # every tracker observes) or "prefetch" (a timed software prefetch that
    # no demand-traffic defense ever sees — Adversarial Prefetch's A2).
    probe_kind: str = "load"
    # Which phase-2 victim runs between the attacker's prepare and probe
    # phases: "direct" is the paper's single secret-dependent access; any
    # other name is resolved in the crypto-victim registry
    # (:mod:`repro.workloads.crypto`) at program-build time, so unknown
    # names fail there, not here (the registry cannot be imported from this
    # module without a cycle).
    victim: str = "direct"

    def __post_init__(self) -> None:
        if not 0 <= self.secret < self.num_indices:
            raise ConfigError(
                f"secret {self.secret} outside probe range 0..{self.num_indices - 1}"
            )
        if self.victim_mode not in ("direct", "spectre"):
            raise ConfigError(f"unknown victim_mode {self.victim_mode!r}")
        if self.probe_step <= 0:
            raise ConfigError("probe_step must be positive")
        if self.probe_kind not in ("load", "prefetch"):
            raise ConfigError(f"unknown probe_kind {self.probe_kind!r}")
        if not self.victim:
            raise ConfigError("victim must be a non-empty registry name")
        if self.victim != "direct" and self.victim_mode != "direct":
            raise ConfigError(
                "crypto victims run in victim_mode='direct'; the spectre "
                "transient victim exists only for the direct access"
            )

    @property
    def challenges(self) -> str:
        """Paper-style challenge label, e.g. ``C1+C2+C3``."""
        label = "C1+C2"
        if self.noise_c3:
            label += "+C3"
        if self.noise_c4:
            label += "+C4"
        return label


@dataclass(frozen=True)
class AttackLayout:
    """All absolute addresses used by the attack programs.

    Probe lines occupy L1 sets ≡ 0 (mod 8) (scale 0x200 over 64-byte lines);
    every helper region (secret cell, results, noise, flags, spectre arrays)
    is deliberately placed on sets ≢ 0 (mod 8) so bookkeeping traffic never
    evicts a probe line or a PREFENDER prefetch.  Results are stored with a
    0x200 stride for the same reason.
    """

    probe_base: int = 0x0200_0000
    secret_addr: int = 0x0300_2100  # set ≡ 4 (mod 8)
    array1_base: int = 0x0300_0040  # set ≡ 1
    array1_size_addr: int = 0x0300_1040  # set ≡ 1
    idx_seq_base: int = 0x0310_0040  # set ≡ 1
    results_base: int = 0x0500_0100  # set ≡ 4; stride 0x200 keeps it ≡ 4
    results_stride: int = 0x200
    noise_base: int = 0x0600_0100  # set ≡ 4 (mod 8): never a probe set
    flag_base: int = 0x0700_0100  # sets 4 and 5
    oob_index: int = 64  # array1_base + 64*8 holds the spectre "secret"

    # Set-congruent offsets from probe_base (multiples of 32KB, beyond the
    # 48KB probe-array span).
    evict_offset_1: int = 0x20000
    evict_offset_2: int = 0x28000

    def probe_addr(self, index: int, scale: int) -> int:
        return self.probe_base + index * scale

    def result_addr(self, index: int) -> int:
        return self.results_base + index * self.results_stride

    def noise_addr(self, k: int) -> int:
        return self.noise_base + k * 0x200

    @property
    def flag_attacker_ready(self) -> int:
        return self.flag_base

    @property
    def flag_victim_done(self) -> int:
        return self.flag_base + 64

    @property
    def spectre_secret_addr(self) -> int:
        return self.array1_base + self.oob_index * 8
