"""Prime+Probe (Osvik, Shamir & Tromer 2006 — paper ref. [6]).

No page sharing: the attacker primes both L1 ways of every monitored set
with its *own* lines (set-congruent arrays at +evict_offset_1/2), the
victim's access evicts one way of one set, and the probe measures each
set's two loads together — the slow set reveals the secret.
"""

from __future__ import annotations

from repro.attacks.base import CacheAttack
from repro.attacks.snippets import (
    emit_prime_loop,
    emit_probe_loop,
    emit_victim,
)
from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program


class PrimeProbeAttack(CacheAttack):
    """Prime+Probe: a slow set (>= threshold) marks the candidate."""

    name = "Prime+Probe"
    hit_threshold = 14  # two L1 hits ~9; one L2 refill lifts the set to ~21
    candidate_is_slow = True
    # 48 monitored sets: more than 64 would alias within the 32KB L1 set
    # span and break even the baseline attack, and the 16 unmonitored set
    # groups act as a guard band absorbing the Access Tracker's beyond-array
    # edge prefetches (which would otherwise alias onto monitored sets).
    DEFAULT_OPTIONS = {"secret": 37, "num_indices": 48}

    def build_programs(self) -> list[Program]:
        layout, options = self.layout, self.options
        builder = ProgramBuilder("prime_probe")
        builder.fill(
            layout.results_base,
            count=options.num_indices,
            value=0,
            stride=layout.results_stride,
        )
        builder.data(layout.secret_addr, [options.secret])
        emit_prime_loop(builder, layout, options)
        emit_victim(builder, layout, options)
        emit_probe_loop(
            builder,
            layout,
            options,
            base_offset=layout.evict_offset_1,
            second_way_offset=layout.evict_offset_2,
        )
        builder.halt()
        return [builder.build(strict=True)]
