"""Evict+Time (Osvik et al. 2006) — a deliberately *out-of-scope* attack.

The paper's Table II marks Evict+Time (a timing-based attack, types 1 and 3
of [20]) as **not** defended by PREFENDER: the attacker never probes
individual lines — it only measures the *victim's total execution time*
after evicting one cache set, so prefetched decoy lines in other sets do
not confuse the measurement.

We implement it to reproduce that honest negative result: the attacker
evicts one monitored set per round, runs the victim, and times it; the
round where the victim slows down reveals which set the secret access maps
to.  PREFENDER's ST may blur the adjacent sets slightly, but the timing
channel itself survives — matching the ``×`` in Table II.

The victim's total time is measured architecturally (rdcycle before and
after the victim block), so the channel needs no per-line probing at all.
"""

from __future__ import annotations

from typing import Any

from repro.attacks.base import AttackOutcome, CacheAttack
from repro.attacks.snippets import emit_victim
from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program
from repro.sim.config import SystemConfig


class EvictTimeAttack(CacheAttack):
    """Evict+Time: the slow round (>= threshold) marks the candidate set."""

    name = "Evict+Time"
    # The victim pays one extra L1 miss (L2 hit, +12) in the evicted round;
    # threshold sits between "no extra miss" and "one extra miss".
    candidate_is_slow = True
    DEFAULT_OPTIONS = {"secret": 37, "num_indices": 48}

    @property
    def hit_threshold(self) -> int:  # type: ignore[override]
        return self._baseline_time + 6

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._baseline_time = 0

    def build_programs(self) -> list[Program]:
        layout, options = self.layout, self.options
        builder = ProgramBuilder("evict_time")
        builder.fill(
            layout.results_base,
            count=options.num_indices,
            value=0,
            stride=layout.results_stride,
        )
        builder.data(layout.secret_addr, [options.secret])

        # Warm everything once so later rounds measure steady state.
        emit_victim(builder, layout, options)

        # For each monitored set s: evict it (two conflicting ways), run the
        # victim, store its measured duration.
        loop = builder.fresh_label("round")
        builder.li("r2", 0)
        builder.li("r3", options.num_indices)
        builder.label(loop)
        builder.li("r1", layout.probe_base)
        builder.mul("r4", "r2", options.scale)
        builder.add("r5", "r1", "r4")
        builder.load("r6", layout.evict_offset_1, "r5")
        builder.load("r6", layout.evict_offset_2, "r5")
        # Time the victim's secret-dependent phase (same code every round;
        # crypto victims put all their lookups inside the timed window).
        builder.fence()
        builder.rdcycle("r7")
        emit_victim(builder, layout, options)
        builder.rdcycle("r8")
        builder.sub("r9", "r8", "r7")
        builder.li("r19", layout.results_base)
        builder.mul("r4", "r2", layout.results_stride)
        builder.add("r4", "r19", "r4")
        builder.store("r9", 0, "r4")
        builder.add("r2", "r2", 1)
        builder.blt("r2", "r3", loop)
        builder.halt()
        return [builder.build(strict=True)]

    def run(
        self,
        system_config: SystemConfig | None = None,
        max_steps: int = 20_000_000,
    ) -> AttackOutcome:
        outcome = super().run(system_config, max_steps)
        # Threshold is relative to the un-evicted victim time: take the
        # modal (fast) duration as the baseline.
        fast = sorted(lat for lat in outcome.latencies if lat > 0)
        self._baseline_time = fast[len(fast) // 2] if fast else 0
        outcome.threshold = self._baseline_time + 6
        return outcome
