"""Evict+Reload (Gruss et al. 2015 — paper ref. [14]).

Like Flush+Reload but without ``clflush``: phase 0 warms every probe line
(so all of them live in L2), phase 1 evicts them from L1 by loading two
set-congruent ways per monitored set, phase 2 the victim's access pulls the
secret line back into L1, and phase 3 distinguishes the L1 hit (secret)
from L2 hits (everything else).
"""

from __future__ import annotations

from repro.attacks.base import CacheAttack
from repro.attacks.snippets import (
    emit_evict_loop,
    emit_probe_loop,
    emit_victim,
    emit_warm_loop,
)
from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program


class EvictReloadAttack(CacheAttack):
    """Evict+Reload: L1 hit (< threshold) marks the candidate."""

    name = "Evict+Reload"
    hit_threshold = 10  # between the L1 hit (~5) and the L2 hit (~17)
    candidate_is_slow = False

    def build_programs(self) -> list[Program]:
        layout, options = self.layout, self.options
        builder = ProgramBuilder("evict_reload")
        builder.fill(
            layout.results_base,
            count=options.num_indices,
            value=0,
            stride=layout.results_stride,
        )
        builder.data(layout.secret_addr, [options.secret])
        emit_warm_loop(builder, layout, options)
        emit_evict_loop(builder, layout, options)
        emit_victim(builder, layout, options)
        emit_probe_loop(builder, layout, options)
        builder.halt()
        return [builder.build(strict=True)]
