"""Warm snapshot replay for scenario trial grids.

A scenario cell runs the *same* attack × victim × defense system once per
trial secret, and the only input that differs between trials is the one
data word every attack writes at ``AttackLayout.secret_addr`` (the victim
loads its secret from there; see :mod:`repro.workloads.crypto`).  Execution
is therefore bit-identical across trials up to the victim's first load of
that word: the attacker's whole prepare phase, the cross-core handshake,
the program build and the system construction are all shared prefix.

:func:`replay_group` exploits that: it builds the cell's system once, runs
it up to (but not including) the first demand load of the secret word,
snapshots, and then serves every trial by ``restore -> poke(secret) ->
run-to-completion -> classify``.  The memory patch is sound because cache
lines carry metadata only — data values are always read from
``MainMemory`` at access time — and :meth:`MainMemory.poke` leaves the
read/write counters untouched, so a replayed trial is state-for-state
identical to a rebuilt one (``tests/test_scenarios.py`` pins byte
equality; ``tests/test_snapshot_parity.py`` proves the underlying
snapshot/restore protocol cycle-exact).

Eligibility is conservative: only ``victim_mode == "direct"`` trials
replay (the spectre transient victim reads a different address under
speculation); anything else falls back to the per-job rebuild path in
:func:`repro.runner.executor.run_batch`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.cpu.system import System
from repro.errors import SimulationError
from repro.isa.decode import K_LOAD
from repro.isa.registers import WORD_MASK

if TYPE_CHECKING:
    from repro.runner.job import ScenarioJob, ScenarioProbe


def replay_eligible(job: ScenarioJob) -> bool:
    """True when ``job`` (a ScenarioJob) can be served off a warm snapshot."""
    return job.options.victim_mode == "direct"


def replay_group_key(job: ScenarioJob) -> str:
    """Content key of a trial's cell: the job with its secret neutralised.

    Two jobs share a warm snapshot iff they differ *only* in the trial
    secret; deriving the group key through the same structural fingerprint
    as :func:`repro.runner.job.job_key` means any new config field splits
    groups automatically instead of silently sharing a stale image.
    """
    from repro.runner.job import job_key

    return job_key(replace(job, options=replace(job.options, secret=0)))


@dataclass(frozen=True)
class ScenarioReplayJob:
    """One warm-snapshot task: a cell's trial jobs served off one image.

    Shaped like any other runner job (``run()``, ``cacheable``) so it rides
    the existing pool/executor backends, but ``run`` returns one
    ``ScenarioProbe`` *per member job*, in member order; the executor fans
    the list back out to the members' content keys (which also feed the
    disk store, so replayed probes cache exactly like rebuilt ones).
    """

    jobs: tuple[ScenarioJob, ...]

    #: The group task itself is never stored — its members are, per-key.
    cacheable = False

    def run(self) -> list[ScenarioProbe]:
        return replay_group(list(self.jobs))


def replay_group(jobs: list[ScenarioJob]) -> list[ScenarioProbe]:
    """Serve a cell's trials off one warmed snapshot, in input order."""
    from repro.runner.job import ATTACK_KINDS

    base = jobs[0]
    attack_cls = ATTACK_KINDS[base.attack]
    attack = attack_cls(base.options)
    system, config = attack.prepare(base.system)
    watch = attack.layout.secret_addr
    warm_steps = _run_to_watch(system, watch, base.max_steps)
    image = system.snapshot()
    budget = base.max_steps - warm_steps
    probes: list[ScenarioProbe] = []
    for job in jobs:
        system.restore(image)
        system.hierarchy.memory.poke(watch, job.options.secret)
        result = system.run(max_steps=budget)
        trial_attack = attack_cls(job.options)
        outcome = trial_attack.classify(system, config, result)
        probes.append(job.probe_from_outcome(outcome))
    return probes


def _run_to_watch(system: System, watch: int, max_steps: int) -> int:
    """Advance the system to just before the first demand load of ``watch``.

    Steps cores in the scheduler's order (min local time, ties to the
    lower core index) and stops *before* executing a ``load`` whose
    effective address is ``watch`` — the first instruction whose outcome
    can depend on the secret value.  Returns the steps taken; if every
    core halts without touching ``watch`` the secret is dead and the
    end state itself is a valid (trivial) snapshot point.
    """
    steps = 0
    active = [core for core in system.cores if not core.halted]
    while active:
        core = active[0]
        for candidate in active[1:]:
            # Strict < keeps the earlier (lower-index) core on ties.
            if candidate.time < core.time:
                core = candidate
        instruction = core._decoded[core.pc_index]
        if instruction[0] == K_LOAD and not core._speculating:
            addr = (core._values[instruction[2]] + instruction[3]) & WORD_MASK
            if addr == watch:
                return steps
        core.step()
        steps += 1
        if core.halted:
            active = [c for c in active if not c.halted]
        if steps >= max_steps:
            raise SimulationError(
                f"exceeded {max_steps} scheduler steps warming a scenario "
                "snapshot; a program probably fails to halt"
            )
    return steps
