"""Attack orchestration and outcome classification.

A :class:`CacheAttack` builds its programs, runs them on a configured
system, reads the per-index latencies the attacker stored to memory and
classifies them into *candidate secrets*.  The paper's success criterion:
the attack succeeds when the latencies single out exactly the right index;
PREFENDER's goal is to make that set ambiguous (Sec. V-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, ClassVar

from repro.attacks.layout import AttackLayout, AttackOptions
from repro.cpu.core import CoreConfig
from repro.cpu.system import RunResult, System
from repro.isa.program import Program
from repro.sim.config import SystemConfig
from repro.sim.simulator import build_system


def verdict_line(
    attack_name: str,
    challenges: str,
    defense_label: str,
    succeeded: bool,
    candidates: list[int],
    secret: int,
) -> str:
    """The one verdict-line format shared by outcomes and CLI probe grids."""
    shown = candidates if len(candidates) <= 8 else candidates[:8] + ["..."]
    verdict = "ATTACK SUCCEEDED" if succeeded else "DEFENDED"
    return (
        f"{attack_name} ({challenges}) vs {defense_label}: "
        f"{verdict} — {len(candidates)} candidate(s) {shown}, secret={secret}"
    )


@dataclass
class AttackOutcome:
    """Classified result of one attack run."""

    attack_name: str
    challenges: str
    defense_label: str
    secret: int
    latencies: list[int]
    threshold: int
    candidate_is_slow: bool
    run_result: RunResult = field(repr=False)

    @property
    def candidates(self) -> list[int]:
        """Indices whose latency marks them as possible secrets."""
        if self.candidate_is_slow:
            return [
                i for i, lat in enumerate(self.latencies) if lat >= self.threshold
            ]
        return [
            i
            for i, lat in enumerate(self.latencies)
            if 0 < lat < self.threshold
        ]

    @property
    def attack_succeeded(self) -> bool:
        """True when the attacker uniquely recovers the correct secret."""
        return self.candidates == [self.secret]

    @property
    def defended(self) -> bool:
        return not self.attack_succeeded

    @property
    def secret_is_candidate(self) -> bool:
        """The victim's own access should always leave its trace."""
        return self.secret in self.candidates

    def series(self) -> tuple[list[int], list[int]]:
        """(indices, latencies) for Fig. 8-style plotting."""
        return list(range(len(self.latencies))), list(self.latencies)

    def summary(self) -> str:
        return verdict_line(
            self.attack_name,
            self.challenges,
            self.defense_label,
            self.attack_succeeded,
            self.candidates,
            self.secret,
        )


class CacheAttack:
    """Base class: build programs, run, classify."""

    name = "attack"
    hit_threshold = 65
    candidate_is_slow = False
    # Per-attack option defaults (Prime+Probe monitors 64 distinct L1 sets;
    # more would alias within the 32KB set span and break even the baseline).
    DEFAULT_OPTIONS: ClassVar[dict[str, Any]] = {}

    def __init__(
        self,
        options: AttackOptions | None = None,
        layout: AttackLayout | None = None,
        **option_overrides: Any,
    ) -> None:
        if options is None:
            merged = dict(self.DEFAULT_OPTIONS)
            merged.update(option_overrides)
            options = AttackOptions(**merged)
        elif option_overrides:
            options = replace(options, **option_overrides)
        self.options = options
        self.layout = layout or AttackLayout()

    # -- hooks ------------------------------------------------------------------

    def build_programs(self) -> list[Program]:
        """One program per core (attacker first)."""
        raise NotImplementedError

    def adjust_core_config(self, config: CoreConfig) -> CoreConfig:
        """Spectre variants enable speculation here."""
        if self.options.victim_mode == "spectre":
            return replace(
                config,
                speculative_execution=True,
                resolve_delay=320,
                spec_window=12,
            )
        return config

    @property
    def num_cores(self) -> int:
        return 2 if self.options.cross_core else 1

    # -- orchestration ------------------------------------------------------------

    def prepare(
        self, system_config: SystemConfig | None = None
    ) -> tuple[System, SystemConfig]:
        """Build phase: programs + configured system, ready to simulate.

        Returns ``(system, resolved_config)``.  Split out of :meth:`run` so
        the snapshot-replay runner (:mod:`repro.attacks.replay`) can build
        once, warm up, and re-simulate many trials off a restored image.
        """
        config = system_config or SystemConfig()
        config = replace(
            config,
            num_cores=self.num_cores,
            core=self.adjust_core_config(config.core),
        )
        programs = self.build_programs()
        return build_system(programs, config), config

    def classify(
        self, system: System, config: SystemConfig, result: RunResult
    ) -> AttackOutcome:
        """Classification phase: read back latencies, build the outcome."""
        latencies = [
            system.hierarchy.read_word(self.layout.result_addr(index))
            for index in range(self.options.num_indices)
        ]
        return AttackOutcome(
            attack_name=self.name,
            challenges=self.options.challenges,
            defense_label=config.prefetcher.label,
            secret=self.options.secret,
            latencies=latencies,
            threshold=self.hit_threshold,
            candidate_is_slow=self.candidate_is_slow,
            run_result=result,
        )

    def run(
        self,
        system_config: SystemConfig | None = None,
        max_steps: int = 20_000_000,
    ) -> AttackOutcome:
        """Build, simulate and classify one attack run."""
        system, config = self.prepare(system_config)
        result = system.run(max_steps=max_steps)
        return self.classify(system, config, result)
