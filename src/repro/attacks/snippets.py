"""Reusable program fragments for the attack builders.

Register conventions (shared by all attacks)::

    r1   probe-array base (li, so its fva stays valid)
    r2   loop counter            r3   loop bound
    r4   scratch address math    r5   probe effective address
    r6   load sink               r7/r8/r9  t0/t1/latency
    r10  victim index / secret   r11..r16  victim-block scratch
    r17  probe index (register-resident pseudo-random sequence)
    r19  results base            r20  noise base
    r21/r22  C4 alternation      r23  flags base
    r24  delay counter           r25  second-way base (evict/prime)
    r26  second-way address      r28/r29  training counter/bound

The probe index lives entirely in registers (an additive-stride sequence),
exactly like real attack code that randomises probe order with register
arithmetic: under Table III its ``fva`` stays valid, so the *attacker's*
loads never trigger the Scale Tracker — only the victim's secret-dependent
load (whose index comes from memory) does.
"""

from __future__ import annotations

from repro.attacks.layout import AttackLayout, AttackOptions
from repro.isa.builder import ProgramBuilder


def emit_delay(builder: ProgramBuilder, cycles: int) -> None:
    """Busy-wait roughly ``cycles`` cycles using an ALU-only loop."""
    iterations = max(1, cycles // 2)
    label = builder.fresh_label("delay")
    builder.li("r24", iterations)
    builder.label(label)
    builder.sub("r24", "r24", 1)
    builder.bne("r24", "zero", label)


def emit_flush_loop(
    builder: ProgramBuilder, layout: AttackLayout, options: AttackOptions
) -> None:
    """Phase 1 of Flush+Reload: clflush every eviction cacheline."""
    label = builder.fresh_label("flush")
    builder.li("r1", layout.probe_base)
    builder.li("r2", 0)
    builder.li("r3", options.num_indices)
    builder.label(label)
    builder.mul("r4", "r2", options.scale)
    builder.add("r5", "r1", "r4")
    builder.clflush(0, "r5")
    builder.add("r2", "r2", 1)
    builder.blt("r2", "r3", label)


def emit_warm_loop(
    builder: ProgramBuilder, layout: AttackLayout, options: AttackOptions
) -> None:
    """Touch every probe line once (fills L2; Evict+Reload phase 0)."""
    label = builder.fresh_label("warm")
    builder.li("r1", layout.probe_base)
    builder.li("r2", 0)
    builder.li("r3", options.num_indices)
    builder.label(label)
    builder.mul("r4", "r2", options.scale)
    builder.add("r5", "r1", "r4")
    builder.load("r6", 0, "r5")
    builder.add("r2", "r2", 1)
    builder.blt("r2", "r3", label)


def emit_evict_loop(
    builder: ProgramBuilder, layout: AttackLayout, options: AttackOptions
) -> None:
    """Evict+Reload phase 1: load two set-congruent ways per probe index."""
    label = builder.fresh_label("evict")
    builder.li("r1", layout.probe_base)
    builder.li("r2", 0)
    builder.li("r3", options.num_indices)
    builder.label(label)
    builder.mul("r4", "r2", options.scale)
    builder.add("r5", "r1", "r4")
    builder.load("r6", layout.evict_offset_1, "r5")
    builder.load("r6", layout.evict_offset_2, "r5")
    builder.add("r2", "r2", 1)
    builder.blt("r2", "r3", label)


def emit_prime_loop(
    builder: ProgramBuilder, layout: AttackLayout, options: AttackOptions
) -> None:
    """Prime+Probe phase 1: fill both L1 ways of every monitored set."""
    label = builder.fresh_label("prime")
    builder.li("r1", layout.probe_base)
    builder.li("r2", 0)
    builder.li("r3", options.num_indices)
    builder.label(label)
    builder.mul("r4", "r2", options.scale)
    builder.add("r5", "r1", "r4")
    builder.load("r6", layout.evict_offset_1, "r5")
    builder.load("r6", layout.evict_offset_2, "r5")
    builder.add("r2", "r2", 1)
    builder.blt("r2", "r3", label)


def emit_prefetchw_loop(
    builder: ProgramBuilder, layout: AttackLayout, options: AttackOptions
) -> None:
    """Adversarial Prefetch phase 1: take ownership of every probe line.

    ``prefetchw`` pulls each line into the attacker's L1 *exclusively* and
    invalidates any other core's copy; a later access by the victim steals
    the line back, which the probe phase detects as the L1 miss.
    """
    label = builder.fresh_label("ownw")
    builder.li("r1", layout.probe_base)
    builder.li("r2", 0)
    builder.li("r3", options.num_indices)
    builder.label(label)
    builder.mul("r4", "r2", options.scale)
    builder.add("r5", "r1", "r4")
    builder.prefetchw(0, "r5")
    builder.add("r2", "r2", 1)
    builder.blt("r2", "r3", label)


def emit_noise_block(
    builder: ProgramBuilder, layout: AttackLayout, options: AttackOptions
) -> None:
    """C3 noise: ``noise_loads`` benign loads with distinct PCs.

    Each load touches a fixed line on a set ≡ 4 (mod 8) — never a probe
    set — so the noise thrashes the Access Tracker's buffers without
    disturbing the attack's cache footprint.
    """
    builder.li("r20", layout.noise_base)
    for k in range(options.noise_loads):
        builder.load("r22", k * 0x200, "r20")


def emit_victim_direct(
    builder: ProgramBuilder, layout: AttackLayout, options: AttackOptions
) -> None:
    """Phase 2 victim: load the secret from memory, access its line.

    The secret arrives from memory, so its register is ``NA`` under Table
    III and the multiply by ``scale`` gives the access the scale the Scale
    Tracker needs (paper Fig. 5).  The secret cell is declared as a taint
    source (``.secret``), so static analysis proves the final load is
    secret-addressed (``AN-SECRET-ADDR``).
    """
    builder.taint_source(layout.secret_addr)
    builder.li("r1", layout.probe_base)
    builder.li("r11", layout.secret_addr)
    builder.load("r10", 0, "r11")
    builder.mul("r4", "r10", options.scale)
    builder.add("r5", "r1", "r4")
    builder.load("r6", 0, "r5")


def emit_victim(
    builder: ProgramBuilder, layout: AttackLayout, options: AttackOptions
) -> None:
    """Phase-2 victim dispatch: direct access or a registered crypto victim.

    ``options.victim`` names the victim; ``"direct"`` is the paper's single
    secret-dependent access, anything else resolves through the crypto
    registry (imported lazily — :mod:`repro.workloads.crypto` itself
    imports this package's layout, so a module-level import would cycle).
    """
    if options.victim == "direct":
        emit_victim_direct(builder, layout, options)
        return
    from repro.workloads.crypto import get_victim

    get_victim(options.victim).emit(builder, layout, options)


def emit_victim_spectre(
    builder: ProgramBuilder, layout: AttackLayout, options: AttackOptions
) -> None:
    """Training loop + one out-of-bounds call: genuine Spectre v1.

    ``idx_seq`` holds ``train_rounds`` in-bounds indices followed by the
    out-of-bounds index; the bounds check is trained taken and mispredicts
    on the final iteration, transiently reading ``array1[oob]`` (the secret)
    and touching ``probe_base + secret*scale``.
    """
    loop = builder.fresh_label("train")
    in_bounds = builder.fresh_label("inb")
    out = builder.fresh_label("vend")
    builder.li("r27", layout.array1_base)
    builder.li("r28", 0)
    builder.li("r29", options.train_rounds + 1)
    builder.label(loop)
    # Real PoCs flush the eviction set every round; this also clears the
    # cache pollution left by the in-bounds training accesses.
    emit_flush_loop(builder, layout, options)
    builder.li("r1", layout.probe_base)
    # idx = idx_seq[t]  (from memory: NA under Table III)
    builder.li("r4", layout.idx_seq_base)
    builder.mul("r12", "r28", 8)
    builder.add("r4", "r4", "r12")
    builder.load("r10", 0, "r4")
    # bounds check (the Spectre gadget)
    builder.li("r13", layout.array1_size_addr)
    builder.load("r11", 0, "r13")
    builder.blt("r10", "r11", in_bounds)
    builder.jmp(out)
    builder.label(in_bounds)
    builder.mul("r12", "r10", 8)
    builder.add("r12", "r27", "r12")
    builder.load("r13", 0, "r12")  # array1[idx] — the secret when OOB
    builder.mul("r14", "r13", options.scale)
    builder.add("r15", "r1", "r14")
    builder.load("r16", 0, "r15")  # secret-dependent access
    builder.label(out)
    builder.add("r28", "r28", 1)
    builder.blt("r28", "r29", loop)


def emit_probe_loop(
    builder: ProgramBuilder,
    layout: AttackLayout,
    options: AttackOptions,
    base_offset: int = 0,
    second_way_offset: int | None = None,
    start_index: int = 0,
) -> None:
    """Phase 3: measure every probe index in pseudo-random order.

    The measured latency is stored to ``results_base + idx*8``.  The probed
    address is ``probe_base + base_offset + idx*scale`` (Prime+Probe probes
    the attacker's own set-congruent array via ``base_offset``).  With
    ``second_way_offset`` set the measurement covers two set-congruent
    loads.  ``noise_c4`` interleaves a non-eviction access (+0x80) through
    the *same* probe load PC on odd iterations; the probe index then
    advances only after the odd (noise) sub-iteration, so every eviction
    line is still measured exactly once.
    """
    loop = builder.fresh_label("probe")
    iterations = options.num_indices * (2 if options.noise_c4 else 1)
    step = 1 if options.sequential_probe else options.probe_step
    builder.li("r1", layout.probe_base)
    builder.li("r19", layout.results_base)
    builder.li("r2", 0)
    builder.li("r3", iterations)
    builder.li("r17", start_index)  # current probe index (register-resident)
    builder.li("r15", options.num_indices)
    builder.label(loop)
    builder.mul("r4", "r17", options.scale)
    builder.add("r5", "r1", "r4")
    if options.noise_c4:
        # Odd iterations re-aim the same probe load at a non-eviction line.
        builder.and_("r21", "r2", 1)
        builder.mul("r21", "r21", 0x80)
        builder.add("r5", "r5", "r21")
    builder.fence()  # real attacks serialise (lfence) before timing
    builder.rdcycle("r7")
    if options.probe_kind == "prefetch":
        # Timed software prefetch: same latency classes as a load, but no
        # demand access for a tracker to observe (Adversarial Prefetch A2).
        builder.prefetch(base_offset, "r5")
        if second_way_offset is not None:
            builder.prefetch(second_way_offset, "r5")
    else:
        builder.load("r6", base_offset, "r5")  # the probe load (single PC)
        if second_way_offset is not None:
            builder.load("r6", second_way_offset, "r5")
    builder.rdcycle("r8")
    builder.sub("r9", "r8", "r7")
    skip_store = builder.fresh_label("skipst")
    if options.noise_c4:
        builder.bne("r21", "zero", skip_store)
    builder.mul("r4", "r17", layout.results_stride)
    builder.add("r4", "r19", "r4")
    builder.store("r9", 0, "r4")
    if options.noise_c4:
        builder.label(skip_store)
    if options.noise_c3:
        emit_noise_block(builder, layout, options)
    if options.probe_gap_cycles:
        emit_delay(builder, options.probe_gap_cycles)
    no_step = builder.fresh_label("nostep")
    if options.noise_c4:
        # Advance the index only after the odd (noise) sub-iteration.
        builder.beq("r21", "zero", no_step)
    builder.add("r17", "r17", step)
    wrap_check = builder.fresh_label("wrapchk")
    wrap_done = builder.fresh_label("wrapdone")
    builder.label(wrap_check)
    builder.blt("r17", "r15", wrap_done)
    builder.sub("r17", "r17", "r15")
    builder.jmp(wrap_check)
    builder.label(wrap_done)
    if options.noise_c4:
        builder.label(no_step)
    builder.add("r2", "r2", 1)
    builder.blt("r2", "r3", loop)


def emit_spin_wait(builder: ProgramBuilder, flag_addr: int) -> None:
    """Spin until the 64-bit flag at ``flag_addr`` becomes non-zero."""
    label = builder.fresh_label("spin")
    builder.li("r23", flag_addr)
    builder.label(label)
    builder.load("r22", 0, "r23")
    builder.beq("r22", "zero", label)


def emit_signal(builder: ProgramBuilder, flag_addr: int) -> None:
    """Set the 64-bit flag at ``flag_addr`` to 1."""
    builder.li("r23", flag_addr)
    builder.li("r22", 1)
    builder.store("r22", 0, "r23")
