"""Leakage scoring for scenario trials: success rate + mutual information.

Two complementary scores over a set of :class:`~repro.runner.ScenarioProbe`
trials (same attack × victim × defense, different secrets):

* **attacker success rate** — the fraction of trials whose candidate set
  singles out exactly the victim's expected access footprint (the
  scenario-level generalisation of the paper's "uniquely recovers the
  secret" criterion; PCG-style evaluations score defenses the same way).
* **mutual information** — a plug-in (maximum-likelihood) estimate of
  ``I(S; X)`` in bits between the trial secret ``S`` (a nibble for the
  bundled crypto victims) and the attacker's observable ``X``.  ``X`` is
  the *candidate set* — the per-index latencies binarised by the attack's
  own hit threshold — which is precisely the information the attacker's
  decision procedure keeps from the raw timings.  The estimate treats the
  trials as one sample per secret and computes
  ``H(S) + H(X) - H(S, X)`` over the empirical joint distribution: with
  every secret producing a distinct candidate set the score reaches its
  ceiling ``log2(#secrets)`` (total leakage); when the defense makes the
  observable indistinguishable across secrets it falls to 0.

The estimator is deliberately simple — the simulator is deterministic per
configuration, so there is no sampling noise to correct for — and its
ceiling is always reported alongside so a score can be read as a
fraction of the recoverable secret.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ConfigError
from repro.runner import ScenarioProbe


@dataclass(frozen=True)
class LeakageScore:
    """Aggregated verdict for one attack × victim × defense scenario."""

    trials: int
    success_rate: float
    mi_bits: float
    mi_ceiling_bits: float

    @property
    def mi_fraction(self) -> float:
        """Leaked fraction of the recoverable secret (0..1)."""
        if self.mi_ceiling_bits == 0:
            return 0.0
        return self.mi_bits / self.mi_ceiling_bits


def _entropy(counts: Iterable[int], total: int) -> float:
    return -sum(
        (count / total) * math.log2(count / total) for count in counts if count
    )


def mutual_information_bits(
    secrets: Sequence[int], observations: Sequence[tuple[int, ...]]
) -> float:
    """Plug-in ``I(S; X)`` in bits over paired (secret, observation) samples."""
    if len(secrets) != len(observations):
        raise ConfigError(
            f"{len(secrets)} secrets vs {len(observations)} observations"
        )
    total = len(secrets)
    if total == 0:
        return 0.0
    h_s = _entropy(Counter(secrets).values(), total)
    h_x = _entropy(Counter(observations).values(), total)
    h_sx = _entropy(Counter(zip(secrets, observations)).values(), total)
    # Clamp tiny negative float residue from the three-entropy difference.
    return max(0.0, h_s + h_x - h_sx)


def score_trials(probes: Sequence[ScenarioProbe]) -> LeakageScore:
    """Score one scenario's trials (one probe per secret)."""
    if not probes:
        raise ConfigError("cannot score an empty trial set")
    secrets = [probe.secret for probe in probes]
    observations = [tuple(sorted(probe.candidates)) for probe in probes]
    mi = mutual_information_bits(secrets, observations)
    ceiling = _entropy(Counter(secrets).values(), len(secrets))
    return LeakageScore(
        trials=len(probes),
        success_rate=sum(probe.succeeded for probe in probes) / len(probes),
        mi_bits=mi,
        mi_ceiling_bits=ceiling,
    )
