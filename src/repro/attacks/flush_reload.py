"""Flush+Reload (Yarom & Falkner 2014 — paper ref. [2]).

Phase 1 flushes every eviction cacheline with ``clflush``; phase 2 the
victim performs one secret-dependent access (directly, or via a genuine
Spectre-v1 transient in ``victim_mode="spectre"``); phase 3 the attacker
reloads every line and times it — the single fast line reveals the secret.

The cross-core variant (paper Fig. 4) runs the victim on a second core:
the attacker then distinguishes the shared-LLC hit (the line the victim
pulled into L2) from memory misses.
"""

from __future__ import annotations

from repro.attacks.base import CacheAttack
from repro.attacks.snippets import (
    emit_flush_loop,
    emit_probe_loop,
    emit_signal,
    emit_spin_wait,
    emit_victim,
    emit_victim_spectre,
)
from repro.errors import ConfigError
from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program


class FlushReloadAttack(CacheAttack):
    """Flush+Reload: fast reload (< threshold) marks the candidate."""

    name = "Flush+Reload"
    hit_threshold = 65  # L1/L2 hits sit well below, memory well above
    candidate_is_slow = False

    def _common_data(self, builder: ProgramBuilder) -> None:
        layout, options = self.layout, self.options
        builder.fill(
            layout.results_base,
            count=options.num_indices,
            value=0,
            stride=layout.results_stride,
        )
        if options.victim_mode == "spectre":
            builder.data(layout.array1_base, list(range(8)))
            builder.data(layout.array1_size_addr, [8])
            builder.data(layout.spectre_secret_addr, [options.secret])
            sequence = [t % 8 for t in range(options.train_rounds)]
            sequence.append(layout.oob_index)
            builder.data(layout.idx_seq_base, sequence)
        else:
            builder.data(layout.secret_addr, [options.secret])

    def build_programs(self) -> list[Program]:
        if self.options.cross_core:
            return self._build_cross_core()
        return [self._build_single_core()]

    def _build_single_core(self) -> Program:
        layout, options = self.layout, self.options
        builder = ProgramBuilder("flush_reload")
        self._common_data(builder)
        if options.victim_mode == "spectre":
            # The spectre victim flushes the eviction set inside its
            # training loop (real PoC structure), so no separate phase 1.
            emit_victim_spectre(builder, layout, options)
        else:
            emit_flush_loop(builder, layout, options)
            emit_victim(builder, layout, options)
        emit_probe_loop(builder, layout, options)
        builder.halt()
        return builder.build(strict=True)

    def _build_cross_core(self) -> list[Program]:
        layout, options = self.layout, self.options
        if options.victim_mode == "spectre":
            raise ConfigError(
                "cross-core Flush+Reload uses the direct victim; run the "
                "spectre variant single-core"
            )
        attacker = ProgramBuilder("flush_reload_attacker")
        self._common_data(attacker)
        attacker.data(layout.flag_base, [0, 0], stride=64)
        emit_flush_loop(attacker, layout, options)
        emit_signal(attacker, layout.flag_attacker_ready)
        emit_spin_wait(attacker, layout.flag_victim_done)
        emit_probe_loop(attacker, layout, options)
        attacker.halt()

        victim = ProgramBuilder("flush_reload_victim")
        emit_spin_wait(victim, layout.flag_attacker_ready)
        emit_victim(victim, layout, options)
        emit_signal(victim, layout.flag_victim_done)
        victim.halt()
        return [attacker.build(strict=True), victim.build(strict=True)]
