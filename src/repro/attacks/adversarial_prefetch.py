"""Adversarial Prefetch (Guo et al., USENIX Security 2022 — PAPERS.md).

A cross-core attack family built entirely on the software-prefetch ISA:
``prefetchw`` takes *exclusive ownership* of a line (invalidating every
other core's copy), and any later access by another core steals the line
back out of the owner's L1.  Both variants exploit that steal:

1. ``prefetchw`` every probe line — the attacker now owns all of them
   exclusively in its own L1.
2. The victim performs its one secret-dependent access on the other core;
   that access (an L2 hit) migrates exactly the secret's line out of the
   attacker's L1.
3. The attacker measures each line; the one that left L1 (an L2 refill,
   ~17 cycles, vs the ~5-cycle L1 hit) reveals the secret.

The variants differ only in the probe primitive of phase 3:

* **A1** (``PREFETCH+RELOAD``-shaped) probes with demand *loads* — an
  Evict+Reload-shaped measurement where ``prefetchw`` replaced the
  eviction loop, so no ``clflush`` and no shared-memory flush rights are
  needed.
* **A2** (``PREFETCH+PREFETCH``-shaped) probes with timed software
  *prefetches*.  A prefetch's latency distinguishes L1/L2/MEM residency
  exactly like a load's, but it is not demand traffic: no access-history
  tracker (PREFENDER's AT, PCG-style random prefetchers, ...) ever
  observes the probe.  Only defenses that act on the *victim's* side —
  PREFENDER's Scale Tracker decoys, which migrate the secret's neighbours
  out of the attacker's L1 too — can make the measurement ambiguous.
"""

from __future__ import annotations

from repro.attacks.base import CacheAttack
from repro.attacks.snippets import (
    emit_prefetchw_loop,
    emit_probe_loop,
    emit_signal,
    emit_spin_wait,
    emit_victim,
)
from repro.errors import ConfigError
from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program


class AdversarialPrefetchAttack(CacheAttack):
    """Shared plumbing for both variants: own, wait, probe."""

    # L1 hit measures ~5, the stolen line's L2 refill ~17 (Evict+Reload's
    # latency classes: the threshold sits between them).
    hit_threshold = 10
    candidate_is_slow = True
    variant = "a1"

    def build_programs(self) -> list[Program]:
        layout, options = self.layout, self.options
        if not options.cross_core:
            raise ConfigError(
                "adversarial-prefetch is a cross-core attack; "
                "cross_core=False has no victim to steal lines from"
            )
        if options.victim_mode != "direct":
            raise ConfigError(
                "adversarial-prefetch uses the direct victim; the spectre "
                "victim is a single-core Flush+Reload variant"
            )
        attacker = ProgramBuilder(f"adversarial_prefetch_{self.variant}")
        attacker.fill(
            layout.results_base,
            count=options.num_indices,
            value=0,
            stride=layout.results_stride,
        )
        attacker.data(layout.secret_addr, [options.secret])
        attacker.data(layout.flag_base, [0, 0], stride=64)
        emit_prefetchw_loop(attacker, layout, options)
        emit_signal(attacker, layout.flag_attacker_ready)
        emit_spin_wait(attacker, layout.flag_victim_done)
        emit_probe_loop(attacker, layout, options)
        attacker.halt()

        victim = ProgramBuilder(f"adversarial_prefetch_{self.variant}_victim")
        emit_spin_wait(victim, layout.flag_attacker_ready)
        emit_victim(victim, layout, options)
        emit_signal(victim, layout.flag_victim_done)
        victim.halt()
        return [attacker.build(strict=True), victim.build(strict=True)]


class AdversarialPrefetchA1(AdversarialPrefetchAttack):
    """A1: prefetchw ownership + demand-load reload probe."""

    name = "AdvPrefetch-A1"
    variant = "a1"
    DEFAULT_OPTIONS = {"cross_core": True, "probe_kind": "load"}


class AdversarialPrefetchA2(AdversarialPrefetchAttack):
    """A2: prefetchw ownership + timed software-prefetch probe."""

    name = "AdvPrefetch-A2"
    variant = "a2"
    DEFAULT_OPTIONS = {"cross_core": True, "probe_kind": "prefetch"}
