"""Programs: instruction sequences plus initial data segments.

A :class:`Program` owns a list of :class:`~repro.isa.instructions.Instruction`
objects, a label table, and :class:`DataSegment` initialisers that populate
main memory before execution.  Instruction addresses are
``code_base + 4 * index`` — the Access Tracker keys its buffers on these
PC values exactly as the hardware keys on instruction addresses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AssemblyError
from repro.isa.decode import decode_program
from repro.isa.instructions import BRANCH_OPS, Instruction

DEFAULT_CODE_BASE = 0x0040_0000
INSTRUCTION_SIZE = 4


@dataclass(frozen=True)
class DataSegment:
    """Initial memory contents: ``values[i]`` stored at ``base + i*stride``."""

    base: int
    values: tuple[int, ...]
    stride: int = 8

    def addresses(self) -> list[int]:
        """The byte addresses this segment initialises."""
        return [self.base + i * self.stride for i in range(len(self.values))]


@dataclass
class Program:
    """An executable program: code, labels, and initial data."""

    instructions: list[Instruction] = field(default_factory=list)
    labels: dict[str, int] = field(default_factory=dict)
    data_segments: list[DataSegment] = field(default_factory=list)
    name: str = "program"
    code_base: int = DEFAULT_CODE_BASE
    _finalized: bool = field(default=False, repr=False)
    #: Dispatch tuples built by :meth:`finalize` (see repro.isa.decode); the
    #: timing core executes these instead of re-inspecting ``op`` strings.
    decoded: tuple = field(default=(), repr=False, compare=False)

    def pc_of_index(self, index: int) -> int:
        """Instruction address for instruction ``index``."""
        return self.code_base + INSTRUCTION_SIZE * index

    def index_of_pc(self, pc: int) -> int:
        """Instruction index for address ``pc``."""
        return (pc - self.code_base) // INSTRUCTION_SIZE

    def add_label(self, label: str) -> None:
        """Attach ``label`` to the next instruction to be appended."""
        if label in self.labels:
            raise AssemblyError(f"duplicate label: {label!r}")
        self.labels[label] = len(self.instructions)

    def append(self, instruction: Instruction) -> None:
        """Append one instruction (program must not be finalized yet)."""
        if self._finalized:
            raise AssemblyError("cannot append to a finalized program")
        self.instructions.append(instruction)

    def add_data(self, segment: DataSegment) -> None:
        """Register an initial-data segment."""
        self.data_segments.append(segment)

    def finalize(self) -> "Program":
        """Resolve branch targets and pre-decode into dispatch tuples.

        Branch targets go from label names to instruction indices; then the
        whole instruction list is decoded once (:mod:`repro.isa.decode`)
        into the tuples the timing core dispatches through.  Returns self,
        for chaining.  Idempotent.
        """
        if self._finalized:
            return self
        for position, instruction in enumerate(self.instructions):
            if instruction.op in BRANCH_OPS or instruction.op == "jmp":
                target = instruction.target
                if isinstance(target, str):
                    if target not in self.labels:
                        raise AssemblyError(
                            f"undefined label {target!r} at instruction {position}"
                        )
                    instruction.target = self.labels[target]
                elif not isinstance(target, int):
                    raise AssemblyError(
                        f"branch at instruction {position} has no target"
                    )
        self.decoded = decode_program(
            self.instructions, self.code_base, INSTRUCTION_SIZE
        )
        self._finalized = True
        return self

    @property
    def finalized(self) -> bool:
        return self._finalized

    def __len__(self) -> int:
        return len(self.instructions)

    def to_text(self) -> str:
        """Disassemble back to readable assembly (labels inlined)."""
        label_at: dict[int, list[str]] = {}
        for label, index in self.labels.items():
            label_at.setdefault(index, []).append(label)
        lines = [f".name {self.name}"]
        for segment in self.data_segments:
            values = " ".join(str(v) for v in segment.values)
            lines.append(f".data {segment.base:#x} stride={segment.stride} {values}")
        for index, instruction in enumerate(self.instructions):
            for label in label_at.get(index, []):
                lines.append(f"{label}:")
            lines.append(f"    {instruction.to_text()}")
        return "\n".join(lines)
