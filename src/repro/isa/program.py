"""Programs: instruction sequences plus initial data segments.

A :class:`Program` owns a list of :class:`~repro.isa.instructions.Instruction`
objects, a label table, and :class:`DataSegment` initialisers that populate
main memory before execution.  Instruction addresses are
``code_base + 4 * index`` — the Access Tracker keys its buffers on these
PC values exactly as the hardware keys on instruction addresses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import AnalysisError, AssemblyError
from repro.isa.decode import decode_program
from repro.isa.instructions import BRANCH_OPS, Instruction

if TYPE_CHECKING:  # pragma: no cover — import cycle broken at runtime
    from repro.analysis.analyzer import ProgramAnalysis

DEFAULT_CODE_BASE = 0x0040_0000
INSTRUCTION_SIZE = 4


@dataclass(frozen=True)
class DataSegment:
    """Initial memory contents: ``values[i]`` stored at ``base + i*stride``."""

    base: int
    values: tuple[int, ...]
    stride: int = 8

    def addresses(self) -> list[int]:
        """The byte addresses this segment initialises."""
        return [self.base + i * self.stride for i in range(len(self.values))]


@dataclass
class Program:
    """An executable program: code, labels, and initial data."""

    instructions: list[Instruction] = field(default_factory=list)
    labels: dict[str, int] = field(default_factory=dict)
    data_segments: list[DataSegment] = field(default_factory=list)
    name: str = "program"
    code_base: int = DEFAULT_CODE_BASE
    _finalized: bool = field(default=False, repr=False)
    #: Dispatch tuples built by :meth:`finalize` (see repro.isa.decode); the
    #: timing core executes these instead of re-inspecting ``op`` strings.
    decoded: tuple[tuple[Any, ...], ...] = field(
        default=(), repr=False, compare=False
    )
    #: 1-based source line of each instruction (assembled programs only;
    #: empty for builder-constructed programs).
    source_lines: list[int] = field(
        default_factory=list, repr=False, compare=False
    )
    #: Static-analysis suppressions: ``(rule, instruction index | None)``.
    #: ``None`` silences the rule program-wide.  See :meth:`allow`.
    suppressions: set[tuple[str, int | None]] = field(
        default_factory=set, repr=False, compare=False
    )
    #: Byte addresses holding secret values (``.secret`` directive /
    #: :meth:`taint_source`).  The taint analysis seeds from loads that
    #: resolve to one of these cells.  See :mod:`repro.analysis.taint`.
    taint_sources: set[int] = field(
        default_factory=set, repr=False, compare=False
    )
    #: :class:`repro.analysis.ProgramAnalysis` cached by a strict finalize.
    analysis: "ProgramAnalysis | None" = field(
        default=None, repr=False, compare=False
    )

    def pc_of_index(self, index: int) -> int:
        """Instruction address for instruction ``index``."""
        return self.code_base + INSTRUCTION_SIZE * index

    def index_of_pc(self, pc: int) -> int:
        """Instruction index for address ``pc``."""
        return (pc - self.code_base) // INSTRUCTION_SIZE

    def add_label(self, label: str) -> None:
        """Attach ``label`` to the next instruction to be appended."""
        if label in self.labels:
            raise AssemblyError(f"duplicate label: {label!r}")
        self.labels[label] = len(self.instructions)

    def append(self, instruction: Instruction) -> None:
        """Append one instruction (program must not be finalized yet)."""
        if self._finalized:
            raise AssemblyError("cannot append to a finalized program")
        self.instructions.append(instruction)

    def add_data(self, segment: DataSegment) -> None:
        """Register an initial-data segment."""
        self.data_segments.append(segment)

    def taint_source(self, address: int) -> "Program":
        """Declare the word at ``address`` as a secret-taint source.

        Mirrors the assembly-level ``.secret ADDR`` directive; re-emitted
        by :meth:`to_text`, so declarations survive round trips.  The
        static taint analysis (:mod:`repro.analysis.taint`) seeds from
        loads whose resolved address is a declared cell.
        """
        if not isinstance(address, int) or address < 0:
            raise AssemblyError(
                f"taint source address must be a non-negative int, "
                f"got {address!r}"
            )
        self.taint_sources.add(address)
        return self

    def allow(self, rule: str, index: int | None = None) -> "Program":
        """Suppress analysis ``rule`` — program-wide, or at one instruction.

        Mirrors the assembly-level ``; analysis: allow RULE`` pragma (and
        the ``.allow RULE`` directive for the program-wide form); both are
        re-emitted by :meth:`to_text`, so suppressions survive round trips.
        """
        from repro.analysis.analyzer import ANALYSIS_RULES

        if rule not in ANALYSIS_RULES:
            known = ", ".join(sorted(ANALYSIS_RULES))
            raise AssemblyError(
                f"unknown analysis rule {rule!r} (known: {known})"
            )
        self.suppressions.add((rule, index))
        return self

    def _source_line(self, position: int) -> int | None:
        if position < len(self.source_lines):
            return self.source_lines[position]
        return None

    def finalize(self, strict: bool = False) -> "Program":
        """Resolve branch targets and pre-decode into dispatch tuples.

        Branch targets go from label names to instruction indices; then the
        whole instruction list is decoded once (:mod:`repro.isa.decode`)
        into the tuples the timing core dispatches through.  Returns self,
        for chaining.  Idempotent.

        With ``strict=True`` the static analyzer (:mod:`repro.analysis`)
        runs over the decoded program and any unsuppressed finding raises
        :class:`~repro.errors.AnalysisError`.  Every built-in workload,
        crypto victim and attack snippet builds strictly, so a malformed
        program fails at build time instead of mid-simulation.
        """
        if not self._finalized:
            for position, instruction in enumerate(self.instructions):
                if instruction.op in BRANCH_OPS or instruction.op == "jmp":
                    target = instruction.target
                    if isinstance(target, str):
                        if target not in self.labels:
                            raise AssemblyError(
                                f"undefined label {target!r} at instruction "
                                f"{position}",
                                self._source_line(position),
                            )
                        instruction.target = self.labels[target]
                    elif not isinstance(target, int):
                        raise AssemblyError(
                            f"branch at instruction {position} has no target",
                            self._source_line(position),
                        )
            self.decoded = decode_program(
                self.instructions, self.code_base, INSTRUCTION_SIZE
            )
            self._finalized = True
        if strict and self.analysis is None:
            self._check_analysis()
        return self

    def _check_analysis(self) -> None:
        """Run the analyzer; raise on any unsuppressed blocking finding.

        Info-severity findings (e.g. ``AN-SECRET-ADDR``, which marks the
        leak surface a defense must cover) never block a build — they are
        kept on the cached analysis for reporting.
        """
        from repro.analysis.analyzer import analyze_program, render_findings

        analysis = analyze_program(self)
        blocking = analysis.blocking()
        if blocking:
            lines = render_findings(self, analysis)
            raise AnalysisError(
                f"static analysis rejected program {self.name!r}:\n"
                + "\n".join(f"  {line}" for line in lines),
                findings=blocking,
            )
        self.analysis = analysis

    @property
    def finalized(self) -> bool:
        return self._finalized

    def __len__(self) -> int:
        return len(self.instructions)

    def to_text(self) -> str:
        """Disassemble back to assembly that re-assembles identically.

        Finalized branch targets (instruction indices) are rendered as the
        label attached at that index when one exists, so the output
        round-trips through :func:`repro.isa.assembler.assemble` to the
        same decode tuples.  Suppressions come back as ``.allow`` lines
        (program-wide) and ``; analysis: allow`` pragmas (per
        instruction); taint-source declarations come back as ``.secret``
        lines.
        """
        label_at: dict[int, list[str]] = {}
        for label, index in self.labels.items():
            label_at.setdefault(index, []).append(label)
        allow_at: dict[int, list[str]] = {}
        global_allow: list[str] = []
        for rule, index in sorted(
            self.suppressions, key=lambda s: (s[1] is not None, s[1] or 0, s[0])
        ):
            if index is None:
                global_allow.append(rule)
            else:
                allow_at.setdefault(index, []).append(rule)
        lines = [f".name {self.name}"]
        for segment in self.data_segments:
            values = " ".join(str(v) for v in segment.values)
            lines.append(f".data {segment.base:#x} stride={segment.stride} {values}")
        if self.taint_sources:
            addresses = " ".join(
                f"{address:#x}" for address in sorted(self.taint_sources)
            )
            lines.append(f".secret {addresses}")
        if global_allow:
            lines.append(f".allow {' '.join(global_allow)}")
        for index, instruction in enumerate(self.instructions):
            for label in label_at.get(index, []):
                lines.append(f"{label}:")
            target_label: str | None = None
            if instruction.op in BRANCH_OPS or instruction.op == "jmp":
                if isinstance(instruction.target, int):
                    names = label_at.get(instruction.target)
                    if names:
                        target_label = names[0]
            text = instruction.to_text(target_label=target_label)
            rules = allow_at.get(index)
            if rules:
                text = f"{text}  ; analysis: allow {' '.join(rules)}"
            lines.append(f"    {text}")
        for label in label_at.get(len(self.instructions), []):
            lines.append(f"{label}:")
        return "\n".join(lines)
