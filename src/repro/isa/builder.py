"""Fluent Python builder for ISA programs.

Workload generators and attack constructors assemble programs
programmatically; the builder keeps that code close to assembly while
avoiding string round-trips::

    b = ProgramBuilder("spin")
    b.li("r1", 100)
    b.label("loop")
    b.sub("r1", "r1", 1)
    b.bne("r1", "zero", "loop")
    b.halt()
    program = b.build()
"""

from __future__ import annotations

from repro.isa.instructions import Instruction
from repro.isa.program import DataSegment, Program
from repro.isa.registers import register_index


class ProgramBuilder:
    """Accumulates instructions/labels/data and emits a finalized Program."""

    def __init__(self, name: str = "program") -> None:
        self._program = Program(name=name)
        self._label_counter = 0

    # -- infrastructure -----------------------------------------------------

    def build(self, strict: bool = False) -> Program:
        """Finalize (resolve labels) and return the program.

        ``strict=True`` runs the static analyzer and raises
        :class:`~repro.errors.AnalysisError` on any unsuppressed finding;
        all built-in workload and attack generators build strictly.
        """
        return self._program.finalize(strict=strict)

    def allow(self, rule: str, index: "int | None" = None) -> "ProgramBuilder":
        """Suppress analysis ``rule`` (see :meth:`Program.allow`).

        With ``index=None`` the next-emitted instruction's index is *not*
        implied — the suppression is program-wide.
        """
        self._program.allow(rule, index=index)
        return self

    def label(self, name: str) -> "ProgramBuilder":
        self._program.add_label(name)
        return self

    def fresh_label(self, prefix: str = "L") -> str:
        """Generate a unique label name (not yet attached)."""
        self._label_counter += 1
        return f"{prefix}_{self._label_counter}"

    def data(self, base: int, values: list[int], stride: int = 8) -> "ProgramBuilder":
        self._program.add_data(
            DataSegment(base=base, values=tuple(values), stride=stride)
        )
        return self

    def fill(
        self, base: int, count: int, value: int = 0, stride: int = 8
    ) -> "ProgramBuilder":
        self._program.add_data(
            DataSegment(base=base, values=(value,) * count, stride=stride)
        )
        return self

    def taint_source(self, address: int) -> "ProgramBuilder":
        """Declare the word at ``address`` a secret (see ``.secret``)."""
        self._program.taint_source(address)
        return self

    def _emit(self, instruction: Instruction) -> "ProgramBuilder":
        self._program.append(instruction)
        return self

    @property
    def instruction_count(self) -> int:
        return len(self._program)

    # -- instructions --------------------------------------------------------

    def li(self, rd: str, imm: int) -> "ProgramBuilder":
        return self._emit(Instruction("li", rd=register_index(rd), imm=imm))

    def mov(self, rd: str, rs: str) -> "ProgramBuilder":
        return self._emit(
            Instruction("mov", rd=register_index(rd), rs0=register_index(rs))
        )

    def _alu(self, op: str, rd: str, rs0: str, operand: "str | int") -> "ProgramBuilder":
        if isinstance(operand, str):
            return self._emit(
                Instruction(
                    op,
                    rd=register_index(rd),
                    rs0=register_index(rs0),
                    rs1=register_index(operand),
                )
            )
        return self._emit(
            Instruction(
                op, rd=register_index(rd), rs0=register_index(rs0), imm=operand
            )
        )

    def add(self, rd: str, rs0: str, operand: "str | int") -> "ProgramBuilder":
        return self._alu("add", rd, rs0, operand)

    def sub(self, rd: str, rs0: str, operand: "str | int") -> "ProgramBuilder":
        return self._alu("sub", rd, rs0, operand)

    def mul(self, rd: str, rs0: str, operand: "str | int") -> "ProgramBuilder":
        return self._alu("mul", rd, rs0, operand)

    def sll(self, rd: str, rs0: str, operand: "str | int") -> "ProgramBuilder":
        return self._alu("sll", rd, rs0, operand)

    def srl(self, rd: str, rs0: str, operand: "str | int") -> "ProgramBuilder":
        return self._alu("srl", rd, rs0, operand)

    def and_(self, rd: str, rs0: str, operand: "str | int") -> "ProgramBuilder":
        return self._alu("and", rd, rs0, operand)

    def or_(self, rd: str, rs0: str, operand: "str | int") -> "ProgramBuilder":
        return self._alu("or", rd, rs0, operand)

    def xor(self, rd: str, rs0: str, operand: "str | int") -> "ProgramBuilder":
        return self._alu("xor", rd, rs0, operand)

    def load(self, rd: str, offset: int, base: str) -> "ProgramBuilder":
        return self._emit(
            Instruction(
                "load", rd=register_index(rd), rs0=register_index(base), imm=offset
            )
        )

    def store(self, rs: str, offset: int, base: str) -> "ProgramBuilder":
        return self._emit(
            Instruction(
                "store", rs0=register_index(rs), rs1=register_index(base), imm=offset
            )
        )

    def clflush(self, offset: int, base: str) -> "ProgramBuilder":
        return self._emit(
            Instruction("clflush", rs0=register_index(base), imm=offset)
        )

    def prefetch(self, offset: int, base: str) -> "ProgramBuilder":
        return self._emit(
            Instruction("prefetch", rs0=register_index(base), imm=offset)
        )

    def prefetchw(self, offset: int, base: str) -> "ProgramBuilder":
        return self._emit(
            Instruction("prefetchw", rs0=register_index(base), imm=offset)
        )

    def rdcycle(self, rd: str) -> "ProgramBuilder":
        return self._emit(Instruction("rdcycle", rd=register_index(rd)))

    def _branch(self, op: str, rs0: str, rs1: str, target: str) -> "ProgramBuilder":
        return self._emit(
            Instruction(
                op,
                rs0=register_index(rs0),
                rs1=register_index(rs1),
                target=target,
            )
        )

    def beq(self, rs0: str, rs1: str, target: str) -> "ProgramBuilder":
        return self._branch("beq", rs0, rs1, target)

    def bne(self, rs0: str, rs1: str, target: str) -> "ProgramBuilder":
        return self._branch("bne", rs0, rs1, target)

    def blt(self, rs0: str, rs1: str, target: str) -> "ProgramBuilder":
        return self._branch("blt", rs0, rs1, target)

    def bge(self, rs0: str, rs1: str, target: str) -> "ProgramBuilder":
        return self._branch("bge", rs0, rs1, target)

    def jmp(self, target: str) -> "ProgramBuilder":
        return self._emit(Instruction("jmp", target=target))

    def nop(self, count: int = 1) -> "ProgramBuilder":
        for _ in range(count):
            self._emit(Instruction("nop"))
        return self

    def fence(self) -> "ProgramBuilder":
        return self._emit(Instruction("fence"))

    def halt(self) -> "ProgramBuilder":
        return self._emit(Instruction("halt"))
