"""Instruction representation.

A single :class:`Instruction` class with an ``op`` mnemonic covers the whole
ISA; the timing core dispatches on ``op``.  Field meaning by opcode:

===========  =======================================================
``li``       ``rd`` <- ``imm``
``mov``      ``rd`` <- ``rs0``
``add/sub``  ``rd`` <- ``rs0`` (+/-) (``rs1`` or ``imm``)
``mul``      ``rd`` <- ``rs0`` * (``rs1`` or ``imm``)
``sll/srl``  ``rd`` <- ``rs0`` shifted by (``rs1`` or ``imm``)
``and/or/``  ``rd`` <- bitwise op of ``rs0`` and (``rs1`` or ``imm``);
``xor``      these are Table III's "Otherwise" rule for the Scale Tracker
``load``     ``rd`` <- MEM[``rs0`` + ``imm``]
``store``    MEM[``rs1`` + ``imm``] <- ``rs0``
``clflush``  flush the cacheline containing ``rs0`` + ``imm``
``prefetch`` non-faulting read prefetch of the line at ``rs0`` + ``imm``
             into this core's L1D; no register is written, but the
             instruction's latency reflects where the line was found
``prefetchw`` prefetch with write intent (x86 ``prefetchw``): additionally
             takes cross-core ownership, invalidating other cores' L1
             copies of the line
``rdcycle``  ``rd`` <- current cycle count
``beq/bne``  branch to ``target`` when ``rs0`` ==/!= ``rs1``
``blt/bge``  branch to ``target`` on signed </>= comparison
``jmp``      unconditional branch to ``target``
``nop``      no effect (1 cycle)
``fence``    speculation barrier: a transient path stalls here until the
             branch resolves (models lfence/rdtscp serialisation)
``halt``     stop the core
===========  =======================================================

``target`` holds a label string after parsing and an instruction index after
:meth:`repro.isa.program.Program.finalize`.
"""

from __future__ import annotations

from repro.isa.registers import register_name

# Opcode groups used by the core and by the Scale Tracker's Table III rules.
ADD_LIKE_OPS = frozenset({"add", "sub"})
MUL_LIKE_OPS = frozenset({"mul", "sll", "srl"})
OTHER_ALU_OPS = frozenset({"and", "or", "xor"})
ALU_OPS = ADD_LIKE_OPS | MUL_LIKE_OPS | OTHER_ALU_OPS
BRANCH_OPS = frozenset({"beq", "bne", "blt", "bge"})
PREFETCH_OPS = frozenset({"prefetch", "prefetchw"})
MEMORY_OPS = frozenset({"load", "store", "clflush"}) | PREFETCH_OPS
ALL_OPS = (
    ALU_OPS
    | BRANCH_OPS
    | MEMORY_OPS
    | frozenset({"li", "mov", "rdcycle", "jmp", "nop", "fence", "halt"})
)


def _reg(index: int | None) -> str:
    """Register name for a field the opcode guarantees is populated."""
    assert index is not None, "register field unset for this opcode"
    return register_name(index)


class Instruction:
    """One decoded instruction; immutable by convention after finalize."""

    __slots__ = ("op", "rd", "rs0", "rs1", "imm", "target")

    def __init__(
        self,
        op: str,
        rd: int | None = None,
        rs0: int | None = None,
        rs1: int | None = None,
        imm: int | None = None,
        target: "str | int | None" = None,
    ) -> None:
        if op not in ALL_OPS:
            raise ValueError(f"unknown opcode: {op!r}")
        self.op = op
        self.rd = rd
        self.rs0 = rs0
        self.rs1 = rs1
        self.imm = imm
        self.target = target

    def is_branch(self) -> bool:
        """True for conditional branches (not ``jmp``)."""
        return self.op in BRANCH_OPS

    def is_memory(self) -> bool:
        """True for instructions that touch the data cache."""
        return self.op in MEMORY_OPS

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Instruction({self.to_text()})"

    def to_text(self, target_label: str | None = None) -> str:
        """Render the instruction back to assembly text.

        ``target_label`` substitutes a label name for a finalized (integer)
        branch target — :meth:`repro.isa.program.Program.to_text` passes
        the label attached at the target index so output re-assembles.
        """
        op = self.op
        if op == "li":
            return f"li {_reg(self.rd)}, {self.imm}"
        if op == "mov":
            return f"mov {_reg(self.rd)}, {_reg(self.rs0)}"
        if op in ALU_OPS:
            second = (
                register_name(self.rs1) if self.rs1 is not None else str(self.imm)
            )
            return f"{op} {_reg(self.rd)}, {_reg(self.rs0)}, {second}"
        if op == "load":
            return f"load {_reg(self.rd)}, {self.imm}({_reg(self.rs0)})"
        if op == "store":
            return f"store {_reg(self.rs0)}, {self.imm}({_reg(self.rs1)})"
        if op in ("clflush", "prefetch", "prefetchw"):
            return f"{op} {self.imm}({_reg(self.rs0)})"
        if op == "rdcycle":
            return f"rdcycle {_reg(self.rd)}"
        if op in BRANCH_OPS:
            shown = target_label if target_label is not None else self.target
            return f"{op} {_reg(self.rs0)}, {_reg(self.rs1)}, {shown}"
        if op == "jmp":
            jmp_shown = target_label if target_label is not None else self.target
            return f"jmp {jmp_shown}"
        return op
