"""Architectural register file.

Thirty-two 64-bit general purpose registers ``r0``..``r31``.  ``r0`` is
hard-wired to zero (writes are discarded), which gives attack and workload
programs a free zero operand for branches.  ``sp`` and ``ra`` alias ``r30``
and ``r31`` for readability.
"""

from __future__ import annotations

from repro.errors import ExecutionError

NUM_REGISTERS = 32
ZERO_REGISTER = 0
WORD_MASK = (1 << 64) - 1
SIGN_BIT = 1 << 63

REGISTER_ALIASES = {
    "zero": 0,
    "sp": 30,
    "ra": 31,
}

_NAME_BY_INDEX = {index: f"r{index}" for index in range(NUM_REGISTERS)}


def register_index(name: str) -> int:
    """Resolve a register name (``r5``, ``sp``, ``zero``) to its index."""
    text = name.strip().lower()
    if text in REGISTER_ALIASES:
        return REGISTER_ALIASES[text]
    if text.startswith("r") and text[1:].isdigit():
        index = int(text[1:])
        if 0 <= index < NUM_REGISTERS:
            return index
    raise ExecutionError(f"unknown register name: {name!r}")


def register_name(index: int) -> str:
    """Canonical name (``rN``) for a register index."""
    if index not in _NAME_BY_INDEX:
        raise ExecutionError(f"register index out of range: {index}")
    return _NAME_BY_INDEX[index]


def to_signed(value: int) -> int:
    """Interpret a 64-bit unsigned value as two's-complement signed."""
    value &= WORD_MASK
    return value - (1 << 64) if value & SIGN_BIT else value


class RegisterFile:
    """Thirty-two 64-bit registers with a hard-wired zero register."""

    __slots__ = ("_values",)

    def __init__(self) -> None:
        self._values = [0] * NUM_REGISTERS

    def read(self, index: int) -> int:
        """Read the 64-bit unsigned value of register ``index``."""
        return self._values[index]

    def read_signed(self, index: int) -> int:
        """Read register ``index`` as a signed value (for blt/bge)."""
        return to_signed(self._values[index])

    def write(self, index: int, value: int) -> None:
        """Write ``value`` (masked to 64 bits) unless ``index`` is r0."""
        if index == ZERO_REGISTER:
            return
        self._values[index] = value & WORD_MASK

    def snapshot(self) -> list[int]:
        """Copy of all register values (used for speculation checkpoints)."""
        return list(self._values)

    def restore(self, snapshot: list[int]) -> None:
        """Restore register values from :meth:`snapshot`."""
        self._values[:] = snapshot

    def __repr__(self) -> str:
        nonzero = {
            register_name(i): hex(v) for i, v in enumerate(self._values) if v
        }
        return f"RegisterFile({nonzero})"
