"""Two-pass text assembler for the reproduction ISA.

Syntax overview (see ``examples/`` for full programs)::

    .name demo                      ; optional program name
    .equ STRIDE 0x200               ; named constant
    .data 0x10000 stride=8 1 2 3    ; words 1,2,3 at 0x10000 step 8
    .fill 0x20000 count=8 stride=64 value=0
    .secret 0x3002100               ; word holds a secret (taint source)

    start:
        li   r1, STRIDE
        load r2, 0(r1)              ; rd, offset(base)
        add  r3, r1, r2             ; register form
        add  r3, r3, 16             ; immediate form
        beq  r3, zero, start
        halt

Comments start with ``#`` or ``;``.  Labels are identifiers followed by a
colon.  Immediates may be decimal, hex (``0x``), negative, or ``.equ`` names.
"""

from __future__ import annotations

import re

from repro.errors import AssemblyError
from repro.isa.instructions import ALU_OPS, BRANCH_OPS, Instruction
from repro.isa.program import DataSegment, Program
from repro.isa.registers import REGISTER_ALIASES, register_index

_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):$")
_OFFSET_RE = re.compile(r"^(?P<offset>[^()]*)\((?P<base>[A-Za-z0-9_]+)\)$")
_KEYVAL_RE = re.compile(r"^([a-z]+)=(.+)$")
_IDENT_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")
#: ``; analysis: allow AN-UBD AN-DEAD`` — instruction-scoped when the
#: comment shares a line with an instruction, program-wide otherwise.
_ALLOW_PRAGMA_RE = re.compile(
    r"[#;]\s*analysis:\s*allow\s+(?P<rules>[A-Z0-9\- ]+?)\s*$"
)


def _strip_comment(line: str) -> str:
    for marker in ("#", ";"):
        position = line.find(marker)
        if position >= 0:
            line = line[:position]
    return line.strip()


def _allow_pragma(raw: str) -> list[str]:
    """Analysis rule IDs named by a ``analysis: allow`` comment on ``raw``."""
    match = _ALLOW_PRAGMA_RE.search(raw)
    if not match:
        return []
    return match.group("rules").split()


def _is_register(token: str) -> bool:
    text = token.lower()
    if text in REGISTER_ALIASES:
        return True
    return text.startswith("r") and text[1:].isdigit()


class _Parser:
    """Single-file assembler state (constants, current program)."""

    def __init__(self, source: str, name: str) -> None:
        self.source = source
        self.program = Program(name=name)
        self.constants: dict[str, int] = {}

    def parse_int(self, token: str, line_no: int) -> int:
        token = token.strip()
        if token in self.constants:
            return self.constants[token]
        try:
            return int(token, 0)
        except ValueError:
            raise AssemblyError(f"bad integer {token!r}", line_no) from None

    def parse_register(self, token: str, line_no: int) -> int:
        try:
            return register_index(token)
        except Exception:
            raise AssemblyError(f"bad register {token!r}", line_no) from None

    def _allow(
        self, rules: list[str], line_no: int, index: "int | None"
    ) -> None:
        for rule in rules:
            try:
                self.program.allow(rule, index=index)
            except AssemblyError as error:
                raise AssemblyError(str(error), line_no) from None

    def run(self, strict: bool = False) -> Program:
        for line_no, raw in enumerate(self.source.splitlines(), start=1):
            allow_rules = _allow_pragma(raw)
            line = _strip_comment(raw)
            if not line:
                # A standalone ``; analysis: allow`` comment is program-wide.
                self._allow(allow_rules, line_no, index=None)
                continue
            if line.startswith("."):
                self._directive(line, line_no)
                self._allow(allow_rules, line_no, index=None)
                continue
            match = _LABEL_RE.match(line)
            if match:
                try:
                    self.program.add_label(match.group(1))
                except AssemblyError as error:
                    raise AssemblyError(str(error), line_no) from None
                self._allow(allow_rules, line_no, index=None)
                continue
            self._instruction(line, line_no)
            self._allow(
                allow_rules, line_no, index=len(self.program.instructions) - 1
            )
        return self.program.finalize(strict=strict)

    # -- directives --------------------------------------------------------

    def _directive(self, line: str, line_no: int) -> None:
        parts = line.split()
        directive = parts[0]
        if directive == ".name":
            if len(parts) != 2:
                raise AssemblyError(".name takes one argument", line_no)
            self.program.name = parts[1]
        elif directive == ".equ":
            if len(parts) != 3:
                raise AssemblyError(".equ takes NAME VALUE", line_no)
            if parts[1] in self.constants:
                raise AssemblyError(
                    f".equ redefines {parts[1]!r} (first value "
                    f"{self.constants[parts[1]]})",
                    line_no,
                )
            self.constants[parts[1]] = self.parse_int(parts[2], line_no)
        elif directive == ".allow":
            if len(parts) < 2:
                raise AssemblyError(".allow takes one or more rule IDs", line_no)
            self._allow(parts[1:], line_no, index=None)
        elif directive == ".secret":
            if len(parts) < 2:
                raise AssemblyError(
                    ".secret takes one or more byte addresses", line_no
                )
            for token in parts[1:]:
                address = self.parse_int(token, line_no)
                try:
                    self.program.taint_source(address)
                except AssemblyError as error:
                    raise AssemblyError(str(error), line_no) from None
        elif directive == ".data":
            self._data(parts[1:], line_no)
        elif directive == ".fill":
            self._fill(parts[1:], line_no)
        else:
            raise AssemblyError(f"unknown directive {directive!r}", line_no)

    def _split_kv(
        self, tokens: list[str], line_no: int
    ) -> tuple[dict[str, int], list[str]]:
        options: dict[str, int] = {}
        rest: list[str] = []
        for token in tokens:
            match = _KEYVAL_RE.match(token)
            if match:
                options[match.group(1)] = self.parse_int(match.group(2), line_no)
            else:
                rest.append(token)
        return options, rest

    def _data(self, tokens: list[str], line_no: int) -> None:
        if not tokens:
            raise AssemblyError(".data needs a base address", line_no)
        base = self.parse_int(tokens[0], line_no)
        options, value_tokens = self._split_kv(tokens[1:], line_no)
        stride = options.get("stride", 8)
        values = tuple(self.parse_int(token, line_no) for token in value_tokens)
        self.program.add_data(DataSegment(base=base, values=values, stride=stride))

    def _fill(self, tokens: list[str], line_no: int) -> None:
        if not tokens:
            raise AssemblyError(".fill needs a base address", line_no)
        base = self.parse_int(tokens[0], line_no)
        options, rest = self._split_kv(tokens[1:], line_no)
        if rest:
            raise AssemblyError(f"unexpected tokens in .fill: {rest}", line_no)
        count = options.get("count")
        if count is None:
            raise AssemblyError(".fill requires count=", line_no)
        stride = options.get("stride", 8)
        value = options.get("value", 0)
        self.program.add_data(
            DataSegment(base=base, values=(value,) * count, stride=stride)
        )

    # -- instructions -------------------------------------------------------

    def _instruction(self, line: str, line_no: int) -> None:
        mnemonic, _, operand_text = line.partition(" ")
        op = mnemonic.lower()
        operands = [
            token.strip() for token in operand_text.split(",") if token.strip()
        ]
        try:
            instruction = self._decode(op, operands, line_no)
        except AssemblyError:
            raise
        except Exception as error:  # defensive: malformed operand shapes
            raise AssemblyError(f"cannot parse {line!r}: {error}", line_no) from None
        self.program.append(instruction)
        self.program.source_lines.append(line_no)

    def _offset_base(self, token: str, line_no: int) -> tuple[int, int]:
        match = _OFFSET_RE.match(token)
        if not match:
            raise AssemblyError(f"expected offset(base), got {token!r}", line_no)
        offset_text = match.group("offset").strip() or "0"
        offset = self.parse_int(offset_text, line_no)
        base = self.parse_register(match.group("base"), line_no)
        return offset, base

    def _decode(self, op: str, operands: list[str], line_no: int) -> Instruction:
        if op == "li":
            self._arity(op, operands, 2, line_no)
            return Instruction(
                "li",
                rd=self.parse_register(operands[0], line_no),
                imm=self.parse_int(operands[1], line_no),
            )
        if op == "mov":
            self._arity(op, operands, 2, line_no)
            return Instruction(
                "mov",
                rd=self.parse_register(operands[0], line_no),
                rs0=self.parse_register(operands[1], line_no),
            )
        if op in ALU_OPS:
            self._arity(op, operands, 3, line_no)
            rd = self.parse_register(operands[0], line_no)
            rs0 = self.parse_register(operands[1], line_no)
            if _is_register(operands[2]):
                return Instruction(
                    op, rd=rd, rs0=rs0, rs1=self.parse_register(operands[2], line_no)
                )
            return Instruction(
                op, rd=rd, rs0=rs0, imm=self.parse_int(operands[2], line_no)
            )
        if op == "load":
            self._arity(op, operands, 2, line_no)
            rd = self.parse_register(operands[0], line_no)
            offset, base = self._offset_base(operands[1], line_no)
            return Instruction("load", rd=rd, rs0=base, imm=offset)
        if op == "store":
            self._arity(op, operands, 2, line_no)
            source = self.parse_register(operands[0], line_no)
            offset, base = self._offset_base(operands[1], line_no)
            return Instruction("store", rs0=source, rs1=base, imm=offset)
        if op in ("clflush", "prefetch", "prefetchw"):
            self._arity(op, operands, 1, line_no)
            offset, base = self._offset_base(operands[0], line_no)
            return Instruction(op, rs0=base, imm=offset)
        if op == "rdcycle":
            self._arity(op, operands, 1, line_no)
            return Instruction("rdcycle", rd=self.parse_register(operands[0], line_no))
        if op in BRANCH_OPS:
            self._arity(op, operands, 3, line_no)
            return Instruction(
                op,
                rs0=self.parse_register(operands[0], line_no),
                rs1=self.parse_register(operands[1], line_no),
                target=self._target(operands[2], line_no),
            )
        if op == "jmp":
            self._arity(op, operands, 1, line_no)
            return Instruction("jmp", target=self._target(operands[0], line_no))
        if op in ("nop", "fence", "halt"):
            self._arity(op, operands, 0, line_no)
            return Instruction(op)
        raise AssemblyError(f"unknown mnemonic {op!r}", line_no)

    def _target(self, token: str, line_no: int) -> "str | int":
        """A branch target: a label name, or a numeric instruction index.

        Numeric targets let :meth:`Program.to_text` output round-trip even
        for (pathological) finalized branches pointing at an unlabelled
        index; the analyzer range-checks them like any other target.
        """
        if _IDENT_RE.match(token):
            return token
        return self.parse_int(token, line_no)

    @staticmethod
    def _arity(op: str, operands: list[str], expected: int, line_no: int) -> None:
        if len(operands) != expected:
            raise AssemblyError(
                f"{op} expects {expected} operand(s), got {len(operands)}", line_no
            )


def assemble(source: str, name: str = "program", strict: bool = False) -> Program:
    """Assemble ``source`` text into a finalized :class:`Program`.

    ``strict=True`` additionally runs the static analyzer
    (:mod:`repro.analysis`) and raises :class:`~repro.errors.AnalysisError`
    on any unsuppressed finding.
    """
    return _Parser(source, name).run(strict=strict)
