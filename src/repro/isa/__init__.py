"""A small RISC-like ISA: registers, instructions, assembler and builder.

The ISA is deliberately minimal but covers everything PREFENDER's Scale
Tracker cares about (Table III of the paper): immediate loads, register
moves, add/sub, mul, shifts, "other" ALU ops, memory loads/stores, cacheline
flush, cycle-counter reads and control flow.
"""

from repro.isa.instructions import (
    ALU_OPS,
    BRANCH_OPS,
    Instruction,
    MUL_LIKE_OPS,
    OTHER_ALU_OPS,
)
from repro.isa.program import DataSegment, Program
from repro.isa.assembler import assemble
from repro.isa.builder import ProgramBuilder
from repro.isa.registers import (
    NUM_REGISTERS,
    REGISTER_ALIASES,
    RegisterFile,
    register_index,
    register_name,
)

__all__ = [
    "ALU_OPS",
    "BRANCH_OPS",
    "MUL_LIKE_OPS",
    "OTHER_ALU_OPS",
    "DataSegment",
    "Instruction",
    "Program",
    "ProgramBuilder",
    "assemble",
    "NUM_REGISTERS",
    "REGISTER_ALIASES",
    "RegisterFile",
    "register_index",
    "register_name",
]
