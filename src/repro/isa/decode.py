"""Pre-decoded dispatch tuples for the timing core's hot loop.

:meth:`repro.isa.program.Program.finalize` runs every instruction through
:func:`decode_program` once; :class:`repro.cpu.core.Core` then executes by
indexing a handler table with the tuple's leading kind integer instead of
string-comparing ``Instruction.op`` per step.  Decode does the work that is
loop-invariant:

* opcode -> small-int kind (one table jump replaces the ``if op == ...``
  chain, with ALU opcodes split per operation so handlers are straight-line);
* ``sub rd, rs, imm`` is rewritten to an add of the negated immediate
  (identical mod 2**64 for both the register value and the Table III fixed
  value);
* ALU immediates are pre-masked (add/logic) or pre-reduced to their shift
  count (sll/srl) where that is equivalence-preserving; ``mul`` keeps the
  raw immediate because the Scale Tracker's ``sc * imm`` rule is *not*
  invariant under masking (the clamp takes ``abs`` first);
* load/store tuples carry the instruction's PC so the core does not
  recompute ``code_base + 4 * index`` per access.

Tuple layouts by kind::

    K_LOAD      (k, rd, rs0, imm, pc)
    K_STORE     (k, rs0, rs1, imm, pc)
    K_LI        (k, rd, imm_masked)
    K_MOV       (k, rd, rs0)
    K_ADD_RR    (k, rd, rs0, rs1)        also SUB/MUL/SLL/SRL/AND/OR/XOR _RR
    K_ADD_RI    (k, rd, rs0, imm_masked) also AND/OR/XOR _RI
    K_MUL_RI    (k, rd, rs0, imm_raw)
    K_SLL_RI    (k, rd, rs0, shift)      also SRL_RI (shift = imm & 0x3F)
    K_BRANCH    (k, cond, rs0, rs1, target)   cond: 0=beq 1=bne 2=blt 3=bge
    K_JMP       (k, target)
    K_RDCYCLE   (k, rd)
    K_CLFLUSH   (k, rs0, imm)
    K_PREFETCH  (k, rs0, imm, write)
    K_NOP / K_FENCE / K_HALT   (k,)
"""

from __future__ import annotations

from typing import Any

from repro.errors import AssemblyError
from repro.isa.instructions import Instruction
from repro.isa.registers import WORD_MASK

K_LOAD = 0
K_STORE = 1
K_LI = 2
K_MOV = 3
K_ADD_RR = 4
K_SUB_RR = 5
K_ADD_RI = 6
K_MUL_RR = 7
K_MUL_RI = 8
K_SLL_RR = 9
K_SRL_RR = 10
K_SLL_RI = 11
K_SRL_RI = 12
K_AND_RR = 13
K_OR_RR = 14
K_XOR_RR = 15
K_AND_RI = 16
K_OR_RI = 17
K_XOR_RI = 18
K_BRANCH = 19
K_JMP = 20
K_RDCYCLE = 21
K_CLFLUSH = 22
K_PREFETCH = 23
K_NOP = 24
K_FENCE = 25
K_HALT = 26

NUM_KINDS = 27

_ALU_RR = {
    "add": K_ADD_RR,
    "sub": K_SUB_RR,
    "mul": K_MUL_RR,
    "sll": K_SLL_RR,
    "srl": K_SRL_RR,
    "and": K_AND_RR,
    "or": K_OR_RR,
    "xor": K_XOR_RR,
}

_MASKED_RI = {"add": K_ADD_RI, "and": K_AND_RI, "or": K_OR_RI, "xor": K_XOR_RI}

_BRANCH_COND = {"beq": 0, "bne": 1, "blt": 2, "bge": 3}


def decode_instruction(instruction: Instruction, pc: int) -> tuple[Any, ...]:
    """One instruction -> its dispatch tuple (``pc`` = instruction address)."""
    op = instruction.op
    if op == "load":
        return (K_LOAD, instruction.rd, instruction.rs0, instruction.imm, pc)
    if op == "store":
        return (K_STORE, instruction.rs0, instruction.rs1, instruction.imm, pc)
    if op == "li":
        return (K_LI, instruction.rd, instruction.imm & WORD_MASK)
    if op == "mov":
        return (K_MOV, instruction.rd, instruction.rs0)
    if op in _ALU_RR:
        rd, rs0 = instruction.rd, instruction.rs0
        if instruction.rs1 is not None:
            return (_ALU_RR[op], rd, rs0, instruction.rs1)
        imm = instruction.imm
        if op == "add":
            return (K_ADD_RI, rd, rs0, imm & WORD_MASK)
        if op == "sub":
            # a - imm == a + (-imm) mod 2**64, for the value and the fva.
            return (K_ADD_RI, rd, rs0, (-imm) & WORD_MASK)
        if op == "mul":
            return (K_MUL_RI, rd, rs0, imm)
        if op == "sll":
            return (K_SLL_RI, rd, rs0, imm & 0x3F)
        if op == "srl":
            return (K_SRL_RI, rd, rs0, imm & 0x3F)
        return (_MASKED_RI[op], rd, rs0, imm & WORD_MASK)
    if op in _BRANCH_COND:
        return (
            K_BRANCH,
            _BRANCH_COND[op],
            instruction.rs0,
            instruction.rs1,
            instruction.target,
        )
    if op == "jmp":
        return (K_JMP, instruction.target)
    if op == "rdcycle":
        return (K_RDCYCLE, instruction.rd)
    if op == "clflush":
        return (K_CLFLUSH, instruction.rs0, instruction.imm)
    if op in ("prefetch", "prefetchw"):
        return (K_PREFETCH, instruction.rs0, instruction.imm, op == "prefetchw")
    if op == "nop":
        return (K_NOP,)
    if op == "fence":
        return (K_FENCE,)
    if op == "halt":
        return (K_HALT,)
    raise AssemblyError(f"cannot decode opcode {op!r}")  # pragma: no cover


def decode_program(
    instructions: list[Instruction], code_base: int, instruction_size: int
) -> tuple[tuple[Any, ...], ...]:
    """Decode a finalized instruction list into dispatch tuples."""
    return tuple(
        decode_instruction(instruction, code_base + instruction_size * index)
        for index, instruction in enumerate(instructions)
    )
