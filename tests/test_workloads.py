"""Workload models: registry, buildability, and pattern properties."""

import pytest

from repro.errors import ConfigError
from repro.sim.config import SystemConfig
from repro.sim.simulator import run_program
from repro.workloads import (
    SPEC2006_NAMES,
    SPEC2017_NAMES,
    get_workload,
    workload_names,
)
from repro.workloads.kernels import pointer_chain_addresses


def test_registry_contents():
    assert len(SPEC2006_NAMES) == 12
    assert len(SPEC2017_NAMES) == 9
    assert "429.mcf" in SPEC2006_NAMES
    assert "510.parest_r" in SPEC2017_NAMES
    assert set(workload_names("spec2006")) == set(SPEC2006_NAMES)


def test_unknown_workload():
    with pytest.raises(ConfigError):
        get_workload("000.nonsense")


@pytest.mark.parametrize("name", SPEC2006_NAMES + SPEC2017_NAMES)
def test_all_workloads_build_and_run(name):
    program = get_workload(name).program(0.05)
    result = run_program(program, SystemConfig())
    assert result.instructions > 10
    assert result.cycles > 0


def test_scale_stretches_programs():
    workload = get_workload("462.libquantum")
    small = run_program(workload.program(0.05), SystemConfig())
    large = run_program(workload.program(0.2), SystemConfig())
    assert large.instructions > small.instructions * 2


def test_compute_only_workloads_have_no_memory_traffic():
    for name in ("999.specrand", "548.exchange2_r"):
        result = run_program(get_workload(name).program(0.1), SystemConfig())
        assert result.l1d_stats[0]["demand_accesses"] == 0, name


def test_pointer_chain_is_full_cycle():
    pairs = pointer_chain_addresses(0x1000_0000, nodes=64)
    next_of = dict(pairs)
    seen = set()
    node = pairs[0][0]
    for _ in range(64):
        assert node not in seen
        seen.add(node)
        node = next_of[node]
    assert node == pairs[0][0]  # cycle closes
    assert len(seen) == 64


def test_pointer_chain_has_no_constant_stride():
    pairs = pointer_chain_addresses(0x1000_0000, nodes=256)
    next_of = dict(pairs)
    node = pairs[0][0]
    strides = set()
    for _ in range(50):
        nxt = next_of[node]
        strides.add(nxt - node)
        node = nxt
    assert len(strides) > 10


def test_pointer_chain_deterministic():
    a = pointer_chain_addresses(0x1000_0000, nodes=64, seed=1)
    b = pointer_chain_addresses(0x1000_0000, nodes=64, seed=1)
    c = pointer_chain_addresses(0x1000_0000, nodes=64, seed=2)
    assert a == b
    assert a != c


def test_parest_index_gaps_never_repeat_adjacent():
    """The property that defeats the Stride prefetcher (paper: 0.7%)."""
    gaps = [1, 2, 1, 3, 1, 2, 1, 4]
    doubled = gaps + gaps
    assert all(doubled[i] != doubled[i + 1] for i in range(len(gaps)))


def test_workload_patterns_described():
    for name in SPEC2006_NAMES + SPEC2017_NAMES:
        workload = get_workload(name)
        assert workload.pattern, name
        assert workload.suite in ("spec2006", "spec2017")
