"""Make the repo root importable so tests can reach ``tools.state_diff``.

The simulator package comes from ``PYTHONPATH=src``; ``tools`` lives next
to ``tests`` at the repo root, which is only on ``sys.path`` when pytest
is launched from there.  Pinning the root here keeps the suite working
from any invocation directory.
"""

import pathlib
import sys

_ROOT = str(pathlib.Path(__file__).resolve().parents[1])
if _ROOT not in sys.path:
    sys.path.insert(0, _ROOT)
