"""Byte-stability regression tests for ``analyze --json`` (schema v3).

The analyze JSON document is consumed by the CI lint job and diffed by
downstream tooling, so it must be *byte*-stable: repeated runs emit the
identical document, the certify matrix is key- and cell-sorted, and the
``analyze/v3`` schema bump (which appended the ``certify`` section) left
every pre-existing v1/v2 field byte-identical.
"""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main


def _run_json(capsys, argv) -> tuple[str, dict]:
    assert main(argv) == 0
    out = capsys.readouterr().out
    return out, json.loads(out)


def test_certify_json_is_byte_stable_across_runs(capsys):
    first, _ = _run_json(capsys, ["analyze", "--certify", "--builtin", "--json"])
    second, _ = _run_json(capsys, ["analyze", "--certify", "--builtin", "--json"])
    assert first == second


def test_schema_is_v3_with_fixed_key_order(capsys):
    _, doc = _run_json(capsys, ["analyze", "--builtin", "--json"])
    assert doc["schema"] == "analyze/v3"
    assert list(doc) == [
        "schema",
        "checked",
        "errors",
        "programs",
        "timing",
        "cache",
        "certify",
    ]
    assert doc["certify"] == {"enabled": False}


def test_v2_fields_are_byte_identical_under_certify(capsys):
    """``--certify`` only appends: every other field serializes identically."""
    plain_text, plain = _run_json(capsys, ["analyze", "--builtin", "--json"])
    certified_text, certified = _run_json(
        capsys, ["analyze", "--certify", "--builtin", "--json"]
    )
    assert plain_text != certified_text  # certify section did change
    for key in ("schema", "checked", "errors", "programs", "timing", "cache"):
        assert json.dumps(plain[key]) == json.dumps(certified[key]), key


def test_certify_matrix_is_fully_sorted(capsys):
    _, doc = _run_json(capsys, ["analyze", "--certify", "--builtin", "--json"])
    certify = doc["certify"]
    assert certify["enabled"] is True
    matrix = certify["matrix"]
    assert matrix, "certify matrix is empty"
    for cell in matrix:
        assert list(cell) == sorted(cell), "cell keys must be alphabetical"
    order = [(c["victim"], c["attack"], c["defense"]) for c in matrix]
    assert order == sorted(order), "cells must sort by (victim, attack, defense)"
    for axis in ("victims", "attacks", "defenses"):
        assert certify[axis] == sorted(certify[axis]), axis


def test_certify_findings_reference_catalog_rules(capsys):
    _, doc = _run_json(capsys, ["analyze", "--certify", "--builtin", "--json"])
    rules = {f["rule"] for f in doc["certify"]["findings"]}
    assert rules <= {"AN-ATTACK-FEASIBLE", "AN-DEFENSE-CERTIFIED"}
    assert "AN-ATTACK-FEASIBLE" in rules
    assert "AN-DEFENSE-CERTIFIED" in rules


def test_certify_without_paths_or_builtin_is_allowed(capsys):
    _, doc = _run_json(capsys, ["analyze", "--certify", "--json"])
    assert doc["checked"] == 0
    assert doc["certify"]["enabled"] is True


def test_analyze_without_any_target_is_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["analyze"])
    assert "analyze needs .asm paths" in capsys.readouterr().err
