"""Secret-taint analysis: sources, classification, AN-SECRET-* rules.

The differential half (static leak map vs. the dynamic scenario oracle)
lives in ``tests/test_taint_oracle.py``; this file covers the unit
surface: the ``.secret`` directive, taint propagation through registers
and memory, per-access classification, and the analyzer rules layered on
top.
"""

import pytest

from repro.analysis import (
    KNOWN_SECRET_ADDRS,
    analyze_program,
    leak_map,
    taint_of_program,
)
from repro.attacks.layout import AttackLayout
from repro.errors import AnalysisError, AssemblyError
from repro.isa import ProgramBuilder, assemble

SECRET = 0x3002100  # == AttackLayout().secret_addr

LOOKUP = f"""
.name lookup
.secret {SECRET:#x}
.data {SECRET:#x} 3
    li   r1, {SECRET:#x}
    load r2, 0(r1)          ; taint seed
    sll  r2, r2, 9          ; index -> offset (scale 0x200)
    li   r3, 0x2000000
    add  r3, r3, r2
    load r4, 0(r3)          ; secret-addressed
    store r2, 0x100(zero)   ; secret-valued, fixed address
    load r5, 0x40(zero)     ; clean
    halt
"""


def taint_of(source):
    return taint_of_program(assemble(source))


# -- declarations -----------------------------------------------------------


def test_secret_directive_populates_taint_sources():
    program = assemble(LOOKUP)
    assert program.taint_sources == {SECRET}


def test_secret_directive_rejects_garbage():
    with pytest.raises(AssemblyError, match="line 1"):
        assemble(".secret nope\nhalt")
    with pytest.raises(AssemblyError, match="line 1"):
        assemble(".secret\nhalt")


def test_builder_taint_source_validates():
    builder = ProgramBuilder("declared")
    builder.taint_source(SECRET)
    builder.halt()
    assert builder.build().taint_sources == {SECRET}
    with pytest.raises(AssemblyError):
        ProgramBuilder("bad").taint_source(-1)


def test_known_secret_addrs_pins_the_scenario_layout():
    """taint.py hard-codes the cell so the analysis layer never imports
    the attacks package; this pin breaks if the layout ever moves."""
    assert AttackLayout().secret_addr in KNOWN_SECRET_ADDRS


# -- taint propagation and classification -----------------------------------


def test_lookup_classification():
    taint = taint_of(LOOKUP)
    assert taint.sources == (1,)
    assert taint.secret_addressed() == (5,)
    assert taint.secret_valued() == (1, 6)  # the seed load and the spill
    assert taint.classification(7) == "clean"
    assert taint.branches == ()
    assert taint.leaks


def test_li_strips_taint():
    taint = taint_of(
        f"""
        .secret {SECRET:#x}
        li   r1, {SECRET:#x}
        load r2, 0(r1)
        li   r2, 7              ; overwrite kills the taint
        add  r3, r2, r2
        load r4, 0(r3)
        halt
        """
    )
    assert taint.secret_addressed() == ()
    assert not taint.leaks


def test_spilled_secret_stays_tracked_through_memory():
    """Store secret to a scratch cell, reload it, index with the reload:
    the outer memory fixpoint must keep the second load tainted."""
    taint = taint_of(
        f"""
        .secret {SECRET:#x}
        li   r1, {SECRET:#x}
        load r2, 0(r1)
        store r2, 0x8000(zero)  ; spill
        li   r2, 0
        load r3, 0x8000(zero)   ; reload: still secret-valued
        load r4, 0(r3)          ; secret-addressed
        halt
        """
    )
    assert 0x8000 in taint.tainted_memory
    assert taint.secret_addressed() == (5,)


def test_secret_branch_detected():
    taint = taint_of(
        f"""
        .allow AN-SECRET-BRANCH
        .secret {SECRET:#x}
        li   r1, {SECRET:#x}
        load r2, 0(r1)
        beq  r2, zero, out
        nop
        out:
        halt
        """
    )
    assert taint.branches == (2,)
    assert taint.leaks


def test_unresolved_load_without_tainted_base_is_clean():
    """Attacker-style sweep: the index register is loop-carried, the
    address never resolves, and no secret feeds it — clean by design."""
    taint = taint_of(
        """
        li   r1, 0x2000000
        li   r2, 4
        loop:
        load r3, 0(r1)
        add  r1, r1, 0x200
        sub  r2, r2, 1
        bne  r2, zero, loop
        halt
        """
    )
    assert all(a.classification == "clean" for a in taint.accesses)
    assert not taint.leaks


# -- analyzer rules ---------------------------------------------------------


def test_an_secret_addr_is_info_and_never_blocks_strict():
    program = assemble(LOOKUP, strict=True)  # must not raise
    rules = [f.rule for f in program.analysis.findings]
    assert "AN-SECRET-ADDR" in rules
    assert program.analysis.blocking() == ()


def test_an_secret_branch_blocks_strict_unless_allowed():
    source = f"""
    .secret {SECRET:#x}
    li   r1, {SECRET:#x}
    load r2, 0(r1)
    beq  r2, zero, out
    nop
    out:
    halt
    """
    with pytest.raises(AnalysisError, match="AN-SECRET-BRANCH"):
        assemble(source, strict=True)
    allowed = assemble(".allow AN-SECRET-BRANCH\n" + source, strict=True)
    assert [f.rule for f in allowed.analysis.suppressed] == [
        "AN-SECRET-BRANCH"
    ]


def test_an_secret_undeclared_is_an_error():
    source = f"""
    li   r1, {SECRET:#x}
    load r2, 0(r1)
    halt
    """
    with pytest.raises(AnalysisError, match="AN-SECRET-UNDECLARED"):
        assemble(source, strict=True)
    analysis = analyze_program(assemble(source))
    assert [f.rule for f in analysis.errors()] == ["AN-SECRET-UNDECLARED"]
    # Declaring the cell converts the error into the info-level leak
    # surface (the load is then a taint seed, not a violation).
    declared = assemble(f".secret {SECRET:#x}\n" + source, strict=True)
    assert declared.analysis.errors() == ()


def test_secret_directive_roundtrips_through_to_text():
    program = assemble(LOOKUP)
    text = program.to_text()
    assert f".secret {SECRET:#x}" in text
    assert assemble(text).taint_sources == program.taint_sources


# -- leak map ---------------------------------------------------------------


def test_leak_map_resolves_secret_indexed_access():
    program = assemble(LOOKUP)
    for secret in range(4):
        assert leak_map(
            program, secret, probe_base=0x2000000, scale=0x200, num_indices=16
        ) == (secret,)


def test_leak_map_ignores_out_of_range_accesses():
    program = assemble(LOOKUP)
    # A 4-entry window: secrets past it fall outside the probe array.
    assert (
        leak_map(program, 9, probe_base=0x2000000, scale=0x200, num_indices=4)
        == ()
    )


def test_leak_map_prunes_secret_conditional_side():
    """Feasible-edge propagation: with the secret bound, the branch is
    decidable and only the taken side's accesses appear."""
    source = f"""
    .allow AN-SECRET-BRANCH
    .secret {SECRET:#x}
    li   r1, {SECRET:#x}
    load r2, 0(r1)
    beq  r2, zero, skip
    load r3, 0x2000200(zero)    ; only when secret != 0
    skip:
    load r4, 0x2000000(zero)    ; always
    halt
    """
    program = assemble(source)
    kwargs = dict(probe_base=0x2000000, scale=0x200, num_indices=16)
    assert leak_map(program, 0, **kwargs) == (0,)
    assert leak_map(program, 1, **kwargs) == (0, 1)
