"""ProgramBuilder and Program container."""

import pytest

from repro.errors import AssemblyError
from repro.isa.builder import ProgramBuilder
from repro.isa.program import DataSegment, Program
from repro.isa.assembler import assemble


def test_builder_emits_and_finalizes():
    builder = ProgramBuilder("t")
    builder.li("r1", 2)
    builder.label("loop")
    builder.sub("r1", "r1", 1)
    builder.bne("r1", "zero", "loop")
    builder.halt()
    program = builder.build()
    assert program.finalized
    assert program.instructions[2].target == 1


def test_builder_all_instructions():
    builder = ProgramBuilder()
    builder.li("r1", 1).mov("r2", "r1")
    builder.add("r3", "r1", "r2").sub("r3", "r3", 1).mul("r3", "r3", 2)
    builder.sll("r4", "r3", 1).srl("r4", "r4", 1)
    builder.and_("r5", "r4", 3).or_("r5", "r5", 1).xor("r5", "r5", "r1")
    builder.load("r6", 0, "r1").store("r6", 8, "r1").clflush(0, "r1")
    builder.rdcycle("r7").fence().nop(2)
    builder.beq("r1", "r2", "end").blt("r1", "r2", "end").bge("r1", "r2", "end")
    builder.label("end")
    builder.jmp("end2")
    builder.label("end2")
    builder.halt()
    program = builder.build()
    ops = [i.op for i in program.instructions]
    assert ops.count("nop") == 2
    assert "fence" in ops and "clflush" in ops


def test_fresh_labels_unique():
    builder = ProgramBuilder()
    labels = {builder.fresh_label("x") for _ in range(10)}
    assert len(labels) == 10


def test_data_and_fill():
    builder = ProgramBuilder()
    builder.data(0x100, [1, 2], stride=8)
    builder.fill(0x200, count=3, value=7, stride=64)
    builder.halt()
    program = builder.build()
    assert program.data_segments[0].values == (1, 2)
    assert program.data_segments[1].values == (7, 7, 7)


def test_instruction_count_property():
    builder = ProgramBuilder()
    builder.nop(5)
    assert builder.instruction_count == 5


def test_program_pc_mapping():
    program = Program(code_base=0x1000)
    assert program.pc_of_index(0) == 0x1000
    assert program.pc_of_index(3) == 0x100C
    assert program.index_of_pc(0x100C) == 3


def test_finalize_is_idempotent():
    program = assemble("halt")
    assert program.finalize() is program


def test_append_after_finalize_rejected():
    program = assemble("halt")
    from repro.isa.instructions import Instruction

    with pytest.raises(AssemblyError):
        program.append(Instruction("nop"))


def test_finalize_rejects_missing_target():
    from repro.isa.instructions import Instruction

    program = Program()
    program.append(Instruction("jmp", target=None))
    with pytest.raises(AssemblyError):
        program.finalize()


def test_to_text_roundtrip():
    source = """
    .name round
    li r1, 10
    loop:
    sub r1, r1, 1
    bne r1, zero, loop
    halt
    """
    program = assemble(source)
    text = program.to_text()
    assert ".name round" in text
    # The disassembly uses resolved integer targets; it still lists all ops.
    assert "sub r1, r1, 1" in text


def test_data_segment_addresses():
    segment = DataSegment(base=0x10, values=(1, 2, 3), stride=4)
    assert segment.addresses() == [0x10, 0x14, 0x18]
