"""Timing core: functional semantics, costs, calculation-buffer upkeep."""

import pytest

from repro.cpu.core import Core, CoreConfig
from repro.errors import ExecutionError
from repro.isa.assembler import assemble
from repro.mem.hierarchy import MemoryHierarchy


def run_core(source, config=None, max_steps=100000):
    program = assemble(source)
    hierarchy = MemoryHierarchy(num_cores=1)
    hierarchy.memory.load_program_data(program)
    core = Core(0, program, hierarchy, config)
    steps = 0
    while not core.halted:
        core.step()
        steps += 1
        assert steps < max_steps, "program did not halt"
    return core, hierarchy


def test_alu_semantics():
    core, _ = run_core(
        """
        li r1, 10
        li r2, 3
        add r3, r1, r2
        sub r4, r1, r2
        mul r5, r1, r2
        sll r6, r1, 2
        srl r7, r1, 1
        and r8, r1, 6
        or r9, r1, 5
        xor r10, r1, r2
        halt
        """
    )
    assert core.regs.read(3) == 13
    assert core.regs.read(4) == 7
    assert core.regs.read(5) == 30
    assert core.regs.read(6) == 40
    assert core.regs.read(7) == 5
    assert core.regs.read(8) == 2
    assert core.regs.read(9) == 15
    assert core.regs.read(10) == 9


def test_load_store_roundtrip():
    core, hierarchy = run_core(
        """
        li r1, 0x1000
        li r2, 99
        store r2, 0(r1)
        load r3, 0(r1)
        halt
        """
    )
    assert core.regs.read(3) == 99
    assert hierarchy.read_word(0x1000) == 99


def test_data_segment_visible():
    core, _ = run_core(
        """
        .data 0x2000 stride=8 41 42
        li r1, 0x2000
        load r2, 8(r1)
        halt
        """
    )
    assert core.regs.read(2) == 42


def test_branches():
    core, _ = run_core(
        """
        li r1, 3
        li r2, 0
        loop:
        add r2, r2, 10
        sub r1, r1, 1
        bne r1, zero, loop
        halt
        """
    )
    assert core.regs.read(2) == 30


def test_signed_branch():
    core, _ = run_core(
        """
        li r1, -5
        li r2, 1
        li r3, 0
        blt r1, r2, neg
        li r3, 111
        neg:
        halt
        """
    )
    assert core.regs.read(3) == 0  # branch taken: -5 < 1 signed


def test_rdcycle_monotonic():
    core, _ = run_core(
        """
        rdcycle r1
        nop
        nop
        rdcycle r2
        halt
        """
    )
    assert core.regs.read(2) - core.regs.read(1) == 3


def test_load_latency_charged():
    core, _ = run_core(
        """
        rdcycle r1
        li r2, 0x9000
        load r3, 0(r2)
        rdcycle r4
        halt
        """
    )
    # cold load = 136 cycles; plus the li in between.
    assert core.regs.read(4) - core.regs.read(1) == 1 + 1 + 136


def test_clflush_forces_remiss():
    core, _ = run_core(
        """
        li r1, 0x9000
        load r2, 0(r1)
        clflush 0(r1)
        rdcycle r3
        load r2, 0(r1)
        rdcycle r4
        sub r5, r4, r3
        halt
        """
    )
    assert core.regs.read(5) == 137  # full miss again after flush


def test_mul_cost():
    config = CoreConfig(mul_cost=5)
    core, _ = run_core("li r1, 2\nmul r2, r1, 3\nhalt", config)
    # li(1) + mul(5) + halt(1) -> time 7 at halt.
    assert core.time == 7


def test_load_hide_cycles_discount():
    config = CoreConfig(load_hide_cycles=110)
    core, _ = run_core("li r1, 0x9000\nload r2, 0(r1)\nhalt", config)
    # 136-cycle miss charged 26 cycles (+ li and halt).
    assert core.time == 1 + 26 + 1


def test_serialized_load_pays_full_latency():
    config = CoreConfig(load_hide_cycles=110)
    core, _ = run_core(
        """
        li r1, 0x9000
        rdcycle r3
        load r2, 0(r1)
        rdcycle r4
        sub r5, r4, r3
        halt
        """,
        config,
    )
    assert core.regs.read(5) == 137  # rdcycle serialises the next load


def test_fence_serializes_too():
    config = CoreConfig(load_hide_cycles=110)
    core, _ = run_core(
        "li r1, 0x9000\nfence\nload r2, 0(r1)\nhalt", config
    )
    assert core.time == 1 + 1 + 136 + 1


def test_scale_threaded_to_hierarchy():
    """The victim pattern produces scale 0x200 on the final load."""
    core, hierarchy = run_core(
        """
        .data 0x2000 stride=8 12
        li r1, 0x2000
        load r2, 0(r1)
        li r3, 0x10000
        mul r4, r2, 0x200
        add r5, r3, r4
        load r6, 0(r5)
        halt
        """
    )
    assert core.calc.scale_of(5) == 0x200


def test_pc_out_of_range_raises():
    program = assemble("nop\nnop")  # no halt
    hierarchy = MemoryHierarchy(num_cores=1)
    core = Core(0, program, hierarchy)
    core.step()
    core.step()
    with pytest.raises(ExecutionError):
        core.step()


def test_stats_counters():
    core, _ = run_core(
        """
        li r1, 0x1000
        load r2, 0(r1)
        store r2, 8(r1)
        clflush 0(r1)
        beq r1, r1, next
        next:
        halt
        """
    )
    assert core.stats.loads == 1
    assert core.stats.stores == 1
    assert core.stats.flushes == 1
    assert core.stats.branches == 1
    assert core.stats.instructions_retired == 6


def test_software_prefetch_executes_and_charges_latency():
    core, hierarchy = run_core(
        """
        li r1, 0x1000
        rdcycle r7
        prefetch 0(r1)          # cold: full memory path
        rdcycle r8
        sub r9, r8, r7
        rdcycle r10
        prefetch 0(r1)          # warm: L1 hit
        rdcycle r11
        sub r12, r11, r10
        load r2, 0(r1)
        halt
        """
    )
    assert core.stats.software_prefetches == 2
    # rdcycle serialises, so the prefetch pays its full residency latency;
    # each measurement includes the first rdcycle's own cycle.
    assert core.regs.read(9) == 136 + 1
    assert core.regs.read(12) == 4 + 1
    # The demand load then hits the prefetched (useful) line.
    assert core.stats.loads == 1
    assert hierarchy.l1ds[0].stats.useful_prefetches == 1


def test_prefetchw_assembles_and_counts():
    core, hierarchy = run_core(
        """
        li r1, 0x2000
        prefetchw 0(r1)
        halt
        """
    )
    assert core.stats.software_prefetches == 1
    assert hierarchy.l1_contains(0, 0x2000)


def test_software_prefetch_writes_no_register():
    core, _ = run_core(
        """
        li r6, 123
        li r1, 0x3000
        prefetch 0(r1)
        halt
        """
    )
    assert core.regs.read(6) == 123


def _tiny_system():
    from repro.cpu.system import System
    from repro.isa.builder import ProgramBuilder

    builder = ProgramBuilder("tiny")
    builder.li("r1", 1)
    builder.halt()
    return System([builder.build()], MemoryHierarchy(num_cores=1))


def test_run_succeeds_when_final_step_halts_the_last_core():
    """A budget that is exactly enough is enough — not a runaway."""
    result = _tiny_system().run(max_steps=2)
    assert result.instructions == 2


def test_run_raises_only_with_work_left():
    from repro.errors import SimulationError

    with pytest.raises(SimulationError):
        _tiny_system().run(max_steps=1)


def test_access_buffer_reset_clears_last_touch():
    from repro.core.access_buffer import AccessBuffer

    buffer = AccessBuffer(capacity=4)
    buffer.reset(0x400000)
    buffer.record(0x1000, now=99_999)
    assert buffer.last_touch == 99_999
    buffer.reset(0x400004)  # reallocated to a new PC
    assert buffer.last_touch == 0, "no inherited idle clock"
