"""Speculative execution: prediction, transient effects, squash."""

from repro.cpu.core import Core, CoreConfig
from repro.isa.assembler import assemble
from repro.mem.hierarchy import MemoryHierarchy

SPEC = CoreConfig(
    speculative_execution=True, resolve_delay=300, spec_window=12,
    branch_miss_penalty=8,
)


def run(source, config=SPEC, max_steps=100000):
    program = assemble(source)
    hierarchy = MemoryHierarchy(num_cores=1)
    hierarchy.memory.load_program_data(program)
    core = Core(0, program, hierarchy, config)
    steps = 0
    while not core.halted:
        core.step()
        steps += 1
        assert steps < max_steps
    return core, hierarchy

# A gadget: branch trained taken 4 times, then the condition flips.
GADGET = """
.data 0x2000 stride=8 0 0 0 0 1
li r10, 0x2000
li r11, 0
li r12, 5
loop:
mul r13, r11, 8
add r13, r10, r13
load r14, 0(r13)          # flag: 0 in-bounds, 1 on the last round
beq r14, zero, safe
jmp skip
safe:
li r20, 0x30000
load r21, 0(r20)          # only reached architecturally when flag==0
skip:
add r11, r11, 1
blt r11, r12, loop
halt
"""


def test_architectural_results_correct_despite_squashes():
    core, _ = run(GADGET)
    assert core.regs.read(11) == 5
    assert core.stats.squashes > 0


def test_transient_cache_footprint_persists():
    core, hierarchy = run(GADGET)
    # The final round mispredicts into `safe` transiently: 0x30000 is
    # cached even though the path was squashed.
    assert hierarchy.l1_contains(0, 0x30000)


def test_transient_register_writes_rolled_back():
    core, _ = run(
        """
        .data 0x2000 stride=8 0 0 0 0 1
        li r10, 0x2000
        li r11, 0
        li r12, 5
        li r25, 42
        loop:
        mul r13, r11, 8
        add r13, r10, r13
        load r14, 0(r13)
        beq r14, zero, safe
        jmp skip
        safe:
        li r25, 1000      # transient on the final round
        skip:
        add r11, r11, 1
        blt r11, r12, loop
        halt
        """
    )
    # On the final (mispredicted) round, li r25 executed transiently and was
    # rolled back; the previous architectural rounds set it to 1000 though.
    # Distinguish by running with flag sequence that never goes in-bounds:
    core2, _ = run(
        """
        .data 0x2000 stride=8 1 1 1 1 1
        li r10, 0x2000
        li r11, 0
        li r12, 5
        li r25, 42
        loop:
        mul r13, r11, 8
        add r13, r10, r13
        load r14, 0(r13)
        beq r14, zero, safe
        jmp skip
        safe:
        li r25, 1000
        skip:
        add r11, r11, 1
        blt r11, r12, loop
        halt
        """
    )
    assert core2.regs.read(25) == 42


def test_transient_stores_dropped():
    core, hierarchy = run(
        """
        .data 0x2000 stride=8 0 0 0 0 1
        li r10, 0x2000
        li r11, 0
        li r12, 5
        li r22, 0x40000
        loop:
        mul r13, r11, 8
        add r13, r10, r13
        load r14, 0(r13)
        beq r14, zero, safe
        jmp skip
        safe:
        li r23, 7
        store r23, 0(r22)
        skip:
        add r11, r11, 1
        blt r11, r12, loop
        halt
        """
    )
    # The first four rounds store architecturally (7); the fifth round's
    # transient store is dropped — value stays 7, and more importantly the
    # run with an always-mispredicting gadget never stores at all:
    assert hierarchy.read_word(0x40000) == 7

    _, hierarchy2 = run(
        """
        li r22, 0x40000
        li r1, 1
        li r2, 2
        blt r2, r1, never
        jmp done
        never:
        li r23, 7
        store r23, 0(r22)
        done:
        halt
        """
    )
    assert hierarchy2.read_word(0x40000) == 0


def test_store_to_load_forwarding_in_transient_window():
    core, _ = run(
        """
        .data 0x2000 stride=8 1
        li r10, 0x2000
        load r14, 0(r10)
        li r22, 0x40000
        li r1, 1
        li r2, 2
        blt r1, r2, taken      # actually taken; predictor cold says NT
        jmp done
        taken:
        jmp done
        done:
        halt
        """
    )
    assert core.halted  # no deadlock from transient paths


def test_mispredict_penalty_applied():
    fast = run("li r1, 1\nli r2, 2\nblt r1, r2, t\nt:\nhalt",
               CoreConfig(speculative_execution=True, resolve_delay=20,
                          branch_miss_penalty=50))[0]
    # Cold predictor says not-taken; branch is taken -> mispredict ->
    # resolve delay + penalty dominate the runtime.
    assert fast.time >= 20 + 50


def test_correct_prediction_costs_one_cycle():
    core, _ = run(
        """
        li r1, 0
        li r2, 1000
        loop:
        add r1, r1, 1
        blt r1, r2, loop
        halt
        """
    )
    # Warm loop branch predicted taken; only the final exit mispredicts.
    assert core.stats.mispredictions <= 3


def test_fence_blocks_transient_progress():
    _, hierarchy = run(
        """
        li r1, 1
        li r2, 2
        blt r2, r1, never     # not taken; cold predictor agrees... force:
        jmp done
        never:
        fence
        li r9, 0x50000
        load r8, 0(r9)
        done:
        halt
        """
    )
    assert not hierarchy.l1_contains(0, 0x50000)


def test_nested_branches_resolve_inline():
    core, _ = run(
        """
        .data 0x2000 stride=8 0 0 0 1
        li r10, 0x2000
        li r11, 0
        li r12, 4
        loop:
        mul r13, r11, 8
        add r13, r10, r13
        load r14, 0(r13)
        beq r14, zero, inner
        jmp skip
        inner:
        beq r11, zero, skip   # a second branch inside the window
        skip:
        add r11, r11, 1
        blt r11, r12, loop
        halt
        """
    )
    assert core.regs.read(11) == 4
