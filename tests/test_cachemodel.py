"""Property tests for the abstract cache-state domain.

The timing analysis is only sound if the lattice underneath it behaves:
``join`` must be an upper bound (idempotent, commutative, monotone) and
the joined state may never claim more than *both* inputs agree on —
otherwise a merge point in the CFG could manufacture a definite hit or
miss that one incoming path contradicts.  The last test pins the other
end of the spectrum: on a single concrete path (no joins, no havoc) the
must/may intervals collapse to exact LRU, which is what makes
``timing_map`` cycle-exact for the straight-line victims.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cachemodel import (
    HIT,
    MISS,
    UNKNOWN,
    CacheGeometry,
    CacheState,
)

#: Small geometry so sequences actually evict: 4 sets x 2 ways.
GEOMETRY = CacheGeometry(num_sets=4, assoc=2, block_bits=6)

#: A handful of block numbers spanning every set, with set collisions.
BLOCKS = tuple(range(12))

_ops = st.one_of(
    st.tuples(st.just("access"), st.sampled_from(BLOCKS)),
    st.tuples(st.just("flush"), st.sampled_from(BLOCKS)),
    st.tuples(st.just("havoc_access"), st.none()),
    st.tuples(st.just("havoc_flush"), st.none()),
)

op_sequences = st.lists(_ops, max_size=24)
concrete_sequences = st.lists(st.sampled_from(BLOCKS), max_size=32)


def run_ops(ops):
    state = CacheState(GEOMETRY)
    for name, arg in ops:
        if arg is None:
            getattr(state, name)()
        else:
            getattr(state, name)(arg)
    return state


@settings(max_examples=200, deadline=None)
@given(op_sequences)
def test_join_idempotent(ops):
    state = run_ops(ops)
    assert state.join(state) == state


@settings(max_examples=200, deadline=None)
@given(op_sequences, op_sequences)
def test_join_commutative(left_ops, right_ops):
    left, right = run_ops(left_ops), run_ops(right_ops)
    assert left.join(right) == right.join(left)


@settings(max_examples=200, deadline=None)
@given(op_sequences, op_sequences)
def test_join_is_upper_bound(left_ops, right_ops):
    left, right = run_ops(left_ops), run_ops(right_ops)
    joined = left.join(right)
    assert left.leq(joined)
    assert right.leq(joined)


@settings(max_examples=100, deadline=None)
@given(op_sequences, op_sequences, op_sequences)
def test_join_monotone(low_ops, extra_ops, other_ops):
    """``a <= b  ==>  a join c <= b join c`` (b built as a join upper)."""
    low, other = run_ops(low_ops), run_ops(other_ops)
    high = low.join(run_ops(extra_ops))
    assert low.leq(high)
    assert low.join(other).leq(high.join(other))


@settings(max_examples=200, deadline=None)
@given(op_sequences, op_sequences)
def test_join_over_approximates_both_inputs(left_ops, right_ops):
    """The join never claims a definite hit/miss either input disputes."""
    left, right = run_ops(left_ops), run_ops(right_ops)
    joined = left.join(right)
    for block in BLOCKS:
        verdict = joined.classify(block)
        if verdict == UNKNOWN:
            continue
        assert left.classify(block) == verdict, block
        assert right.classify(block) == verdict, block


@settings(max_examples=200, deadline=None)
@given(concrete_sequences)
def test_concrete_path_matches_reference_lru(sequence):
    """No joins, no havoc: the abstract state IS an exact LRU simulator."""
    state = CacheState(GEOMETRY)
    lru = {index: [] for index in range(GEOMETRY.num_sets)}
    for block in sequence:
        ways = lru[GEOMETRY.set_of(block)]
        expected = HIT if block in ways else MISS
        assert state.classify(block) == expected, (sequence, block)
        if block in ways:
            ways.remove(block)
        ways.insert(0, block)
        del ways[GEOMETRY.assoc:]
        state.access(block)
    for block in BLOCKS:
        ways = lru[GEOMETRY.set_of(block)]
        expected = HIT if block in ways else MISS
        assert state.classify(block) == expected, (sequence, block)
