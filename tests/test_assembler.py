"""Two-pass assembler."""

import pytest

from repro.errors import AssemblyError
from repro.isa.assembler import assemble


def test_minimal_program():
    program = assemble("halt")
    assert len(program) == 1
    assert program.instructions[0].op == "halt"
    assert program.finalized


def test_comments_and_blank_lines():
    program = assemble(
        """
        # full-line comment
        nop  ; trailing comment
        nop  # another
        halt
        """
    )
    assert len(program) == 3


def test_labels_resolve_to_indices():
    program = assemble(
        """
        li r1, 3
        loop:
        sub r1, r1, 1
        bne r1, zero, loop
        halt
        """
    )
    branch = program.instructions[2]
    assert branch.target == 1  # index of the sub


def test_forward_label():
    program = assemble(
        """
        jmp end
        nop
        end:
        halt
        """
    )
    assert program.instructions[0].target == 2


def test_undefined_label():
    with pytest.raises(AssemblyError, match="undefined label"):
        assemble("jmp nowhere\nhalt")


def test_duplicate_label():
    with pytest.raises(AssemblyError, match="duplicate"):
        assemble("x:\nnop\nx:\nhalt")


def test_equ_constants():
    program = assemble(
        """
        .equ BASE 0x1000
        li r1, BASE
        halt
        """
    )
    assert program.instructions[0].imm == 0x1000


def test_data_directive():
    program = assemble(".data 0x100 stride=16 1 2 0xff\nhalt")
    segment = program.data_segments[0]
    assert segment.base == 0x100
    assert segment.stride == 16
    assert segment.values == (1, 2, 0xFF)


def test_fill_directive():
    program = assemble(".fill 0x200 count=4 stride=64 value=9\nhalt")
    segment = program.data_segments[0]
    assert segment.values == (9, 9, 9, 9)
    assert segment.addresses() == [0x200, 0x240, 0x280, 0x2C0]


def test_fill_requires_count():
    with pytest.raises(AssemblyError, match="count"):
        assemble(".fill 0x200 value=1\nhalt")


def test_load_offset_forms():
    program = assemble("load r1, 8(r2)\nload r3, (r4)\nhalt")
    assert program.instructions[0].imm == 8
    assert program.instructions[1].imm == 0


def test_negative_offset():
    program = assemble("load r1, -8(r2)\nhalt")
    assert program.instructions[0].imm == -8


def test_store_syntax():
    program = assemble("store r1, 16(r2)\nhalt")
    instruction = program.instructions[0]
    assert instruction.rs0 == 1 and instruction.rs1 == 2 and instruction.imm == 16


def test_alu_register_vs_immediate():
    program = assemble("add r1, r2, r3\nadd r4, r5, 42\nhalt")
    assert program.instructions[0].rs1 == 3
    assert program.instructions[1].imm == 42


def test_bad_register():
    with pytest.raises(AssemblyError):
        assemble("li r99, 1\nhalt")


def test_bad_integer():
    with pytest.raises(AssemblyError, match="bad integer"):
        assemble("li r1, xyz\nhalt")


def test_wrong_arity():
    with pytest.raises(AssemblyError, match="expects"):
        assemble("li r1\nhalt")


def test_unknown_mnemonic():
    with pytest.raises(AssemblyError):
        assemble("explode r1, r2\nhalt")


def test_unknown_directive():
    with pytest.raises(AssemblyError, match="unknown directive"):
        assemble(".bogus 1\nhalt")


def test_error_carries_line_number():
    try:
        assemble("nop\nli r1\nhalt")
    except AssemblyError as error:
        assert "line 2" in str(error)
    else:  # pragma: no cover
        pytest.fail("expected AssemblyError")


def test_name_directive():
    program = assemble(".name myprog\nhalt")
    assert program.name == "myprog"


def test_case_insensitive_mnemonics():
    program = assemble("LI r1, 1\nHALT")
    assert program.instructions[0].op == "li"


def test_prefetch_ops_assemble_and_roundtrip():
    from repro.isa.assembler import assemble

    program = assemble(
        """
        li r1, 0x1000
        prefetch 0(r1)
        prefetchw 64(r1)
        halt
        """
    )
    ops = [instruction.op for instruction in program.instructions]
    assert ops == ["li", "prefetch", "prefetchw", "halt"]
    assert program.instructions[1].rs0 == 1 and program.instructions[1].imm == 0
    assert program.instructions[2].imm == 64
    # to_text round-trips through the assembler.
    again = assemble(program.to_text())
    assert [i.to_text() for i in again.instructions] == [
        i.to_text() for i in program.instructions
    ]
