"""Differential oracle: static leak maps vs. the dynamic scenario suite.

The taint pass makes a falsifiable claim — *these* probe indices and no
others are touched as a function of the secret.  This file locks that
claim in both directions:

* **static == footprint model**: for every crypto victim, under every
  attack wrapper, for every secret in the victim's space, the static
  :func:`~repro.analysis.leak_map` equals the registry's
  ``expected_indices`` model (the same model the dynamic suite scores
  against).
* **static leak ⇒ dynamic leak**: victims the taint pass calls leaky
  score positive mutual information on the undefended Base config, and
  the taint-clean control (``const-lookup``, a fixed-index table access)
  scores exactly zero bits.  A regression in either the analysis or the
  simulator breaks the agreement.
"""

import pytest

from repro.analysis import leak_map, taint_of_program
from repro.attacks import scenarios
from repro.attacks.layout import AttackOptions
from repro.runner import ATTACK_KINDS
from repro.workloads.crypto import get_victim, victim_names

CRYPTO_LEAKY = ("aes-ttable", "direct", "ecdsa-window", "rsa-sqmul")


def victim_program(attack):
    """The one program of the attack build that carries a declared secret."""
    carriers = [p for p in attack.build_programs() if p.taint_sources]
    assert len(carriers) == 1, "expected exactly one secret-bearing program"
    return carriers[0]


def expected_footprint(victim, secret):
    options = AttackOptions(
        secret=0, num_indices=victim.num_indices, victim=victim.name
    )
    return tuple(sorted(set(victim.expected_indices(secret, options))))


# -- static leak map == footprint model, everywhere -------------------------


@pytest.mark.parametrize("kind", sorted(ATTACK_KINDS))
@pytest.mark.parametrize("name", victim_names())
def test_leak_map_matches_footprint_model(kind, name):
    victim = get_victim(name)
    attack = ATTACK_KINDS[kind](
        victim=name, num_indices=victim.num_indices, secret=0
    )
    program = victim_program(attack)
    for secret in range(victim.secret_space):
        observed = leak_map(
            program,
            secret,
            probe_base=attack.layout.probe_base,
            scale=attack.options.scale,
            num_indices=attack.options.num_indices,
        )
        assert observed == expected_footprint(victim, secret), (
            kind,
            name,
            secret,
        )


@pytest.mark.parametrize("name", victim_names())
def test_taint_verdict_matches_footprint_variability(name):
    """``taint.leaks`` agrees with whether the footprint varies at all."""
    victim = get_victim(name)
    attack = ATTACK_KINDS["flush-reload"](
        victim=name, num_indices=victim.num_indices, secret=0
    )
    taint = taint_of_program(victim_program(attack))
    footprints = {
        expected_footprint(victim, secret)
        for secret in range(victim.secret_space)
    }
    assert taint.leaks == (len(footprints) > 1), name


def test_const_lookup_is_taint_clean():
    """The control victim loads the secret but never lets it near an
    address or a branch — secret-valued only, no leak surface."""
    victim = get_victim("const-lookup")
    attack = ATTACK_KINDS["flush-reload"](
        victim="const-lookup", num_indices=victim.num_indices, secret=0
    )
    taint = taint_of_program(victim_program(attack))
    assert taint.sources, "the control must still read the secret"
    assert taint.secret_addressed() == ()
    assert taint.branches == ()
    assert not taint.leaks


# -- static verdict ⇒ dynamic mutual information ----------------------------


@pytest.fixture(scope="module")
def base_cells():
    result = scenarios.run(
        victims=tuple(victim_names()),
        attacks=("flush-reload",),
        defenses=("Base",),
        secrets=4,
    )
    return {
        cell.spec.victim: cell
        for cell in result.cells
    }


def test_static_leak_implies_dynamic_mi(base_cells):
    for name in CRYPTO_LEAKY:
        cell = base_cells[name]
        assert cell.score.mi_bits > 0.0, name
        assert cell.score.success_rate == 1.0, name


def test_taint_clean_victim_scores_zero_bits(base_cells):
    cell = base_cells["const-lookup"]
    assert cell.score.mi_bits == 0.0
    # Every trial recovers the same fixed index, whatever the secret.
    candidate_sets = {tuple(probe.candidates) for probe in cell.probes}
    assert len(candidate_sets) == 1
