"""End-to-end performance shape checks (fast versions of the table benches)."""

import pytest

from repro.core.config import PrefenderConfig
from repro.experiments.common import PERF_CORE
from repro.sim.config import PrefetcherSpec, SystemConfig
from repro.sim.simulator import run_program
from repro.workloads import get_workload


def cycles(name, spec, scale=0.2):
    program = get_workload(name).program(scale)
    return run_program(
        program, SystemConfig(prefetcher=spec, core=PERF_CORE)
    ).cycles


BASE = PrefetcherSpec(kind="none")
ST_AT = PrefetcherSpec(kind="prefender", prefender=PrefenderConfig.st_at(32))
FULL = PrefetcherSpec(kind="prefender", prefender=PrefenderConfig.full(32))
TAGGED = PrefetcherSpec(kind="tagged")
STRIDE = PrefetcherSpec(kind="stride")


def test_streaming_benchmark_gains_with_every_prefetcher():
    base = cycles("462.libquantum", BASE)
    for spec in (ST_AT, TAGGED, STRIDE):
        assert cycles("462.libquantum", spec) < base


def test_compute_only_benchmark_is_invariant():
    base = cycles("999.specrand", BASE)
    for spec in (ST_AT, FULL, TAGGED, STRIDE):
        assert cycles("999.specrand", spec) == base


def test_parest_prefers_prefender_over_stride():
    """The Table VI headline: ST's dataflow tracking beats stride guessing
    on index-driven strided-sparse access."""
    base = cycles("510.parest_r", BASE)
    st_at = cycles("510.parest_r", ST_AT)
    stride = cycles("510.parest_r", STRIDE)
    assert st_at < base
    assert st_at < stride


def test_random_lookup_benchmark_never_gains_much():
    base = cycles("458.sjeng", BASE)
    st_at = cycles("458.sjeng", ST_AT)
    assert abs(base - st_at) / base < 0.02


def test_rp_cost_is_small():
    base = cycles("429.mcf", BASE)
    without_rp = cycles("429.mcf", ST_AT)
    with_rp = cycles("429.mcf", FULL)
    gain_without = base / without_rp - 1
    gain_with = base / with_rp - 1
    assert gain_with > 0
    assert abs(gain_without - gain_with) < 0.08


def test_composite_does_not_break_basic_prefetcher():
    composite = PrefetcherSpec(
        kind="prefender+tagged", prefender=PrefenderConfig.st_at(32)
    )
    base = cycles("456.hmmer", BASE)
    assert cycles("456.hmmer", composite) < base


def test_prefender_defends_while_accelerating():
    """The paper's thesis in one test: same configuration, both benefits."""
    from repro.attacks import FlushReloadAttack

    config = SystemConfig(prefetcher=FULL, core=PERF_CORE)
    outcome = FlushReloadAttack().run(config)
    assert outcome.defended

    base = cycles("462.libquantum", BASE)
    fast = cycles("462.libquantum", FULL)
    assert fast < base


@pytest.mark.parametrize("buffers", [16, 32, 64])
def test_buffer_sweep_all_positive_on_winner(buffers):
    spec = PrefetcherSpec(
        kind="prefender", prefender=PrefenderConfig.st_at(buffers)
    )
    assert cycles("462.libquantum", spec) < cycles("462.libquantum", BASE)
