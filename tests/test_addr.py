"""Address-map arithmetic."""

import pytest

from repro.errors import ConfigError
from repro.utils.addr import AddressMap


@pytest.fixture
def amap():
    return AddressMap()


def test_defaults(amap):
    assert amap.block_size == 64
    assert amap.page_size == 4096
    assert amap.block_bits == 6
    assert amap.page_bits == 12


def test_block_addr(amap):
    assert amap.block_addr(0) == 0
    assert amap.block_addr(63) == 0
    assert amap.block_addr(64) == 64
    assert amap.block_addr(0x12345) == 0x12340


def test_block_offset(amap):
    assert amap.block_offset(0x12345) == 5
    assert amap.block_offset(64) == 0


def test_block_index(amap):
    assert amap.block_index(0) == 0
    assert amap.block_index(128) == 2


def test_page_addr(amap):
    assert amap.page_addr(0x1FFF) == 0x1000
    assert amap.page_offset(0x1FFF) == 0xFFF


def test_same_page(amap):
    assert amap.same_page(0x1000, 0x1FFF)
    assert not amap.same_page(0x1000, 0x2000)


def test_same_block(amap):
    assert amap.same_block(0x40, 0x7F)
    assert not amap.same_block(0x40, 0x80)


def test_set_index(amap):
    assert amap.set_index(0, 512) == 0
    assert amap.set_index(64, 512) == 1
    assert amap.set_index(512 * 64, 512) == 0  # wraps at the set span


def test_set_index_rejects_non_power_of_two(amap):
    with pytest.raises(ConfigError):
        amap.set_index(0, 100)


def test_blocks_in_range(amap):
    assert amap.blocks_in_range(0, 1) == [0]
    assert amap.blocks_in_range(60, 8) == [0, 64]
    assert amap.blocks_in_range(0, 129) == [0, 64, 128]
    assert amap.blocks_in_range(0, 0) == []


def test_invalid_geometry():
    with pytest.raises(ConfigError):
        AddressMap(block_size=100)
    with pytest.raises(ConfigError):
        AddressMap(page_size=1000)
    with pytest.raises(ConfigError):
        AddressMap(block_size=128, page_size=64)


def test_custom_geometry():
    amap = AddressMap(block_size=128, page_size=8192)
    assert amap.block_bits == 7
    assert amap.block_addr(130) == 128
    assert amap.same_page(0, 8191)
