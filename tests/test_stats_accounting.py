"""Regression tests for the stats-accounting bugs fixed in PR 4.

Three bugs made the counters unusable as a parity oracle:

* ``MemoryHierarchy.flush`` bumped the issuing core's L1 ``stats.flushes``
  on top of ``Cache.flush_block``'s own increment, double-counting a flush
  of a self-resident line.  Semantics now: ``CacheStats.flushes`` counts
  lines flushed from *this* cache; the per-instruction count lives in
  ``CoreStats.flushes``.
* ``Cache.invalidate_block`` silently discarded dirty lines: cross-core
  store invalidations, prefetchw ownership steals and inclusive
  back-invalidations all dropped modified data with no writeback and no
  ``stats.writebacks``.
* Store-to-load-forwarded (transient) loads skipped ``CoreStats.loads``
  and ``load_latency_total``, so transient load counts depended on whether
  the value happened to come from the store buffer.
"""

from repro.cpu.core import Core, CoreConfig
from repro.isa.assembler import assemble
from repro.mem.hierarchy import HierarchyConfig, MemoryHierarchy


# --- clflush accounting -------------------------------------------------------


def test_flush_of_self_resident_line_counts_once():
    hierarchy = MemoryHierarchy(num_cores=2)
    hierarchy.load(0, 0x4000, now=0)
    hierarchy.flush(0, 0x4000, now=100)
    # One line left this L1 and one left the L2: one count in each.
    assert hierarchy.l1ds[0].stats.flushes == 1
    assert hierarchy.l2.stats.flushes == 1
    assert hierarchy.l1ds[1].stats.flushes == 0


def test_flush_of_absent_line_counts_nowhere():
    hierarchy = MemoryHierarchy(num_cores=2)
    hierarchy.flush(0, 0x8000, now=0)
    assert hierarchy.l1ds[0].stats.flushes == 0
    assert hierarchy.l2.stats.flushes == 0


def test_flush_counts_follow_residency_not_the_issuing_core():
    hierarchy = MemoryHierarchy(num_cores=2)
    hierarchy.load(1, 0x5000, now=0)  # resident in L1D1 (and L2) only
    hierarchy.flush(0, 0x5000, now=100)  # issued by core 0
    assert hierarchy.l1ds[0].stats.flushes == 0
    assert hierarchy.l1ds[1].stats.flushes == 1
    assert hierarchy.l2.stats.flushes == 1


def test_clflush_instruction_count_stays_in_core_stats():
    program = assemble(
        """
        li r10, 0x4000
        load r11, 0(r10)
        clflush 0(r10)
        halt
        """
    )
    hierarchy = MemoryHierarchy(num_cores=1)
    hierarchy.memory.load_program_data(program)
    core = Core(0, program, hierarchy, CoreConfig())
    while not core.halted:
        core.step()
    assert core.stats.flushes == 1
    assert hierarchy.l1ds[0].stats.flushes == 1


# --- dirty-line invalidation --------------------------------------------------


def test_cross_invalidation_writes_back_dirty_line():
    hierarchy = MemoryHierarchy(num_cores=2)
    hierarchy.store(0, 0x2000, 5, now=0)
    assert hierarchy.l1ds[0].line_for(0x2000).dirty
    # Core 1's store steals the line; core 0's modified copy must be
    # written back into the shared L2, not dropped.
    hierarchy.store(1, 0x2000, 6, now=100)
    assert hierarchy.l1ds[0].stats.writebacks == 1
    assert hierarchy.l1ds[0].stats.cross_invalidations == 1
    assert hierarchy.l2.line_for(0x2000).dirty


def test_prefetchw_ownership_steal_writes_back_dirty_line():
    hierarchy = MemoryHierarchy(num_cores=2)
    hierarchy.store(1, 0x3000, 9, now=0)
    assert hierarchy.l1ds[1].line_for(0x3000).dirty
    hierarchy.software_prefetch(0, 0x3000, now=100, write=True)
    assert hierarchy.l1ds[1].stats.writebacks == 1
    assert hierarchy.l2.line_for(0x3000).dirty


def test_back_invalidated_dirty_line_reaches_memory_as_writeback():
    hierarchy = MemoryHierarchy(
        num_cores=1,
        config=HierarchyConfig(l2_size=64 * 1024, l2_assoc=1),
    )
    span = hierarchy.l2.num_sets * 64
    hierarchy.store(0, 0x0, 7, now=0)  # dirty in L1D0, clean in L2
    hierarchy.load(0, span, now=1000)  # same L2 set, assoc 1 -> back-invalidate
    assert hierarchy.l1ds[0].stats.back_invalidations == 1
    # The L1 writeback lands in the L2 line *before* the L2 eviction
    # decides whether to write back, so the dirty data reaches memory.
    assert hierarchy.l1ds[0].stats.writebacks == 1
    assert hierarchy.l2.stats.writebacks == 1


def test_clean_cross_invalidation_writes_nothing_back():
    hierarchy = MemoryHierarchy(num_cores=2)
    hierarchy.load(0, 0x6000, now=0)  # clean copy
    hierarchy.store(1, 0x6000, 3, now=100)
    assert hierarchy.l1ds[0].stats.cross_invalidations == 1
    assert hierarchy.l1ds[0].stats.writebacks == 0


# --- store-to-load forwarding -------------------------------------------------


def test_forwarded_transient_load_counts_as_load():
    # beq zero, zero is always taken; a fresh predictor guesses not-taken,
    # so the fall-through (store + load of the same address) runs
    # transiently and the load forwards from the speculative store buffer.
    program = assemble(
        """
        li r20, 0x40000
        li r25, 7
        beq zero, zero, target
        store r25, 0(r20)
        load r21, 0(r20)
        fence
        target:
        halt
        """
    )
    hierarchy = MemoryHierarchy(num_cores=1)
    hierarchy.memory.load_program_data(program)
    config = CoreConfig(
        speculative_execution=True, resolve_delay=300, spec_window=12
    )
    core = Core(0, program, hierarchy, config)
    steps = 0
    while not core.halted:
        core.step()
        steps += 1
        assert steps < 10_000
    assert core.stats.squashes == 1
    # The forwarded load is still a load: it must count, with the
    # forwarding latency (one base-cost cycle), like any other load.
    assert core.stats.loads == 1
    assert core.stats.load_latency_total == config.base_cost
    # Forwarding means the cache was never touched.
    assert not hierarchy.l1_contains(0, 0x40000)
