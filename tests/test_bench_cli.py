"""The ``python -m repro bench`` command and its JSON report."""

import json

import pytest

from repro.__main__ import main
from repro.sim import bench


def test_run_bench_report_shape():
    report = bench.run_bench(scale=0.05, repeats=1)
    assert report["schema"] == bench.SCHEMA
    assert set(report["scenarios"]) == set(bench.SCENARIO_NAMES)
    for name in bench.SCENARIO_NAMES:
        cell = report["scenarios"][name]
        assert cell["instructions"] > 0
        assert cell["cycles"] > 0
        assert cell["seconds"] > 0
        assert cell["instr_per_sec"] > 0


def test_bench_cli_quick_emits_report(tmp_path, capsys):
    out = tmp_path / "BENCH_sim_throughput.json"
    assert main(["bench", "--quick", "--output", str(out)]) == 0
    printed = capsys.readouterr().out
    assert "single_core_victim" in printed
    report = json.loads(out.read_text())
    assert report["schema"] == bench.SCHEMA
    assert set(report["scenarios"]) == set(bench.SCENARIO_NAMES)
    # Quick mode shrinks the workload and runs one pass per scenario.
    assert report["scale"] == bench.QUICK_SCALE
    assert report["repeats"] == 1


def test_bench_cli_rejects_bad_scale():
    with pytest.raises(SystemExit):
        main(["bench", "--scale", "-1"])


def test_render_report_lists_all_scenarios():
    report = bench.run_bench(scale=0.05, repeats=1)
    text = bench.render_report(report)
    for name in bench.SCENARIO_NAMES:
        assert name in text
    assert "instr/s" in text
