"""Crypto victims, the scenario registry and leakage scoring."""

import pytest

from repro.attacks import leakage, scenarios
from repro.attacks.layout import AttackOptions
from repro.errors import ConfigError
from repro.runner import ScenarioJob, ScenarioProbe, run_batch
from repro.sim.config import SystemConfig
from repro.workloads.crypto import (
    AES_PLAINTEXT,
    AES_TABLE_LINES,
    RSA_SQUARE_INDEX,
    CRYPTO_VICTIMS,
    get_victim,
    victim_names,
)


# --- victim registry ---------------------------------------------------------------


def test_registry_has_all_victims():
    assert {"direct", "aes-ttable", "rsa-sqmul", "ecdsa-window"} <= set(
        victim_names()
    )
    with pytest.raises(ConfigError):
        get_victim("des-sbox")


def test_victim_footprints_fit_probe_array():
    """Every secret's footprint stays inside the victim's probe array."""
    for victim in CRYPTO_VICTIMS.values():
        options = AttackOptions(
            secret=0, num_indices=victim.num_indices, victim=victim.name
        )
        for secret in range(victim.secret_space):
            expected = victim.expected_indices(secret, options)
            assert expected, (victim.name, secret)
            assert all(0 <= index < victim.num_indices for index in expected)


def test_aes_footprint_shape():
    victim = get_victim("aes-ttable")
    options = AttackOptions(secret=0, num_indices=victim.num_indices)
    expected = victim.expected_indices(5, options)
    assert len(expected) == len(AES_PLAINTEXT)  # one line per T-table
    tables = sorted(index // AES_TABLE_LINES for index in expected)
    assert tables == list(range(len(AES_PLAINTEXT)))
    assert (AES_PLAINTEXT[0] ^ 5) in expected


def test_rsa_footprint_encodes_exponent_bits():
    victim = get_victim("rsa-sqmul")
    options = AttackOptions(secret=0, num_indices=victim.num_indices)
    assert victim.expected_indices(0, options) == (RSA_SQUARE_INDEX,)
    assert victim.expected_indices(0b0101, options) == (0, 16, RSA_SQUARE_INDEX)


def test_ecdsa_footprint_window_collision():
    victim = get_victim("ecdsa-window")
    options = AttackOptions(secret=0, num_indices=victim.num_indices)
    # Windows (2, 2) collapse to one table line; (1, 3) touch two.
    assert victim.expected_indices(0b1010, options) == (18,)
    assert victim.expected_indices(0b1101, options) == (17, 19)


def test_trial_secrets_deterministic_and_spaced():
    victim = get_victim("aes-ttable")
    assert victim.trial_secrets(4) == (0, 4, 8, 12)
    assert victim.trial_secrets(99) == tuple(range(16))  # clamped to space
    with pytest.raises(ConfigError):
        victim.trial_secrets(0)


def test_crypto_victim_requires_direct_mode():
    with pytest.raises(ConfigError):
        AttackOptions(victim="aes-ttable", victim_mode="spectre")
    with pytest.raises(ConfigError):
        AttackOptions(victim="")


# --- leakage scoring ----------------------------------------------------------------


def test_mutual_information_extremes():
    secrets = [0, 1, 2, 3]
    distinct = [(0,), (1,), (2,), (3,)]
    constant = [(7,), (7,), (7,), (7,)]
    assert leakage.mutual_information_bits(secrets, distinct) == pytest.approx(2.0)
    assert leakage.mutual_information_bits(secrets, constant) == 0.0
    # Two secrets per observable class: half the secret leaks.
    paired = [(0,), (0,), (1,), (1,)]
    assert leakage.mutual_information_bits(secrets, paired) == pytest.approx(1.0)


def test_mutual_information_validates_lengths():
    with pytest.raises(ConfigError):
        leakage.mutual_information_bits([0, 1], [(0,)])


def _probe(secret, candidates, succeeded):
    return ScenarioProbe(
        attack="flush-reload",
        victim="direct",
        challenges="C1+C2",
        secret=secret,
        expected=[secret],
        candidates=candidates,
        latencies=[0] * 4,
        succeeded=succeeded,
        cycles=1000,
        defense_stats=[{"allocation_failures": 3}],
    )


def test_score_trials():
    probes = [_probe(0, [0], True), _probe(1, [1], True), _probe(2, [0], False)]
    score = leakage.score_trials(probes)
    assert score.trials == 3
    assert score.success_rate == pytest.approx(2 / 3)
    assert 0.0 < score.mi_bits <= score.mi_ceiling_bits
    with pytest.raises(ConfigError):
        leakage.score_trials([])


def test_scenario_probe_json_roundtrip():
    probe = _probe(5, [5, 6], False)
    assert ScenarioProbe.from_json(probe.to_json()) == probe


# --- scenario jobs & registry -------------------------------------------------------


def test_scenario_job_build_validates():
    with pytest.raises(ConfigError):
        ScenarioJob.build("flush-reload", "no-such-victim", 0)
    with pytest.raises(ConfigError):
        ScenarioJob.build("flush-reload", "aes-ttable", 16)  # space is 0..15
    with pytest.raises(ConfigError):
        ScenarioJob(attack="no-such-attack")


def test_scenario_job_keys_cover_victim_and_secret():
    base = ScenarioJob.build("flush-reload", "aes-ttable", 1)
    assert base.key() != ScenarioJob.build("flush-reload", "aes-ttable", 2).key()
    assert base.key() != ScenarioJob.build("flush-reload", "rsa-sqmul", 1).key()
    assert base.key() != ScenarioJob.build("evict-reload", "aes-ttable", 1).key()


def test_build_grid_shape_and_validation():
    specs, jobs = scenarios.build_grid(
        ("aes-ttable",), ("flush-reload", "evict-reload"), ("Base", "FULL"), 2
    )
    assert len(specs) == 4
    assert len(jobs) == 8  # 2 trial secrets per cell, grouped by cell
    assert jobs[0].options.victim == "aes-ttable"
    assert jobs[0].options.num_indices == get_victim("aes-ttable").num_indices
    with pytest.raises(ConfigError):
        scenarios.build_grid((), ("flush-reload",), ("Base",), 2)
    with pytest.raises(ConfigError):
        scenarios.build_grid(("aes-ttable",), ("bogus",), ("Base",), 2)
    with pytest.raises(ConfigError):
        scenarios.build_grid(("aes-ttable",), ("flush-reload",), ("Bogus",), 2)


def test_slice_trials_handles_mixed_secret_spaces():
    """Victims with different effective trial counts (trial_secrets clamps
    to each victim's secret space) must never bleed probes across cells."""
    victims = ("ecdsa-window", "direct")  # spaces 16 and 96
    secrets = 20  # ecdsa clamps to 16 trials; direct keeps all 20
    specs, jobs = scenarios.build_grid(victims, ("flush-reload",), ("Base",), secrets)
    assert [job.options.victim for job in jobs] == ["ecdsa-window"] * 16 + [
        "direct"
    ] * 20
    fake = [
        _probe(job.options.secret, [job.options.secret], True) for job in jobs
    ]
    for probe, job in zip(fake, jobs):
        probe.victim = job.options.victim
    cells = scenarios.slice_trials(specs, fake, secrets)
    assert [cell.spec.victim for cell in cells] == ["ecdsa-window", "direct"]
    assert [cell.score.trials for cell in cells] == [16, 20]
    assert all(
        probe.victim == cell.spec.victim
        for cell in cells
        for probe in cell.probes
    )
    with pytest.raises(ConfigError):
        scenarios.slice_trials(specs, fake[:-1], secrets)


def test_scenario_parallel_matches_sequential():
    """Registry smoke: the grid through the runner is byte-identical
    between sequential and 2-worker parallel execution."""
    _, jobs = scenarios.build_grid(
        ("ecdsa-window",), ("flush-reload",), ("Base", "FULL"), 2
    )
    sequential = run_batch(jobs, workers=1)
    parallel = run_batch(jobs, workers=2)
    assert sequential == parallel
    base, full = sequential[:2], sequential[2:]
    assert all(probe.succeeded for probe in base)
    assert not any(probe.succeeded for probe in full)


def test_scenario_run_and_render_smoke():
    result = scenarios.run(
        victims=("ecdsa-window",),
        attacks=("flush-reload",),
        defenses=("Base",),
        secrets=2,
    )
    assert len(result.cells) == 1
    cell = result.cell("ecdsa-window", "flush-reload", "Base")
    assert cell.score.success_rate == 1.0
    assert cell.score.mi_bits == pytest.approx(cell.score.mi_ceiling_bits)
    assert result.victim_success("ecdsa-window", "Base") == 1.0
    text = scenarios.render(result)
    assert "ecdsa-window" in text and "Flush+Reload" in text


def test_store_roundtrips_scenario_probes(tmp_path):
    from repro.runner import ResultStore

    job = ScenarioJob.build("flush-reload", "ecdsa-window", 1)
    store = ResultStore(tmp_path)
    first = run_batch([job], store=store)
    assert store.misses == 1 and store.hits == 0
    again = run_batch([job], store=store)
    assert store.hits == 1
    assert first == again


def test_scenario_probe_carries_defense_stats():
    """Buffer starvation is reportable: FULL-defense trials export the
    Access Tracker counters (the scenario suite's `alloc fails` column)."""
    probe = ScenarioJob.build(
        "flush-reload",
        "aes-ttable",
        3,
        SystemConfig(prefetcher=scenarios.defense_spec("FULL")),
    ).run()
    assert probe.defense_stats, "defense counters missing from the probe"
    stats = probe.defense_stats[0]
    assert "allocation_failures" in stats
    assert "sweep_unprotections" in stats
    assert stats["protections"] >= 1


def test_reuse_snapshots_matches_rebuild_across_job_counts():
    """PR-7 regression: warm-snapshot replay must be byte-identical to the
    rebuild-per-trial path, sequentially and under process sharding."""
    grid = dict(
        victims=("ecdsa-window",),
        attacks=("evict-reload",),
        defenses=("Base", "FULL"),
        secrets=4,
    )
    rebuilt = scenarios.run(**grid, jobs=1, reuse_snapshots=False)
    expected = [
        probe.to_json() for cell in rebuilt.cells for probe in cell.probes
    ]
    for jobs in (1, 4):
        reused = scenarios.run(**grid, jobs=jobs, reuse_snapshots=True)
        observed = [
            probe.to_json() for cell in reused.cells for probe in cell.probes
        ]
        assert observed == expected, f"replay diverged from rebuild at jobs={jobs}"


def test_reuse_snapshots_caches_individual_trials(tmp_path):
    """Replayed probes land in the store under their own trial keys."""
    from repro.runner import ResultStore

    jobs = [
        ScenarioJob.build("evict-reload", "ecdsa-window", secret)
        for secret in (1, 5, 9)
    ]
    store = ResultStore(tmp_path)
    first = run_batch(jobs, store=store, reuse_snapshots=True)
    assert store.misses == len(jobs)
    again = run_batch(jobs, store=store, reuse_snapshots=True)
    assert store.hits == len(jobs)
    assert first == again
