"""The persistent WorkerPool: warm reuse across batches, parity, errors."""

import dataclasses
from dataclasses import dataclass

import pytest

from repro.errors import ConfigError
from repro.experiments import common
from repro.runner import ResultStore, WorkerPool, run_batch
from repro.sim.config import PrefetcherSpec


def _jobs(scales=(0.05, 0.06)):
    spec = PrefetcherSpec(kind="none")
    return [
        common.sim_job(name, spec, scale)
        for name in ("999.specrand", "462.libquantum")
        for scale in scales
    ]


@dataclass(frozen=True)
class _FailingJob:
    """Module-level so it pickles into pool workers."""

    message: str = "boom"
    cacheable = False

    def key(self) -> str:
        return f"failing-{self.message}"

    def run(self):
        raise ConfigError(self.message)


def test_pool_reuses_workers_across_batches():
    """The tentpole claim: consecutive run_batch calls share warm workers."""
    with WorkerPool(workers=2) as pool:
        first = run_batch(_jobs(), pool=pool)
        pids = pool.pids()
        assert len(pids) == 2 and pool.alive()
        second = run_batch(_jobs(scales=(0.07, 0.08)), pool=pool)
        third = run_batch(_jobs(), pool=pool)
        assert pool.pids() == pids, "workers must not be respawned"
        assert pool.alive() and pool.batches == 3
    assert len(first) == 4 and len(second) == 4
    # Identical jobs produce identical results on the reused workers.
    assert [dataclasses.asdict(r) for r in third] == [
        dataclasses.asdict(r) for r in first
    ]


def test_pool_results_match_inline_run_batch():
    jobs = _jobs()
    inline = run_batch(jobs, workers=1)
    with WorkerPool(workers=2) as pool:
        pooled = run_batch(jobs, pool=pool)
    assert [dataclasses.asdict(r) for r in pooled] == [
        dataclasses.asdict(r) for r in inline
    ]


def test_pool_feeds_the_store_like_the_executor(tmp_path):
    """Pool-run cacheable jobs land in the disk store; a rerun is all hits."""
    store = ResultStore(tmp_path)
    jobs = _jobs()
    with WorkerPool(workers=2) as pool:
        run_batch(jobs, store=store, pool=pool)
        assert len(store) == len(jobs)
        run_batch(jobs, store=store, pool=pool)
    assert store.hits == len(jobs)


def test_pool_propagates_job_errors_and_stays_usable():
    with WorkerPool(workers=2) as pool:
        with pytest.raises(ConfigError, match="boom"):
            pool.run([_FailingJob(), _FailingJob("later")])
        # The failed batch is fully drained: the pool still works after it.
        results = pool.run(_jobs())
        assert len(results) == 4 and pool.alive()


def test_pool_empty_batch_spawns_nothing():
    pool = WorkerPool(workers=2)
    assert pool.run([]) == []
    assert pool.pids() == [] and pool.batches == 0
    pool.close()


def test_pool_close_is_idempotent_and_final():
    pool = WorkerPool(workers=1)
    pool.run(_jobs(scales=(0.05,)))
    pool.close()
    pool.close()
    assert not pool.alive() and pool.pids() == []
    with pytest.raises(ConfigError):
        pool.run(_jobs(scales=(0.05,)))


def test_pool_poisons_itself_when_a_worker_dies():
    """A killed worker must close the pool, not leave reusable stale queues."""
    import os
    import signal

    pool = WorkerPool(workers=1)
    pool.run(_jobs(scales=(0.05,)))
    os.kill(pool.pids()[0], signal.SIGKILL)
    with pytest.raises(RuntimeError, match="worker died"):
        pool.run(_jobs(scales=(0.06,)))
    assert not pool.alive()
    with pytest.raises(ConfigError):  # closed: a fresh pool is required
        pool.run(_jobs(scales=(0.07,)))
    pool.close()  # still a no-op, not an error


def test_pool_worker_count_validation():
    assert WorkerPool(0).workers >= 1  # 0 = all cores
    with pytest.raises(ConfigError):
        WorkerPool(-1)
