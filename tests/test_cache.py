"""Set-associative cache behaviour."""

import pytest

from repro.errors import ConfigError
from repro.mem.cache import Cache, MemoryPort
from repro.mem.memory import MainMemory
from repro.utils.addr import AddressMap


def make_cache(size=1024, assoc=2, hit=4, mem_latency=100):
    amap = AddressMap()
    memory = MainMemory(latency=mem_latency)
    cache = Cache(
        "L1D0", size=size, assoc=assoc, amap=amap, hit_latency=hit,
        parent=MemoryPort(memory),
    )
    return cache


def test_geometry_validation():
    amap = AddressMap()
    memory = MainMemory()
    with pytest.raises(ConfigError):
        Cache("bad", size=1000, assoc=2, amap=amap, hit_latency=1,
              parent=MemoryPort(memory))


def test_level_name_strips_core_id():
    cache = make_cache()
    assert cache.level_name == "L1D"


def test_miss_then_hit():
    cache = make_cache()
    latency, level = cache.access(0x1000, now=0)
    assert level == "MEM"
    assert latency == 4 + 100
    latency, level = cache.access(0x1000, now=200)
    assert (latency, level) == (4, "L1D")
    assert cache.stats.hits == 1 and cache.stats.misses == 1


def test_same_block_hits():
    cache = make_cache()
    cache.access(0x1000, now=0)
    latency, level = cache.access(0x103F, now=200)  # same 64B line
    assert level == "L1D"


def test_inflight_fill_merging():
    cache = make_cache()
    cache.access(0x1000, now=0)  # fill ready at 104
    latency, level = cache.access(0x1000, now=50)
    assert level == "INFLIGHT"
    assert latency == 104 - 50
    assert cache.stats.inflight_hits == 1


def test_lru_eviction_within_set():
    cache = make_cache(size=1024, assoc=2)  # 8 sets -> set span 512B
    span = 8 * 64
    cache.access(0x0, now=0)
    cache.access(0x0 + span, now=200)
    cache.access(0x0, now=400)  # touch first line: second becomes LRU
    cache.access(0x0 + 2 * span, now=600)  # evicts the span-1 line
    assert cache.contains(0x0)
    assert not cache.contains(span)
    assert cache.stats.evictions == 1


def test_write_sets_dirty_and_writeback_on_evict():
    cache = make_cache(size=1024, assoc=1)
    span = 16 * 64
    cache.access(0x0, now=0, write=True)
    line = cache.line_for(0x0)
    assert line.dirty
    cache.access(span, now=200)  # evicts the dirty line
    assert cache.stats.writebacks == 1


def test_prefetch_fills_with_ready_time():
    cache = make_cache()
    ready = cache.prefetch(0x2000, now=0, component="st")
    assert ready == 104
    assert cache.contains(0x2000)
    assert not cache.contains_ready(0x2000, now=50)
    assert cache.contains_ready(0x2000, now=104)
    assert cache.stats.prefetch_issued == 1


def test_prefetch_suppressed_when_present():
    cache = make_cache()
    cache.access(0x2000, now=0)
    assert cache.prefetch(0x2000, now=200, component="st") is None
    assert cache.stats.prefetch_issued == 0


def test_prefetch_dropped_when_pool_full():
    cache = make_cache()
    assert cache.prefetch(0x0, now=0, component="at") is not None
    assert cache.prefetch(0x40, now=0, component="at") is not None
    assert cache.prefetch(0x80, now=0, component="at") is None  # pool of 2
    assert cache.stats.prefetch_dropped == 1


def test_useful_prefetch_counted_once():
    cache = make_cache()
    cache.prefetch(0x2000, now=0, component="st")
    cache.access(0x2000, now=200)
    cache.access(0x2000, now=300)
    assert cache.stats.useful_prefetches == 1


def test_invalidate_block():
    cache = make_cache()
    cache.access(0x1000, now=0)
    assert cache.invalidate_block(0x1000)
    assert not cache.contains(0x1000)
    assert not cache.invalidate_block(0x1000)


def test_flush_block_writes_back_dirty():
    cache = make_cache()
    cache.access(0x1000, now=0, write=True)
    assert cache.flush_block(0x1000)
    assert cache.stats.writebacks == 1
    assert cache.stats.flushes == 1
    assert not cache.contains(0x1000)


def test_miss_latency_accounting():
    cache = make_cache()
    cache.access(0x1000, now=0)
    assert cache.stats.miss_latency_total == 100  # beyond the 4-cycle hit


def test_miss_rate():
    cache = make_cache()
    cache.access(0, now=0)
    cache.access(0, now=200)
    assert cache.stats.miss_rate == 0.5
    assert cache.stats.as_dict()["miss_rate"] == 0.5


def test_resident_blocks():
    cache = make_cache()
    cache.access(0x0, now=0)
    cache.access(0x1000, now=200)
    assert set(cache.resident_blocks()) == {0x0, 0x1000}


def test_squashed_prefetch_fill_is_cancelled():
    """Demand-priority squash abandons the in-flight prefetched line: the
    line inserted at issue time is removed again, so later probes miss
    instead of seeing a fill the MSHR file claims was abandoned."""
    amap = AddressMap()
    memory = MainMemory(latency=100)
    cache = Cache(
        "L1D0", size=1024, assoc=2, amap=amap, hit_latency=4,
        parent=MemoryPort(memory), mshr_entries=1,
    )
    assert cache.prefetch(0x40, now=0, component="st") is not None
    assert cache.contains(0x40)
    cache.access(0x1000, now=0)  # fills the single demand MSHR
    cache.access(0x2000, now=1)  # demand pool full: squashes the prefetch
    assert cache.mshr.prefetch_squashes == 1
    assert cache.stats.prefetch_squashed == 1
    assert not cache.contains(0x40), "cancelled fill still in the cache"
    # The same line prefetched again afterwards behaves normally.
    assert cache.prefetch(0x40, now=500, component="st") is not None


def test_demand_consumed_inflight_prefetch_survives_squash():
    """A demand load that inflight-hit a prefetch fill pins it: a later
    demand-priority squash must not cancel the line the load was promised."""
    amap = AddressMap()
    memory = MainMemory(latency=100)
    cache = Cache(
        "L1D0", size=1024, assoc=2, amap=amap, hit_latency=4,
        parent=MemoryPort(memory), mshr_entries=1,
    )
    cache.prefetch(0x40, now=0, component="st")   # in flight until ~104
    latency, level = cache.access(0x40, now=50)   # demand consumes the fill
    assert level == "INFLIGHT" and latency > 4
    cache.access(0x1000, now=60)  # fills the single demand MSHR
    cache.access(0x2000, now=61)  # full demand pool: nothing squashable
    assert cache.mshr.prefetch_squashes == 0
    assert cache.stats.prefetch_squashed == 0
    assert cache.contains(0x40), "promised fill was cancelled"


def test_squash_leaves_landed_prefetch_lines_alone():
    """Only *in-flight* fills are cancelled; a prefetch whose data already
    arrived stays resident even when its (already purged) slot is reused."""
    amap = AddressMap()
    memory = MainMemory(latency=100)
    cache = Cache(
        "L1D0", size=1024, assoc=2, amap=amap, hit_latency=4,
        parent=MemoryPort(memory), mshr_entries=1,
    )
    cache.prefetch(0x40, now=0, component="st")  # ready at 104
    cache.access(0x1000, now=200)
    cache.access(0x2000, now=201)  # demand pool full, but no prefetch entry
    assert cache.mshr.prefetch_squashes == 0
    assert cache.contains(0x40)
