"""Multi-level hierarchy: latencies, flush, coherence, back-invalidation."""

import pytest

from repro.mem.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.prefetch.base import Observation, Prefetcher, PrefetchRequest


@pytest.fixture
def hierarchy():
    return MemoryHierarchy(num_cores=2)


def test_latency_classes(hierarchy):
    # Cold: L1 miss, L2 miss -> memory.
    outcome = hierarchy.load(0, 0x1000, now=0)
    assert outcome.level == "MEM"
    assert outcome.latency == 4 + 12 + 120
    # Warm L1.
    outcome = hierarchy.load(0, 0x1000, now=500)
    assert (outcome.latency, outcome.level) == (4, "L1D")
    # Other core: L1 miss, L2 hit.
    outcome = hierarchy.load(1, 0x1000, now=1000)
    assert (outcome.latency, outcome.level) == (16, "L2")


def test_store_value_visible_to_other_core(hierarchy):
    hierarchy.store(0, 0x2000, 77, now=0)
    outcome = hierarchy.load(1, 0x2000, now=100)
    assert outcome.value == 77


def test_store_invalidates_other_l1(hierarchy):
    hierarchy.load(1, 0x2000, now=0)
    assert hierarchy.l1_contains(1, 0x2000)
    hierarchy.store(0, 0x2000, 1, now=500)
    assert not hierarchy.l1_contains(1, 0x2000)
    assert hierarchy.l1ds[1].stats.cross_invalidations == 1


def test_nonblocking_stores_return_one_cycle(hierarchy):
    assert hierarchy.store(0, 0x3000, 5, now=0) == 1


def test_blocking_stores_config():
    hierarchy = MemoryHierarchy(
        num_cores=1, config=HierarchyConfig(nonblocking_stores=False)
    )
    latency = hierarchy.store(0, 0x3000, 5, now=0)
    assert latency == 136


def test_flush_evicts_everywhere(hierarchy):
    hierarchy.load(0, 0x4000, now=0)
    hierarchy.load(1, 0x4000, now=200)
    latency = hierarchy.flush(0, 0x4000, now=400)
    assert latency == hierarchy.config.flush_latency
    assert not hierarchy.l1_contains(0, 0x4000)
    assert not hierarchy.l1_contains(1, 0x4000)
    assert not hierarchy.l2.contains(0x4000)
    # Reload pays the full memory path again.
    assert hierarchy.load(0, 0x4000, now=600).level == "MEM"


def test_inclusive_back_invalidation():
    hierarchy = MemoryHierarchy(
        num_cores=1,
        config=HierarchyConfig(l2_size=64 * 1024, l2_assoc=1),
    )
    # Fill one L2 set until eviction; the L1 copy must be back-invalidated.
    span = hierarchy.l2.num_sets * 64
    hierarchy.load(0, 0x0, now=0)
    assert hierarchy.l1_contains(0, 0x0)
    hierarchy.load(0, span, now=1000)  # same L2 set, assoc 1 -> evict
    assert not hierarchy.l1_contains(0, 0x0)
    assert hierarchy.l1ds[0].stats.back_invalidations == 1


class _RecordingPrefetcher(Prefetcher):
    name = "recording"

    def __init__(self):
        self.observations = []

    def observe(self, observation, l1d_contains):
        self.observations.append(observation)
        return [PrefetchRequest(addr=observation.block_addr + 64, component="x")]


def test_prefetcher_notification_and_issue(hierarchy):
    prefetcher = _RecordingPrefetcher()
    hierarchy.attach_prefetcher(0, prefetcher)
    hierarchy.load(0, 0x5000, now=0, pc=0x400000, scale=512)
    assert len(prefetcher.observations) == 1
    observation = prefetcher.observations[0]
    assert observation.pc == 0x400000
    assert observation.scale == 512
    assert observation.op == "load"
    assert hierarchy.l1_contains(0, 0x5040)
    assert hierarchy.prefetch_counts(0) == {"x": 1}
    timeline = hierarchy.prefetch_timeline(0)
    assert timeline == [(0, "x", 0x5040)]


def test_prefetch_fills_l2_too(hierarchy):
    prefetcher = _RecordingPrefetcher()
    hierarchy.attach_prefetcher(0, prefetcher)
    hierarchy.load(0, 0x6000, now=0)
    assert hierarchy.l2.contains(0x6040)


def test_total_prefetch_counts(hierarchy):
    hierarchy.attach_prefetcher(0, _RecordingPrefetcher())
    hierarchy.attach_prefetcher(1, _RecordingPrefetcher())
    hierarchy.load(0, 0x7000, now=0)
    hierarchy.load(1, 0x8000, now=0)
    assert hierarchy.total_prefetch_counts() == {"x": 2}


def test_observation_hit_flag(hierarchy):
    prefetcher = _RecordingPrefetcher()
    hierarchy.attach_prefetcher(0, prefetcher)
    hierarchy.load(0, 0x9000, now=0)
    hierarchy.load(0, 0x9000, now=500)
    assert prefetcher.observations[0].hit is False
    assert prefetcher.observations[1].hit is True


# --- software prefetch (prefetch / prefetchw) --------------------------------

def test_software_prefetch_latency_distinguishes_residency(hierarchy):
    # Cold: the prefetch fill walks the whole path, like a load would.
    outcome = hierarchy.software_prefetch(0, 0x1000, now=0)
    assert (outcome.latency, outcome.level) == (4 + 12 + 120, "MEM")
    assert hierarchy.l1_contains(0, 0x1000)
    # Warm L1: the timed prefetch reveals residency.
    outcome = hierarchy.software_prefetch(0, 0x1000, now=500)
    assert (outcome.latency, outcome.level) == (4, "L1D")
    # Other core, line in shared L2: the L2-hit class.
    outcome = hierarchy.software_prefetch(1, 0x1000, now=1000)
    assert (outcome.latency, outcome.level) == (16, "L2")


def test_software_prefetch_never_notifies_prefetchers(hierarchy):
    prefetcher = _RecordingPrefetcher()
    hierarchy.attach_prefetcher(0, prefetcher)
    hierarchy.software_prefetch(0, 0xA000, now=0)
    hierarchy.software_prefetch(0, 0xB000, now=100, write=True)
    assert prefetcher.observations == [], "prefetches are not demand traffic"


def test_prefetchw_invalidates_other_core_and_pays_snoop(hierarchy):
    hierarchy.load(1, 0x2000, now=0)  # the victim holds the line
    assert hierarchy.l1_contains(1, 0x2000)
    outcome = hierarchy.software_prefetch(0, 0x2000, now=500, write=True)
    assert not hierarchy.l1_contains(1, 0x2000)
    assert hierarchy.l1_contains(0, 0x2000)
    snoop = HierarchyConfig().prefetchw_snoop_latency
    assert outcome.latency == 16 + snoop  # L2-hit fill + invalidation trip
    assert hierarchy.l1ds[1].stats.cross_invalidations == 1
    # No other copy: no snoop penalty.
    outcome = hierarchy.software_prefetch(0, 0x2000, now=1000, write=True)
    assert outcome.latency == 4


def test_exclusive_line_is_stolen_by_other_core_access(hierarchy):
    hierarchy.software_prefetch(0, 0x3000, now=0, write=True)
    assert hierarchy.l1_contains(0, 0x3000)
    # The owner's own traffic keeps ownership.
    hierarchy.load(0, 0x3000, now=100)
    assert hierarchy.l1_contains(0, 0x3000)
    assert hierarchy.ownership_steals == 0
    # Another core's demand load migrates the line out of the owner's L1.
    hierarchy.load(1, 0x3000, now=200)
    assert not hierarchy.l1_contains(0, 0x3000)
    assert hierarchy.ownership_steals == 1
    # Ownership is gone: further victim accesses steal nothing more.
    hierarchy.load(1, 0x3000, now=300)
    assert hierarchy.ownership_steals == 1


def test_exclusive_line_is_stolen_by_hardware_prefetch_fill(hierarchy):
    hierarchy.software_prefetch(0, 0x5000 + 64, now=0, write=True)
    assert hierarchy.l1_contains(0, 0x5040)
    # Core 1's prefetcher pulls the neighbour line: same steal semantics —
    # this is how the victim-side defense decoys reach the attacker's L1.
    hierarchy.attach_prefetcher(1, _RecordingPrefetcher())
    hierarchy.load(1, 0x5000, now=100)
    assert not hierarchy.l1_contains(0, 0x5040)
    assert hierarchy.ownership_steals == 1


def test_flush_drops_exclusivity(hierarchy):
    hierarchy.software_prefetch(0, 0x6000, now=0, write=True)
    hierarchy.flush(0, 0x6000, now=100)
    # After the flush the line is unowned: a victim access steals nothing.
    hierarchy.load(1, 0x6000, now=200)
    assert hierarchy.ownership_steals == 0


def test_injected_memory_latency_survives_init():
    from repro.mem.memory import MainMemory

    memory = MainMemory(latency=77)
    hierarchy = MemoryHierarchy(num_cores=1, memory=memory)
    assert hierarchy.memory.latency == 77, "caller-supplied latency kept"
    assert hierarchy.load(0, 0x1000, now=0).latency == 4 + 12 + 77
    # Without an injected memory the config default still applies.
    from repro.mem.hierarchy import HierarchyConfig as _Config

    default = MemoryHierarchy(num_cores=1, config=_Config(memory_latency=33))
    assert default.memory.latency == 33


def test_software_prefetch_drops_when_prefetch_mshrs_full(hierarchy):
    # The L1 prefetch MSHR pool holds 2 in-flight fills; a third cold
    # software prefetch at the same instant is squashed (x86 semantics).
    assert hierarchy.software_prefetch(0, 0x10000, now=0).level == "MEM"
    assert hierarchy.software_prefetch(0, 0x20000, now=0).level == "MEM"
    dropped = hierarchy.software_prefetch(0, 0x30000, now=0, write=True)
    assert dropped.level == "DROPPED"
    assert dropped.latency == hierarchy.l1ds[0].hit_latency
    assert not hierarchy.l1_contains(0, 0x30000), "no fill on a drop"
    hierarchy.load(1, 0x30000, now=10)
    assert hierarchy.ownership_steals == 0, "no ownership claim on a drop"
    assert hierarchy.l1ds[0].stats.prefetch_dropped == 1
    # Once the fills land, the same prefetch goes through.
    assert hierarchy.software_prefetch(0, 0x30000, now=5000).level == "L2"
