"""Register file semantics."""

import pytest

from repro.errors import ExecutionError
from repro.isa.registers import (
    RegisterFile,
    register_index,
    register_name,
    to_signed,
)


def test_register_index_names():
    assert register_index("r0") == 0
    assert register_index("r31") == 31
    assert register_index("zero") == 0
    assert register_index("sp") == 30
    assert register_index("ra") == 31
    assert register_index("R5") == 5  # case-insensitive


def test_register_index_rejects_bad_names():
    for bad in ("r32", "x1", "", "r-1", "reg1"):
        with pytest.raises(ExecutionError):
            register_index(bad)


def test_register_name_roundtrip():
    for index in range(32):
        assert register_index(register_name(index)) == index
    with pytest.raises(ExecutionError):
        register_name(32)


def test_zero_register_is_hardwired():
    regs = RegisterFile()
    regs.write(0, 12345)
    assert regs.read(0) == 0


def test_write_masks_to_64_bits():
    regs = RegisterFile()
    regs.write(1, 1 << 70)
    assert regs.read(1) == 0
    regs.write(1, (1 << 64) + 5)
    assert regs.read(1) == 5


def test_negative_values_wrap():
    regs = RegisterFile()
    regs.write(1, -1)
    assert regs.read(1) == (1 << 64) - 1
    assert regs.read_signed(1) == -1


def test_to_signed():
    assert to_signed(0) == 0
    assert to_signed((1 << 64) - 1) == -1
    assert to_signed(1 << 63) == -(1 << 63)
    assert to_signed(5) == 5


def test_snapshot_restore():
    regs = RegisterFile()
    regs.write(3, 42)
    snapshot = regs.snapshot()
    regs.write(3, 99)
    regs.restore(snapshot)
    assert regs.read(3) == 42


def test_snapshot_is_independent():
    regs = RegisterFile()
    snapshot = regs.snapshot()
    snapshot[5] = 777
    assert regs.read(5) == 0


def test_repr_shows_nonzero():
    regs = RegisterFile()
    regs.write(7, 0xAB)
    assert "r7" in repr(regs)
