"""Docs stay navigable: the CI link check, run as part of tier-1."""

import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

DOC_FILES = ["README.md", "docs/architecture.md", "ROADMAP.md", "CHANGES.md"]


def test_markdown_links_resolve():
    """Same invocation as CI's docs job; broken links fail locally first."""
    result = subprocess.run(
        [sys.executable, str(REPO / "tools" / "check_links.py"), *DOC_FILES],
        cwd=REPO,
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stderr


def test_readme_documents_every_cli_command():
    """The README's CLI reference must cover every registered subcommand."""
    readme = (REPO / "README.md").read_text()
    from repro import __main__ as cli

    for line in cli.__doc__.splitlines():
        if line.startswith("* ``"):  # the command list at the top of --help
            command = line.split("``")[1]
            assert f"`{command}`" in readme, f"README missing CLI docs for {command}"
