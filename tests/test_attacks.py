"""Attack construction and end-to-end security behaviour.

The full Figure 8 matrix lives in ``benchmarks/bench_figure8.py``; these
tests pin the essential verdicts and the attack plumbing.
"""

import pytest

from repro.attacks import (
    AttackLayout,
    AttackOptions,
    EvictReloadAttack,
    FlushReloadAttack,
    PrimeProbeAttack,
)
from repro.core.config import PrefenderConfig
from repro.errors import ConfigError
from repro.sim.config import PrefetcherSpec, SystemConfig


def prefender_config(variant="FULL"):
    mapping = {
        "ST": PrefenderConfig.st_only(),
        "AT": PrefenderConfig.at_only().with_buffers(8),
        "FULL": PrefenderConfig.full(8),
    }
    return SystemConfig(
        prefetcher=PrefetcherSpec(kind="prefender", prefender=mapping[variant])
    )


def test_options_validation():
    with pytest.raises(ConfigError):
        AttackOptions(secret=200, num_indices=96)
    with pytest.raises(ConfigError):
        AttackOptions(victim_mode="quantum")
    with pytest.raises(ConfigError):
        AttackOptions(probe_step=0)


def test_options_challenge_label():
    assert AttackOptions().challenges == "C1+C2"
    assert AttackOptions(noise_c3=True).challenges == "C1+C2+C3"
    assert AttackOptions(noise_c4=True).challenges == "C1+C2+C4"
    assert (
        AttackOptions(noise_c3=True, noise_c4=True).challenges == "C1+C2+C3+C4"
    )


def test_layout_avoids_probe_sets():
    layout = AttackLayout()
    # Probe lines sit on sets ≡ 0 (mod 8); helper regions must not.
    for addr in (
        layout.secret_addr,
        layout.results_base,
        layout.noise_base,
        layout.flag_base,
        layout.array1_base,
    ):
        assert ((addr >> 6) & 511) % 8 != 0, hex(addr)


def test_option_overrides_via_kwargs():
    attack = FlushReloadAttack(secret=30, noise_c3=True)
    assert attack.options.secret == 30
    assert attack.options.noise_c3


def test_prime_probe_defaults():
    attack = PrimeProbeAttack()
    assert attack.options.num_indices == 48
    assert attack.options.secret == 37


def test_flush_reload_baseline_leaks():
    outcome = FlushReloadAttack().run(SystemConfig())
    assert outcome.attack_succeeded
    assert outcome.candidates == [65]
    assert outcome.latencies[65] < 65 < outcome.latencies[64]


def test_flush_reload_st_neighbours():
    outcome = FlushReloadAttack().run(prefender_config("ST"))
    assert set(outcome.candidates) == {64, 65, 66}
    assert outcome.defended


def test_evict_reload_baseline_leaks():
    outcome = EvictReloadAttack().run(SystemConfig())
    assert outcome.attack_succeeded
    # Non-secret lines are L2 hits, distinctly above the L1-hit threshold.
    assert outcome.latencies[0] > outcome.threshold


def test_prime_probe_baseline_leaks():
    outcome = PrimeProbeAttack().run(SystemConfig())
    assert outcome.attack_succeeded
    assert outcome.latencies[37] >= outcome.threshold


def test_full_prefender_defends_all():
    for attack_cls in (FlushReloadAttack, EvictReloadAttack, PrimeProbeAttack):
        outcome = attack_cls().run(prefender_config("FULL"))
        assert outcome.defended, attack_cls.__name__


def test_at_fails_under_c3_noise():
    outcome = FlushReloadAttack(noise_c3=True).run(prefender_config("AT"))
    assert outcome.attack_succeeded


def test_at_fails_under_c4_noise():
    outcome = EvictReloadAttack(noise_c4=True).run(prefender_config("AT"))
    assert outcome.attack_succeeded


def test_secret_is_always_a_candidate_in_reload_attacks():
    for config in (SystemConfig(), prefender_config("FULL")):
        outcome = FlushReloadAttack().run(config)
        assert outcome.secret_is_candidate


def test_sequential_probe_order():
    outcome = FlushReloadAttack(sequential_probe=True).run(SystemConfig())
    assert outcome.attack_succeeded


def test_spectre_leaks_at_baseline():
    outcome = FlushReloadAttack(victim_mode="spectre").run(SystemConfig())
    assert outcome.attack_succeeded
    assert outcome.candidates == [65]


def test_spectre_defended_by_prefender():
    outcome = FlushReloadAttack(victim_mode="spectre").run(
        prefender_config("FULL")
    )
    assert outcome.defended


def test_cross_core_baseline_and_defense():
    assert FlushReloadAttack(cross_core=True).run(SystemConfig()).attack_succeeded
    assert FlushReloadAttack(cross_core=True).run(
        prefender_config("ST")
    ).defended


def test_cross_core_spectre_rejected():
    with pytest.raises(ConfigError):
        FlushReloadAttack(cross_core=True, victim_mode="spectre").build_programs()


def test_outcome_series_and_summary():
    outcome = FlushReloadAttack().run(SystemConfig())
    xs, ys = outcome.series()
    assert len(xs) == len(ys) == 96
    assert "Flush+Reload" in outcome.summary()
    assert "secret=65" in outcome.summary()


def test_different_secret_positions():
    for secret in (20, 50, 81):
        outcome = FlushReloadAttack(secret=secret).run(SystemConfig())
        assert outcome.candidates == [secret]
