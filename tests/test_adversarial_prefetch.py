"""The Adversarial-Prefetch attack family (Guo et al. 2022) and its CLI.

The two variants share the prefetchw ownership phase and differ in the
probe primitive: A1 reloads with demand loads, A2 times software
prefetches that no demand-traffic tracker ever observes.  The expected
verdict matrix against the related-work defenses lives in
``repro.experiments.related.TABLE_II_CLAIMS``.
"""

import pytest

from repro.__main__ import main
from repro.attacks import (
    AdversarialPrefetchA1,
    AdversarialPrefetchA2,
    EvictReloadAttack,
    EvictTimeAttack,
    FlushReloadAttack,
    PrimeProbeAttack,
)
from repro.core.config import PrefenderConfig
from repro.errors import ConfigError
from repro.sim.config import PrefetcherSpec, SystemConfig


def _prefender(config: PrefenderConfig) -> SystemConfig:
    return SystemConfig(
        prefetcher=PrefetcherSpec(kind="prefender", prefender=config)
    )


def test_defaults_are_cross_core():
    for cls in (AdversarialPrefetchA1, AdversarialPrefetchA2):
        attack = cls()
        assert attack.options.cross_core
        assert attack.num_cores == 2
    assert AdversarialPrefetchA1().options.probe_kind == "load"
    assert AdversarialPrefetchA2().options.probe_kind == "prefetch"


def test_rejects_single_core_and_spectre_victims():
    with pytest.raises(ConfigError):
        AdversarialPrefetchA1(cross_core=False).build_programs()
    with pytest.raises(ConfigError):
        AdversarialPrefetchA2(victim_mode="spectre").build_programs()


def test_probe_kind_validation():
    from repro.attacks import AttackOptions

    with pytest.raises(ConfigError):
        AttackOptions(probe_kind="mmio")


def test_both_variants_leak_at_baseline():
    for cls in (AdversarialPrefetchA1, AdversarialPrefetchA2):
        outcome = cls().run(SystemConfig())
        assert outcome.attack_succeeded, cls.name
        assert outcome.candidates == [65]
        # The stolen line is an L2 refill; untouched lines stay L1 hits.
        assert outcome.latencies[65] > outcome.threshold > outcome.latencies[64]


def test_a2_probe_is_invisible_to_demand_trackers():
    """A2's attacker issues no probe loads at all — the measurement phase
    is software prefetches, which never notify a prefetcher."""
    a1 = AdversarialPrefetchA1()
    a2 = AdversarialPrefetchA2()
    a1_demand = a1.run(SystemConfig()).run_result.l1d_stats[0]["demand_accesses"]
    a2_demand = a2.run(SystemConfig()).run_result.l1d_stats[0]["demand_accesses"]
    # Identical programs up to the probe phase (bookkeeping stores, spin
    # loads); A1 adds exactly one demand load per probed index, A2 none.
    assert a1_demand - a2_demand == a1.options.num_indices


def test_full_prefender_defends_both_variants():
    for cls in (AdversarialPrefetchA1, AdversarialPrefetchA2):
        outcome = cls().run(_prefender(PrefenderConfig.full(8)))
        assert outcome.defended, cls.name


def test_st_decoys_blur_the_stolen_neighbourhood():
    # The victim-side Scale Tracker migrates the secret's neighbours out of
    # the attacker's L1 too, so A2 sees a 3-wide ambiguous window.
    outcome = AdversarialPrefetchA2().run(_prefender(PrefenderConfig.st_only()))
    assert outcome.defended
    assert set(outcome.candidates) == {64, 65, 66}


def test_bitp_never_fires_against_prefetchw():
    # BITP reacts to inclusive-LLC back-invalidations; prefetchw ownership
    # steals are coherence traffic, so both variants go straight through.
    for cls in (AdversarialPrefetchA1, AdversarialPrefetchA2):
        outcome = cls().run(SystemConfig(prefetcher=PrefetcherSpec(kind="bitp")))
        assert outcome.attack_succeeded, cls.name


def test_pcg_style_noise_catches_a1_but_not_a2():
    pcg = SystemConfig(prefetcher=PrefetcherSpec(kind="disruptive"))
    # A1's probe loads are demand traffic: the random same-set prefetcher
    # sees them and pollutes the attacker's own sets into ambiguity.
    assert AdversarialPrefetchA1().run(pcg).defended
    # A2 probes with prefetches the defense never observes.
    assert AdversarialPrefetchA2().run(pcg).attack_succeeded


def test_rp_fix_preserves_existing_attack_verdicts():
    """Attack-level regression for the Record Protector expiry fix: at the
    default ``unprotect_prefetch_limit`` the four original attacks keep
    their pre-fix verdicts against Base and FULL."""
    full = _prefender(PrefenderConfig.full(8))
    for attack_cls in (FlushReloadAttack, EvictReloadAttack, PrimeProbeAttack):
        assert attack_cls().run(SystemConfig()).attack_succeeded, attack_cls.name
        assert attack_cls().run(full).defended, attack_cls.name
    # Evict+Time stays out of scope either way: one surviving candidate.
    assert EvictTimeAttack().run(SystemConfig()).candidates == [37]
    assert len(EvictTimeAttack().run(full).candidates) == 1


# --- CLI -----------------------------------------------------------------------


def test_cli_family_runs_both_variants(capsys):
    assert main(["attack", "--name", "adversarial-prefetch"]) == 0
    out = capsys.readouterr().out
    assert "AdvPrefetch-A1" in out and "AdvPrefetch-A2" in out
    assert out.count("ATTACK SUCCEEDED") == 2, "both leak at Base"


def test_cli_variant_filter_and_defense_grid(capsys):
    assert (
        main(
            [
                "attack", "--name", "adversarial-prefetch",
                "--variant", "a1", "--defense", "Base,FULL",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "AdvPrefetch-A2" not in out
    assert "ATTACK SUCCEEDED" in out and "DEFENDED" in out


def test_cli_jobs_parity_is_byte_identical(capsys):
    argv = ["attack", "--name", "adversarial-prefetch"]
    assert main(argv + ["--jobs", "1"]) == 0
    sequential = capsys.readouterr().out
    assert main(argv + ["--jobs", "2"]) == 0
    assert capsys.readouterr().out == sequential


def test_cli_rejects_bad_combinations(capsys):
    with pytest.raises(SystemExit):
        main(["attack"])  # neither positional nor --name
    capsys.readouterr()
    with pytest.raises(SystemExit):
        main(["attack", "flush-reload", "--name", "evict-reload"])
    capsys.readouterr()
    with pytest.raises(SystemExit):
        main(["attack", "flush-reload", "--variant", "a1"])
    capsys.readouterr()
    with pytest.raises(SystemExit):
        main(["attack", "flush-reload", "--defense", "fortress"])
    assert "fortress" in capsys.readouterr().err
