"""The frontier subsystem: grid parsing, Pareto extraction, end-to-end run."""

import pytest

from repro.__main__ import main
from repro.errors import ConfigError
from repro.experiments import frontier
from repro.experiments.frontier import FrontierPoint, pareto_frontier, parse_grid


def _point(label, success, cycles):
    return FrontierPoint(
        label=label,
        at_threshold=4,
        entries_per_buffer=8,
        st_max_prefetches=2,
        success_rate=success,
        normalized_cycles=cycles,
    )


def test_pareto_extraction_on_synthetic_grid():
    """Dominated points drop; incomparable points survive; order is fixed."""
    safe_slow = _point("safe-slow", 0.0, 1.2)
    fast_leaky = _point("fast-leaky", 0.6, 0.8)
    balanced = _point("balanced", 0.3, 0.9)
    dominated = _point("dominated", 0.7, 1.3)  # worse than all three
    shadowed = _point("shadowed", 0.3, 1.0)  # balanced beats it on cycles
    points = [dominated, safe_slow, shadowed, fast_leaky, balanced]
    result = pareto_frontier(points)
    assert [p.label for p in result] == ["fast-leaky", "balanced", "safe-slow"]


def test_pareto_keeps_ties_and_single_point():
    twin_a = _point("twin-a", 0.2, 1.0)
    twin_b = _point("twin-b", 0.2, 1.0)
    assert pareto_frontier([twin_a, twin_b]) == [twin_a, twin_b]
    only = _point("only", 0.5, 1.1)
    assert pareto_frontier([only]) == [only]
    assert pareto_frontier([]) == []


def test_parse_grid_defaults_and_overrides():
    assert parse_grid("") == frontier.DEFAULT_GRID
    grid = parse_grid("at_threshold=2,6;st_max_prefetches=3")
    assert grid["at_threshold"] == (2, 6)
    assert grid["st_max_prefetches"] == (3,)
    assert grid["entries_per_buffer"] == frontier.DEFAULT_GRID["entries_per_buffer"]
    # Space-separated pairs are accepted too (shell-quoted specs).
    assert parse_grid("at_threshold=2 entries_per_buffer=4")["at_threshold"] == (2,)


def test_parse_grid_rejects_bad_specs():
    with pytest.raises(ConfigError, match="unknown grid knob"):
        parse_grid("block_size=64")
    with pytest.raises(ConfigError, match="comma-separated integers"):
        parse_grid("at_threshold=two")


def test_grid_configs_cover_the_product_in_order():
    grid = {
        "at_threshold": (2, 4),
        "entries_per_buffer": (4,),
        "st_max_prefetches": (1, 2),
    }
    configs = frontier.grid_configs(grid, buffers=8)
    assert [label for label, _ in configs] == [
        "t2/e4/s1", "t2/e4/s2", "t4/e4/s1", "t4/e4/s2",
    ]
    for _, config in configs:
        assert config.num_access_buffers == 8
        assert config.rp_enabled  # grids perturb knobs on the FULL variant


def test_frontier_run_small_grid():
    """One-point grid end-to-end: axes populated, baselines framed."""
    result = frontier.run(
        grid={
            "at_threshold": (4,),
            "entries_per_buffer": (8,),
            "st_max_prefetches": (2,),
        },
        attacks=("flush-reload",),
        workloads=("999.specrand",),
        scale=0.05,
    )
    assert len(result.points) == 1
    (point,) = result.points
    assert point.label == "t4/e8/s2"
    assert 0.0 <= point.success_rate <= 1.0
    assert point.normalized_cycles > 0
    assert result.frontier == [point]
    base, pcg = result.baselines
    assert base.label == "no-defense" and base.normalized_cycles == 1.0
    assert base.success_rate == 1.0, "undefended flush-reload must succeed"
    assert pcg.label == "pcg-style"
    rendered = frontier.render(result)
    assert "Pareto frontier: t4/e8/s2" in rendered
    assert "no-defense" in rendered and "pcg-style" in rendered


def test_frontier_run_validates_inputs():
    with pytest.raises(ConfigError):
        frontier.run(attacks=())
    with pytest.raises(ConfigError):
        frontier.run(grid={"at_threshold": (4,)})  # missing knobs


def test_cli_frontier_jobs_parity(capsys):
    """Acceptance shape: --jobs 1 and --jobs 2 print identical frontiers."""
    argv = [
        "frontier", "--grid",
        "at_threshold=2,6;entries_per_buffer=4;st_max_prefetches=1",
        "--attacks", "flush-reload",
        "--workloads", "999.specrand,462.libquantum",
        "--scale", "0.05",
    ]
    assert main(argv) == 0
    sequential = capsys.readouterr().out
    assert main(argv + ["--jobs", "2"]) == 0
    parallel = capsys.readouterr().out
    assert parallel == sequential
    assert "Pareto frontier:" in sequential


def test_cli_frontier_store_warms_second_run(tmp_path, monkeypatch, capsys):
    """Second --store invocation is served entirely from the disk store."""
    monkeypatch.chdir(tmp_path)
    argv = [
        "frontier", "--grid",
        "at_threshold=4;entries_per_buffer=8;st_max_prefetches=2",
        "--attacks", "flush-reload",
        "--workloads", "999.specrand",
        "--scale", "0.05",
        "--store",
    ]
    assert main(argv) == 0
    cold = capsys.readouterr().out
    assert "0 hit(s)" in cold
    assert main(argv) == 0
    warm = capsys.readouterr().out
    assert "0 miss(es)" in warm
    # Same frontier either way.
    assert cold.split("store:")[0] == warm.split("store:")[0]


def test_cli_store_max_mb_requires_store(capsys):
    with pytest.raises(SystemExit):
        main(["frontier", "--store-max-mb", "1"])
    assert "--store-max-mb only makes sense with --store" in capsys.readouterr().err


@pytest.mark.parametrize("bad", ["0", "-1", "nan", "inf", "1e308", "big"])
def test_cli_store_max_mb_rejects_non_positive_and_non_finite(bad, capsys):
    with pytest.raises(SystemExit):
        main(["frontier", "--store", "--store-max-mb", bad])
    assert "--store-max-mb" in capsys.readouterr().err
