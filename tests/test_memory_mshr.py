"""Main memory and MSHR file."""

from repro.isa.assembler import assemble
from repro.mem.memory import MainMemory
from repro.mem.mshr import MSHRFile


def test_memory_read_default_zero():
    memory = MainMemory()
    assert memory.read(0x1234) == 0


def test_memory_write_read():
    memory = MainMemory()
    memory.write(0x10, 42)
    assert memory.read(0x10) == 42
    assert memory.footprint() == 1


def test_memory_masks_64_bits():
    memory = MainMemory()
    memory.write(0, (1 << 64) + 7)
    assert memory.read(0) == 7


def test_memory_counters():
    memory = MainMemory()
    memory.read(0)
    memory.write(0, 1)
    memory.peek(0)  # peek does not count
    assert memory.reads == 1 and memory.writes == 1


def test_memory_loads_program_data():
    memory = MainMemory()
    program = assemble(".data 0x100 stride=8 5 6\nhalt")
    memory.load_program_data(program)
    assert memory.peek(0x100) == 5
    assert memory.peek(0x108) == 6


def test_mshr_demand_allocation():
    mshr = MSHRFile(num_entries=2)
    start, ready = mshr.allocate_demand(0x0, now=0, fill_time=100)
    assert (start, ready) == (0, 100)
    assert mshr.occupancy(0) == 1
    assert mshr.occupancy(100) == 0  # expired


def test_mshr_demand_waits_when_full():
    mshr = MSHRFile(num_entries=1)
    mshr.allocate_demand(0x0, now=0, fill_time=100)
    start, ready = mshr.allocate_demand(0x40, now=10, fill_time=100)
    assert start == 100  # waited for the first fill
    assert ready == 200
    assert mshr.demand_waits == 1
    assert mshr.total_wait_cycles == 90


def test_mshr_merge():
    mshr = MSHRFile()
    mshr.allocate_demand(0x0, now=0, fill_time=100)
    assert mshr.merge(0x0, now=10) == 100
    assert mshr.merge(0x40, now=10) is None
    assert mshr.merges == 1


def test_mshr_merge_budget():
    mshr = MSHRFile(max_merges=2)
    mshr.allocate_demand(0x0, now=0, fill_time=100)
    assert mshr.merge(0x0, 1) is not None
    assert mshr.merge(0x0, 2) is not None
    assert mshr.merge(0x0, 3) is None  # budget exhausted


def test_mshr_prefetch_pool_is_separate():
    mshr = MSHRFile(num_entries=1, prefetch_entries=1)
    mshr.allocate_demand(0x0, now=0, fill_time=100)
    # Demand pool full, prefetch pool still open.
    assert mshr.allocate_prefetch(0x40, now=0, fill_time=100) == 100
    # Prefetch pool now full.
    assert mshr.allocate_prefetch(0x80, now=0, fill_time=100) is None
    assert mshr.prefetch_drops == 1
    # Demand pool full too: a new demand waits (prefetches don't block it
    # from *allocating*; the demand budget is what it waits on).
    start, _ = mshr.allocate_demand(0xC0, now=0, fill_time=100)
    assert start == 100


def test_mshr_prefetch_fill_never_drops():
    mshr = MSHRFile(num_entries=1, prefetch_entries=1)
    for block in range(10):
        ready = mshr.allocate_prefetch_fill(block * 64, now=0, fill_time=50)
        assert ready == 50


def test_mshr_availability_queries():
    mshr = MSHRFile(num_entries=1, prefetch_entries=1)
    assert mshr.available(0)
    assert mshr.prefetch_available(0)
    mshr.allocate_demand(0, 0, 100)
    mshr.allocate_prefetch(64, 0, 100)
    assert not mshr.available(50)
    assert not mshr.prefetch_available(50)
    assert mshr.available(150) and mshr.prefetch_available(150)
