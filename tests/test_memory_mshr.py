"""Main memory and MSHR file."""

from repro.isa.assembler import assemble
from repro.mem.memory import MainMemory
from repro.mem.mshr import MSHRFile


def test_memory_read_default_zero():
    memory = MainMemory()
    assert memory.read(0x1234) == 0


def test_memory_write_read():
    memory = MainMemory()
    memory.write(0x10, 42)
    assert memory.read(0x10) == 42
    assert memory.footprint() == 1


def test_memory_masks_64_bits():
    memory = MainMemory()
    memory.write(0, (1 << 64) + 7)
    assert memory.read(0) == 7


def test_memory_counters():
    memory = MainMemory()
    memory.read(0)
    memory.write(0, 1)
    memory.peek(0)  # peek does not count
    assert memory.reads == 1 and memory.writes == 1


def test_memory_loads_program_data():
    memory = MainMemory()
    program = assemble(".data 0x100 stride=8 5 6\nhalt")
    memory.load_program_data(program)
    assert memory.peek(0x100) == 5
    assert memory.peek(0x108) == 6


def test_mshr_demand_allocation():
    mshr = MSHRFile(num_entries=2)
    start, ready = mshr.allocate_demand(0x0, now=0, fill_time=100)
    assert (start, ready) == (0, 100)
    assert mshr.occupancy(0) == 1
    assert mshr.occupancy(100) == 0  # expired


def test_mshr_demand_waits_when_full():
    mshr = MSHRFile(num_entries=1)
    mshr.allocate_demand(0x0, now=0, fill_time=100)
    start, ready = mshr.allocate_demand(0x40, now=10, fill_time=100)
    assert start == 100  # waited for the first fill
    assert ready == 200
    assert mshr.demand_waits == 1
    assert mshr.total_wait_cycles == 90


def test_mshr_merge():
    mshr = MSHRFile()
    mshr.allocate_demand(0x0, now=0, fill_time=100)
    assert mshr.merge(0x0, now=10) == 100
    assert mshr.merge(0x40, now=10) is None
    assert mshr.merges == 1


def test_mshr_merge_budget():
    mshr = MSHRFile(max_merges=2)
    mshr.allocate_demand(0x0, now=0, fill_time=100)
    assert mshr.merge(0x0, 1) is not None
    assert mshr.merge(0x0, 2) is not None
    assert mshr.merge(0x0, 3) is None  # budget exhausted


def test_mshr_prefetch_pool_is_separate():
    mshr = MSHRFile(num_entries=1, prefetch_entries=1)
    mshr.allocate_demand(0x0, now=0, fill_time=100)
    # Demand pool full, prefetch pool still open.
    assert mshr.allocate_prefetch(0x40, now=0, fill_time=100) == 100
    # Prefetch pool now full.
    assert mshr.allocate_prefetch(0x80, now=0, fill_time=100) is None
    assert mshr.prefetch_drops == 1
    # Demand pool full too: the new demand squashes the outstanding
    # prefetch (demand priority) and starts immediately in its slot.
    start, _ = mshr.allocate_demand(0xC0, now=0, fill_time=100)
    assert start == 0
    assert mshr.prefetch_squashes == 1
    assert mshr.demand_waits == 0


def test_mshr_demand_squashes_earliest_ready_prefetch():
    """Demand priority: a full demand pool evicts the earliest-ready
    prefetch entry instead of waiting (the docstring's promise; the seed
    code only ever waited and never incremented ``prefetch_squashes``)."""
    mshr = MSHRFile(num_entries=1, prefetch_entries=2)
    mshr.allocate_demand(0x0, now=0, fill_time=100)
    mshr.allocate_prefetch(0x40, now=0, fill_time=80)   # ready at 80
    mshr.allocate_prefetch(0x80, now=0, fill_time=120)  # ready at 120
    start, ready = mshr.allocate_demand(0xC0, now=10, fill_time=100)
    assert (start, ready) == (10, 110)  # no wait: borrowed the squashed slot
    assert mshr.prefetch_squashes == 1
    assert mshr.last_squashed_block == 0x40  # cache cancels this fill
    assert mshr.demand_waits == 0 and mshr.total_wait_cycles == 0
    # The earliest-ready prefetch (0x40 @ 80) was the one squashed.
    inflight = [e.block_addr for e in mshr._entries if e.is_prefetch]
    assert inflight == [0x80]
    # The borrowed slot stays physically occupied until the demand fill
    # completes (at 110); the other prefetch entry drains at 120.
    assert not mshr.prefetch_available(10)
    assert mshr.prefetch_available(115)


def test_mshr_demand_waits_only_without_prefetch_victims():
    mshr = MSHRFile(num_entries=1, prefetch_entries=1)
    mshr.allocate_demand(0x0, now=0, fill_time=100)
    start, _ = mshr.allocate_demand(0x40, now=0, fill_time=100)
    assert start == 100  # nothing to squash: waits as before
    assert mshr.demand_waits == 1
    assert mshr.prefetch_squashes == 0
    assert mshr.last_squashed_block is None


def test_mshr_borrowed_slot_does_not_occupy_the_demand_pool():
    """A borrowed-slot demand fill lives in the prefetch pool: once a real
    demand slot drains, the next demand must start immediately rather than
    paying a spurious wait against the borrower."""
    mshr = MSHRFile(num_entries=1, prefetch_entries=1)
    mshr.allocate_demand(0x0, now=0, fill_time=100)       # ready at 100
    mshr.allocate_prefetch(0x40, now=0, fill_time=100)
    mshr.allocate_demand(0x80, now=10, fill_time=100)     # squash: ready 110
    # At 105 the real demand slot (0x0) has drained; the borrower (0x80,
    # ready 110) occupies the prefetch slot only.
    assert mshr.available(105)
    start, _ = mshr.allocate_demand(0xC0, now=105, fill_time=100)
    assert start == 105
    assert mshr.demand_waits == 0


def test_mshr_prefetch_fill_never_drops():
    mshr = MSHRFile(num_entries=1, prefetch_entries=1)
    for block in range(10):
        ready = mshr.allocate_prefetch_fill(block * 64, now=0, fill_time=50)
        assert ready == 50


def test_mshr_availability_queries():
    mshr = MSHRFile(num_entries=1, prefetch_entries=1)
    assert mshr.available(0)
    assert mshr.prefetch_available(0)
    mshr.allocate_demand(0, 0, 100)
    mshr.allocate_prefetch(64, 0, 100)
    # Demand pool full, but the prefetch entry is squashable — a demand
    # would start immediately, and available() mirrors that contract.
    assert mshr.available(50)
    assert not mshr.prefetch_available(50)
    # Once a demand consumes the prefetch's fill it is unsquashable, so a
    # new demand really would wait.
    mshr.mark_demand_consumed(64, 50)
    assert not mshr.available(50)
    assert mshr.available(150) and mshr.prefetch_available(150)


def test_mshr_demand_consumed_prefetch_is_unsquashable():
    """A prefetch fill a demand load already merged into must not be the
    squash victim: the load's charged latency depends on it landing."""
    mshr = MSHRFile(num_entries=1, prefetch_entries=2)
    mshr.allocate_demand(0x0, now=0, fill_time=100)
    mshr.allocate_prefetch(0x40, now=0, fill_time=80)   # would be earliest
    mshr.allocate_prefetch(0x80, now=0, fill_time=120)
    assert mshr.merge(0x40, now=5) == 80  # demand merge pins 0x40
    start, _ = mshr.allocate_demand(0xC0, now=10, fill_time=100)
    assert start == 10
    assert mshr.last_squashed_block == 0x80, "pinned entry was victimized"
    # With every remaining prefetch entry pinned, the next demand waits.
    start, _ = mshr.allocate_demand(0x100, now=20, fill_time=100)
    assert start == 100  # waited for the 0x0 demand fill
    assert mshr.demand_waits == 1
