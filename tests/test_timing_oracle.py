"""Differential oracle: static cycle bounds vs. the dynamic simulator.

The timing analysis makes two falsifiable claims and this file locks
both against the real simulator:

* **containment**: for every crypto victim under the flush-reload
  wrapper, for every secret the scenario suite actually runs on the
  undefended Base config, the measured end-to-end cycle count lies
  inside the static :func:`~repro.analysis.timing_map` interval — and
  since these single-core programs walk to a point interval, the static
  prediction is in fact cycle-exact;
* **verdicts**: the taint-clean ``const-lookup`` control is certified
  constant-time (one exact interval across its whole secret space, zero
  measured variance), while AES/RSA/ECDSA trip ``AN-TIMING-VAR``
  exactly at the accesses/branches whose ``expected_indices`` vary, and
  :func:`~repro.analysis.cache_distinguishers` separates leaky victims
  from the control.
"""

import pytest

from repro.analysis import (
    cache_distinguishers,
    taint_of_program,
    timing_map,
    trial_intervals,
)
from repro.attacks import scenarios
from repro.runner import ATTACK_KINDS
from repro.workloads.crypto import get_victim, victim_names

CRYPTO_LEAKY = ("aes-ttable", "direct", "ecdsa-window", "rsa-sqmul")


def victim_program(name):
    """The secret-bearing program of the flush-reload build for ``name``."""
    victim = get_victim(name)
    attack = ATTACK_KINDS["flush-reload"](
        victim=name, num_indices=victim.num_indices, secret=0
    )
    carriers = [p for p in attack.build_programs() if p.taint_sources]
    assert len(carriers) == 1, "expected exactly one secret-bearing program"
    return carriers[0]


@pytest.fixture(scope="module")
def base_cells():
    result = scenarios.run(
        victims=tuple(victim_names()),
        attacks=("flush-reload",),
        defenses=("Base",),
        secrets=4,
    )
    return {cell.spec.victim: cell for cell in result.cells}


# -- simulated cycles fall inside (and on) the static bounds ----------------


@pytest.mark.parametrize("name", victim_names())
def test_simulated_cycles_within_static_bounds(name, base_cells):
    program = victim_program(name)
    probes = base_cells[name].probes
    assert probes, name
    for probe in probes:
        interval = timing_map(program, probe.secret)
        assert interval.lo <= probe.cycles, (name, probe.secret)
        assert interval.hi is not None, (name, probe.secret)
        assert probe.cycles <= interval.hi, (name, probe.secret)
        # Single-core victims resolve to a point: the bound is exact.
        assert interval.exact, (name, probe.secret)
        assert interval.lo == probe.cycles, (name, probe.secret)


# -- the control is certified constant-time, statically and dynamically -----


def test_const_lookup_certified_constant_time(base_cells):
    victim = get_victim("const-lookup")
    program = victim_program("const-lookup")
    intervals = trial_intervals(program, range(victim.secret_space))
    assert len(intervals) == victim.secret_space
    distinct = {(iv.lo, iv.hi) for iv in intervals.values()}
    assert len(distinct) == 1, distinct
    assert all(iv.exact for iv in intervals.values())
    measured = {probe.cycles for probe in base_cells["const-lookup"].probes}
    assert len(measured) == 1, measured
    ((static_cycles, _),) = distinct
    assert measured == {static_cycles}


def test_leaky_victims_vary_statically():
    """At least one leaky victim shows secret-dependent *cycles* (the
    branchy one); the rest still vary in cache state (next test)."""
    victim = get_victim("rsa-sqmul")
    program = victim_program("rsa-sqmul")
    intervals = trial_intervals(
        program, victim.trial_secrets(min(8, victim.secret_space))
    )
    assert len({(iv.lo, iv.hi) for iv in intervals.values()}) > 1


# -- AN-TIMING-VAR anchors == the accesses/branches that vary ---------------


@pytest.mark.parametrize("name", victim_names())
def test_timing_var_anchors_match_taint_surface(name):
    program = victim_program(name)
    analysis = program.analysis
    taint = taint_of_program(program)
    flagged = {
        f.index
        for f in analysis.findings + analysis.suppressed
        if f.rule == "AN-TIMING-VAR"
    }
    expected = set(taint.secret_addressed()) | set(taint.branches)
    assert flagged == expected, (name, flagged, expected)
    if name == "const-lookup":
        assert flagged == set()
    else:
        assert flagged, name


# -- AN-CACHE-DISTINGUISH separates leaky victims from the control ----------


@pytest.mark.parametrize("name", victim_names())
def test_cache_distinguisher_verdicts(name):
    victim = get_victim(name)
    program = victim_program(name)
    report = cache_distinguishers(
        program, secrets=victim.trial_secrets(min(8, victim.secret_space))
    )
    if name in CRYPTO_LEAKY:
        assert report.distinguishable, name
        assert report.witness is not None
        assert report.index is not None
    else:
        assert not report.distinguishable, name
        assert report.witness is None
