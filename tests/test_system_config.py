"""System scheduling, run results, and the config/prefetcher factory."""

import pytest

from repro.core.prefender import Prefender
from repro.errors import ConfigError, SimulationError
from repro.isa.assembler import assemble
from repro.prefetch.composite import CompositePrefetcher
from repro.prefetch.stride import StridePrefetcher
from repro.prefetch.tagged import TaggedPrefetcher
from repro.sim.config import PrefetcherSpec, SystemConfig, build_prefetcher
from repro.sim.simulator import build_system, run_program, run_programs
from repro.utils.addr import AddressMap


def test_run_program_basic():
    result = run_program(assemble("li r1, 1\nhalt"))
    assert result.instructions == 2
    assert result.cycles >= 2
    assert result.ipc > 0


def test_run_program_rejects_multicore_config():
    with pytest.raises(ConfigError):
        run_program(assemble("halt"), SystemConfig(num_cores=2))


def test_build_system_core_count_mismatch():
    with pytest.raises(ConfigError):
        build_system([assemble("halt")], SystemConfig(num_cores=2))


def test_runaway_program_guard():
    program = assemble("loop:\njmp loop")
    with pytest.raises(SimulationError):
        run_program(program, max_steps=1000)


def test_cross_core_spin_synchronisation():
    attacker = assemble(
        """
        li r1, 0x8000
        li r2, 1
        store r2, 0(r1)
        halt
        """
    )
    waiter = assemble(
        """
        li r1, 0x8000
        spin:
        load r2, 0(r1)
        beq r2, zero, spin
        halt
        """
    )
    result = run_programs([waiter, attacker], SystemConfig(num_cores=2))
    assert result.core_instructions[0] > 0
    assert result.cycles > 0


def test_sampling_hook():
    program = assemble("li r1, 100\nloop:\nsub r1, r1, 1\nbne r1, zero, loop\nhalt")
    system = build_system([program], SystemConfig())
    result = system.run(sample_interval=50, sample_fn=lambda s: s.cores[0].time)
    assert len(result.samples) >= 3
    times = [value for _, value in result.samples]
    assert times == sorted(times)


def test_prefetcher_spec_labels():
    assert PrefetcherSpec(kind="none").label == "Baseline"
    assert PrefetcherSpec(kind="tagged").label == "Tagged"
    assert PrefetcherSpec(kind="prefender").label == "Prefender"
    assert "Tagged" in PrefetcherSpec(kind="prefender+tagged").label


def test_prefetcher_spec_validation():
    with pytest.raises(ConfigError):
        PrefetcherSpec(kind="warp-drive")


@pytest.mark.parametrize(
    "kind,expected_type",
    [
        ("tagged", TaggedPrefetcher),
        ("stride", StridePrefetcher),
        ("prefender", Prefender),
        ("prefender+tagged", CompositePrefetcher),
        ("prefender+stride", CompositePrefetcher),
    ],
)
def test_build_prefetcher_types(kind, expected_type):
    prefetcher = build_prefetcher(PrefetcherSpec(kind=kind), AddressMap())
    assert isinstance(prefetcher, expected_type)


def test_composite_primary_is_prefender():
    composite = build_prefetcher(
        PrefetcherSpec(kind="prefender+tagged"), AddressMap()
    )
    assert isinstance(composite.primary, Prefender)


def test_run_result_totals():
    result = run_program(
        assemble("li r1, 0x7000\nload r2, 0(r1)\nhalt"),
        SystemConfig(prefetcher=PrefetcherSpec(kind="tagged")),
    )
    assert result.total_prefetches(0) >= 1
    assert result.l1d_stats[0]["demand_accesses"] == 1
