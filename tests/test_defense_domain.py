"""Property tests for the defense havoc transformer.

The scenario certifier's ``DEFENDED`` verdicts rest on one claim: after a
certainly-firing defense, :func:`repro.analysis.defense.apply_havoc` is a
sound over-approximation of *any* sequence of decoy accesses the tracker
could issue to the havocked blocks.  These tests pin that claim against a
reference LRU: whatever concrete decoy sequence runs, the concrete cache
stays inside the concretisation of the havocked abstract state.  The two
lattice properties (increasing, monotone) are what let the certifier
apply the havoc *after* the product walk instead of at every schedule
point.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cachemodel import CacheGeometry, CacheState
from repro.analysis.defense import apply_havoc

#: Small geometry so sequences actually evict: 4 sets x 2 ways.
GEOMETRY = CacheGeometry(num_sets=4, assoc=2, block_bits=6)

#: Block numbers spanning every set, with set collisions.
BLOCKS = tuple(range(12))

_ops = st.one_of(
    st.tuples(st.just("access"), st.sampled_from(BLOCKS)),
    st.tuples(st.just("flush"), st.sampled_from(BLOCKS)),
    st.tuples(st.just("havoc_access"), st.none()),
    st.tuples(st.just("havoc_flush"), st.none()),
)

op_sequences = st.lists(_ops, max_size=24)
havoc_blocks = st.frozensets(st.sampled_from(BLOCKS), max_size=6)

#: Concrete-only strategies for the reference-LRU soundness test.
concrete_ops = st.lists(
    st.one_of(
        st.tuples(st.just("access"), st.sampled_from(BLOCKS)),
        st.tuples(st.just("flush"), st.sampled_from(BLOCKS)),
    ),
    max_size=24,
)


def run_ops(ops):
    state = CacheState(GEOMETRY)
    for name, arg in ops:
        if arg is None:
            getattr(state, name)()
        else:
            getattr(state, name)(arg)
    return state


class ReferenceLRU:
    """Concrete set-associative LRU cache: per-set MRU-first block lists."""

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        self.sets = {s: [] for s in range(geometry.num_sets)}

    def access(self, block: int) -> None:
        ways = self.sets[self.geometry.set_of(block)]
        if block in ways:
            ways.remove(block)
        ways.insert(0, block)
        while len(ways) > self.geometry.assoc:
            ways.pop()

    def flush(self, block: int) -> None:
        ways = self.sets[self.geometry.set_of(block)]
        if block in ways:
            ways.remove(block)

    def age_of(self, block: int) -> int | None:
        """True LRU age (0 = most recent), or ``None`` if not resident."""
        ways = self.sets[self.geometry.set_of(block)]
        return ways.index(block) if block in ways else None


def assert_concretizes(concrete: ReferenceLRU, abstract: CacheState) -> None:
    """The concrete cache is a member of ``abstract``'s concretisation."""
    for s, must in abstract._must.items():
        for block, upper in must.items():
            age = concrete.age_of(block)
            assert age is not None, (
                f"must claims block {block} resident, concrete evicted it"
            )
            assert age <= upper, (
                f"must bound {upper} for block {block}, true age {age}"
            )
    if not abstract.may_universal:
        for s, ways in concrete.sets.items():
            may = abstract._may.get(s, {})
            for age, block in enumerate(ways):
                assert block in may, (
                    f"block {block} resident but absent from may"
                )
                assert may[block] <= age, (
                    f"may lower bound {may[block]} for block {block} "
                    f"exceeds true age {age}"
                )


# -- lattice properties -------------------------------------------------------


@settings(max_examples=200, deadline=None)
@given(op_sequences, havoc_blocks)
def test_havoc_is_increasing(ops, blocks):
    """Havoc only loses information: ``state <= apply_havoc(state, B)``."""
    state = run_ops(ops)
    assert state.leq(apply_havoc(state, blocks))


@settings(max_examples=200, deadline=None)
@given(op_sequences, havoc_blocks)
def test_havoc_is_pure(ops, blocks):
    """The transformer never mutates its input state."""
    state = run_ops(ops)
    before = state.copy()
    apply_havoc(state, blocks)
    assert state == before


@settings(max_examples=200, deadline=None)
@given(op_sequences, op_sequences, havoc_blocks)
def test_havoc_is_monotone(low_ops, extra_ops, blocks):
    """``a <= b  ==>  havoc(a) <= havoc(b)`` (b built as a join upper)."""
    low = run_ops(low_ops)
    high = low.join(run_ops(extra_ops))
    assert apply_havoc(low, blocks).leq(apply_havoc(high, blocks))


@settings(max_examples=200, deadline=None)
@given(op_sequences, havoc_blocks)
def test_havoc_is_idempotent(ops, blocks):
    """Re-applying the same havoc adds nothing."""
    once = apply_havoc(run_ops(ops), blocks)
    assert apply_havoc(once, blocks) == once


# -- soundness against the reference LRU --------------------------------------


@settings(max_examples=200, deadline=None)
@given(concrete_ops)
def test_lockstep_abstraction_is_sound(ops):
    """Sanity: the abstract domain concretises the reference LRU at all."""
    concrete = ReferenceLRU(GEOMETRY)
    abstract = CacheState(GEOMETRY)
    for name, block in ops:
        getattr(concrete, name)(block)
        getattr(abstract, name)(block)
        assert_concretizes(concrete, abstract)


@settings(max_examples=300, deadline=None)
@given(
    concrete_ops,
    havoc_blocks,
    st.lists(st.integers(min_value=0, max_value=63), max_size=16),
)
def test_havoc_over_approximates_decoy_sequences(ops, blocks, picks):
    """Any decoy-access sequence over B lands inside the havocked state.

    Drive the reference LRU and the abstract state in lockstep, then run
    an arbitrary access sequence drawn from the havoc block set B on the
    *concrete* cache only: the result must still concretise
    ``apply_havoc(abstract, B)``.  This is exactly the certifier's
    situation — it never knows how many decoys the Scale Tracker issued,
    only which lines they could touch.
    """
    concrete = ReferenceLRU(GEOMETRY)
    abstract = CacheState(GEOMETRY)
    for name, block in ops:
        getattr(concrete, name)(block)
        getattr(abstract, name)(block)
    havocked = apply_havoc(abstract, blocks)
    ordered = sorted(blocks)
    for pick in picks:
        if ordered:
            concrete.access(ordered[pick % len(ordered)])
    assert_concretizes(concrete, havocked)
