"""Instruction representation and rendering."""

import pytest

from repro.isa.instructions import (
    ALU_OPS,
    BRANCH_OPS,
    Instruction,
    MEMORY_OPS,
)


def test_unknown_opcode_rejected():
    with pytest.raises(ValueError):
        Instruction("frobnicate")


def test_opcode_groups_disjoint():
    assert not (ALU_OPS & BRANCH_OPS)
    assert not (ALU_OPS & MEMORY_OPS)
    assert "mul" in ALU_OPS
    assert "sll" in ALU_OPS and "srl" in ALU_OPS


def test_is_branch():
    assert Instruction("beq", rs0=1, rs1=2, target="x").is_branch()
    assert not Instruction("jmp", target="x").is_branch()
    assert not Instruction("nop").is_branch()


def test_is_memory():
    assert Instruction("load", rd=1, rs0=2, imm=0).is_memory()
    assert Instruction("store", rs0=1, rs1=2, imm=0).is_memory()
    assert Instruction("clflush", rs0=1, imm=0).is_memory()
    assert Instruction("prefetch", rs0=1, imm=0).is_memory()
    assert Instruction("prefetchw", rs0=1, imm=0).is_memory()
    assert not Instruction("add", rd=1, rs0=1, imm=1).is_memory()


@pytest.mark.parametrize(
    "instruction,expected",
    [
        (Instruction("li", rd=1, imm=5), "li r1, 5"),
        (Instruction("mov", rd=1, rs0=2), "mov r1, r2"),
        (Instruction("add", rd=1, rs0=2, rs1=3), "add r1, r2, r3"),
        (Instruction("sub", rd=1, rs0=2, imm=4), "sub r1, r2, 4"),
        (Instruction("load", rd=1, rs0=2, imm=8), "load r1, 8(r2)"),
        (Instruction("store", rs0=1, rs1=2, imm=8), "store r1, 8(r2)"),
        (Instruction("clflush", rs0=3, imm=0), "clflush 0(r3)"),
        (Instruction("prefetch", rs0=3, imm=64), "prefetch 64(r3)"),
        (Instruction("prefetchw", rs0=5, imm=0), "prefetchw 0(r5)"),
        (Instruction("rdcycle", rd=4), "rdcycle r4"),
        (Instruction("beq", rs0=1, rs1=0, target="loop"), "beq r1, r0, loop"),
        (Instruction("jmp", target="end"), "jmp end"),
        (Instruction("nop"), "nop"),
        (Instruction("fence"), "fence"),
        (Instruction("halt"), "halt"),
    ],
)
def test_to_text(instruction, expected):
    assert instruction.to_text() == expected


def test_fence_exists():
    fence = Instruction("fence")
    assert not fence.is_memory()
    assert not fence.is_branch()
