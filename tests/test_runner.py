"""The simulation-job runner: lossless keys, parallel batches, disk store.

The headline regression here: the old experiment memoiser keyed runs on
``(kind, st, at, rp, num_access_buffers)`` and rebuilt every other config
field from defaults, so sweeps varying ``at_threshold`` (or any other
knob) silently shared cycle counts.  The runner's content key hashes every
dataclass field, and ``test_job_key_covers_every_config_field`` walks the
field sets structurally so a newly added knob can never fall out again.
"""

import dataclasses
from dataclasses import replace

import pytest

from repro.core.config import PrefenderConfig
from repro.cpu.core import CoreConfig
from repro.errors import ConfigError
from repro.experiments import common, table4
from repro.mem.hierarchy import HierarchyConfig
from repro.runner import (
    AttackJob,
    AttackProbeJob,
    ResultStore,
    SimJob,
    SimResult,
    job_key,
    run_batch,
)
from repro.sim.config import PrefetcherSpec, SystemConfig

# Fields whose values are constrained (enums, registry names): a generic
# "+1"/flip perturbation would be invalid, so supply a valid alternative.
SPECIAL_VALUES = {
    "workload": "999.specrand",
    "attack": "evict-reload",
    "system.prefetcher.kind": "tagged",
    "options.victim_mode": "spectre",
    "options.probe_kind": "prefetch",
}


def _mutated(path: str, value):
    if path in SPECIAL_VALUES:
        assert SPECIAL_VALUES[path] != value
        return SPECIAL_VALUES[path]
    if isinstance(value, bool):
        return not value
    if value is None:
        return 1024  # Optional[int] knobs (e.g. sample_interval)
    if isinstance(value, int):
        return value + 1
    if isinstance(value, float):
        return value + 0.25
    if isinstance(value, str):
        return value + "-x"
    raise AssertionError(f"no perturbation rule for {path} = {value!r}")


def _perturbations(obj, prefix=""):
    """Yield (field path, copy of ``obj`` with exactly that field changed)."""
    for spec_field in dataclasses.fields(obj):
        value = getattr(obj, spec_field.name)
        path = f"{prefix}{spec_field.name}"
        if dataclasses.is_dataclass(value):
            for sub_path, mutated in _perturbations(value, path + "."):
                yield sub_path, replace(obj, **{spec_field.name: mutated})
        else:
            yield path, replace(obj, **{spec_field.name: _mutated(path, value)})


def _base_sim_job() -> SimJob:
    # st_at(8) keeps rp_enabled=False so every boolean flip stays a valid
    # PrefenderConfig (rp_enabled=True needs at_enabled=True, which holds).
    spec = PrefetcherSpec(kind="prefender", prefender=PrefenderConfig.st_at(8))
    return SimJob(workload="462.libquantum", scale=0.25, system=common.perf_config(spec))


def test_job_key_covers_every_config_field():
    """Perturbing ANY field of the full config tree changes the key."""
    base = _base_sim_job()
    base_key = base.key()
    seen_paths = set()
    for path, mutated in _perturbations(base):
        seen_paths.add(path)
        assert mutated.key() != base_key, f"field {path} not in the job key"
    # The walk is driven by dataclasses.fields, so it must have visited every
    # field of every config dataclass — a new knob is covered automatically.
    for config_cls in (
        SimJob,
        SystemConfig,
        PrefetcherSpec,
        PrefenderConfig,
        CoreConfig,
        HierarchyConfig,
    ):
        for spec_field in dataclasses.fields(config_cls):
            # Scalar fields appear as a path leaf; nested-config fields
            # appear as an intermediate segment of their children's paths.
            assert any(
                spec_field.name in path.split(".") for path in seen_paths
            ), f"{config_cls.__name__}.{spec_field.name} never perturbed"


def test_attack_job_key_covers_every_field():
    # st_at keeps rp_enabled=False so boolean flips stay valid configs.
    system = SystemConfig(
        prefetcher=PrefetcherSpec(kind="prefender", prefender=PrefenderConfig.st_at(8))
    )
    base = AttackJob.build("flush-reload", system)
    base_key = base.key()
    seen_paths = set()
    for path, mutated in _perturbations(base):
        seen_paths.add(path)
        assert mutated.key() != base_key, f"field {path} not in the job key"
    # Newly added AttackOptions knobs join the walk automatically; pin the
    # adversarial-prefetch probe primitive explicitly so it can never fall
    # out of the content key (A1 vs A2 differ in exactly this field).
    assert "options.probe_kind" in seen_paths


def test_adversarial_prefetch_kinds_get_distinct_keys():
    """A1 and A2 differ in kind name AND resolved probe_kind — never one key."""
    # st_at keeps rp_enabled=False so boolean flips stay valid configs.
    system = SystemConfig(
        prefetcher=PrefetcherSpec(kind="prefender", prefender=PrefenderConfig.st_at(8))
    )
    a1 = AttackProbeJob.build("adversarial-prefetch-a1", system)
    a2 = AttackProbeJob.build("adversarial-prefetch-a2", system)
    assert a1.key() != a2.key()
    assert a1.options.probe_kind == "load"
    assert a2.options.probe_kind == "prefetch"
    assert a1.options.cross_core and a2.options.cross_core
    # The family's jobs are probe jobs (JSON-able) so --store covers them.
    assert a1.cacheable and a2.cacheable
    # Perturbation walk over an adversarial-prefetch job: every field of the
    # resolved options (including the new probe_kind) lands in the key.
    base_key = a1.key()
    for path, mutated in _perturbations(a1):
        assert mutated.key() != base_key, f"field {path} not in the job key"


def test_job_keys_distinguish_previously_dropped_fields():
    """Two specs differing only in a non-(kind,st,at,rp,buffers) field get
    distinct keys — exactly what the old ``_spec_key`` tuple lost."""
    base = PrefenderConfig.st_at(8)
    for change in (
        {"at_threshold": 6},
        {"entries_per_buffer": 4},
        {"st_max_prefetches": 5},
        {"scale_buffer_entries": 2},
        {"unprotect_prefetch_limit": 7},
        {"unprotect_idle_cycles": 123},
        {"at_max_prefetches": 3},
    ):
        job_a = common.sim_job(
            "462.libquantum", PrefetcherSpec(kind="prefender", prefender=base), 0.1
        )
        job_b = common.sim_job(
            "462.libquantum",
            PrefetcherSpec(kind="prefender", prefender=replace(base, **change)),
            0.1,
        )
        assert job_a.key() != job_b.key(), change


def test_cycle_cache_regression_at_threshold():
    """Headline bug: at_threshold sweeps must not share cached cycles.

    Under the old memoiser both calls mapped to the same tuple key, so the
    second returned the first's cycle count.  at_threshold genuinely changes
    libquantum's timing (prefetching starts earlier), so distinct caching is
    observable in the cycles themselves, not just in cache bookkeeping.
    """
    common.clear_cycle_cache()
    make = lambda threshold: PrefetcherSpec(
        kind="prefender",
        prefender=replace(PrefenderConfig.full(8), at_threshold=threshold),
    )
    early = common.workload_cycles("462.libquantum", make(2), 0.1)
    late = common.workload_cycles("462.libquantum", make(6), 0.1)
    stats = common.cache_stats()
    assert stats["misses"] == 2 and stats["hits"] == 0, stats
    assert early != late, "at_threshold=2 vs 6 must simulate differently"
    # Same spec again is a pure cache hit with the same answer.
    assert common.workload_cycles("462.libquantum", make(2), 0.1) == early
    assert common.cache_stats()["hits"] == 1


def test_parallel_batch_matches_sequential_table4():
    kwargs = dict(
        scale=0.1, workloads=["462.libquantum", "999.specrand"], buffer_sweep=(32,)
    )
    common.clear_cycle_cache()
    sequential = table4.render(table4.run(**kwargs))
    common.clear_cycle_cache()
    parallel = table4.render(table4.run(jobs=2, **kwargs))
    assert parallel == sequential, "parallel run must be byte-identical"


def test_run_batch_preserves_order_and_dedups():
    spec = PrefetcherSpec(kind="none")
    job_a = common.sim_job("999.specrand", spec, 0.05)
    job_b = common.sim_job("462.libquantum", spec, 0.05)
    results = run_batch([job_a, job_b, job_a])
    assert results[0].cycles == results[2].cycles
    assert results[0] is results[2], "duplicate keys run once"
    assert results[1].cycles != results[0].cycles


def test_run_batch_rejects_negative_workers():
    with pytest.raises(ConfigError):
        run_batch([], workers=-1)


def test_store_roundtrip_and_invalidation(tmp_path):
    store = ResultStore(tmp_path)
    job = common.sim_job("999.specrand", PrefetcherSpec(kind="none"), 0.05)
    (first,) = run_batch([job], store=store)
    assert len(store) == 1 and store.hits == 0

    # A fresh store instance serves the result from disk without simulating.
    reread = ResultStore(tmp_path)
    (cached,) = run_batch([job], store=reread)
    assert reread.hits == 1 and reread.misses == 0
    assert dataclasses.asdict(cached) == dataclasses.asdict(first)

    # Any config change is a different key -> disk miss, new entry.
    changed = replace(
        job, system=replace(job.system, core=replace(job.system.core, mul_cost=4))
    )
    assert changed.key() != job.key()
    run_batch([changed], store=reread)
    assert reread.misses == 1
    assert len(reread) == 2

    # A torn/garbage file degrades to a miss, never a wrong result.
    path = tmp_path / f"{job.key()}.json"
    path.write_text("{not json")
    third = ResultStore(tmp_path)
    assert third.get(job.key()) is None
    assert third.misses == 1

    # Valid JSON with the right key/version but a mangled result payload
    # (hand-edited or written by an older tool) is also just a miss.
    import json

    from repro.runner import KEY_VERSION

    path.write_text(
        json.dumps(
            {"version": KEY_VERSION, "key": job.key(), "result": {"cycles": "x"}}
        )
    )
    assert third.get(job.key()) is None
    path.write_text(
        json.dumps(
            {
                "version": KEY_VERSION,
                "key": job.key(),
                "result": dict(first.to_json(), l1d_stats="oops"),
            }
        )
    )
    assert third.get(job.key()) is None


def _filler_results(tmp_path):
    """One real SimResult + its on-disk entry size, for synthetic store tests."""
    probe = ResultStore(tmp_path / "probe")
    job = common.sim_job("999.specrand", PrefetcherSpec(kind="none"), 0.05)
    (result,) = run_batch([job], store=probe)
    return result, probe.size_bytes()


def test_store_eviction_is_lru_ordered(tmp_path):
    """Oldest-mtime entries are evicted first; a get() refreshes recency."""
    import os

    result, _ = _filler_results(tmp_path)
    # Measure a *synthetic* entry (tiny job fingerprint), then cap at 2.5x.
    sizer = ResultStore(tmp_path / "sizer")
    sizer.put("sample", {"synthetic": "sample"}, result)
    entry_size = sizer.size_bytes()
    store = ResultStore(tmp_path / "capped", max_bytes=int(entry_size * 2.5))

    def put(key: str, stamp: int) -> None:
        store.put(key, {"synthetic": key}, result)
        os.utime(store._path(key), (stamp, stamp))

    put("key-a", 100)
    put("key-b", 200)
    assert store.evictions == 0 and len(store) == 2

    # Third entry overflows the 2.5-entry cap: key-a (oldest) is evicted.
    put("key-c", 300)
    assert store.evictions == 1
    assert store.get("key-a") is None
    assert store.get("key-b") is not None  # hit refreshes key-b's mtime...
    os.utime(store._path("key-b"), (400, 400))  # (made explicit for the test)

    # ...so the next overflow evicts key-c, not the recently-read key-b.
    put("key-d", 500)
    assert store.evictions == 2
    assert store.get("key-c") is None
    assert store.get("key-b") is not None
    assert store.get("key-d") is not None


def test_store_never_evicts_the_just_written_entry(tmp_path):
    result, _ = _filler_results(tmp_path)
    sizer = ResultStore(tmp_path / "sizer")
    sizer.put("sample", {"synthetic": "sample"}, result)
    store = ResultStore(
        tmp_path / "tiny", max_bytes=max(1, sizer.size_bytes() // 2)
    )
    store.put("only", {"synthetic": "only"}, result)
    assert len(store) == 1, "an oversized single entry still caches"
    assert store.evictions == 0
    store.put("next", {"synthetic": "next"}, result)
    assert len(store) == 1 and store.evictions == 1
    assert store.get("next") is not None


def test_store_uncapped_by_default_and_rejects_bad_cap(tmp_path):
    result, _ = _filler_results(tmp_path)
    store = ResultStore(tmp_path / "free")
    for index in range(5):
        store.put(f"key-{index}", {"synthetic": index}, result)
    assert len(store) == 5 and store.evictions == 0
    with pytest.raises(ConfigError):
        ResultStore(tmp_path, max_bytes=0)


def test_store_roundtrips_attack_probes(tmp_path):
    """AttackProbeJob results persist and reload as AttackProbe objects."""
    store = ResultStore(tmp_path)
    job = AttackProbeJob.build("flush-reload")
    (probe,) = run_batch([job], store=store)
    assert probe.succeeded, "undefended flush-reload must succeed"
    reread = ResultStore(tmp_path)
    (cached,) = run_batch([job], store=reread)
    assert reread.hits == 1
    assert dataclasses.asdict(cached) == dataclasses.asdict(probe)
    # Probe and attack jobs with identical inputs still get distinct keys
    # (the fingerprint includes the class name).
    assert job.key() != AttackJob.build("flush-reload").key()


def test_store_result_kind_dispatch(tmp_path):
    """Entries missing result_kind stay readable (pre-eviction files were
    all SimResults); unknown kinds degrade to a miss."""
    import json

    store = ResultStore(tmp_path)
    job = common.sim_job("999.specrand", PrefetcherSpec(kind="none"), 0.05)
    (result,) = run_batch([job], store=store)
    path = tmp_path / f"{job.key()}.json"
    data = json.loads(path.read_text())
    assert data["result_kind"] == "SimResult"

    del data["result_kind"]
    path.write_text(json.dumps(data))
    legacy = ResultStore(tmp_path)
    assert legacy.get(job.key()) is not None

    data["result_kind"] = "Bogus"
    path.write_text(json.dumps(data))
    bogus = ResultStore(tmp_path)
    assert bogus.get(job.key()) is None and bogus.misses == 1


def test_store_clear(tmp_path):
    store = ResultStore(tmp_path)
    job = common.sim_job("999.specrand", PrefetcherSpec(kind="none"), 0.05)
    run_batch([job], store=store)
    assert store.clear() == 1
    assert len(store) == 0
    assert store.get(job.key()) is None


def test_sim_result_json_roundtrip():
    job = SimJob(workload="999.specrand", scale=0.05, sample_interval=50)
    result = job.run()
    assert result.samples, "sampling interval must record samples"
    again = SimResult.from_json(result.to_json())
    assert dataclasses.asdict(again) == dataclasses.asdict(result)


def test_sim_result_exports_defense_stats():
    """AT/RP internals (allocation_failures, protection lifecycle) must
    survive into the JSON-able result so Fig. 12-style reporting and the
    scenario suite can read buffer starvation after the run."""
    spec = PrefetcherSpec(kind="prefender", prefender=PrefenderConfig.full(8))
    result = SimJob(
        workload="462.libquantum", scale=0.1, system=common.perf_config(spec)
    ).run()
    assert len(result.defense_stats) == 1
    stats = result.defense_stats[0]
    for key in (
        "allocation_failures",
        "protections",
        "unprotections",
        "sweep_unprotections",
        "protected_buffers",
    ):
        assert key in stats, key
    again = SimResult.from_json(result.to_json())
    assert again.defense_stats == result.defense_stats
    # Baseline runs carry an empty per-core dict, not a missing field.
    baseline = SimJob(workload="999.specrand", scale=0.05).run()
    assert baseline.defense_stats == [{}]


def test_sim_job_rejects_non_positive_scale():
    with pytest.raises(ConfigError):
        SimJob(workload="999.specrand", scale=0.0)
    with pytest.raises(ConfigError):
        SimJob(workload="999.specrand", scale=-1.0)


def test_attack_job_unknown_kind():
    with pytest.raises(ConfigError):
        AttackJob(attack="rowhammer")
    with pytest.raises(ConfigError):
        AttackJob.build("rowhammer")


def test_attack_job_merges_class_default_options():
    job = AttackJob.build("prime-probe", SystemConfig(), noise_c3=True)
    assert job.options.noise_c3 is True
    # Prime+Probe's class defaults (48 monitored sets, secret 37) land in
    # the resolved options — and therefore in the job key.
    assert job.options.num_indices == 48
    assert job.options.secret == 37
    outcome = job.run()
    assert outcome.challenges == "C1+C2+C3"
