"""LRU recency tracker."""

import pytest

from repro.utils.lru import LRUTracker


def test_victim_is_least_recent():
    lru = LRUTracker()
    for key in "abc":
        lru.touch(key)
    assert lru.victim() == "a"
    lru.touch("a")
    assert lru.victim() == "b"


def test_untouched_candidates_rank_oldest():
    lru = LRUTracker()
    lru.touch("a")
    assert lru.victim(["a", "never-touched"]) == "never-touched"


def test_candidate_restriction():
    lru = LRUTracker()
    for key in "abcd":
        lru.touch(key)
    assert lru.victim(["c", "d"]) == "c"


def test_forget():
    lru = LRUTracker()
    lru.touch("a")
    lru.forget("a")
    assert "a" not in lru
    lru.forget("missing")  # no-op


def test_empty_victim_raises():
    with pytest.raises(ValueError):
        LRUTracker().victim()
    with pytest.raises(ValueError):
        LRUTracker().victim([])


def test_len_and_contains():
    lru = LRUTracker()
    assert len(lru) == 0
    lru.touch(1)
    lru.touch(2)
    assert len(lru) == 2
    assert 1 in lru


def test_stamps_snapshot_is_copy():
    lru = LRUTracker()
    lru.touch("x")
    snapshot = lru.stamps()
    snapshot["x"] = 999
    assert lru.stamps()["x"] != 999


def test_retouching_updates_order():
    lru = LRUTracker()
    for key in (1, 2, 3):
        lru.touch(key)
    lru.touch(1)
    lru.touch(2)
    assert lru.victim() == 3
