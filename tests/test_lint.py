"""Determinism linter: every rule has a firing fixture and a clean twin."""

import subprocess
import sys
from pathlib import Path

from tools.lint.engine import lint_paths, lint_source
from tools.lint.rules import LINT_RULES

SIM = "src/repro/sim/model.py"  # inside the deterministic scope
MEM = "src/repro/mem/thing.py"  # inside the __slots__ scope
CONFIG = "src/repro/sim/config.py"  # inside the config tree
OUTSIDE = "src/repro/experiments/tables.py"  # outside the deterministic scope

REPO = Path(__file__).resolve().parent.parent


def rules_hit(source: str, relpath: str) -> list[str]:
    return [f.rule for f in lint_source(source, relpath, LINT_RULES)]


# -- DET101: unseeded randomness --------------------------------------------


def test_det101_flags_global_random():
    assert rules_hit("import random\nx = random.random()\n", SIM) == ["DET101"]


def test_det101_flags_seedless_random_instance():
    assert rules_hit("import random\nr = random.Random()\n", SIM) == ["DET101"]


def test_det101_flags_from_import():
    assert rules_hit("from random import choice\n", SIM) == ["DET101"]


def test_det101_clean_with_seeded_rng():
    src = "import random\nr = random.Random(1234)\nx = r.random()\n"
    assert rules_hit(src, SIM) == []


def test_det101_silent_outside_scope():
    assert rules_hit("import random\nx = random.random()\n", OUTSIDE) == []


# -- DET102: wall clock ------------------------------------------------------


def test_det102_flags_wall_clock():
    assert rules_hit("import time\nt = time.perf_counter()\n", SIM) == ["DET102"]


def test_det102_flags_datetime_now():
    src = "import datetime\nt = datetime.datetime.now()\n"
    assert rules_hit(src, SIM) == ["DET102"]


def test_det102_clean_with_simulated_clock():
    assert rules_hit("t = clock.now_cycles()\n", SIM) == []


# -- DET103: unsorted set iteration ------------------------------------------


def test_det103_flags_set_literal_iteration():
    assert rules_hit("for x in {1, 2}:\n    pass\n", SIM) == ["DET103"]


def test_det103_flags_tracked_set_name():
    src = "s = set()\nout = [x for x in s]\n"
    assert rules_hit(src, SIM) == ["DET103"]


def test_det103_clean_with_sorted():
    src = "s = set()\nout = [x for x in sorted(s)]\n"
    assert rules_hit(src, SIM) == []


# -- DET104: set-annotated parameter iteration --------------------------------

ANALYSIS = "src/repro/analysis/taint.py"  # inside the DET104 scope


def test_det104_flags_set_parameter_iteration():
    src = (
        "def transfer(tainted: frozenset[int]) -> list[int]:\n"
        "    return [r for r in tainted]\n"
    )
    assert rules_hit(src, ANALYSIS) == ["DET104"]


def test_det104_flags_for_loop_and_quoted_annotation():
    src = (
        "def walk(cells: 'set[int]') -> None:\n"
        "    for cell in cells:\n"
        "        pass\n"
    )
    assert rules_hit(src, ANALYSIS) == ["DET104"]


def test_det104_clean_with_sorted():
    src = (
        "def transfer(tainted: frozenset[int]) -> list[int]:\n"
        "    return [r for r in sorted(tainted)]\n"
    )
    assert rules_hit(src, ANALYSIS) == []


def test_det104_ignores_membership_and_other_params():
    src = (
        "def transfer(tainted: frozenset[int], regs: list[int]) -> list[int]:\n"
        "    return [r for r in regs if r in tainted]\n"
    )
    assert rules_hit(src, ANALYSIS) == []


def test_det104_silent_outside_analysis_scope():
    src = (
        "def transfer(tainted: frozenset[int]) -> list[int]:\n"
        "    return [r for r in tainted]\n"
    )
    assert rules_hit(src, SIM) == []


# -- SLOT201: hot-path __slots__ ---------------------------------------------


def test_slot201_flags_dictful_class():
    src = "class Line:\n    def __init__(self):\n        self.tag = 0\n"
    assert rules_hit(src, MEM) == ["SLOT201"]


def test_slot201_clean_with_slots():
    src = "class Line:\n    __slots__ = ('tag',)\n"
    assert rules_hit(src, MEM) == []


def test_slot201_clean_with_dataclass_slots():
    src = (
        "from dataclasses import dataclass\n"
        "@dataclass(slots=True)\n"
        "class Line:\n    tag: int\n"
    )
    assert rules_hit(src, MEM) == []


def test_slot201_exempts_exceptions():
    src = "class CacheError(Exception):\n    pass\n"
    assert rules_hit(src, MEM) == []


def test_slot201_silent_outside_scope():
    src = "class Line:\n    def __init__(self):\n        self.tag = 0\n"
    assert rules_hit(src, OUTSIDE) == []


# -- CFG301: JSON-round-trippable config fields ------------------------------


def test_cfg301_flags_non_json_field():
    src = (
        "from dataclasses import dataclass\n"
        "@dataclass(frozen=True)\n"
        "class TimingConfig:\n    hook: object\n"
    )
    assert rules_hit(src, CONFIG) == ["CFG301"]


def test_cfg301_clean_with_json_leaves():
    src = (
        "from dataclasses import dataclass\n"
        "@dataclass(frozen=True)\n"
        "class TimingConfig:\n"
        "    latency: int\n"
        "    name: str | None\n"
        "    levels: tuple[int, ...]\n"
        "    nested: CacheSpec\n"
    )
    assert rules_hit(src, CONFIG) == []


def test_cfg301_ignores_non_config_classes():
    src = "class Helper:\n    hook: object\n"
    assert rules_hit(src, CONFIG) == []


# -- POOL401: picklable pool submissions -------------------------------------


def test_pool401_flags_lambda():
    assert rules_hit("pool.run(lambda: 1)\n", SIM) == ["POOL401"]


def test_pool401_flags_nested_function():
    src = (
        "def outer(pool):\n"
        "    def inner():\n"
        "        return 1\n"
        "    pool.run(inner)\n"
    )
    assert rules_hit(src, SIM) == ["POOL401"]


def test_pool401_clean_with_module_level_callable():
    src = (
        "def job():\n    return 1\n"
        "def outer(pool):\n    pool.run(job)\n"
    )
    assert rules_hit(src, SIM) == []


# -- SNAP501: snapshot/restore field coverage ---------------------------------

SNAP_BAD = (
    "class Buffer:\n"
    "    __slots__ = ('capacity', '_items', 'drops')\n"
    "    def __init__(self):\n"
    "        self.capacity = 4\n"
    "        self._items = []\n"
    "        self.drops = 0\n"
    "    def push(self, item):\n"
    "        self._items.append(item)\n"
    "        self.drops += 1\n"
    "    def snapshot(self):\n"
    "        return {'items': tuple(self._items)}\n"
    "    def restore(self, data):\n"
    "        self._items[:] = data['items']\n"
)


def test_snap501_flags_uncovered_mutable_field():
    assert rules_hit(SNAP_BAD, MEM) == ["SNAP501"]


def test_snap501_clean_when_every_mutable_field_is_keyed():
    src = SNAP_BAD.replace(
        "return {'items': tuple(self._items)}",
        "return {'items': tuple(self._items), 'drops': self.drops}",
    )
    assert rules_hit(src, MEM) == []


def test_snap501_ignores_construction_only_config_fields():
    # `capacity` is assigned only in __init__: no snapshot key required.
    src = (
        "class Buffer:\n"
        "    __slots__ = ('capacity', '_items')\n"
        "    def __init__(self):\n"
        "        self.capacity = 4\n"
        "        self._items = []\n"
        "    def push(self, item):\n"
        "        self._items.append(item)\n"
        "    def snapshot(self):\n"
        "        return {'items': tuple(self._items)}\n"
    )
    assert rules_hit(src, MEM) == []


def test_snap501_counts_restore_keys_and_aggregate_reads():
    # `drops` is restored under its own key; `_stamps` is serialised
    # inside the 'sets' aggregate (read by snapshot, no key of its own).
    src = (
        "class Cache:\n"
        "    __slots__ = ('drops', '_stamps')\n"
        "    def __init__(self):\n"
        "        self.drops = 0\n"
        "        self._stamps = [[]]\n"
        "    def tick(self):\n"
        "        self.drops += 1\n"
        "        self._stamps[0] = [1]\n"
        "    def snapshot(self):\n"
        "        return {'sets': tuple(tuple(s) for s in self._stamps)}\n"
        "    def restore(self, data):\n"
        "        require_keys(data, ('sets', 'drops'), 'Cache')\n"
    )
    assert rules_hit(src, MEM) == []


def test_snap501_ignores_plain_and_tuple_snapshot_classes():
    # No __slots__/dataclass fields, and a non-dict snapshot protocol:
    # both shapes are out of the rule's scope.
    src = (
        "class Plain:\n"
        "    def __init__(self):\n"
        "        self.x = 0\n"
        "    def bump(self):\n"
        "        self.x += 1\n"
        "    def snapshot(self):\n"
        "        return {'y': 0}\n"
        "class Tupled:\n"
        "    __slots__ = ('x',)\n"
        "    def bump(self):\n"
        "        self.x += 1\n"
        "    def snapshot(self):\n"
        "        return (self.x,)\n"
    )
    assert rules_hit(src, SIM) == []


# -- PURE601: analysis purity -------------------------------------------------


def test_pure601_flags_attribute_store_on_program():
    src = (
        "def annotate(program):\n"
        "    program.analysis = None\n"
    )
    assert rules_hit(src, ANALYSIS) == ["PURE601"]


def test_pure601_flags_mutator_call_on_annotated_input():
    src = (
        "def scrub(p: Program) -> None:\n"
        "    p.taint_sources.clear()\n"
    )
    assert rules_hit(src, ANALYSIS) == ["PURE601"]


def test_pure601_flags_subscript_store_on_decoded():
    src = (
        "def patch(decoded):\n"
        "    decoded[0] = None\n"
    )
    assert rules_hit(src, ANALYSIS) == ["PURE601"]


def test_pure601_clean_when_analysis_only_reads():
    src = (
        "def walk(program):\n"
        "    out = [len(program)]\n"
        "    out.append(program.name)\n"
        "    return out\n"
    )
    assert rules_hit(src, ANALYSIS) == []


def test_pure601_clean_on_copies_and_other_params():
    src = (
        "def havoc(state, memory):\n"
        "    fresh = state.copy()\n"
        "    fresh._must.pop(0, None)\n"
        "    memory[4] = 1\n"
        "    return fresh\n"
    )
    assert rules_hit(src, ANALYSIS) == []


def test_pure601_silent_outside_analysis_scope():
    src = (
        "def annotate(program):\n"
        "    program.analysis = None\n"
    )
    assert rules_hit(src, SIM) == []


# -- suppressions -------------------------------------------------------------


def test_line_suppression():
    src = "import time\nt = time.perf_counter()  # lint: allow DET102\n"
    assert rules_hit(src, SIM) == []


def test_line_suppression_is_rule_specific():
    src = "import time\nt = time.perf_counter()  # lint: allow DET101\n"
    assert rules_hit(src, SIM) == ["DET102"]


def test_file_suppression():
    src = (
        "# lint: allow-file DET102\n"
        "import time\n"
        "a = time.perf_counter()\n"
        "b = time.monotonic()\n"
    )
    assert rules_hit(src, SIM) == []


# -- the repo itself and the CLI ---------------------------------------------


def test_src_repro_is_lint_clean():
    assert lint_paths(REPO, ["src/repro"], LINT_RULES) == []


def test_cli_exits_nonzero_on_findings(tmp_path):
    bad = tmp_path / "src" / "repro" / "sim" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import random\nx = random.random()\n")
    proc = subprocess.run(
        [sys.executable, "-m", "tools.lint", "--root", str(tmp_path), "src"],
        cwd=REPO,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 1
    assert "DET101" in proc.stdout


def test_cli_lists_rules():
    proc = subprocess.run(
        [sys.executable, "-m", "tools.lint", "--list-rules"],
        cwd=REPO,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0
    for rule in LINT_RULES:
        assert rule.rule_id in proc.stdout
