"""Baseline prefetchers: Tagged, Stride, composite, BITP, Disruptive."""

from repro.prefetch.base import NullPrefetcher, Observation
from repro.prefetch.bitp import BITPPrefetcher
from repro.prefetch.composite import CompositePrefetcher
from repro.prefetch.disruptive import DisruptivePrefetcher
from repro.prefetch.stride import StridePrefetcher
from repro.prefetch.tagged import TaggedPrefetcher
from repro.utils.addr import AddressMap


def obs(addr, pc=0x400000, hit=False, op="load", now=0):
    amap = AddressMap()
    return Observation(
        op=op, core_id=0, pc=pc, addr=addr, block_addr=amap.block_addr(addr),
        hit=hit, now=now,
    )


def never_contains(_addr):
    return False


def test_null_prefetcher():
    assert NullPrefetcher().observe(obs(0x100), never_contains) == []


def test_tagged_prefetches_next_line_on_miss():
    tagged = TaggedPrefetcher()
    requests = tagged.observe(obs(0x1000, hit=False), never_contains)
    assert [r.addr for r in requests] == [0x1040]
    assert requests[0].component == "tagged"


def test_tagged_streams_on_tagged_hit():
    tagged = TaggedPrefetcher()
    tagged.observe(obs(0x1000, hit=False), never_contains)  # tags 0x1040
    requests = tagged.observe(obs(0x1040, hit=True), never_contains)
    assert [r.addr for r in requests] == [0x1080]
    # A plain (untagged) hit does not trigger.
    assert tagged.observe(obs(0x1040, hit=True), never_contains) == []


def test_tagged_degree():
    tagged = TaggedPrefetcher(degree=2)
    requests = tagged.observe(obs(0x1000), never_contains)
    assert [r.addr for r in requests] == [0x1040, 0x1080]


def test_tagged_respects_l1_contents():
    tagged = TaggedPrefetcher()
    assert tagged.observe(obs(0x1000), lambda a: True) == []


def test_tagged_tag_capacity():
    tagged = TaggedPrefetcher(tag_capacity=2)
    for i in range(5):
        tagged.observe(obs(0x1000 + i * 0x10000), never_contains)
    assert len(tagged._tagged) <= 2


def test_stride_needs_confidence():
    """Baer & Chen gating: issue only from an *already steady* entry.

    The delta must match twice (transient -> steady) before the third
    matching delta issues the first prefetch; the pre-fix code issued on
    the second matching delta, leaving the ``confident`` flag write-only.
    """
    stride = StridePrefetcher(distance=1)
    pc = 0x400100
    assert stride.observe(obs(0x1000, pc=pc), never_contains) == []
    assert stride.observe(obs(0x1200, pc=pc), never_contains) == []  # learn
    # Second matching delta: steady now, but not yet confident *before* it.
    assert stride.observe(obs(0x1400, pc=pc), never_contains) == []
    requests = stride.observe(obs(0x1600, pc=pc), never_contains)  # steady
    assert [r.addr for r in requests] == [0x1800]


def test_stride_resets_on_changed_stride():
    stride = StridePrefetcher(distance=1)
    pc = 0x400100
    stride.observe(obs(0x1000, pc=pc), never_contains)
    stride.observe(obs(0x1200, pc=pc), never_contains)
    stride.observe(obs(0x1300, pc=pc), never_contains)  # stride changed
    assert stride.observe(obs(0x1500, pc=pc), never_contains) == []


def test_stride_per_pc_isolation():
    stride = StridePrefetcher(distance=1)
    stride.observe(obs(0x1000, pc=1), never_contains)
    stride.observe(obs(0x2000, pc=2), never_contains)
    stride.observe(obs(0x1200, pc=1), never_contains)
    stride.observe(obs(0x2200, pc=2), never_contains)
    stride.observe(obs(0x1400, pc=1), never_contains)  # pc 1 now steady
    assert stride.observe(obs(0x1600, pc=1), never_contains) != []


def test_stride_ignores_huge_strides():
    stride = StridePrefetcher(distance=1)
    pc = 7
    stride.observe(obs(0x1000, pc=pc), never_contains)
    stride.observe(obs(0x90000, pc=pc), never_contains)
    assert stride.observe(obs(0x120000, pc=pc), never_contains) == []


def test_composite_priority_order():
    amap = AddressMap()
    tagged = TaggedPrefetcher(amap)
    stride = StridePrefetcher(amap, distance=1)
    composite = CompositePrefetcher(stride, tagged)
    pc = 0x400100
    composite.observe(obs(0x1000, pc=pc), never_contains)
    composite.observe(obs(0x1200, pc=pc), never_contains)
    composite.observe(obs(0x1400, pc=pc), never_contains)  # stride steady
    requests = composite.observe(obs(0x1600, pc=pc), never_contains)
    # Primary (stride) requests come first.
    assert requests[0].component == "stride"
    assert any(r.component == "tagged" for r in requests)


def test_composite_reset_cascades():
    tagged = TaggedPrefetcher()
    composite = CompositePrefetcher(tagged, NullPrefetcher())
    composite.observe(obs(0x1000), never_contains)
    composite.reset()
    assert len(tagged._tagged) == 0


def test_bitp_only_reacts_to_back_invalidation():
    bitp = BITPPrefetcher()
    assert bitp.observe(obs(0x1000), never_contains) == []
    requests = bitp.on_back_invalidation(0x2000, now=5)
    assert [r.addr for r in requests] == [0x2000]
    assert bitp.back_invalidation_hits == 1
    bitp.reset()
    assert bitp.back_invalidation_hits == 0


def test_disruptive_same_set_and_deterministic():
    amap = AddressMap()
    disruptive = DisruptivePrefetcher(amap, probability_percent=100, seed=3)
    requests = []
    for i in range(20):
        requests.extend(
            disruptive.observe(obs(0x100000 + i * 64), never_contains)
        )
    assert requests, "100% probability must produce prefetches"
    set_stride = 512 * 64
    for request, source in zip(requests, range(20)):
        delta = request.addr - amap.block_addr(0x100000 + source * 64)
        assert delta % set_stride == 0 and delta != 0

    # Determinism: same seed, same sequence.
    again = DisruptivePrefetcher(amap, probability_percent=100, seed=3)
    replay = []
    for i in range(20):
        replay.extend(again.observe(obs(0x100000 + i * 64), never_contains))
    assert [r.addr for r in replay] == [r.addr for r in requests]
