"""Experiment harness plumbing (small-scale runs; full scale in benchmarks/)."""

from repro.experiments import common, figure8, figure10, figure11, table4, table6
from repro.experiments.related import TABLE_I, TABLE_II_CLAIMS
from repro.sim.config import PrefetcherSpec


def test_improvement_baseline_is_zero():
    assert common.improvement(
        "999.specrand", PrefetcherSpec(kind="none"), 0.05
    ) == 0.0


def test_improvement_cache_reuses_runs():
    common.clear_cycle_cache()
    spec = PrefetcherSpec(kind="tagged")
    first = common.improvement("462.libquantum", spec, 0.05)
    hits_before = common.cache_stats()["hits"]
    second = common.improvement("462.libquantum", spec, 0.05)
    assert first == second
    assert common.cache_stats()["hits"] > hits_before


def test_security_spec_variants():
    assert common.security_spec("Base").kind == "none"
    for variant in ("ST", "AT", "ST+AT", "AT+RP", "FULL"):
        spec = common.security_spec(variant)
        assert spec.kind == "prefender"


def test_table4_small_subset():
    result = table4.run(
        scale=0.1,
        workloads=["462.libquantum", "999.specrand"],
        buffer_sweep=(32,),
    )
    libq = result.column("ST+AT/32")["462.libquantum"]
    rand = result.column("ST+AT/32")["999.specrand"]
    assert libq > 0
    assert rand == 0
    assert "Table IV" in table4.render(result)


def test_table6_small_subset():
    result = table6.run(scale=0.1, workloads=["510.parest_r", "548.exchange2_r"])
    assert result.column("ST+AT")["510.parest_r"] > 0
    assert result.column("ST+AT")["548.exchange2_r"] == 0


def test_figure10_small_subset():
    result = figure10.run(scale=0.1, workloads=["462.libquantum"])
    normalized = result.normalized("ST+AT")
    assert normalized["462.libquantum"] < 1.0
    assert "Figure 10" in figure10.render(result)


def test_figure11_small_subset():
    result = figure11.run(scale=0.1, workloads=["999.specrand", "429.mcf"])
    by_name = {row[0]: row[1:] for row in result.rows}
    assert by_name["999.specrand"] == [0, 0, 0]
    assert sum(by_name["429.mcf"]) > 0


def test_figure8_single_panel():
    panels = figure8.run(attacks=["Flush+Reload"], challenges=["C1+C2"])
    assert len(panels) == 1
    verdicts = figure8.verdicts(panels)
    assert verdicts[("Flush+Reload", "C1+C2", "Base")] is True
    assert verdicts[("Flush+Reload", "C1+C2", "ST+AT")] is False
    assert "Figure 8" in figure8.render(panels)


def test_related_tables_data():
    assert len(TABLE_I) == 14
    assert all(len(v) == 2 for v in TABLE_I.values())
    assert ("prefender", "Flush+Reload", True) in TABLE_II_CLAIMS
