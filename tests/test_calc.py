"""Table III rules in the calculation buffer — the Scale Tracker's core."""

import pytest

from repro.core.calc import CalculationBuffer


@pytest.fixture
def calc():
    return CalculationBuffer()


def test_initial_state(calc):
    for reg in range(8):
        assert calc.fva_of(reg) is None
        assert calc.scale_of(reg) == 1


def test_load_immediate(calc):
    calc.load_immediate(1, 0x200)
    assert calc.fva_of(1) == 0x200
    assert calc.scale_of(1) == 1


def test_load_from_memory_reinitialises(calc):
    calc.load_immediate(1, 5)
    calc.load_from_memory(1)
    assert calc.fva_of(1) is None
    assert calc.scale_of(1) == 1


# --- addition rules ----------------------------------------------------------

def test_add_imm_to_na_keeps_scale(calc):
    calc.load_from_memory(1)
    calc.alu("mul", 2, 1, imm=0x200)  # sc(r2)=0x200, fva NA
    calc.alu("add", 3, 2, imm=64)
    assert calc.fva_of(3) is None
    assert calc.scale_of(3) == 0x200


def test_add_imm_to_valid_computes_fva(calc):
    calc.load_immediate(1, 100)
    calc.alu("add", 2, 1, imm=28)
    assert calc.fva_of(2) == 128
    assert calc.scale_of(2) == 1


def test_sub_imm_to_valid(calc):
    calc.load_immediate(1, 100)
    calc.alu("sub", 2, 1, imm=30)
    assert calc.fva_of(2) == 70


def test_add_two_valid_registers(calc):
    calc.load_immediate(1, 3)
    calc.load_immediate(2, 4)
    calc.alu("add", 3, 1, rs1=2)
    assert calc.fva_of(3) == 7
    assert calc.scale_of(3) == 1  # canonicalised NA-scale (DESIGN.md)


def test_add_na_plus_valid_takes_na_scale(calc):
    calc.load_from_memory(1)
    calc.alu("mul", 1, 1, imm=0x100)  # sc 0x100
    calc.load_immediate(2, 0x4000)
    calc.alu("add", 3, 1, rs1=2)
    assert calc.fva_of(3) is None
    assert calc.scale_of(3) == 0x100
    # Symmetric case.
    calc.alu("add", 4, 2, rs1=1)
    assert calc.scale_of(4) == 0x100


def test_add_two_na_takes_min_scale(calc):
    calc.load_from_memory(1)
    calc.alu("mul", 1, 1, imm=0x80)
    calc.load_from_memory(2)
    calc.alu("mul", 2, 2, imm=0x20)
    calc.alu("add", 3, 1, rs1=2)
    assert calc.scale_of(3) == 0x20


# --- multiplication / shift rules ---------------------------------------------

def test_mul_na_by_imm_scales(calc):
    calc.load_from_memory(1)
    calc.alu("mul", 2, 1, imm=0x200)
    assert calc.fva_of(2) is None
    assert calc.scale_of(2) == 0x200


def test_mul_valid_by_imm(calc):
    calc.load_immediate(1, 6)
    calc.alu("mul", 2, 1, imm=7)
    assert calc.fva_of(2) == 42
    assert calc.scale_of(2) == 1


def test_mul_two_valid(calc):
    calc.load_immediate(1, 6)
    calc.load_immediate(2, 7)
    calc.alu("mul", 3, 1, rs1=2)
    assert calc.fva_of(3) == 42


def test_mul_na_by_valid_register(calc):
    calc.load_from_memory(1)          # sc 1
    calc.load_immediate(2, 0x200)
    calc.alu("mul", 3, 1, rs1=2)      # sc = sc(r1) * fva(r2)
    assert calc.fva_of(3) is None
    assert calc.scale_of(3) == 0x200


def test_mul_valid_by_na_register(calc):
    calc.load_immediate(1, 0x40)
    calc.load_from_memory(2)
    calc.alu("mul", 2, 2, imm=4)      # sc(r2) = 4
    calc.alu("mul", 3, 1, rs1=2)      # sc = fva(r1) * sc(r2)
    assert calc.scale_of(3) == 0x100


def test_mul_two_na_multiplies_scales(calc):
    calc.load_from_memory(1)
    calc.alu("mul", 1, 1, imm=8)
    calc.load_from_memory(2)
    calc.alu("mul", 2, 2, imm=16)
    calc.alu("mul", 3, 1, rs1=2)
    assert calc.scale_of(3) == 128


def test_sll_shifts_scale(calc):
    calc.load_from_memory(1)
    calc.alu("sll", 2, 1, imm=9)
    assert calc.scale_of(2) == 0x200


def test_srl_shifts_scale_down(calc):
    calc.load_from_memory(1)
    calc.alu("mul", 1, 1, imm=0x400)
    calc.alu("srl", 2, 1, imm=1)
    assert calc.scale_of(2) == 0x200


def test_srl_clamps_to_one(calc):
    calc.load_from_memory(1)
    calc.alu("srl", 2, 1, imm=10)
    assert calc.scale_of(2) == 1


def test_sll_on_valid_fva(calc):
    calc.load_immediate(1, 3)
    calc.alu("sll", 2, 1, imm=4)
    assert calc.fva_of(2) == 48
    assert calc.scale_of(2) == 1


def test_shift_by_unknown_amount_reinitialises(calc):
    calc.load_immediate(1, 8)
    calc.load_from_memory(2)
    calc.alu("sll", 3, 1, rs1=2)
    assert calc.fva_of(3) is None
    assert calc.scale_of(3) == 1


# --- otherwise rule -------------------------------------------------------------

@pytest.mark.parametrize("op", ["and", "or", "xor"])
def test_other_ops_reinitialise(calc, op):
    calc.load_from_memory(1)
    calc.alu("mul", 1, 1, imm=0x200)
    calc.alu(op, 2, 1, imm=0xFF)
    assert calc.fva_of(2) is None
    assert calc.scale_of(2) == 1


def test_move_propagates_na_scale(calc):
    calc.load_from_memory(1)
    calc.alu("mul", 1, 1, imm=0x180)
    calc.move(2, 1)
    assert calc.scale_of(2) == 0x180


def test_move_of_constant(calc):
    calc.load_immediate(1, 55)
    calc.move(2, 1)
    assert calc.fva_of(2) == 55


# --- saturation / paper example ---------------------------------------------------

def test_scale_saturates_at_cap():
    calc = CalculationBuffer(scale_cap=4096)
    calc.load_from_memory(1)
    for _ in range(20):
        calc.alu("mul", 1, 1, imm=2)
    assert calc.scale_of(1) == 4096


def test_negative_scale_becomes_positive(calc):
    calc.load_from_memory(1)
    calc.alu("mul", 2, 1, imm=-0x200)
    assert calc.scale_of(2) == 0x200


def test_mul_by_zero_clamps_scale(calc):
    calc.load_from_memory(1)
    calc.alu("mul", 2, 1, imm=0)
    assert calc.scale_of(2) == 1


def test_figure5_example(calc):
    """The paper's Fig. 5: array[secret*0x200] with arr base immediate."""
    calc.load_from_memory(0)          # r0: secret's address (from memory)
    calc.load_from_memory(1)          # r1: secret value
    calc.load_immediate(2, 0x8000)    # r2: arr_addr
    calc.load_immediate(3, 0x200)     # r3: 0x200
    calc.alu("mul", 4, 1, rs1=3)      # r4 = secret * 0x200
    assert calc.scale_of(4) == 0x200
    assert calc.fva_of(4) is None
    calc.alu("add", 5, 2, rs1=4)      # r5 = arr + r4
    assert calc.scale_of(5) == 0x200
    assert calc.fva_of(5) is None


def test_reset(calc):
    calc.load_immediate(1, 5)
    calc.reset()
    assert calc.fva_of(1) is None and calc.scale_of(1) == 1
