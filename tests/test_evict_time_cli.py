"""Evict+Time (the out-of-scope timing attack) and the CLI front door."""

import pytest

from repro.__main__ import main
from repro.attacks import EvictTimeAttack
from repro.core.config import PrefenderConfig
from repro.sim.config import PrefetcherSpec, SystemConfig


def test_evict_time_baseline_recovers_secret():
    outcome = EvictTimeAttack().run(SystemConfig())
    assert outcome.candidates == [37]
    assert outcome.attack_succeeded


def test_evict_time_channel_survives_prefender():
    """The paper's Table II negative result: timing channels are out of
    PREFENDER's threat model — one anomalous round survives."""
    outcome = EvictTimeAttack().run(
        SystemConfig(
            prefetcher=PrefetcherSpec(
                kind="prefender", prefender=PrefenderConfig.full(8)
            )
        )
    )
    assert len(outcome.candidates) == 1
    assert outcome.candidates[0] in (36, 37, 38)


def test_evict_time_threshold_is_relative():
    attack = EvictTimeAttack()
    outcome = attack.run(SystemConfig())
    fast = sorted(lat for lat in outcome.latencies if lat > 0)
    assert outcome.threshold == fast[len(fast) // 2] + 6


def test_cli_attack_command(capsys):
    assert main(["attack", "flush-reload", "--defense", "ST"]) == 0
    output = capsys.readouterr().out
    assert "DEFENDED" in output


def test_cli_attack_baseline_succeeds(capsys):
    assert main(["attack", "prime-probe"]) == 0
    assert "ATTACK SUCCEEDED" in capsys.readouterr().out


def test_cli_hwcost(capsys):
    assert main(["hwcost"]) == 0
    assert "400 B" in capsys.readouterr().out


def test_cli_table(capsys):
    assert main(["table", "6", "--scale", "0.1"]) == 0
    assert "Table VI" in capsys.readouterr().out


def test_cli_rejects_unknown_command():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
