"""Evict+Time (the out-of-scope timing attack) and the CLI front door."""

import pytest

from repro.__main__ import main
from repro.attacks import EvictTimeAttack
from repro.core.config import PrefenderConfig
from repro.sim.config import PrefetcherSpec, SystemConfig


def test_evict_time_baseline_recovers_secret():
    outcome = EvictTimeAttack().run(SystemConfig())
    assert outcome.candidates == [37]
    assert outcome.attack_succeeded


def test_evict_time_channel_survives_prefender():
    """The paper's Table II negative result: timing channels are out of
    PREFENDER's threat model — one anomalous round survives."""
    outcome = EvictTimeAttack().run(
        SystemConfig(
            prefetcher=PrefetcherSpec(
                kind="prefender", prefender=PrefenderConfig.full(8)
            )
        )
    )
    assert len(outcome.candidates) == 1
    assert outcome.candidates[0] in (36, 37, 38)


def test_evict_time_threshold_is_relative():
    attack = EvictTimeAttack()
    outcome = attack.run(SystemConfig())
    fast = sorted(lat for lat in outcome.latencies if lat > 0)
    assert outcome.threshold == fast[len(fast) // 2] + 6


def test_cli_attack_command(capsys):
    assert main(["attack", "flush-reload", "--defense", "ST"]) == 0
    output = capsys.readouterr().out
    assert "DEFENDED" in output


def test_cli_attack_baseline_succeeds(capsys):
    assert main(["attack", "prime-probe"]) == 0
    assert "ATTACK SUCCEEDED" in capsys.readouterr().out


def test_cli_hwcost(capsys):
    assert main(["hwcost"]) == 0
    assert "400 B" in capsys.readouterr().out


def test_cli_table(capsys):
    assert main(["table", "6", "--scale", "0.1"]) == 0
    assert "Table VI" in capsys.readouterr().out


def test_cli_table_parallel_jobs(capsys):
    assert main(["table", "6", "--scale", "0.1", "--jobs", "2"]) == 0
    assert "Table VI" in capsys.readouterr().out


def test_cli_rejects_non_positive_scale(capsys):
    for bad in ("0", "-0.5", "nan-ish"):
        with pytest.raises(SystemExit) as excinfo:
            main(["table", "4", "--scale", bad])
        assert excinfo.value.code == 2, bad
    assert "--scale" in capsys.readouterr().err


def test_cli_rejects_negative_jobs():
    with pytest.raises(SystemExit):
        main(["table", "4", "--jobs", "-1"])


def test_cli_sweep(capsys):
    assert (
        main(
            [
                "sweep",
                "--workloads",
                "462.libquantum,999.specrand",
                "--kinds",
                "prefender,tagged",
                "--buffers",
                "16,32",
                "--scale",
                "0.1",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "Sweep" in out
    assert "prefender/16" in out and "prefender/32" in out and "tagged" in out


def test_cli_sweep_rejects_unknown_kind(capsys):
    with pytest.raises(SystemExit):
        main(["sweep", "--kinds", "warp-drive", "--scale", "0.1"])
    assert "warp-drive" in capsys.readouterr().err


def test_cli_rejects_unknown_command():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
