"""Differential snapshot/restore parity harness.

For every workload × prefetcher cell and attack scenario pinned in
``tests/golden/timing_parity.json``, two identical systems are built and
driven through a randomized interleaving — the subject runs N steps,
snapshots, runs K more, restores and re-runs the K — while the control
simply runs N+K straight through.  ``tools.state_diff`` then deep-compares
the two live object graphs field by field; a single diverging register,
cache line, MSHR entry or tracker counter fails with its exact path
(``core[1].l1._sets[3][0].dirty``).

Also here: the snapshot versioning contract (mismatched
``SNAPSHOT_VERSION``, unknown/missing fields and topology mismatches all
raise :class:`SnapshotError`), image non-aliasing (one snapshot serves
many restores), a countdown-fusion differential, and a hypothesis
round-trip property over random programs × random snapshot points.
"""

import copy
import json
import pathlib
import random
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tools.state_diff import diff_systems, state_diff

from repro.errors import SnapshotError
from repro.experiments.common import PERF_CORE, security_spec
from repro.isa.builder import ProgramBuilder
from repro.runner.job import ATTACK_KINDS
from repro.sim.config import PrefetcherSpec, SystemConfig
from repro.sim.simulator import build_system
from repro.snapshot import SNAPSHOT_VERSION
from repro.workloads import get_workload

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden" / "timing_parity.json"

# Mirrors tests/test_golden_parity.py; test_harness_covers_pinned_grid
# asserts the mirror cannot drift from the golden file.
WORKLOADS = ("462.libquantum", "429.mcf", "473.astar", "999.specrand")
KINDS = (
    "none",
    "tagged",
    "stride",
    "prefender",
    "prefender+stride",
    "bitp",
    "disruptive",
)
SCALE = 0.1

ATTACK_CELLS = {
    "flush-reload/cross-core/Base": dict(
        attack="flush-reload", defense="Base", cross_core=True
    ),
    "flush-reload/cross-core/FULL": dict(
        attack="flush-reload", defense="FULL", cross_core=True
    ),
    "flush-reload/spectre/Base": dict(
        attack="flush-reload", defense="Base", victim_mode="spectre"
    ),
    "flush-reload/spectre/ST+AT": dict(
        attack="flush-reload", defense="ST+AT", victim_mode="spectre"
    ),
    "adversarial-prefetch-a2/Base": dict(
        attack="adversarial-prefetch-a2", defense="Base"
    ),
}


def _workload_system(workload: str, kind: str):
    program = get_workload(workload).program(SCALE)
    config = SystemConfig(core=PERF_CORE, prefetcher=PrefetcherSpec(kind=kind))
    return build_system([program], config)


def _attack_system(cell: dict, core_config=None):
    overrides = {
        key: value
        for key, value in cell.items()
        if key not in ("attack", "defense")
    }
    attack = ATTACK_KINDS[cell["attack"]](**overrides)
    config = SystemConfig(prefetcher=security_spec(cell["defense"]))
    if core_config is not None:
        config = replace(config, core=core_config)
    system, _ = attack.prepare(config)
    return system


def _interleaving_check(make_system, seed: str) -> None:
    """Run the randomized N / snapshot / K / restore / K interleaving."""
    rng = random.Random(seed)
    control = make_system()
    subject = make_system()
    warm = rng.randrange(50, 2000)
    replay = rng.randrange(50, 1500)
    took_warm = subject.run_steps(warm)
    image = subject.snapshot()
    first = subject.run_steps(replay)
    subject.restore(image)
    second = subject.run_steps(replay)
    assert first == second, "replayed segment took a different step count"
    control.run_steps(took_warm + second)
    assert diff_systems(subject, control) == []


# --- randomized interleavings over the pinned golden grid ----------------------


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("kind", KINDS)
def test_workload_interleaving_parity(workload, kind):
    _interleaving_check(
        lambda: _workload_system(workload, kind), f"{workload}/{kind}"
    )


@pytest.mark.parametrize("name", sorted(ATTACK_CELLS))
def test_attack_interleaving_parity(name):
    _interleaving_check(lambda: _attack_system(ATTACK_CELLS[name]), name)


def test_harness_covers_pinned_grid():
    """The cells above are exactly the grid pinned in the golden file."""
    golden = json.loads(GOLDEN_PATH.read_text())
    assert golden["scale"] == SCALE
    assert set(golden["workloads"]) == {
        f"{workload}/{kind}" for workload in WORKLOADS for kind in KINDS
    }
    assert set(golden["attacks"]) == set(ATTACK_CELLS)


@pytest.mark.parametrize(
    ("workload", "kind"),
    [("462.libquantum", "prefender+stride"), ("999.specrand", "tagged")],
)
def test_resumed_run_completes_identically(workload, kind):
    """Restore mid-run, then finish: cycle- and counter-exact vs control."""
    control = _workload_system(workload, kind)
    subject = _workload_system(workload, kind)
    subject.run_steps(400)
    image = subject.snapshot()
    subject.run_steps(300)
    subject.restore(image)
    control_result = control.run()
    subject_result = subject.run()
    assert subject_result.cycles == control_result.cycles
    assert subject_result.instructions == control_result.instructions
    assert subject_result.core_cycles == control_result.core_cycles
    assert diff_systems(subject, control) == []


def test_attack_resumed_run_completes_identically():
    cell = ATTACK_CELLS["flush-reload/cross-core/FULL"]
    control = _attack_system(cell)
    subject = _attack_system(cell)
    subject.run_steps(600)
    image = subject.snapshot()
    subject.run_steps(500)
    subject.restore(image)
    control_result = control.run()
    subject_result = subject.run()
    assert subject_result.cycles == control_result.cycles
    assert subject_result.instructions == control_result.instructions
    assert diff_systems(subject, control) == []


# --- snapshot image hygiene ----------------------------------------------------


def test_restore_does_not_alias_the_image():
    """One image must survive restore + further running untouched, so a
    single snapshot can seed arbitrarily many replays."""
    system = _workload_system("999.specrand", "prefender")
    system.run_steps(250)
    image = system.snapshot()
    pristine = copy.deepcopy(image)
    system.restore(image)
    system.run_steps(250)
    assert image == pristine


def test_countdown_fusion_is_cycle_exact():
    """Fast-forwarded delay loops must match the unfused simulation in
    every cycle, counter and architectural field."""
    cell = ATTACK_CELLS["flush-reload/cross-core/Base"]
    fused = _attack_system(cell)
    unfused = _attack_system(
        cell, core_config=replace(SystemConfig().core, fuse_countdown_loops=False)
    )
    fused_result = fused.run()
    unfused_result = unfused.run()
    assert fused_result.cycles == unfused_result.cycles
    assert fused_result.instructions == unfused_result.instructions
    assert diff_systems(fused, unfused) == []


# --- versioning and shape errors -----------------------------------------------


@pytest.fixture
def small_system():
    return _workload_system("999.specrand", "none")


def test_version_mismatch_raises(small_system):
    image = small_system.snapshot()
    bad = dict(image, version=SNAPSHOT_VERSION + 1)
    with pytest.raises(SnapshotError, match="version"):
        small_system.restore(bad)


def test_unknown_field_raises(small_system):
    bad = dict(small_system.snapshot(), bogus=1)
    with pytest.raises(SnapshotError, match="bogus"):
        small_system.restore(bad)


def test_missing_field_raises(small_system):
    bad = dict(small_system.snapshot())
    del bad["cores"]
    with pytest.raises(SnapshotError, match="cores"):
        small_system.restore(bad)


def test_non_dict_snapshot_raises(small_system):
    with pytest.raises(SnapshotError):
        small_system.restore("not-a-snapshot")


def test_unknown_core_field_raises(small_system):
    image = small_system.snapshot()
    cores = list(image["cores"])
    cores[0] = dict(cores[0], extra=1)
    with pytest.raises(SnapshotError, match="extra"):
        small_system.restore(dict(image, cores=tuple(cores)))


def test_core_count_mismatch_raises(small_system):
    dual = _attack_system(ATTACK_CELLS["flush-reload/cross-core/Base"])
    with pytest.raises(SnapshotError, match="core"):
        dual.restore(small_system.snapshot())


def test_prefetcher_attachment_mismatch_raises():
    system = _workload_system("999.specrand", "stride")
    image = system.snapshot()
    hierarchy = dict(image["hierarchy"], prefetchers=(None,))
    with pytest.raises(SnapshotError, match="prefetcher"):
        system.restore(dict(image, hierarchy=hierarchy))


def test_cross_kind_prefetcher_snapshot_raises(small_system):
    """A stride system cannot silently swallow a NullPrefetcher image."""
    with_prefetcher = _workload_system("999.specrand", "stride")
    with pytest.raises(SnapshotError):
        with_prefetcher.restore(small_system.snapshot())


# --- property-based round-trip (random programs × random snapshot points) ------

_REGS = tuple(f"r{i}" for i in range(1, 8))
_ALU = ("add", "sub", "mul", "and_", "or_", "xor")
_PROP_KINDS = ("none", "stride", "tagged", "prefender")
_DATA_BASE = 0x10000

_steps = st.lists(
    st.tuples(
        st.sampled_from(("alu", "li", "load", "store", "flush", "prefetch")),
        st.integers(0, len(_REGS) - 1),
        st.integers(0, len(_REGS) - 1),
        st.integers(0, 63),
    ),
    min_size=1,
    max_size=30,
)


def _random_program(steps):
    builder = ProgramBuilder("prop_roundtrip")
    builder.li("r9", _DATA_BASE)
    for kind, a, b, c in steps:
        if kind == "alu":
            getattr(builder, _ALU[c % len(_ALU)])(_REGS[a], _REGS[b], c)
        elif kind == "li":
            builder.li(_REGS[a], c * 257)
        elif kind == "load":
            builder.load(_REGS[a], c * 64, "r9")
        elif kind == "store":
            builder.store(_REGS[a], c * 64, "r9")
        elif kind == "flush":
            builder.clflush(c * 64, "r9")
        else:
            builder.prefetch(c * 64, "r9")
    builder.halt()
    builder.data(_DATA_BASE, list(range(64)), stride=64)
    return builder.build()


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_snapshot_roundtrip_property(data):
    program = _random_program(data.draw(_steps))
    config = SystemConfig(
        prefetcher=PrefetcherSpec(kind=data.draw(st.sampled_from(_PROP_KINDS)))
    )
    probe = build_system([program], config)
    total = probe.run_steps(100_000)
    point = data.draw(st.integers(0, total))

    subject = build_system([program], config)
    control = build_system([program], config)
    subject.run_steps(point)
    control.run_steps(point)
    subject.restore(subject.snapshot())
    assert diff_systems(subject, control) == []
    assert state_diff(subject.snapshot(), control.snapshot()) == []

    # Subsequent execution is step-for-step identical to the control.
    for _ in range(total - point):
        assert subject.run_steps(1) == control.run_steps(1)
        assert [core.time for core in subject.cores] == [
            core.time for core in control.cores
        ]
    assert diff_systems(subject, control) == []
