"""Static program analyzer: CFG, dataflow rules, suppressions, strict mode."""

import pytest

from repro.analysis import (
    ANALYSIS_RULES,
    EXIT,
    analyze_program,
    build_cfg,
    render_findings,
)
from repro.errors import AnalysisError, AssemblyError
from repro.isa import ProgramBuilder, assemble
from repro.isa.program import Program

CLEAN = """
.name clean
    li   r1, 4
loop:
    sub  r1, r1, 1
    bne  r1, zero, loop
    halt
"""


def rules_of(analysis):
    return [(finding.index, finding.rule) for finding in analysis.findings]


# -- clean programs ---------------------------------------------------------


def test_clean_program_has_no_findings():
    analysis = analyze_program(assemble(CLEAN))
    assert analysis.ok
    assert analysis.findings == ()
    assert analysis.errors() == ()


def test_strict_assemble_caches_analysis_on_program():
    program = assemble(CLEAN, strict=True)
    assert program.analysis is not None
    assert program.analysis.ok


def test_cfg_shape_of_clean_program():
    cfg = build_cfg(assemble(CLEAN).decoded)
    # li | loop body (sub+bne) | halt
    assert len(cfg.blocks) == 3
    assert cfg.reachable == (0, 1, 2)
    assert cfg.blocks[1].successors == (1, 2)  # taken back-edge + fallthrough
    assert cfg.blocks[2].successors == ()  # halt ends the program
    assert EXIT not in cfg.blocks[2].successors


# -- each rule fires with the right index ----------------------------------


def test_an_branch_flags_out_of_range_target():
    analysis = analyze_program(assemble("jmp 99\nhalt"))
    assert (0, "AN-BRANCH") in rules_of(analysis)


def test_an_falloff_flags_missing_halt():
    analysis = analyze_program(assemble("nop"))
    assert (0, "AN-FALLOFF") in rules_of(analysis)


def test_an_halt_flags_infinite_loop_once():
    analysis = analyze_program(assemble("loop:\njmp loop\nhalt"))
    halt_findings = [f for f in analysis.findings if f.rule == "AN-HALT"]
    assert len(halt_findings) == 1  # only the first trapped block is reported
    assert halt_findings[0].index == 0


def test_an_dead_flags_unreachable_block():
    analysis = analyze_program(assemble("jmp end\nisle:\nnop\nend:\nhalt"))
    assert rules_of(analysis) == [(1, "AN-DEAD")]


def test_an_ubd_flags_read_before_write():
    analysis = analyze_program(assemble("load r1, 0(r2)\nhalt"))
    assert rules_of(analysis) == [(0, "AN-UBD")]
    assert "r2" in analysis.findings[0].message


def test_an_ubd_ignores_zero_register():
    analysis = analyze_program(assemble("load r1, 0(zero)\nhalt"))
    assert analysis.ok


def test_empty_program_is_a_single_halt_finding():
    analysis = analyze_program(Program())
    assert rules_of(analysis) == [(None, "AN-HALT")]


def test_severities_match_the_catalog():
    analysis = analyze_program(assemble("jmp 99\nload r1, 0(r2)\nhalt"))
    for finding in analysis.findings:
        assert finding.severity == ANALYSIS_RULES[finding.rule][0]
    assert [f.rule for f in analysis.errors()] == [
        f.rule for f in analysis.findings if f.severity == "error"
    ]


# -- rendering --------------------------------------------------------------


def test_render_findings_resolves_source_lines():
    program = assemble("nop\nload r1, 0(r2)\nhalt", name="demo")
    lines = render_findings(program, analyze_program(program))
    assert lines == [
        "demo: line 2: warning AN-UBD r2 may be read before it is written "
        "(fix: " + ANALYSIS_RULES["AN-UBD"][2] + ")"
    ]


def test_render_findings_without_source_lines_uses_instr_index():
    builder = ProgramBuilder("built")
    builder.load("r1", 0, "r2").halt()
    program = builder.build()
    (line,) = render_findings(program, analyze_program(program))
    assert "instr 0" in line


# -- strict mode ------------------------------------------------------------


def test_strict_assemble_raises_with_line_numbers():
    with pytest.raises(AnalysisError, match="line 2") as excinfo:
        assemble("nop\nload r1, 0(r2)\nhalt", strict=True)
    assert [f.rule for f in excinfo.value.findings] == ["AN-UBD"]


def test_strict_failure_is_not_cached_as_clean():
    program = assemble("load r1, 0(r2)\nhalt")
    with pytest.raises(AnalysisError):
        program.finalize(strict=True)
    assert program.analysis is None  # a retry must re-run the analyzer
    with pytest.raises(AnalysisError):
        program.finalize(strict=True)


def test_strict_builder_raises():
    builder = ProgramBuilder("bad")
    builder.nop()  # falls off the end
    with pytest.raises(AnalysisError):
        builder.build(strict=True)


# -- suppressions -----------------------------------------------------------


def test_inline_pragma_suppresses_one_instruction():
    program = assemble(
        "load r1, 0(r2)  ; analysis: allow AN-UBD\nhalt", strict=True
    )
    assert program.analysis.findings == ()
    assert [f.rule for f in program.analysis.suppressed] == ["AN-UBD"]


def test_inline_pragma_does_not_leak_to_other_instructions():
    with pytest.raises(AnalysisError):
        assemble(
            "load r1, 0(r2)  ; analysis: allow AN-UBD\n"
            "load r3, 0(r4)\n"
            "halt",
            strict=True,
        )


def test_standalone_pragma_is_program_wide():
    program = assemble(
        "; analysis: allow AN-UBD\n"
        "load r1, 0(r2)\n"
        "load r3, 0(r4)\n"
        "halt",
        strict=True,
    )
    assert program.analysis.findings == ()


def test_allow_directive_is_program_wide():
    program = assemble(".allow AN-UBD\nload r1, 0(r2)\nhalt", strict=True)
    assert ("AN-UBD", None) in program.suppressions


def test_builder_allow_api():
    builder = ProgramBuilder("suppressed")
    builder.allow("AN-UBD", index=0)
    builder.load("r1", 0, "r2").halt()
    assert builder.build(strict=True).analysis.findings == ()


def test_unknown_rule_rejected_everywhere():
    with pytest.raises(AssemblyError, match="unknown analysis rule"):
        Program().allow("AN-BOGUS")
    with pytest.raises(AssemblyError, match="line 1"):
        assemble(".allow AN-BOGUS\nhalt")


def test_suppression_does_not_hide_other_rules():
    with pytest.raises(AnalysisError, match="AN-UBD"):
        assemble(".allow AN-FALLOFF\nload r1, 0(r2)\nnop", strict=True)


# -- assembler error paths (line-numbered) ----------------------------------


def test_duplicate_label_carries_line_number():
    with pytest.raises(AssemblyError, match="line 3.*duplicate"):
        assemble("x:\nnop\nx:\nhalt")


def test_undefined_branch_label_carries_line_number():
    with pytest.raises(AssemblyError, match="line 2.*undefined label"):
        assemble("nop\njmp nowhere\nhalt")


def test_equ_redefinition_carries_line_number():
    with pytest.raises(AssemblyError, match="line 2.*redefines 'K'"):
        assemble(".equ K 1\n.equ K 2\nhalt")


# -- dataflow extras --------------------------------------------------------


def test_liveness_never_includes_zero_register():
    analysis = analyze_program(assemble(CLEAN))
    for live_in, live_out in analysis.liveness:
        assert 0 not in live_in | live_out


def test_footprints_resolve_constant_addresses():
    program = assemble(
        """
        .data 0x10000 stride=8 7 7 7
        li   r1, 0x10000
        load r2, 8(r1)
        halt
        """
    )
    analysis = analyze_program(program)
    assert analysis.ok
    addresses = {addr for fp in analysis.footprints for _, addr in fp.addresses}
    assert 0x10008 in addresses
