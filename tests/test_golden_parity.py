"""Golden timing-parity guard for the simulator hot path.

Records cycles, IPC and *every* cache/core counter for a small workload ×
prefetcher grid plus three attack scenarios (dual-core Flush+Reload,
speculative Spectre, adversarial-prefetch A2), and compares each run
against ``tests/golden/timing_parity.json``.  Any hot-path change that
shifts a single cycle or counter anywhere in the grid fails here.

The golden file was recorded *after* the PR 4 stats bugfixes (flush
double-count, dirty-line invalidation writebacks, forwarded-load counts)
and *before* the decode/dispatch + tag-index + scheduler overhaul, so it
is the oracle that refactor is measured against.

Regenerate (only when an *intentional* semantic change lands)::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_parity.py
"""

import json
import os
import pathlib

import pytest

from repro.runner.job import ATTACK_KINDS
from repro.sim.config import PrefetcherSpec, SystemConfig
from repro.sim.simulator import build_system
from repro.experiments.common import PERF_CORE, security_spec
from repro.workloads import get_workload

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden" / "timing_parity.json"

WORKLOADS = ("462.libquantum", "429.mcf", "473.astar", "999.specrand")
KINDS = (
    "none",
    "tagged",
    "stride",
    "prefender",
    "prefender+stride",
    "bitp",
    "disruptive",
)
SCALE = 0.1


def _core_stats(core) -> dict:
    return {name: getattr(core.stats, name) for name in vars(core.stats)}


def _system_digest(system, result) -> dict:
    """Every timing observable of one finished run, JSON-ably."""
    return {
        "cycles": result.cycles,
        "instructions": result.instructions,
        "ipc": result.ipc,
        "core_cycles": result.core_cycles,
        "core_instructions": result.core_instructions,
        "core_stats": [_core_stats(core) for core in system.cores],
        "l1d_stats": [l1d.stats.as_dict() for l1d in system.hierarchy.l1ds],
        "l2_stats": system.hierarchy.l2.stats.as_dict(),
        "prefetch_counts": [
            system.hierarchy.prefetch_counts(core_id)
            for core_id in range(system.hierarchy.num_cores)
        ],
        "ownership_steals": system.hierarchy.ownership_steals,
    }


def _workload_cell(workload: str, kind: str) -> dict:
    program = get_workload(workload).program(SCALE)
    config = SystemConfig(core=PERF_CORE, prefetcher=PrefetcherSpec(kind=kind))
    system = build_system([program], config)
    result = system.run()
    return _system_digest(system, result)


def _attack_cell(attack: str, defense: str, **overrides) -> dict:
    outcome = ATTACK_KINDS[attack](**overrides).run(
        SystemConfig(prefetcher=security_spec(defense))
    )
    digest = {
        "cycles": outcome.run_result.cycles,
        "instructions": outcome.run_result.instructions,
        "core_cycles": outcome.run_result.core_cycles,
        "l1d_stats": outcome.run_result.l1d_stats,
        "l2_stats": outcome.run_result.l2_stats,
        "latencies": outcome.latencies,
        "candidates": outcome.candidates,
    }
    return digest


ATTACK_CELLS = {
    "flush-reload/cross-core/Base": dict(
        attack="flush-reload", defense="Base", cross_core=True
    ),
    "flush-reload/cross-core/FULL": dict(
        attack="flush-reload", defense="FULL", cross_core=True
    ),
    "flush-reload/spectre/Base": dict(
        attack="flush-reload", defense="Base", victim_mode="spectre"
    ),
    "flush-reload/spectre/ST+AT": dict(
        attack="flush-reload", defense="ST+AT", victim_mode="spectre"
    ),
    "adversarial-prefetch-a2/Base": dict(
        attack="adversarial-prefetch-a2", defense="Base"
    ),
}


def _record_grid() -> dict:
    grid: dict = {"scale": SCALE, "workloads": {}, "attacks": {}}
    for workload in WORKLOADS:
        for kind in KINDS:
            grid["workloads"][f"{workload}/{kind}"] = _workload_cell(
                workload, kind
            )
    for name, cell in ATTACK_CELLS.items():
        grid["attacks"][name] = _attack_cell(**cell)
    return grid


def _regen_requested() -> bool:
    return os.environ.get("REPRO_REGEN_GOLDEN", "") not in ("", "0")


@pytest.fixture(scope="module")
def golden() -> dict:
    if _regen_requested():
        grid = _record_grid()
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(grid, indent=1, sort_keys=True) + "\n")
    assert GOLDEN_PATH.exists(), (
        "golden file missing; record it with REPRO_REGEN_GOLDEN=1"
    )
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("kind", KINDS)
def test_workload_timing_parity(golden, workload, kind):
    key = f"{workload}/{kind}"
    observed = json.loads(json.dumps(_workload_cell(workload, kind)))
    assert observed == golden["workloads"][key]


@pytest.mark.parametrize("name", sorted(ATTACK_CELLS))
def test_attack_timing_parity(golden, name):
    observed = json.loads(json.dumps(_attack_cell(**ATTACK_CELLS[name])))
    assert observed == golden["attacks"][name]


def test_golden_grid_is_complete(golden):
    assert golden["scale"] == SCALE
    assert set(golden["workloads"]) == {
        f"{w}/{k}" for w in WORKLOADS for k in KINDS
    }
    assert set(golden["attacks"]) == set(ATTACK_CELLS)
