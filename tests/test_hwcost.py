"""Section V-E hardware resource arithmetic."""

from repro.hwcost import estimate, render_report
from repro.hwcost.model import (
    AccessTrackerCost,
    RecordProtectorCost,
    ScaleTrackerCost,
)


def test_scale_tracker_hundreds_of_bytes():
    cost = ScaleTrackerCost()
    assert cost.sram_bits == 32 * 2 * 16
    assert cost.sram_bytes == 128
    assert cost.datapath["adder_bits"] == 16


def test_access_tracker_under_3kb():
    cost = AccessTrackerCost()
    assert cost.sram_bytes < 3 * 1024
    assert cost.sram_bits == 32 * (8 * 64 + 64 + 20)


def test_record_protector_400_bytes():
    cost = RecordProtectorCost()
    assert cost.entry_bits == 80  # 16(sc) + 64(BlkAddr)
    assert cost.sram_bits == (8 + 32) * 80
    assert cost.sram_bytes == 400


def test_modulus_is_9_bits_for_64kb_2way():
    cost = RecordProtectorCost(l1_sets=512)
    assert cost.modulus_bits == 9
    assert cost.modulus_latency_cycles == 2


def test_modulus_scales_with_sets():
    assert RecordProtectorCost(l1_sets=1024).modulus_bits == 10


def test_estimate_totals():
    report = estimate()
    assert report.total_sram_bytes == 128 + 2384 + 400


def test_estimate_parameterised():
    report = estimate(buffers=64)
    assert report.access_tracker.buffers == 64
    assert report.record_protector.access_buffers == 64
    assert report.access_tracker.sram_bytes > estimate().access_tracker.sram_bytes


def test_render_report_mentions_components():
    text = render_report(estimate())
    for fragment in ("Scale Tracker", "Access Tracker", "Record Protector"):
        assert fragment in text
