"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.access_buffer import AccessBuffer
from repro.core.calc import CalculationBuffer
from repro.core.scale_buffer import ScaleBuffer
from repro.mem.cache import Cache, MemoryPort
from repro.mem.memory import MainMemory
from repro.mem.mshr import MSHRFile
from repro.utils.addr import AddressMap
from repro.utils.lru import LRUTracker

AMAP = AddressMap()

addresses = st.integers(min_value=0, max_value=1 << 32)
small_ints = st.integers(min_value=-(1 << 20), max_value=1 << 20)
ops = st.sampled_from(["add", "sub", "mul", "sll", "srl", "and", "or", "xor"])


# --- address map -----------------------------------------------------------------

@given(addresses)
def test_block_addr_idempotent_and_aligned(addr):
    block = AMAP.block_addr(addr)
    assert block % 64 == 0
    assert AMAP.block_addr(block) == block
    assert block <= addr < block + 64


@given(addresses)
def test_page_contains_block(addr):
    assert AMAP.page_addr(addr) <= AMAP.block_addr(addr)
    assert AMAP.same_page(addr, AMAP.block_addr(addr))


# --- calculation buffer ------------------------------------------------------------

@given(
    st.lists(
        st.tuples(
            ops,
            st.integers(min_value=1, max_value=7),
            st.integers(min_value=1, max_value=7),
            small_ints,
        ),
        max_size=60,
    )
)
def test_calc_scale_always_positive_and_capped(operations):
    calc = CalculationBuffer(scale_cap=4096)
    calc.load_from_memory(1)
    calc.load_immediate(2, 0x40)
    for op, rd, rs, imm in operations:
        calc.alu(op, rd, rs, imm=imm)
        for reg in range(8):
            assert 1 <= calc.scale_of(reg) <= 4096


@given(st.integers(min_value=0, max_value=(1 << 64) - 1), small_ints)
def test_calc_valid_fva_tracks_arithmetic(value, imm):
    calc = CalculationBuffer()
    calc.load_immediate(1, value)
    calc.alu("add", 2, 1, imm=imm)
    assert calc.fva_of(2) == (value + imm) & ((1 << 64) - 1)
    assert calc.scale_of(2) == 1


@given(st.integers(min_value=65, max_value=4095))
def test_calc_mul_rule_produces_requested_scale(scale):
    calc = CalculationBuffer()
    calc.load_from_memory(1)
    calc.alu("mul", 2, 1, imm=scale)
    assert calc.scale_of(2) == scale


# --- LRU ---------------------------------------------------------------------------

@given(st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=50))
def test_lru_victim_is_never_most_recent(touches):
    lru = LRUTracker()
    for key in touches:
        lru.touch(key)
    if len(set(touches)) > 1:
        assert lru.victim() != touches[-1]


# --- scale buffer ---------------------------------------------------------------------

@given(
    st.lists(
        st.tuples(
            st.sampled_from([0x80, 0x100, 0x200, 0x400]),
            st.integers(min_value=0, max_value=63),
        ),
        max_size=40,
    )
)
def test_scale_buffer_never_overflows_and_matches_recorded(records):
    buffer = ScaleBuffer(capacity=8)
    for sc, block_index in records:
        buffer.record(sc, block_index * 0x1000)
    assert len(buffer) <= 8
    for record in buffer.entries():
        assert buffer.match(record.blk + 3 * record.sc) is not None


# --- access buffer ---------------------------------------------------------------------

@given(st.lists(st.integers(min_value=0, max_value=200), max_size=60))
def test_access_buffer_capacity_and_diffmin_positive(blocks):
    buffer = AccessBuffer(capacity=8)
    buffer.reset(0x400000)
    for i, block_index in enumerate(blocks):
        buffer.record(block_index * 64, now=i)
    assert buffer.valid_entries <= 8
    assert len(set(buffer.entries)) == buffer.valid_entries
    diff = buffer.update_diff_min()
    if buffer.valid_entries >= 2:
        assert diff is not None and diff > 0
        ordered = sorted(buffer.entries)
        assert diff == min(b - a for a, b in zip(ordered, ordered[1:]))


# --- MSHR ---------------------------------------------------------------------------------

@given(
    st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=50)),
        max_size=40,
    )
)
def test_mshr_occupancy_bounded(events):
    mshr = MSHRFile(num_entries=4, prefetch_entries=2)
    now = 0
    for is_prefetch, gap in events:
        now += gap
        if is_prefetch:
            mshr.allocate_prefetch(now * 64, now, 100)
        else:
            mshr.allocate_demand(now * 64, now, 100)
        demand = sum(1 for e in mshr._entries if not e.is_prefetch)
        inflight = sum(1 for e in mshr._entries if e.is_prefetch)
        borrowed = sum(1 for e in mshr._entries if e.borrows_prefetch_slot)
        # A demand miss may borrow a squashed prefetch's slot (demand
        # priority); the borrowed slot stays occupied until that fill
        # completes, so the file's physical footprint never exceeds the
        # combined pools and the prefetch pool is never oversubscribed.
        assert demand + inflight <= 4 + 2
        assert demand - borrowed <= 4
        assert inflight + borrowed <= 2


# --- cache --------------------------------------------------------------------------------

@settings(max_examples=30)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=255),
            st.booleans(),
        ),
        max_size=60,
    )
)
def test_cache_invariants_under_random_traffic(accesses):
    memory = MainMemory(latency=100)
    cache = Cache(
        "L1D0", size=1024, assoc=2, amap=AMAP, hit_latency=4,
        parent=MemoryPort(memory),
    )
    now = 0
    for block_index, write in accesses:
        latency, _ = cache.access(block_index * 64, now, write=write)
        assert latency >= 4
        now += latency + 1
    # No duplicate blocks resident; capacity respected.
    resident = cache.resident_blocks()
    assert len(resident) == len(set(resident))
    assert len(resident) <= 16  # 1024B / 64B
    stats = cache.stats
    assert stats.hits + stats.misses + stats.inflight_hits + \
        stats.mshr_merge_hits == stats.demand_accesses
