"""to_text() -> assemble() round trips for every built-in program.

The disassembler must emit text that re-assembles to the *same* decode
tuples (labels substituted back for finalized integer targets) and the
same static-analysis verdict — otherwise ``python -m repro analyze`` on a
dumped program would disagree with the strict build that shipped it.
"""

import pytest

from repro.analysis import analyze_program
from repro.isa import assemble
from repro.runner import ATTACK_KINDS
from repro.workloads import get_workload, workload_names
from repro.workloads.crypto import get_victim, victim_names


def roundtrip(program):
    text = program.to_text()
    again = assemble(text, name=program.name)
    assert again.decoded == program.decoded, program.name
    assert again.data_segments == program.data_segments, program.name
    assert again.taint_sources == program.taint_sources, program.name
    assert analyze_program(again) == analyze_program(program), program.name
    # And the re-assembled text is a fixed point.
    assert again.to_text() == text, program.name


@pytest.mark.parametrize("name", workload_names())
def test_workload_roundtrip(name):
    roundtrip(get_workload(name).program())


@pytest.mark.parametrize("kind", sorted(ATTACK_KINDS))
def test_attack_roundtrip(kind):
    for program in ATTACK_KINDS[kind]().build_programs():
        roundtrip(program)


@pytest.mark.parametrize("name", victim_names())
def test_crypto_victim_roundtrip(name):
    """Victim-bearing builds carry `.secret` declarations and (for RSA)
    index-pinned suppressions — both must survive the text round trip."""
    victim = get_victim(name)
    attack = ATTACK_KINDS["flush-reload"](
        victim=name, num_indices=victim.num_indices, secret=0
    )
    programs = attack.build_programs()
    assert any(p.taint_sources for p in programs), name
    for program in programs:
        roundtrip(program)


def test_secret_directive_roundtrip():
    source = (
        ".name secretive\n"
        ".secret 0x3002100\n"
        ".data 0x3002100 5\n"
        "    li r1, 0x3002100\n"
        "    load r2, 0(r1)\n"
        "    halt\n"
    )
    program = assemble(source, strict=True)
    text = program.to_text()
    assert ".secret 0x3002100" in text
    again = assemble(text, strict=True)
    assert again.taint_sources == {0x3002100}


def test_roundtrip_preserves_suppressions():
    source = (
        ".name pragmatic\n"
        ".allow AN-DEAD\n"
        "    load r1, 0(r2)  ; analysis: allow AN-UBD\n"
        "    halt\n"
    )
    program = assemble(source, strict=True)
    text = program.to_text()
    assert ".allow AN-DEAD" in text
    assert "; analysis: allow AN-UBD" in text
    again = assemble(text, name=program.name, strict=True)
    assert again.suppressions == program.suppressions


def test_roundtrip_renders_labels_for_finalized_targets():
    program = assemble(
        ".name looped\n"
        "    li r1, 2\n"
        "top:\n"
        "    sub r1, r1, 1\n"
        "    bne r1, zero, top\n"
        "    halt\n"
    )
    assert program.instructions[2].target == 1  # finalized to an index
    assert "bne r1, r0, top" in program.to_text()
    roundtrip(program)
