"""Differential oracle: static certify verdicts vs measured attacker success.

The attack-feasibility certifier (``repro.analysis.scenario.certify_grid``)
claims, per ``victim x attack x defense`` cell, that an attack ``LEAKS``
(some secret pair is provably distinguishable) or is ``DEFENDED`` (no pair
survives the defense's havoc).  This suite locks those certificates against
the dynamic scenario suite *both ways*:

* every ``LEAKS`` cell must measure attacker success >= 0.9 when the grid
  actually runs (undefended cells measure 1.00 in practice);
* every ``DEFENDED`` cell must measure exactly 0.00;
* no measurement may contradict a certificate in either direction.

The static half always covers the full default grid (it is sub-second);
the dynamic half shrinks under ``CERTIFY_ORACLE_REDUCED=1`` (CI's lint
job) to one victim and two trial secrets.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.scenario import DEFAULT_DEFENSE_ROWS, certify_grid
from repro.attacks import scenarios

#: CI sets this to shrink the *dynamic* grid; static coverage is unchanged.
REDUCED = os.environ.get("CERTIFY_ORACLE_REDUCED") == "1"

DYNAMIC_VICTIMS = ("aes-ttable",) if REDUCED else scenarios.DEFAULT_VICTIMS
DYNAMIC_ATTACKS = ("flush-reload", "adversarial-prefetch-a2")
DYNAMIC_DEFENSES = ("Base", "FULL")
DYNAMIC_SECRETS = 2 if REDUCED else scenarios.DEFAULT_SECRETS


@pytest.fixture(scope="module")
def static_grid():
    """The full default certificate matrix (victims x attacks x Base/FULL)."""
    return certify_grid()


@pytest.fixture(scope="module")
def dynamic_grid():
    """Measured attacker success over the (possibly reduced) dynamic grid."""
    return scenarios.run(
        victims=DYNAMIC_VICTIMS,
        attacks=DYNAMIC_ATTACKS,
        defenses=DYNAMIC_DEFENSES,
        secrets=DYNAMIC_SECRETS,
    )


def _certificate(grid, victim, attack, defense):
    for cell in grid.cells:
        if (cell.victim, cell.attack, cell.defense) == (victim, attack, defense):
            return cell
    raise AssertionError(f"no certificate for {(victim, attack, defense)!r}")


# -- static shape of the default grid -----------------------------------------


def test_grid_covers_the_default_cross_product(static_grid):
    expected = (
        len(scenarios.DEFAULT_VICTIMS)
        * len(scenarios.DEFAULT_ATTACKS)
        * len(DEFAULT_DEFENSE_ROWS)
    )
    assert len(static_grid.cells) == expected


def test_every_undefended_cell_is_certified_leaks(static_grid):
    """Base row: every bundled attack provably works on every victim."""
    base = [cell for cell in static_grid.cells if cell.defense == "Base"]
    assert base, "grid has no Base row"
    for cell in base:
        assert cell.verdict == "LEAKS", (cell.victim, cell.attack, cell.detail)
        assert cell.witness is not None, "LEAKS certificate must carry a witness"
        assert cell.distinguishing, "LEAKS certificate must name leak indices"


def test_prefender_statically_defends_every_victim(static_grid):
    """FULL row: the paper's 1.00 -> 0.00 collapse, re-derived statically."""
    for victim in scenarios.DEFAULT_VICTIMS:
        full = [
            cell
            for cell in static_grid.cells
            if cell.victim == victim and cell.defense == "FULL"
        ]
        assert full, f"no FULL cells for {victim}"
        for cell in full:
            assert cell.verdict == "DEFENDED", (
                victim,
                cell.attack,
                cell.detail,
            )


def test_unknown_fraction_is_bounded(static_grid):
    assert static_grid.unknown_fraction <= 0.20, static_grid.unknown_fraction


# -- differential lock against the dynamic suite ------------------------------


def test_leaks_cells_measure_high_success(static_grid, dynamic_grid):
    checked = 0
    for dyn in dynamic_grid.cells:
        cert = _certificate(
            static_grid, dyn.spec.victim, dyn.spec.attack, dyn.spec.defense
        )
        if cert.verdict == "LEAKS":
            checked += 1
            assert dyn.score.success_rate >= 0.9, (
                f"{dyn.spec}: certified LEAKS but measured "
                f"success {dyn.score.success_rate:.2f}"
            )
    assert checked, "dynamic grid exercised no LEAKS certificates"


def test_defended_cells_measure_zero_success(static_grid, dynamic_grid):
    checked = 0
    for dyn in dynamic_grid.cells:
        cert = _certificate(
            static_grid, dyn.spec.victim, dyn.spec.attack, dyn.spec.defense
        )
        if cert.verdict == "DEFENDED":
            checked += 1
            assert dyn.score.success_rate == 0.0, (
                f"{dyn.spec}: certified DEFENDED but measured "
                f"success {dyn.score.success_rate:.2f}"
            )
    assert checked, "dynamic grid exercised no DEFENDED certificates"


def test_measurements_never_contradict_certificates(static_grid, dynamic_grid):
    """The reverse direction: high/zero measurements match the verdicts."""
    for dyn in dynamic_grid.cells:
        cert = _certificate(
            static_grid, dyn.spec.victim, dyn.spec.attack, dyn.spec.defense
        )
        rate = dyn.score.success_rate
        if rate >= 0.9:
            assert cert.verdict != "DEFENDED", (
                f"{dyn.spec}: measured success {rate:.2f} under a "
                f"DEFENDED certificate"
            )
        if rate == 0.0:
            assert cert.verdict != "LEAKS", (
                f"{dyn.spec}: measured success 0.00 under a LEAKS "
                f"certificate ({cert.detail})"
            )
