"""Table and chart text rendering."""

import pytest

from repro.utils.tables import render_table
from repro.utils.textplot import ascii_series, histogram_line


def test_render_table_alignment():
    text = render_table(["name", "value"], [["a", 0.5], ["long-name", 0.015]])
    lines = text.splitlines()
    assert "name" in lines[0]
    assert "+50.000%" in text
    assert "+1.500%" in text


def test_render_table_title():
    text = render_table(["c"], [["x"]], title="My Table")
    assert text.startswith("My Table\n========")


def test_render_table_row_width_mismatch():
    with pytest.raises(ValueError):
        render_table(["a", "b"], [["only-one"]])


def test_render_table_custom_float_format():
    text = render_table(["v"], [[0.123456]], float_format="{:.2f}")
    assert "0.12" in text


def test_ascii_series_basic():
    chart = ascii_series([0, 1, 2], {"latency": [1.0, 5.0, 1.0]})
    assert "l=latency" in chart
    assert "5.0" in chart


def test_ascii_series_multiple():
    chart = ascii_series([0, 1], {"one": [1, 2], "two": [2, 1]})
    assert "o=one" in chart and "t=two" in chart


def test_ascii_series_empty():
    assert ascii_series([], {}, title="empty") == "empty"


def test_ascii_series_length_mismatch():
    with pytest.raises(ValueError):
        ascii_series([0, 1], {"bad": [1]})


def test_ascii_series_flat_line():
    chart = ascii_series([0, 1], {"flat": [3, 3]})
    assert "flat" in chart


def test_histogram_line():
    text = histogram_line({"st": 10, "at": 100})
    assert "st" in text and "at" in text
    assert text.count("#") > 0


def test_histogram_empty():
    assert histogram_line({}) == "(no counts)"
