"""Unit tests for ST, AT, scale buffer, RP and the assembled PREFENDER."""

import pytest

from repro.core.access_buffer import AccessBuffer
from repro.core.access_tracker import AccessTracker
from repro.core.config import PrefenderConfig
from repro.core.prefender import Prefender
from repro.core.record_protector import RecordProtector
from repro.core.scale_buffer import ScaleBuffer
from repro.core.scale_tracker import ScaleTracker
from repro.errors import ConfigError
from repro.prefetch.base import Observation
from repro.utils.addr import AddressMap

from tools.state_diff import state_diff

AMAP = AddressMap()


def obs(addr, pc=0x400000, scale=1, now=0, op="load"):
    return Observation(
        op=op, core_id=0, pc=pc, addr=addr, block_addr=AMAP.block_addr(addr),
        hit=False, now=now, scale=scale,
    )


def absent(_addr):
    return False


# --- Scale Tracker -------------------------------------------------------------

def test_st_trigger_range():
    st = ScaleTracker(AMAP)
    assert not st.scale_in_range(1)
    assert not st.scale_in_range(64)      # == cacheline: excluded
    assert st.scale_in_range(65)
    assert st.scale_in_range(0x200)
    assert not st.scale_in_range(4096)    # == page: excluded


def test_st_prefetches_both_neighbours():
    st = ScaleTracker(AMAP)
    addr = 0x10000 + 0x200  # both neighbours in-page
    requests = st.observe_load(obs(addr, scale=0x200), absent)
    assert sorted(r.addr for r in requests) == [addr - 0x200, addr + 0x200]
    assert all(r.component == "st" for r in requests)


def test_st_respects_page_boundary():
    st = ScaleTracker(AMAP)
    addr = 0x10000  # page-aligned: addr-0x200 crosses the page
    requests = st.observe_load(obs(addr, scale=0x200), absent)
    assert [r.addr for r in requests] == [addr + 0x200]


def test_st_skips_resident_lines():
    st = ScaleTracker(AMAP)
    addr = 0x10000 + 0x200
    requests = st.observe_load(obs(addr, scale=0x200), lambda a: a < addr)
    assert [r.addr for r in requests] == [addr + 0x200]


def test_st_no_trigger_outside_range():
    st = ScaleTracker(AMAP)
    assert st.observe_load(obs(0x10200, scale=64), absent) == []
    assert st.observe_load(obs(0x10200, scale=1), absent) == []


def test_st_max_prefetches():
    st = ScaleTracker(AMAP, max_prefetches=1)
    requests = st.observe_load(obs(0x10200, scale=0x200), absent)
    assert len(requests) == 1


# --- Access buffer ---------------------------------------------------------------

def test_access_buffer_records_and_lru():
    buffer = AccessBuffer(capacity=2)
    buffer.reset(0x400000)
    assert buffer.record(0x1000, now=1)
    assert not buffer.record(0x1000, now=2)  # already present
    assert buffer.record(0x2000, now=3)
    buffer.record(0x1000, now=4)  # refresh
    assert buffer.record(0x3000, now=5)  # evicts 0x2000 (LRU)
    assert buffer.contains(0x1000) and buffer.contains(0x3000)
    assert not buffer.contains(0x2000)


def test_access_buffer_diff_min():
    buffer = AccessBuffer(capacity=8)
    buffer.reset(0x400000)
    for block in (0x1000, 0x1F00, 0x1600, 0x2800):
        buffer.record(block, now=0)
    assert buffer.update_diff_min() == 0x600
    buffer.record(0x1C00, now=1)
    assert buffer.update_diff_min() == 0x300  # the paper's Fig. 6 example


def test_access_buffer_protection_roundtrip():
    buffer = AccessBuffer()
    buffer.reset(0x400000)
    buffer.protect(0x200, 0x1000)
    assert buffer.protected
    assert buffer.protected_scale_matches(0x1000 + 5 * 0x200) == 0x200
    assert buffer.protected_scale_matches(0x1080) is None
    buffer.unprotect()
    assert not buffer.protected


# --- Access tracker ---------------------------------------------------------------

def make_tracker(buffers=4, threshold=4):
    return AccessTracker(AMAP, num_buffers=buffers, threshold=threshold)


def test_at_allocates_per_pc():
    tracker = make_tracker()
    tracker.observe_load(obs(0x1000, pc=0xA), absent)
    tracker.observe_load(obs(0x2000, pc=0xB), absent)
    assert tracker.buffer_for_pc(0xA).contains(0x1000)
    assert tracker.buffer_for_pc(0xB).contains(0x2000)


def test_at_no_prefetch_below_threshold():
    tracker = make_tracker()
    for i in range(3):
        requests = tracker.observe_load(obs(0x1000 + i * 0x200, pc=0xA), absent)
        assert requests == []


def test_at_prefetches_with_diffmin():
    tracker = make_tracker()
    requests = []
    for i in range(4):
        requests = tracker.observe_load(obs(0x1000 + i * 0x200, pc=0xA), absent)
    assert len(requests) == 1
    # Candidate is blk +/- DiffMin (0x200), not already in buffer/L1.
    assert requests[0].addr in (0x1600 + 0x200, 0x1600 - 0x200 - 0x200)
    assert requests[0].component == "at"


def test_at_lru_replacement_of_buffers():
    tracker = make_tracker(buffers=2)
    tracker.observe_load(obs(0x1000, pc=0xA), absent)
    tracker.observe_load(obs(0x2000, pc=0xB), absent)
    tracker.observe_load(obs(0x3000, pc=0xC), absent)  # evicts A's buffer
    assert tracker.buffer_for_pc(0xA) is None
    assert tracker.buffer_for_pc(0xC) is not None


def test_at_protected_buffers_immune_to_lru():
    tracker = make_tracker(buffers=2)
    tracker.observe_load(obs(0x1000, pc=0xA), absent)
    tracker.buffer_for_pc(0xA).protect(0x200, 0x1000)
    tracker.observe_load(obs(0x2000, pc=0xB), absent)
    tracker.observe_load(obs(0x3000, pc=0xC), absent)  # must evict B, not A
    assert tracker.buffer_for_pc(0xA) is not None
    assert tracker.buffer_for_pc(0xB) is None


def test_at_all_protected_allocation_fails():
    tracker = make_tracker(buffers=1)
    tracker.observe_load(obs(0x1000, pc=0xA), absent)
    tracker.buffer_for_pc(0xA).protect(0x200, 0x1000)
    assert tracker.observe_load(obs(0x2000, pc=0xB), absent) == []
    assert tracker.allocation_failures == 1


def test_at_guided_scale_overrides_diffmin():
    tracker = make_tracker()
    requests = tracker.observe_load(
        obs(0x5000, pc=0xD), absent, guided_scale=0x400
    )
    # Guided prefetching does not wait for the entry threshold.
    assert len(requests) == 1
    assert requests[0].component == "rp"
    assert requests[0].addr in (0x5400, 0x4C00)


def test_at_protected_count():
    tracker = make_tracker()
    tracker.observe_load(obs(0x1000, pc=0xA), absent)
    assert tracker.protected_count() == 0
    tracker.buffer_for_pc(0xA).protect(0x200, 0x1000)
    assert tracker.protected_count() == 1


# --- Scale buffer -----------------------------------------------------------------

def test_scale_buffer_record_and_match():
    buffer = ScaleBuffer(capacity=4)
    buffer.record(0x200, 0x1000)
    assert buffer.match(0x1000 + 7 * 0x200).sc == 0x200
    assert buffer.match(0x1080) is None


def test_scale_buffer_redundancy_keeps_larger_scale():
    buffer = ScaleBuffer()
    buffer.record(0x100, 0x2000)
    buffer.record(0x400, 0x1000)  # overlaps (0x1000-0x2000 divisible by 0x100)
    assert len(buffer) == 1
    assert buffer.entries()[0].sc == 0x400  # the paper's Fig. 7 step 1
    buffer.record(0x200, 0x1000 + 0x400)  # smaller overlapping scale: subsumed
    assert len(buffer) == 1
    assert buffer.entries()[0].sc == 0x400


def test_scale_buffer_capacity_lru():
    buffer = ScaleBuffer(capacity=2)
    buffer.record(0x200, 0x1000)
    buffer.record(0x200, 0x1040)  # non-overlapping (offset not multiple)
    buffer.match(0x1000)          # touch the first entry
    buffer.record(0x200, 0x1080)  # replaces the second (LRU)
    blks = {record.blk for record in buffer.entries()}
    assert blks == {0x1000, 0x1080}


def test_scale_buffer_ignores_nonpositive_scale():
    buffer = ScaleBuffer()
    buffer.record(0, 0x1000)
    buffer.record(-5, 0x1000)
    assert len(buffer) == 0


# --- Record protector ---------------------------------------------------------------

def test_rp_protects_matching_buffer():
    tracker = make_tracker()
    rp = RecordProtector()
    rp.record_scale(0x200, 0x1000)
    tracker.observe_load(obs(0x1000, pc=0xA), absent)
    guided = rp.guidance_for(obs(0x1400, pc=0xA), tracker)
    assert guided == 0x200
    assert tracker.buffer_for_pc(0xA).protected


def test_rp_guidance_without_buffer_then_latch():
    tracker = make_tracker()
    rp = RecordProtector()
    rp.record_scale(0x200, 0x1000)
    observation = obs(0x1400, pc=0xB)
    guided = rp.guidance_for(observation, tracker)
    assert guided == 0x200
    tracker.observe_load(observation, absent, guided_scale=guided)
    rp.protect_after_allocation(observation, tracker)
    assert tracker.buffer_for_pc(0xB).protected


def test_rp_falls_back_to_latched_scale():
    """Fig. 7(b): scale-buffer entry replaced, protected scale still guides."""
    tracker = make_tracker()
    rp = RecordProtector(scale_buffer_entries=1)
    rp.record_scale(0x200, 0x1000)
    observation = obs(0x1400, pc=0xA)
    tracker.observe_load(observation, absent)
    rp.guidance_for(observation, tracker)  # protect with (0x200, 0x1000)
    # Replace the only scale-buffer entry with an unrelated pattern.
    rp.record_scale(0x300, 0x77700040)
    guided = rp.guidance_for(obs(0x1800, pc=0xA), tracker)
    assert guided == 0x200


def test_rp_unprotects_after_prefetch_limit():
    tracker = make_tracker()
    rp = RecordProtector(unprotect_prefetch_limit=2)
    rp.record_scale(0x200, 0x1000)
    tracker.observe_load(obs(0x1000, pc=0xA), absent)
    rp.guidance_for(obs(0x1200, pc=0xA), tracker)
    buffer = tracker.buffer_for_pc(0xA)
    buffer.guided_prefetches = 2
    rp.expire_stale_protection(buffer, now=10)
    assert not buffer.protected
    assert rp.unprotections == 1


def test_rp_refresh_does_not_reset_guided_prefetch_counter():
    """A scale-buffer hit on an already-protected buffer must not re-latch.

    Re-latching zeroed ``guided_prefetches`` on every hit, so a sustained
    pattern (exactly what an adaptive attacker produces) kept protection
    alive forever — ``unprotect_prefetch_limit`` could never fire.
    """
    tracker = make_tracker()
    rp = RecordProtector(unprotect_prefetch_limit=4)
    rp.record_scale(0x200, 0x1000)
    tracker.observe_load(obs(0x1000, pc=0xA), absent)
    rp.guidance_for(obs(0x1000, pc=0xA), tracker)
    buffer = tracker.buffer_for_pc(0xA)
    assert buffer.protected and rp.protections == 1
    buffer.guided_prefetches = 3
    # Another hit on the same pattern: guidance continues, counter survives.
    assert rp.guidance_for(obs(0x1200, pc=0xA), tracker) == 0x200
    assert buffer.guided_prefetches == 3
    assert rp.protections == 1, "refresh is not a protection transition"


def test_rp_protection_expires_under_sustained_pattern():
    """Expiry fires after exactly ``unprotect_prefetch_limit`` guided
    prefetches even while the attacker's pattern keeps hitting the scale
    buffer — the sustained-access regime where the pre-fix code re-latched
    the counter on every hit and protection never expired."""
    limit = 8
    tracker = make_tracker()
    rp = RecordProtector(unprotect_prefetch_limit=limit)
    rp.record_scale(0x200, 0x1000)
    first = obs(0x1000, pc=0xA)
    guided = rp.guidance_for(first, tracker)  # buffer not yet allocated
    tracker.observe_load(first, absent, guided_scale=guided)
    rp.protect_after_allocation(first, tracker)
    buffer = tracker.buffer_for_pc(0xA)
    assert buffer.protected
    guided_total = 0
    addr = 0x1000
    for step in range(1, 4 * limit):
        addr += 0x200
        observation = obs(addr, pc=0xA, now=step)
        guided = rp.guidance_for(observation, tracker)
        assert guided == 0x200, "the pattern hits throughout"
        if rp.unprotections:
            break
        requests = tracker.observe_load(
            observation, absent, guided_scale=guided
        )
        guided_total += len(requests)
    else:
        raise AssertionError(
            "protection never expired under sustained scale-buffer hits"
        )
    assert guided_total == limit, "expiry after exactly the prefetch limit"
    assert rp.unprotections == 1
    # The still-hitting pattern may legitimately re-protect the buffer, but
    # only as a fresh transition with a zeroed guided-prefetch budget.
    assert buffer.protected and buffer.guided_prefetches == 0
    assert rp.protections == 2


def test_rp_expiry_is_permanent_once_the_record_is_replaced():
    """With the scale-buffer entry gone (Fig. 7(b)), the latched-scale
    fallback also stops at the limit — no re-protection is possible."""
    limit = 4
    tracker = make_tracker()
    rp = RecordProtector(scale_buffer_entries=1, unprotect_prefetch_limit=limit)
    rp.record_scale(0x200, 0x1000)
    first = obs(0x1000, pc=0xA)
    guided = rp.guidance_for(first, tracker)
    tracker.observe_load(first, absent, guided_scale=guided)
    rp.protect_after_allocation(first, tracker)
    buffer = tracker.buffer_for_pc(0xA)
    assert buffer.protected
    # The single scale-buffer entry is replaced by an unrelated pattern.
    rp.record_scale(0x300, 0x77700040)
    assert rp.scale_buffer.match(0x1200) is None
    guided_total = 0
    addr = 0x1000
    for step in range(1, 4 * limit):
        addr += 0x200
        observation = obs(addr, pc=0xA, now=step)
        guided = rp.guidance_for(observation, tracker)
        if guided is None:
            break
        assert guided == 0x200
        guided_total += len(
            tracker.observe_load(observation, absent, guided_scale=guided)
        )
    else:
        raise AssertionError("protection never expired")
    assert guided_total == limit
    assert not buffer.protected
    assert rp.unprotections == 1


def test_rp_unprotects_after_idle():
    tracker = make_tracker()
    rp = RecordProtector(unprotect_idle_cycles=100)
    rp.record_scale(0x200, 0x1000)
    tracker.observe_load(obs(0x1000, pc=0xA, now=0), absent)
    rp.guidance_for(obs(0x1200, pc=0xA, now=0), tracker)
    buffer = tracker.buffer_for_pc(0xA)
    rp.expire_stale_protection(buffer, now=500)
    assert not buffer.protected


def test_rp_idle_expiry_sweeps_quiescent_pcs():
    """The headline regression: PC-A gets protected, then never loads
    again.  Only PC-B keeps executing, so ``guidance_for`` never sees A's
    buffer — on the seed code A's idle deadline could therefore never
    fire, its protection was eternal, and with every buffer protected
    ``AccessTracker._allocate_new`` returned None forever.  The sweep on
    each observe must expire A once PC-B's loads advance time past
    ``unprotect_idle_cycles``, making the buffer LRU-replaceable again."""
    tracker = make_tracker(buffers=1)
    rp = RecordProtector(unprotect_idle_cycles=100)
    rp.record_scale(0x200, 0x1000)
    tracker.observe_load(obs(0x1000, pc=0xA, now=0), absent)
    rp.guidance_for(obs(0x1200, pc=0xA, now=0), tracker)
    buffer_a = tracker.buffer_for_pc(0xA)
    assert buffer_a.protected
    # PC-A goes quiescent; PC-B loads (an unrelated pattern) past the idle
    # deadline.  With the single buffer protected, B cannot allocate.
    assert tracker.observe_load(obs(0x9000, pc=0xB, now=50), absent) == []
    assert tracker.allocation_failures == 1
    rp.guidance_for(obs(0x9000, pc=0xB, now=50), tracker)
    assert buffer_a.protected, "deadline not reached yet"
    # ... now past the deadline: the sweep must fire even though PC-A's
    # buffer is not the one mapped to the loading PC.
    rp.guidance_for(obs(0x9200, pc=0xB, now=200), tracker)
    assert not buffer_a.protected, "quiescent PC kept protection forever"
    assert rp.sweep_unprotections == 1
    assert rp.unprotections == 1
    # The freed buffer is LRU-replaceable: PC-B's next load allocates it.
    tracker.observe_load(obs(0x9200, pc=0xB, now=201), absent)
    assert tracker.buffer_for_pc(0xB) is not None
    assert tracker.buffer_for_pc(0xA) is None


def test_rp_sweep_skips_buffers_unprotected_elsewhere():
    """Stale sweep-index entries (buffers reset or expired by the per-PC
    path) are dropped lazily without double-counting expirations."""
    tracker = make_tracker(buffers=2)
    rp = RecordProtector(unprotect_prefetch_limit=1, unprotect_idle_cycles=100)
    rp.record_scale(0x200, 0x1000)
    tracker.observe_load(obs(0x1000, pc=0xA, now=0), absent)
    rp.guidance_for(obs(0x1200, pc=0xA, now=0), tracker)
    buffer = tracker.buffer_for_pc(0xA)
    buffer.guided_prefetches = 1
    rp.expire_stale_protection(buffer, now=1)  # per-PC prefetch-limit expiry
    assert not buffer.protected and rp.unprotections == 1
    assert rp.sweep_idle_protection(now=10_000) == 0
    assert rp.sweep_unprotections == 0
    assert rp.unprotections == 1


# --- assembled PREFENDER ----------------------------------------------------------------

def test_prefender_config_validation():
    with pytest.raises(ConfigError):
        PrefenderConfig(at_enabled=False, rp_enabled=True)
    with pytest.raises(ConfigError):
        PrefenderConfig(at_threshold=1)


def test_prefender_variant_names():
    assert PrefenderConfig.full().variant_name == "Prefender"
    assert PrefenderConfig.st_only().variant_name == "Prefender-ST"
    assert PrefenderConfig.st_at().variant_name == "Prefender-ST+AT"
    assert PrefenderConfig.at_rp().variant_name == "Prefender-AT+RP"


def test_prefender_ignores_stores():
    prefender = Prefender(PrefenderConfig.full(8), AMAP)
    assert prefender.observe(obs(0x10200, scale=0x200, op="store"), absent) == []


def test_prefender_st_and_at_compose():
    prefender = Prefender(PrefenderConfig.st_at(8), AMAP)
    requests = prefender.observe(obs(0x10200, scale=0x200), absent)
    assert any(r.component == "st" for r in requests)


def test_prefender_rp_records_even_without_st():
    prefender = Prefender(PrefenderConfig.at_rp(), AMAP)
    # A scaled victim load records into the scale buffer...
    prefender.observe(obs(0x10200, pc=0x1, scale=0x200), absent)
    assert len(prefender.record_protector.scale_buffer) == 1
    # ...and a matching probe gets RP-guided prefetching immediately.
    requests = prefender.observe(obs(0x10200 + 0x400, pc=0x2), absent)
    assert any(r.component == "rp" for r in requests)


def test_prefender_protected_buffer_count():
    prefender = Prefender(PrefenderConfig.full(8), AMAP)
    assert prefender.protected_buffer_count() == 0
    prefender.observe(obs(0x10200, pc=0x1, scale=0x200), absent)
    assert prefender.protected_buffer_count() >= 1


def test_prefender_reset():
    prefender = Prefender(PrefenderConfig.full(8), AMAP)
    prefender.observe(obs(0x10200, pc=0x1, scale=0x200), absent)
    prefender.reset()
    assert prefender.protected_buffer_count() == 0
    assert len(prefender.record_protector.scale_buffer) == 0


# --- reset/snapshot audit ---------------------------------------------------------
#
# ``reset()`` and ``restore(fresh.snapshot())`` are two routes to the same
# place; any state field one of them forgets shows up as a diff path here.

def _drive_tracker(tracker):
    for i in range(12):
        tracker.observe_load(
            obs(0x1000 + i * 0x200, pc=0xA + i % 3, now=i * 10), absent
        )
    buffer = tracker.buffer_for_pc(0xA)
    if buffer is not None:
        buffer.protect(0x200, 0x1000)


def _assert_reset_is_fresh(make, drive):
    by_reset = make()
    by_restore = make()
    drive(by_reset)
    drive(by_restore)
    by_reset.reset()
    by_restore.restore(make().snapshot())
    name = type(by_reset).__name__
    assert state_diff(by_reset, by_restore, path=name) == []


def test_scale_tracker_reset_matches_fresh_snapshot():
    def drive(st):
        st.observe_load(obs(0x10200, scale=0x200, now=5), absent)

    _assert_reset_is_fresh(lambda: ScaleTracker(AMAP), drive)


def test_scale_buffer_reset_matches_fresh_snapshot():
    def drive(buffer):
        buffer.record(0x200, 0x1000)
        buffer.record(0x400, 0x8000)
        buffer.match(0x1400)

    _assert_reset_is_fresh(lambda: ScaleBuffer(capacity=4), drive)


def test_access_buffer_reset_matches_fresh_snapshot():
    def drive(buffer):
        buffer.reset(0x400000)
        for i, block in enumerate((0x1000, 0x1F00, 0x1600, 0x2800)):
            buffer.record(block, now=i)
        buffer.update_diff_min()
        buffer.protect(0x200, 0x1000)
        buffer.guided_prefetches = 3

    _assert_reset_is_fresh(lambda: AccessBuffer(capacity=4), drive)


def test_access_tracker_reset_matches_fresh_snapshot():
    _assert_reset_is_fresh(make_tracker, _drive_tracker)


def test_record_protector_reset_matches_fresh_snapshot():
    def drive(rp):
        tracker = make_tracker()
        rp.record_scale(0x200, 0x1000)
        tracker.observe_load(obs(0x1000, pc=0xA), absent)
        rp.guidance_for(obs(0x1400, pc=0xA), tracker)

    _assert_reset_is_fresh(RecordProtector, drive)


def test_prefender_reset_matches_fresh_snapshot():
    def drive(prefender):
        for i in range(16):
            prefender.observe(
                obs(0x10000 + i * 0x200, pc=0x1 + i % 4, scale=0x200, now=i * 9),
                absent,
            )

    _assert_reset_is_fresh(lambda: Prefender(PrefenderConfig.full(8), AMAP), drive)
