#!/usr/bin/env python3
"""Markdown link checker for the repo's docs (no network, no deps).

Checks every ``[text](target)`` link in the given markdown files:

* relative file targets must exist on disk (resolved against the file's
  directory), and any ``#anchor`` must match a heading in the target;
* in-page ``#anchor`` targets must match a heading in the same file;
* ``http(s)://`` and ``mailto:`` targets are skipped (CI has no business
  depending on external uptime).

Usage: ``python tools/check_links.py README.md docs/architecture.md ...``
Exits non-zero listing every broken link.  CI's docs job runs this over
README/docs/ROADMAP; ``tests/test_docs.py`` runs it in tier-1 so a broken
link fails locally before it fails CI.
"""

from __future__ import annotations

import pathlib
import re
import sys

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
#: Explicit ``<a id="..."></a>`` / ``<a name="..."></a>`` anchors — used
#: for non-heading link targets like the analysis/lint rule-ID catalogs.
EXPLICIT_ANCHOR = re.compile(r"<a\s+(?:id|name)=\"([^\"]+)\"\s*>")
SKIP_SCHEMES = ("http://", "https://", "mailto:")


def heading_anchors(text: str) -> set[str]:
    """Every anchor linkable in ``text``: heading slugs + explicit ids.

    Heading slugs follow GitHub's rules, including the ``-1``, ``-2``
    suffixes successive duplicate headings receive.
    """
    anchors: set[str] = set()
    seen: dict[str, int] = {}
    for heading in HEADING.findall(text):
        slug = re.sub(r"[`*_]", "", heading.strip().lower())
        slug = re.sub(r"[^\w\- ]", "", slug).replace(" ", "-")
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        anchors.add(slug if count == 0 else f"{slug}-{count}")
    anchors.update(EXPLICIT_ANCHOR.findall(text))
    return anchors


def check_file(path: pathlib.Path) -> list[str]:
    """Broken-link descriptions for one markdown file (empty = clean)."""
    errors = []
    text = path.read_text()
    for target in LINK.findall(text):
        if target.startswith(SKIP_SCHEMES):
            continue
        file_part, _, anchor = target.partition("#")
        if not file_part:  # in-page anchor
            if anchor not in heading_anchors(text):
                errors.append(f"{path}: missing anchor #{anchor}")
            continue
        resolved = (path.parent / file_part).resolve()
        if not resolved.exists():
            errors.append(f"{path}: broken link {target} ({resolved})")
            continue
        if anchor and resolved.suffix == ".md":
            if anchor not in heading_anchors(resolved.read_text()):
                errors.append(f"{path}: missing anchor {target}")
    return errors


def main(argv: list[str]) -> int:
    if not argv:
        print("usage: check_links.py FILE.md [FILE.md ...]", file=sys.stderr)
        return 2
    errors = []
    for name in argv:
        path = pathlib.Path(name)
        if not path.exists():
            errors.append(f"{path}: file not found")
            continue
        errors.extend(check_file(path))
    for error in errors:
        print(error, file=sys.stderr)
    if not errors:
        print(f"ok: {len(argv)} file(s), no broken links")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
