"""Repo-specific determinism and invariant rules.

Rule catalog (IDs are stable; ``# lint: allow``/``allow-file`` reference
them):

=========  =============================================================
DET101     unseeded randomness in the deterministic core (sim/mem/cpu/
           prefetch/core): module-level ``random.*`` calls share hidden
           global state, so two runs of the same config can diverge
DET102     wall-clock reads in the deterministic core: ``time.*`` /
           ``datetime.now`` leak host timing into simulated results
DET103     iteration over a set without ``sorted()``: set order varies
           with hash seeding, so derived output is not reproducible
DET104     analysis transfer function iterating a set-annotated
           parameter: DET103 only sees locally-assigned sets, but the
           dataflow/taint passes take ``frozenset`` inputs whose visit
           order must be pinned too (``src/repro/analysis/`` only)
SLOT201    hot-path class without ``__slots__`` in ``mem/`` or
           ``isa/decode.py``: per-instance dicts bloat the simulator's
           innermost structures
CFG301     config-tree dataclass field that cannot survive a JSON round
           trip: result-store keys fingerprint these configs
POOL401    lambda or nested function submitted to the worker pool: it
           does not pickle into worker processes
SNAP501    mutable field of a snapshot-capable class not covered by its
           snapshot/restore key set: warm replay would silently resume
           from stale state when someone adds a field and forgets the
           snapshot dict
PURE601    analysis code mutating its program/decode input: the static
           analyses (``src/repro/analysis/``) promise to be pure readers
           of decoded programs, so an attribute store or in-place
           mutator call on a ``program``/``programs``/``decoded``
           parameter (or any ``Program``-annotated one) would let one
           consumer's analysis corrupt another's input
=========  =============================================================
"""

from __future__ import annotations

import ast
from typing import Iterator

#: Modules whose behaviour must be a pure function of the configuration.
DETERMINISTIC_SCOPE = (
    "src/repro/sim/",
    "src/repro/mem/",
    "src/repro/cpu/",
    "src/repro/prefetch/",
    "src/repro/core/",
)

#: Files holding the ``SystemConfig`` dataclass tree.
CONFIG_TREE_FILES = (
    "src/repro/sim/config.py",
    "src/repro/mem/hierarchy.py",
    "src/repro/cpu/core.py",
    "src/repro/core/config.py",
)

_WALL_CLOCK_FNS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
    }
)
_DATETIME_FNS = frozenset({"now", "utcnow", "today"})


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted name of an expression (``''`` when not a name)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        prefix = _dotted(node.value)
        return f"{prefix}.{node.attr}" if prefix else node.attr
    return ""


class _PrefixScopedRule:
    """Base: rule active for files under any of ``self.scope`` prefixes."""

    scope: tuple[str, ...] = ()

    def applies(self, relpath: str) -> bool:
        return any(
            relpath.startswith(prefix) or relpath == prefix.rstrip("/")
            for prefix in self.scope
        )


class UnseededRandomRule(_PrefixScopedRule):
    """DET101: the deterministic core must not consume global randomness."""

    rule_id = "DET101"
    description = "unseeded randomness in the deterministic core"
    fixit = "thread an explicit `random.Random(seed)` through the config"
    scope = DETERMINISTIC_SCOPE

    def check(self, tree: ast.Module, relpath: str) -> Iterator[tuple[int, str]]:
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                bad = [a.name for a in node.names if a.name != "Random"]
                if bad:
                    yield (
                        node.lineno,
                        f"`from random import {', '.join(bad)}` pulls in "
                        "globally-seeded functions",
                    )
            elif isinstance(node, ast.Call):
                name = _dotted(node.func)
                if name.startswith("random.") and name != "random.Random":
                    yield (
                        node.lineno,
                        f"`{name}()` uses the global (unseeded) RNG",
                    )
                elif name == "random.Random" and not (
                    node.args or node.keywords
                ):
                    yield (
                        node.lineno,
                        "`random.Random()` with no seed is nondeterministic",
                    )
                # numpy.random.*, np.random.* — but not random.Random(seed),
                # which the branches above already classified as fine.
                elif not name.startswith("random.") and ".random." in f".{name}":
                    yield (
                        node.lineno,
                        f"`{name}()` draws from a global RNG namespace",
                    )


class WallClockRule(_PrefixScopedRule):
    """DET102: simulated time must come from the simulator, not the host."""

    rule_id = "DET102"
    description = "wall-clock read in the deterministic core"
    fixit = "use the simulated cycle counter (or move timing out of the core)"
    scope = DETERMINISTIC_SCOPE

    def check(self, tree: ast.Module, relpath: str) -> Iterator[tuple[int, str]]:
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                bad = [a.name for a in node.names if a.name in _WALL_CLOCK_FNS]
                if bad:
                    yield (
                        node.lineno,
                        f"`from time import {', '.join(bad)}` imports a "
                        "wall-clock source",
                    )
            elif isinstance(node, ast.Call):
                name = _dotted(node.func)
                if name.startswith("time.") and name[5:] in _WALL_CLOCK_FNS:
                    yield (node.lineno, f"`{name}()` reads the wall clock")
                elif (
                    "." in name
                    and name.rsplit(".", 1)[1] in _DATETIME_FNS
                    and "datetime" in name
                ):
                    yield (node.lineno, f"`{name}()` reads the wall clock")


def _is_setish(node: ast.AST, set_names: frozenset[str]) -> bool:
    """Whether an expression statically evaluates to a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and _dotted(node.func) in (
        "set",
        "frozenset",
    ):
        return True
    if isinstance(node, ast.Name) and node.id in set_names:
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub)
    ):
        return _is_setish(node.left, set_names) or _is_setish(
            node.right, set_names
        )
    return False


class SetIterationRule:
    """DET103: never iterate a set directly — order depends on hash seeds.

    Tracks names assigned set-valued expressions within each function body
    (and at module level), then flags ``for``/comprehension iteration over
    any set-valued expression that is not wrapped in ``sorted()``.
    """

    rule_id = "DET103"
    description = "iteration over a set without sorted()"
    fixit = "wrap the iterable in sorted(...) to fix the visit order"

    def applies(self, relpath: str) -> bool:
        return relpath.startswith("src/repro/")

    def _scope_check(
        self, body: list[ast.stmt]
    ) -> Iterator[tuple[int, str]]:
        set_names: set[str] = set()
        nested: list[list[ast.stmt]] = []

        def scan(statements: list[ast.stmt]) -> Iterator[tuple[int, str]]:
            for stmt in statements:
                if isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    nested.append(stmt.body)
                    continue
                if isinstance(stmt, ast.ClassDef):
                    nested.append(stmt.body)
                    continue
                for node in ast.walk(stmt):
                    if isinstance(node, ast.Assign) and isinstance(
                        node.value, ast.AST
                    ):
                        if _is_setish(node.value, frozenset(set_names)):
                            for target in node.targets:
                                if isinstance(target, ast.Name):
                                    set_names.add(target.id)
                    elif isinstance(node, ast.AnnAssign) and node.value:
                        if _is_setish(
                            node.value, frozenset(set_names)
                        ) and isinstance(node.target, ast.Name):
                            set_names.add(node.target.id)
                for node in ast.walk(stmt):
                    iters: list[ast.expr] = []
                    if isinstance(node, (ast.For, ast.AsyncFor)):
                        iters.append(node.iter)
                    elif isinstance(
                        node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
                    ):
                        iters.extend(gen.iter for gen in node.generators)
                    for candidate in iters:
                        if _is_setish(candidate, frozenset(set_names)):
                            yield (
                                candidate.lineno,
                                "set iteration order varies across runs",
                            )

        yield from scan(body)
        while nested:
            yield from self._scope_check(nested.pop(0))

    def check(self, tree: ast.Module, relpath: str) -> Iterator[tuple[int, str]]:
        yield from self._scope_check(list(tree.body))


_SET_ANNOTATIONS = frozenset(
    {"set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet"}
)


def _is_set_annotation(annotation: ast.expr | None) -> bool:
    """Whether a parameter annotation names a set type."""
    if annotation is None:
        return False
    if isinstance(annotation, ast.Constant) and isinstance(
        annotation.value, str
    ):  # quoted annotation
        try:
            parsed = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return False
        return _is_set_annotation(parsed)
    if isinstance(annotation, ast.Subscript):
        return _is_set_annotation(annotation.value)
    return _dotted(annotation).rsplit(".", 1)[-1] in _SET_ANNOTATIONS


class SetParameterIterationRule(_PrefixScopedRule):
    """DET104: analysis passes must not iterate set-typed parameters raw.

    Complements DET103, which only tracks names *assigned* set-valued
    expressions inside a scope: the dataflow and taint transfer functions
    receive ``frozenset`` arguments from their callers, so a bare
    ``for r in tainted:`` would still order output by hash seed.
    Membership tests and ``sorted(param)`` are fine — only direct
    iteration is flagged.
    """

    rule_id = "DET104"
    description = "iteration over a set-annotated parameter without sorted()"
    fixit = "iterate sorted(param) so the visit order is deterministic"
    scope = ("src/repro/analysis/",)

    def check(self, tree: ast.Module, relpath: str) -> Iterator[tuple[int, str]]:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            arguments = node.args
            set_params = {
                arg.arg
                for arg in (
                    arguments.posonlyargs
                    + arguments.args
                    + arguments.kwonlyargs
                )
                if _is_set_annotation(arg.annotation)
            }
            if not set_params:
                continue
            for child in ast.walk(node):
                iters: list[ast.expr] = []
                if isinstance(child, (ast.For, ast.AsyncFor)):
                    iters.append(child.iter)
                elif isinstance(
                    child,
                    (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp),
                ):
                    iters.extend(gen.iter for gen in child.generators)
                for candidate in iters:
                    if (
                        isinstance(candidate, ast.Name)
                        and candidate.id in set_params
                    ):
                        yield (
                            candidate.lineno,
                            f"parameter `{candidate.id}` is set-typed; its "
                            "iteration order varies across runs",
                        )


def _has_slots(node: ast.ClassDef) -> bool:
    for stmt in node.body:
        if isinstance(stmt, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__slots__"
            for t in stmt.targets
        ):
            return True
        if (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and stmt.target.id == "__slots__"
        ):
            return True
    for decorator in node.decorator_list:
        if isinstance(decorator, ast.Call) and _dotted(
            decorator.func
        ).endswith("dataclass"):
            for keyword in decorator.keywords:
                if (
                    keyword.arg == "slots"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                ):
                    return True
    return False


_SLOT_EXEMPT_BASES = ("Error", "Exception", "Enum", "Protocol", "NamedTuple")


class SlotsRequiredRule(_PrefixScopedRule):
    """SLOT201: hot-path classes carry no per-instance ``__dict__``."""

    rule_id = "SLOT201"
    description = "hot-path class without __slots__"
    fixit = "add __slots__ (or @dataclass(slots=True))"
    scope = ("src/repro/mem/", "src/repro/isa/decode.py")

    def check(self, tree: ast.Module, relpath: str) -> Iterator[tuple[int, str]]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if any(
                _dotted(base).rsplit(".", 1)[-1].endswith(_SLOT_EXEMPT_BASES)
                for base in node.bases
            ):
                continue
            if not _has_slots(node):
                yield (
                    node.lineno,
                    f"class {node.name} allocates a per-instance __dict__",
                )


_JSON_LEAVES = frozenset({"int", "float", "str", "bool", "None"})


def _json_roundtrippable(annotation: ast.expr) -> bool:
    """Conservative check that a field annotation survives JSON encoding."""
    if isinstance(annotation, ast.Constant):
        if annotation.value is None:
            return True
        if isinstance(annotation.value, str):  # quoted annotation
            try:
                parsed = ast.parse(annotation.value, mode="eval").body
            except SyntaxError:
                return False
            return _json_roundtrippable(parsed)
        return False
    if isinstance(annotation, ast.Name):
        name = annotation.id
        return (
            name in _JSON_LEAVES
            or name.endswith("Config")
            or name.endswith("Spec")
        )
    if isinstance(annotation, ast.Attribute):
        name = annotation.attr
        return name.endswith("Config") or name.endswith("Spec")
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        return _json_roundtrippable(annotation.left) and _json_roundtrippable(
            annotation.right
        )
    if isinstance(annotation, ast.Subscript):
        container = _dotted(annotation.value).rsplit(".", 1)[-1]
        inner = annotation.slice
        parts = list(inner.elts) if isinstance(inner, ast.Tuple) else [inner]
        if container in ("tuple", "Tuple", "list", "List", "Sequence"):
            return all(
                _json_roundtrippable(p)
                for p in parts
                if not (isinstance(p, ast.Constant) and p.value is Ellipsis)
            )
        if container in ("dict", "Dict", "Mapping"):
            if len(parts) != 2:
                return False
            key = parts[0]
            return (
                isinstance(key, ast.Name)
                and key.id == "str"
                and _json_roundtrippable(parts[1])
            )
        if container in ("Optional",):
            return all(_json_roundtrippable(p) for p in parts)
        return False
    return False


class ConfigJsonRule:
    """CFG301: every field in the SystemConfig tree must round-trip as JSON."""

    rule_id = "CFG301"
    description = "config-tree dataclass field not JSON-round-trippable"
    fixit = "use int/float/str/bool, tuples of those, or a nested *Config"

    def applies(self, relpath: str) -> bool:
        return relpath in CONFIG_TREE_FILES

    def check(self, tree: ast.Module, relpath: str) -> Iterator[tuple[int, str]]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not node.name.endswith(("Config", "Spec")):
                continue
            if not any(
                _dotted(d.func if isinstance(d, ast.Call) else d).endswith(
                    "dataclass"
                )
                for d in node.decorator_list
            ):
                continue
            for stmt in node.body:
                if not isinstance(stmt, ast.AnnAssign):
                    continue
                if not isinstance(stmt.target, ast.Name):
                    continue
                if stmt.target.id.startswith("_"):
                    continue
                if not _json_roundtrippable(stmt.annotation):
                    yield (
                        stmt.lineno,
                        f"field {node.name}.{stmt.target.id} cannot round-trip "
                        "through JSON",
                    )


class PoolPicklableRule:
    """POOL401: work submitted to the pool must pickle into worker processes."""

    rule_id = "POOL401"
    description = "lambda or nested function handed to the worker pool"
    fixit = "submit a module-level callable (see runner.executor._execute)"

    def applies(self, relpath: str) -> bool:
        return relpath.startswith("src/repro/")

    @staticmethod
    def _is_pool_call(node: ast.Call) -> bool:
        name = _dotted(node.func)
        short = name.rsplit(".", 1)[-1]
        if short == "submit":
            return True
        if short == "run_batch":
            return True
        if short == "run" and isinstance(node.func, ast.Attribute):
            receiver = _dotted(node.func.value).rsplit(".", 1)[-1]
            return "pool" in receiver.lower()
        return False

    def check(self, tree: ast.Module, relpath: str) -> Iterator[tuple[int, str]]:
        # Names of functions defined inside an enclosing function (won't
        # pickle: pickle serialises functions by qualified name).
        nested_defs: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for child in ast.walk(node):
                    if child is node:
                        continue
                    if isinstance(
                        child, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        nested_defs.add(child.name)
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Call) and self._is_pool_call(node)):
                continue
            operands = list(node.args) + [kw.value for kw in node.keywords]
            for arg in operands:
                if isinstance(arg, ast.Lambda):
                    yield (
                        arg.lineno,
                        "lambdas do not pickle into pool workers",
                    )
                elif isinstance(arg, ast.Name) and arg.id in nested_defs:
                    yield (
                        arg.lineno,
                        f"nested function `{arg.id}` does not pickle into "
                        "pool workers",
                    )


#: Method calls that mutate the receiver in place.
_MUTATOR_METHODS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "push",
        "remove",
        "reverse",
        "rotate",
        "setdefault",
        "sort",
        "touch",
        "update",
    }
)

#: Methods where writing a field does not require snapshot coverage.
_SNAP_CONSTRUCTORS = frozenset({"__init__", "__post_init__"})


def _declared_fields(node: ast.ClassDef) -> set[str]:
    """Field universe of a ``__slots__`` or dataclass class (else empty)."""
    fields: set[str] = set()
    for stmt in node.body:
        if isinstance(stmt, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__slots__"
            for t in stmt.targets
        ):
            if isinstance(stmt.value, (ast.Tuple, ast.List)):
                fields.update(
                    elt.value
                    for elt in stmt.value.elts
                    if isinstance(elt, ast.Constant)
                    and isinstance(elt.value, str)
                )
    if any(
        _dotted(d.func if isinstance(d, ast.Call) else d).endswith("dataclass")
        for d in node.decorator_list
    ):
        fields.update(
            stmt.target.id
            for stmt in node.body
            if isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and stmt.target.id != "__slots__"
        )
    return fields


def _self_field_of(node: ast.expr) -> str | None:
    """``self.X``, ``self.X[...]`` or ``self.X.y`` (any depth) -> ``X``."""
    while isinstance(node, (ast.Subscript, ast.Attribute, ast.Call)):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        node = (
            node.func
            if isinstance(node, ast.Call)
            else node.value  # type: ignore[assignment]
        )
    return None


def _snapshot_keys(snapshot: ast.FunctionDef) -> set[str] | None:
    """Coverage set of ``snapshot``: its dict-literal string keys plus any
    field it reads (a field serialised inside an aggregate entry — the
    cache's per-set ``(lines, stamps, tags)`` tuples — has no key of its
    own but is clearly covered).  ``None`` when the snapshot is not
    dict-shaped (list/tuple protocols are out of scope)."""
    keys: set[str] = set()
    saw_dict = False
    for node in ast.walk(snapshot):
        if isinstance(node, ast.Dict):
            saw_dict = True
            keys.update(
                key.value
                for key in node.keys
                if isinstance(key, ast.Constant)
                and isinstance(key.value, str)
            )
        elif (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            keys.add(node.attr)
            keys.add(node.attr.lstrip("_"))
    return keys if saw_dict else None


def _restore_keys(restore: ast.FunctionDef | None) -> set[str]:
    """String constants used as keys in ``restore`` (require_keys tuples
    and ``data["..."]`` subscripts)."""
    if restore is None:
        return set()
    keys: set[str] = set()
    for node in ast.walk(restore):
        if isinstance(node, (ast.Tuple, ast.List)):
            keys.update(
                elt.value
                for elt in node.elts
                if isinstance(elt, ast.Constant)
                and isinstance(elt.value, str)
            )
        elif isinstance(node, ast.Subscript) and isinstance(
            node.slice, ast.Constant
        ):
            if isinstance(node.slice.value, str):
                keys.add(node.slice.value)
    return keys


class SnapshotCoverageRule:
    """SNAP501: snapshot/restore must cover every mutated declared field.

    For each ``__slots__``/dataclass class defining a dict-shaped
    ``snapshot()``: a declared field written outside ``__init__`` /
    ``__post_init__`` (direct assignment, augmented assignment, item or
    nested-attribute store, or an in-place mutator call) is live
    simulator state — warm replay resumes from it — so its name (modulo
    a leading-underscore prefix) must appear in the snapshot dict keys
    or the restore key set.  Fields only ever assigned at construction
    are configuration and need no coverage.
    """

    rule_id = "SNAP501"
    description = "mutable field missing from the snapshot/restore key set"
    fixit = "add the field to snapshot()/restore() (or make it config-only)"

    def applies(self, relpath: str) -> bool:
        return relpath.startswith("src/repro/")

    @staticmethod
    def _mutated_fields(
        node: ast.ClassDef,
    ) -> dict[str, int]:
        """Field -> first line mutating it outside a constructor."""
        mutated: dict[str, int] = {}

        def note(name: str | None, lineno: int) -> None:
            if name is not None and name not in mutated:
                mutated[name] = lineno

        for stmt in node.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if stmt.name in _SNAP_CONSTRUCTORS:
                continue
            for child in ast.walk(stmt):
                targets: list[ast.expr] = []
                if isinstance(child, ast.Assign):
                    targets = list(child.targets)
                elif isinstance(child, (ast.AugAssign, ast.AnnAssign)):
                    targets = [child.target]
                elif isinstance(child, ast.Call):
                    func = child.func
                    if (
                        isinstance(func, ast.Attribute)
                        and func.attr in _MUTATOR_METHODS
                    ):
                        note(_self_field_of(func.value), child.lineno)
                    continue
                for target in targets:
                    if isinstance(target, ast.Name):
                        continue  # local, not a field
                    note(_self_field_of(target), child.lineno)
        return mutated

    def check(self, tree: ast.Module, relpath: str) -> Iterator[tuple[int, str]]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = {
                stmt.name: stmt
                for stmt in node.body
                if isinstance(stmt, ast.FunctionDef)
            }
            snapshot = methods.get("snapshot")
            if snapshot is None:
                continue
            fields = _declared_fields(node)
            if not fields:
                continue  # plain classes are out of this rule's scope
            keys = _snapshot_keys(snapshot)
            if keys is None:
                continue  # list/tuple snapshot protocol
            keys |= _restore_keys(methods.get("restore"))
            for name, lineno in sorted(
                self._mutated_fields(node).items(), key=lambda kv: kv[1]
            ):
                if name not in fields:
                    continue
                if name in keys or name.lstrip("_") in keys:
                    continue
                yield (
                    lineno,
                    f"{node.name}.{name} is mutated after construction but "
                    "missing from the snapshot/restore key set",
                )


#: Parameter names the purity rule always treats as analysis inputs.
_ANALYSIS_INPUT_NAMES = frozenset({"program", "programs", "decoded"})

#: Annotation suffixes marking a parameter as an analysis input.
_ANALYSIS_INPUT_ANNOTATIONS = ("Program", "DecodedProgram")


def _root_name(node: ast.expr) -> str | None:
    """Base ``ast.Name`` id of an attribute/subscript/call chain."""
    while isinstance(node, (ast.Attribute, ast.Subscript, ast.Call)):
        node = node.func if isinstance(node, ast.Call) else node.value
    return node.id if isinstance(node, ast.Name) else None


def _annotation_suffix(annotation: ast.expr | None) -> str:
    if annotation is None:
        return ""
    if isinstance(annotation, ast.Constant) and isinstance(
        annotation.value, str
    ):
        return annotation.value.rsplit(".", 1)[-1]
    return _dotted(annotation).rsplit(".", 1)[-1]


class AnalysisPurityRule(_PrefixScopedRule):
    """PURE601: static analyses must not mutate their program inputs.

    For every function in ``src/repro/analysis/``: a parameter named
    ``program``/``programs``/``decoded``, or annotated with a ``Program``
    type, is an analysis *input* shared with every other consumer
    (``Program.finalize`` caches analyses; the CLI and the certifier walk
    the same decode tuples).  An attribute/subscript store rooted at such
    a parameter, or an in-place mutator-method call on it, breaks the
    package's purity contract — flagged here instead of in review.
    """

    rule_id = "PURE601"
    description = "analysis code mutates its program/decode input"
    fixit = "copy the input first (`state.copy()`, `dict(...)`); analyses read"
    scope = ("src/repro/analysis/",)

    @staticmethod
    def _input_params(
        func: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> set[str]:
        names: set[str] = set()
        args = func.args
        for arg in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            if arg.arg in _ANALYSIS_INPUT_NAMES or _annotation_suffix(
                arg.annotation
            ).endswith(_ANALYSIS_INPUT_ANNOTATIONS):
                names.add(arg.arg)
        return names

    def check(self, tree: ast.Module, relpath: str) -> Iterator[tuple[int, str]]:
        for func in ast.walk(tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            inputs = self._input_params(func)
            if not inputs:
                continue
            # Parameters rebound to a fresh local stop being inputs; keep
            # the check simple and sound by only tracking the names
            # themselves (a rebind would shadow, so a flagged line always
            # names the original object or an honest alias of it).
            for child in ast.walk(func):
                targets: list[ast.expr] = []
                if isinstance(child, ast.Assign):
                    targets = list(child.targets)
                elif isinstance(child, (ast.AugAssign, ast.AnnAssign)):
                    targets = [child.target]
                elif isinstance(child, ast.Call):
                    callee = child.func
                    if (
                        isinstance(callee, ast.Attribute)
                        and callee.attr in _MUTATOR_METHODS
                        and _root_name(callee.value) in inputs
                    ):
                        yield (
                            child.lineno,
                            f"`.{callee.attr}()` mutates analysis input "
                            f"`{_root_name(callee.value)}` in "
                            f"`{func.name}`",
                        )
                    continue
                for target in targets:
                    if isinstance(target, ast.Name):
                        continue  # rebinding a local, not a store into it
                    root = _root_name(target)
                    if root in inputs:
                        yield (
                            child.lineno,
                            f"store into analysis input `{root}` in "
                            f"`{func.name}`",
                        )


LINT_RULES = (
    UnseededRandomRule(),
    WallClockRule(),
    SetIterationRule(),
    SetParameterIterationRule(),
    SlotsRequiredRule(),
    ConfigJsonRule(),
    PoolPicklableRule(),
    SnapshotCoverageRule(),
    AnalysisPurityRule(),
)
